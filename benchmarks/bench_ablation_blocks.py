"""Ablation — block-construction knobs (DESIGN.md §4).

Two design choices from Section 3.2 are exercised:

* the **adjacency threshold** for density-seeking growth ("we stop ...
  if all candidate border nodes have a number of adjacency with kernel
  nodes below a specified threshold") — higher thresholds give more,
  smaller, denser blocks, while the final clique set must not change;
* the **containment-filter index** (Lemma 1 implementation) — the
  per-node posting-list filter versus the naive quadratic scan.
"""

from __future__ import annotations

import time

from conftest import ratio_to_m
from repro.analysis.report import format_table
from repro.core.driver import find_max_cliques
from repro.core.filtering import filter_contained

THRESHOLDS = (1, 2, 3, 5)
DATASET = "google+"


def test_ablation_min_adjacency(benchmark, sweep, emit):
    graph = sweep.graph(DATASET)
    m = ratio_to_m(graph, 0.5)

    def measure():
        rows = []
        for threshold in THRESHOLDS:
            result = find_max_cliques(graph, m, min_adjacency=threshold)
            rows.append(
                [
                    threshold,
                    sum(level.num_blocks for level in result.levels),
                    result.total_analysis_seconds(),
                    result.num_cliques,
                ]
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "ablation_min_adjacency",
        format_table(
            ["min adjacency", "#blocks", "analysis (s)", "#cliques"],
            rows,
            title=f"Block growth threshold ablation on {DATASET} (m = {m})",
        ),
    )
    counts = {row[3] for row in rows}
    assert len(counts) == 1, "output must be invariant to the threshold"
    blocks = [row[1] for row in rows]
    assert blocks == sorted(blocks), "higher threshold -> more blocks"


def _naive_filter(candidates, reference):
    return [
        c for c in candidates if not any(c <= ref for ref in reference)
    ]


def test_ablation_filter_index(benchmark, sweep, emit):
    result = sweep.result(DATASET, 0.1)
    reference = result.feasible_cliques()
    candidates = result.hub_cliques() * 3  # amplify the workload

    def measure():
        start = time.perf_counter()
        indexed = filter_contained(candidates, reference)
        indexed_seconds = time.perf_counter() - start
        start = time.perf_counter()
        naive = _naive_filter(candidates, reference)
        naive_seconds = time.perf_counter() - start
        return indexed, naive, indexed_seconds, naive_seconds

    indexed, naive, indexed_seconds, naive_seconds = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    emit(
        "ablation_filter_index",
        format_table(
            ["implementation", "seconds", "kept"],
            [
                ["posting-list index", indexed_seconds, len(indexed)],
                ["quadratic scan", naive_seconds, len(naive)],
            ],
            title=(
                f"Lemma 1 filter ablation ({len(candidates)} candidates "
                f"vs {len(reference)} reference cliques)"
            ),
        ),
    )
    assert indexed == naive, "both implementations must agree"
    assert indexed_seconds < naive_seconds * 2, "index must be competitive"

"""Ablation — what the pivot rules buy (DESIGN.md §4, portfolio choice).

The portfolio exists because pivot choices prune differently.  This
ablation counts the recursion-tree size (one pivot evaluation per
internal node) of plain Bron–Kerbosch vs the three pivot rules on a
dense and a sparse graph, demonstrating why the pivotless variant is
excluded from the portfolio and how Tomita's rule earns its worst-case
optimality.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.graph.generators import erdos_renyi, social_network
from repro.mce.instrumentation import profile_rule
from repro.mce.recursion import (
    max_degree_pivot,
    no_pivot,
    tomita_pivot,
    x_pivot,
)

RULES = {
    "none (plain BK)": no_pivot,
    "BKPivot (max degree)": max_degree_pivot,
    "Tomita (max |N∩P|)": tomita_pivot,
    "XPivot (from X)": x_pivot,
}

GRAPHS = {
    "dense er(40, 0.5)": lambda: erdos_renyi(40, 0.5, seed=3),
    "sparse social(300)": lambda: social_network(
        300, attachment=3, planted_cliques=(9,), seed=3
    ),
}


def _count_recursion_nodes(graph, rule) -> tuple[int, int]:
    """Return (internal recursion nodes, cliques) for one rule."""
    profile = profile_rule(graph, rule, backend="bitsets")
    return profile.internal_nodes, profile.cliques


@pytest.mark.parametrize("graph_name", GRAPHS)
def test_pivot_rules_prune_recursion(benchmark, emit, graph_name):
    graph = GRAPHS[graph_name]()

    def measure():
        rows = []
        for rule_name, rule in RULES.items():
            calls, cliques = _count_recursion_nodes(graph, rule)
            rows.append([rule_name, calls, cliques])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        f"ablation_pivots_{graph_name.split()[0]}",
        format_table(
            ["pivot rule", "recursion nodes", "#cliques"],
            rows,
            title=f"Pivot-rule ablation on {graph_name}",
        ),
    )
    by_rule = {row[0]: row for row in rows}
    clique_counts = {row[2] for row in rows}
    assert len(clique_counts) == 1, "all rules must agree on the output"
    plain = by_rule["none (plain BK)"][1]
    for rule_name in RULES:
        if rule_name != "none (plain BK)":
            assert by_rule[rule_name][1] <= plain, rule_name
    # On the dense graph the pruning is dramatic.
    if "dense" in graph_name:
        assert by_rule["Tomita (max |N∩P|)"][1] * 2 < plain

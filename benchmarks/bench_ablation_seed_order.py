"""Ablation — the ``select(Nf)`` seed strategy of Algorithm 3.

The paper leaves the block-seed choice open (`select(Nf)`); reference
[10] suggests processing nodes in increasing degree order.  This
ablation runs the three implemented strategies and compares block
shapes and analysis time; the clique output must be invariant (the
strategies only move work between blocks).
"""

from __future__ import annotations

import time

from conftest import ratio_to_m
from repro.analysis.report import format_table
from repro.core.block_analysis import analyze_blocks
from repro.core.blocks import SEED_ORDERS, build_blocks, decomposition_overlap
from repro.core.feasibility import cut
from repro.core.uniform_blocks import mean_block_density

DATASET = "twitter1"
RATIO = 0.5


def test_ablation_seed_order(benchmark, sweep, emit):
    graph = sweep.graph(DATASET)
    m = ratio_to_m(graph, RATIO)
    feasible, _hubs = cut(graph, m)

    def measure():
        rows = []
        outputs = []
        for seed_order in SEED_ORDERS:
            start = time.perf_counter()
            blocks = build_blocks(graph, feasible, m, seed_order=seed_order)
            build_seconds = time.perf_counter() - start
            start = time.perf_counter()
            cliques, _reports = analyze_blocks(blocks)
            analysis_seconds = time.perf_counter() - start
            rows.append(
                [
                    seed_order,
                    len(blocks),
                    mean_block_density(blocks),
                    decomposition_overlap(blocks),
                    build_seconds,
                    analysis_seconds,
                ]
            )
            outputs.append(set(cliques))
        return rows, outputs

    rows, outputs = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "ablation_seed_order",
        format_table(
            [
                "seed order",
                "#blocks",
                "mean density",
                "overlap factor",
                "build (s)",
                "analysis (s)",
            ],
            rows,
            title=(
                f"Algorithm 3 select() strategy ablation on {DATASET} "
                f"(m/d = {RATIO}, m = {m})"
            ),
        ),
    )
    assert outputs[0] == outputs[1] == outputs[2], "output must be invariant"
    assert {row[0] for row in rows} == set(SEED_ORDERS)

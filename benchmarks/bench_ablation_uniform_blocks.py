"""Ablation — heterogeneous density-seeking blocks vs uniform blocks.

Section 3.2: "Differently from [10], we allow for blocks of
heterogeneous size and high connectivity".  This ablation runs the same
hub-aware driver pipeline on both second-level strategies and compares
block-shape statistics and analysis time; the clique output must be
identical because both strategies satisfy the same invariants.
"""

from __future__ import annotations

import time

from conftest import ratio_to_m
from repro.analysis.report import format_table
from repro.core.block_analysis import analyze_blocks
from repro.core.blocks import build_blocks
from repro.core.feasibility import cut
from repro.core.uniform_blocks import (
    block_size_spread,
    build_uniform_blocks,
    mean_block_density,
)

DATASET = "facebook"
RATIO = 0.5


def test_ablation_block_strategies(benchmark, sweep, emit):
    graph = sweep.graph(DATASET)
    m = ratio_to_m(graph, RATIO)
    feasible, _hubs = cut(graph, m)

    def measure():
        rows = []
        outputs = []
        for name, builder in (
            ("density-seeking (paper)", build_blocks),
            ("uniform insertion-order", build_uniform_blocks),
        ):
            start = time.perf_counter()
            blocks = builder(graph, feasible, m)
            build_seconds = time.perf_counter() - start
            start = time.perf_counter()
            cliques, _reports = analyze_blocks(blocks)
            analysis_seconds = time.perf_counter() - start
            rows.append(
                [
                    name,
                    len(blocks),
                    block_size_spread(blocks),
                    mean_block_density(blocks),
                    build_seconds,
                    analysis_seconds,
                ]
            )
            outputs.append(set(cliques))
        return rows, outputs

    rows, outputs = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "ablation_uniform_blocks",
        format_table(
            [
                "strategy",
                "#blocks",
                "size spread (max/mean)",
                "mean density",
                "build (s)",
                "analysis (s)",
            ],
            rows,
            title=(
                f"Second-level strategy ablation on {DATASET} "
                f"(m/d = {RATIO}, m = {m})"
            ),
        ),
    )
    assert outputs[0] == outputs[1], "both strategies must find the same cliques"
    by_name = {row[0]: row for row in rows}
    dense = by_name["density-seeking (paper)"]
    uniform = by_name["uniform insertion-order"]
    # The paper's strategy produces denser, more heterogeneous blocks.
    assert dense[3] > uniform[3], "density-seeking blocks should be denser"
    assert dense[2] >= uniform[2] * 0.8

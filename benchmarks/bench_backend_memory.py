"""Ablation — memory footprints of the three backends.

Section 2: "m is bounded by the dimension of the memory".  The
data-structure choice decides how large a block a worker can hold:
this bench measures the three backends' adjacency footprints on real
block-sized graphs and reports the largest block each backend fits in
the paper's 8 GB machines (and in a 1/100 budget, the regime the paper
recommends operating in).
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.graph.generators import erdos_renyi
from repro.mce.backends import BACKEND_NAMES
from repro.mce.memory import backend_memory_table, max_block_nodes_for_memory

PAPER_MACHINE_BYTES = 8 * 1024**3


def test_backend_footprints(benchmark, emit):
    def measure():
        rows = []
        for n, p in ((100, 0.3), (400, 0.05), (800, 0.01)):
            graph = erdos_renyi(n, p, seed=7)
            for name, modelled, measured in backend_memory_table(graph):
                rows.append([f"er({n}, {p})", name, modelled, measured])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "backend_memory",
        format_table(
            ["graph", "backend", "modelled bytes", "measured bytes"],
            rows,
            title="Backend adjacency footprints (model vs sys.getsizeof)",
        ),
    )
    # Dense small block: the packed bitset is the smallest footprint.
    dense = {
        row[1]: row[3] for row in rows if row[0] == "er(100, 0.3)"
    }
    assert dense["bitsets"] < dense["matrix"]
    assert dense["bitsets"] < dense["lists"]


def test_max_block_per_memory_budget(benchmark, emit):
    def measure():
        rows = []
        for label, budget in (
            ("8 GB (paper machine)", PAPER_MACHINE_BYTES),
            ("1/100 of memory", PAPER_MACHINE_BYTES // 100),
            ("1/1000 of memory", PAPER_MACHINE_BYTES // 1000),
        ):
            row: list[object] = [label]
            for backend in BACKEND_NAMES:
                row.append(max_block_nodes_for_memory(budget, backend))
            rows.append(row)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "backend_memory_budget",
        format_table(
            ["budget"] + list(BACKEND_NAMES),
            rows,
            title=(
                "Largest dense block per memory budget (Section 1: "
                "reducing m to 1/100 or 1/1000 of memory is faster anyway)"
            ),
        ),
    )
    for row in rows:
        # Even at 1/1000 of machine memory and the dense worst case,
        # every backend fits blocks in the hundreds of nodes — far
        # above the degeneracy of real social networks, so Theorem 1's
        # m > degeneracy requirement is easily met at every budget.
        assert all(int(value) > 300 for value in row[1:])
#!/usr/bin/env python
"""Batched dispatch benchmark — fused multi-block kernels vs per-block runs.

The many-small-blocks regime is the opposite failure mode from the
straggler: a social network shattered at a small block-size cap yields
thousands of blocks of a handful of nodes each, and the per-block path
pays full dispatch freight (backend construction, pivot machinery,
Python-loop overhead) for microseconds of actual Bron–Kerbosch work.
Bucketing same-shape blocks and driving each bucket through one
``expand_batched_many`` call amortizes that freight across the bucket.

Methodology: build a disjoint-union corpus of many small dense
communities, decompose once, then time the two in-process analysis
paths over identical :class:`BlockDescriptor` lists —

* **per-block** — ``analyze_block_csr`` in a loop (what the executors
  dispatch without ``--batch-blocks``);
* **batched** — ``form_buckets`` + ``analyze_bucket_csr`` per bucket
  (the fused path behind ``--batch-blocks``).

Both paths are verified clique-for-clique against each other before any
number is reported; a mismatch aborts the run.  Each path is timed over
``--repeats`` passes after a warmup pass, and the best pass is kept (the
usual best-of-N defence against CI noise).  The headline is the
throughput ratio (blocks/second, batched over per-block).

The full run exits nonzero when the ratio misses ``--target`` (default
3.0×); ``--quick`` (the CI smoke gate) only fails on an outright
regression (< 1.0×) or a clique mismatch.

Usage::

    PYTHONPATH=src python benchmarks/bench_batch.py [--quick]
        [--output BENCH_batch.json] [--repeats 3] [--target 3.0]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.block_analysis import (
    analyze_block_csr,
    analyze_bucket_csr,
    form_buckets,
)
from repro.core.blocks import blocks_csr
from repro.core.feasibility import cut_csr
from repro.graph.csr import BitmapScratch, CSRGraph
from repro.graph.generators import disjoint_union, erdos_renyi

SEED = 73


def canonical(cliques) -> set:
    return {frozenset(map(repr, clique)) for clique in cliques}


def build_corpus(num_blocks: int, size: int, p: float, m: int):
    """Decompose a union of ``num_blocks`` small dense communities."""
    parts = [
        erdos_renyi(size, p, seed=SEED + index) for index in range(num_blocks)
    ]
    csr = CSRGraph(disjoint_union(parts))
    feasible, _ = cut_csr(csr, m)
    descriptors = list(blocks_csr(csr, feasible, m))
    return csr, descriptors


def run_per_block(csr, descriptors, scratch):
    reports = []
    for descriptor in descriptors:
        reports.append(
            analyze_block_csr(
                descriptor, csr.indptr, csr.indices, csr.labels, scratch=scratch
            )
        )
    return reports


def run_batched(csr, buckets, large, scratch):
    reports = []
    for bucket in buckets:
        reports.extend(
            analyze_bucket_csr(
                bucket, csr.indptr, csr.indices, csr.labels, scratch=scratch
            )
        )
    for descriptor in large:
        reports.append(
            analyze_block_csr(
                descriptor, csr.indptr, csr.indices, csr.labels, scratch=scratch
            )
        )
    return reports


def best_of(fn, repeats: int) -> tuple[float, list]:
    """Best wall time over ``repeats`` passes (after one warmup pass)."""
    reports = fn()  # warmup: imports, allocator, scratch growth
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        reports = fn()
        best = min(best, time.perf_counter() - start)
    return best, reports


def run_scenario(quick: bool, repeats: int) -> dict:
    if quick:
        num_blocks, size, p, m = 300, 7, 0.6, 10
    else:
        num_blocks, size, p, m = 2000, 7, 0.6, 10
    csr, descriptors = build_corpus(num_blocks, size, p, m)
    scratch = BitmapScratch()

    buckets, large = form_buckets(descriptors, cutoff=64)
    bucketed_blocks = sum(bucket.num_blocks for bucket in buckets)

    seconds_per_block, reports_per_block = best_of(
        lambda: run_per_block(csr, descriptors, scratch), repeats
    )
    seconds_batched, reports_batched = best_of(
        lambda: run_batched(csr, buckets, large, scratch), repeats
    )

    reference = canonical(
        clique for report in reports_per_block for clique in report.cliques
    )
    got = canonical(
        clique for report in reports_batched for clique in report.cliques
    )
    if got != reference:
        raise SystemExit("batched run lost cliques vs the per-block reference")

    blocks = len(descriptors)
    return {
        "scenario": "many-small-blocks",
        "nodes": csr.num_nodes,
        "edges": csr.num_edges,
        "m": m,
        "blocks": blocks,
        "bucketed_blocks": bucketed_blocks,
        "buckets": len(buckets),
        "large_blocks": len(large),
        "cliques": len(reference),
        "repeats": repeats,
        "per_block_seconds": seconds_per_block,
        "batched_seconds": seconds_batched,
        "per_block_blocks_per_second": blocks / seconds_per_block,
        "batched_blocks_per_second": blocks / seconds_batched,
        "throughput_improvement": seconds_per_block / seconds_batched,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller corpus, gate only on regression",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_batch.json"),
        help="where to write the machine-readable results",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed passes per path (best is kept)",
    )
    parser.add_argument(
        "--target",
        type=float,
        default=3.0,
        help="required throughput improvement (full mode only)",
    )
    args = parser.parse_args(argv)

    result = run_scenario(args.quick, args.repeats)
    result["quick"] = args.quick
    result["target"] = args.target
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    improvement = result["throughput_improvement"]
    print(
        f"batched dispatch over {result['blocks']} blocks "
        f"({result['bucketed_blocks']} fused into {result['buckets']} buckets): "
        f"{result['per_block_seconds']:.4f}s -> {result['batched_seconds']:.4f}s "
        f"({improvement:.2f}x, target {args.target:.2f}x)"
    )
    print(
        f"throughput {result['per_block_blocks_per_second']:.0f} -> "
        f"{result['batched_blocks_per_second']:.0f} blocks/s"
    )
    print(f"wrote {args.output}")

    floor = 1.0 if args.quick else args.target
    if improvement < floor:
        print(
            f"FAIL: improvement {improvement:.2f}x below "
            f"{'regression floor' if args.quick else 'target'} {floor:.2f}x",
            file=sys.stderr,
        )
        return 1
    if args.quick and improvement < args.target:
        print(
            f"note: quick-mode improvement {improvement:.2f}x is below the "
            f"full-run target {args.target:.2f}x (gate is regression-only)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Section 6 completeness claim — what a hub-oblivious method loses.

"if hub nodes were neglected, significant cliques would be undetected"
and "some non-maximal cliques could be erroneously found" (Sections 1
and 6).  We run the EmMCE-style fixed-block baseline next to the
two-level decomposition at a small block size and count, per data set:
maximal cliques missed, non-maximal cliques fabricated, and how many of
the 200 *largest* cliques the baseline loses.
"""

from __future__ import annotations

from conftest import ratio_to_m
from repro.analysis.report import format_table
from repro.baselines.naive_blocks import naive_block_mce

RATIO = 0.1
TOP_K = 200


def test_completeness_vs_naive_baseline(benchmark, sweep, emit, dataset_names):
    def compare():
        rows = []
        for name in dataset_names:
            graph = sweep.graph(name)
            m = ratio_to_m(graph, RATIO)
            ours = sweep.result(name, RATIO)
            reference = set(ours.cliques)
            naive = naive_block_mce(graph, m)
            missed = naive.missed(reference)
            top = set(ours.largest(TOP_K))
            top_missed = sum(1 for clique in top if clique in missed)
            rows.append(
                [
                    name,
                    m,
                    len(reference),
                    naive.num_cliques,
                    len(missed),
                    len(naive.spurious(graph)),
                    top_missed,
                ]
            )
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    emit(
        "completeness_vs_naive",
        format_table(
            [
                "Network",
                "m",
                "#maximal cliques",
                "naive reported",
                "naive missed",
                "naive spurious",
                f"missed in top {TOP_K}",
            ],
            rows,
            title=(
                "Completeness — two-level decomposition vs hub-oblivious "
                f"fixed blocks at m/d = {RATIO}"
            ),
        ),
    )
    for row in rows:
        name, _m, _total, _reported, missed, spurious, top_missed = row
        assert missed > 0, f"{name}: baseline should miss cliques"
        assert spurious > 0, f"{name}: baseline should fabricate cliques"
        assert top_missed > 0, f"{name}: significant cliques should be lost"

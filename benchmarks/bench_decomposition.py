#!/usr/bin/env python
"""Decomposition benchmark — dict path vs CSR-native path, plus pipeline.

Standalone script (not a pytest bench module): it times the two-level
decomposition (CUT + BLOCKS over every hub-recursion level, no block
analysis) through the original dict-``Graph`` path
(:func:`repro.core.driver.decompose_only`) and the CSR-native path
(:func:`repro.core.driver.decompose_only_csr`, which includes the one
``Graph`` → ``CSRGraph`` conversion), over scale-free (BA), ER, and SBM
graphs, and writes a machine-readable ``BENCH_decomposition.json``.

Peak memory is measured with :mod:`tracemalloc` (numpy buffers are
tracked through the ``PyDataMem`` hooks), so the dict path's per-level
``Graph`` reconstruction shows up directly against the CSR path's flat
arrays.

A second scenario times the full enumeration end-to-end — barrier mode
(decompose a level, then analyse it) versus ``--pipeline`` streaming
(descriptors dispatched to the shared-memory pool while growth of the
level is still running) — on a multi-level hub-recursion social graph.

The headline case is the largest scale-free graph in the run: the CSR
path targets >=3x over the dict path there.  The script exits nonzero
if the CSR path is *slower* than the dict path on that case, so CI can
run it as a regression smoke test (``--quick``).

Usage::

    PYTHONPATH=src python benchmarks/bench_decomposition.py [--quick]
        [--output BENCH_decomposition.json] [--target 3.0]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from pathlib import Path

from repro.core.driver import decompose_only, decompose_only_csr, find_max_cliques
from repro.core.planner import recommend_block_size
from repro.distributed.executor import SharedMemoryExecutor
from repro.graph.cores import degeneracy
from repro.graph.generators import (
    barabasi_albert,
    erdos_renyi,
    social_network,
    stochastic_block_model,
)

SEED = 97

# (name, family, factory).  The largest scale-free ("ba-*") case present
# in a run is the headline comparison; ER and SBM cover the non-power-law
# regimes so a regression that only helps hubs would still be visible.
CASES: tuple[tuple[str, str, object], ...] = (
    ("ba-small", "scale-free", lambda: barabasi_albert(2000, 5, seed=SEED)),
    ("er-small", "uniform", lambda: erdos_renyi(2000, 0.005, seed=SEED)),
    ("ba-medium", "scale-free", lambda: barabasi_albert(10000, 5, seed=SEED)),
    ("er-medium", "uniform", lambda: erdos_renyi(6000, 0.003, seed=SEED)),
    (
        "sbm",
        "community",
        lambda: stochastic_block_model((2000, 2000, 2000), 0.004, 0.0005, seed=SEED),
    ),
    ("ba-large", "scale-free", lambda: barabasi_albert(40000, 5, seed=SEED)),
)
QUICK_CASES = ("ba-small", "er-small")


def timed(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds for one call of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def traced_peak(fn) -> int:
    """Peak tracemalloc bytes over one (separate, untimed) call of ``fn``.

    tracemalloc instruments every allocation, slowing both paths by a
    large and uneven factor — so memory is measured in its own run and
    never mixed with the wall-clock numbers.
    """
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def run_case(name: str, family: str, factory, repeats: int) -> dict:
    graph = factory()
    m = recommend_block_size(graph).m
    # Warm both paths once so allocator effects do not bias the first run.
    decompose_only_csr(graph, m)
    dict_best = timed(lambda: decompose_only(graph, m), repeats)
    csr_best = timed(lambda: decompose_only_csr(graph, m), repeats)
    dict_peak = traced_peak(lambda: decompose_only(graph, m))
    csr_peak = traced_peak(lambda: decompose_only_csr(graph, m))
    dict_levels, _ = decompose_only(graph, m)
    csr_levels, _ = decompose_only_csr(graph, m)
    if [level.num_feasible for level in dict_levels] != [
        level.num_feasible for level in csr_levels
    ]:
        raise SystemExit(f"per-level feasible-count mismatch on {name!r}")
    return {
        "case": name,
        "family": family,
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "m": m,
        "levels": len(dict_levels),
        "repeats": repeats,
        "dict_seconds": dict_best,
        "csr_seconds": csr_best,
        "dict_peak_bytes": dict_peak,
        "csr_peak_bytes": csr_peak,
        "csr_speedup": dict_best / csr_best,
    }


def run_pipeline_scenario(quick: bool, repeats: int) -> dict:
    """Barrier vs pipeline end-to-end on a multi-level hub recursion."""
    if quick:
        graph = social_network(
            500, attachment=4, closure_probability=0.3, planted_cliques=(7, 6), seed=5
        )
        workers = 2
    else:
        graph = social_network(
            3000,
            attachment=6,
            closure_probability=0.3,
            planted_cliques=(8, 7, 6),
            seed=5,
        )
        workers = 4
    m = degeneracy(graph) + 2  # just above Theorem 1's bound: many levels
    barrier_best, pipeline_best = float("inf"), float("inf")
    counts = set()
    levels = 0
    for _ in range(repeats):
        for pipeline in (False, True):
            executor = SharedMemoryExecutor(max_workers=workers)
            start = time.perf_counter()
            result = find_max_cliques(graph, m, executor=executor, pipeline=pipeline)
            elapsed = time.perf_counter() - start
            counts.add(result.num_cliques)
            levels = result.recursion_depth
            if pipeline:
                pipeline_best = min(pipeline_best, elapsed)
            else:
                barrier_best = min(barrier_best, elapsed)
    if len(counts) != 1:
        raise SystemExit(f"barrier/pipeline clique-count mismatch: {counts}")
    return {
        "scenario": "multi-level-hub-recursion",
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "m": m,
        "levels": levels,
        "workers": workers,
        "cliques": counts.pop(),
        "repeats": repeats,
        "barrier_seconds": barrier_best,
        "pipeline_seconds": pipeline_best,
        "pipeline_speedup": barrier_best / pipeline_best,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small graphs only, 1 repeat",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_decomposition.json"),
        help="where to write the machine-readable results",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="best-of-N timing repeats (default 2, or 1 with --quick)",
    )
    parser.add_argument(
        "--target",
        type=float,
        default=3.0,
        help="headline-case CSR-over-dict decomposition speedup target",
    )
    args = parser.parse_args(argv)

    repeats = args.repeats or (1 if args.quick else 2)
    cases = []
    for name, family, factory in CASES:
        if args.quick and name not in QUICK_CASES:
            continue
        case = run_case(name, family, factory, repeats)
        cases.append(case)
        print(
            f"{name} (n={case['nodes']}, m={case['m']}, {case['levels']} levels): "
            f"dict {case['dict_seconds'] * 1000:8.1f} ms / "
            f"csr {case['csr_seconds'] * 1000:8.1f} ms  "
            f"{case['csr_speedup']:5.2f}x  "
            f"(peak {case['dict_peak_bytes'] // 1024} kB vs "
            f"{case['csr_peak_bytes'] // 1024} kB)"
        )

    pipeline = run_pipeline_scenario(args.quick, repeats)
    print(
        f"pipeline scenario (n={pipeline['nodes']}, m={pipeline['m']}, "
        f"{pipeline['levels']} levels, {pipeline['cliques']} cliques): "
        f"barrier {pipeline['barrier_seconds']:.3f}s / "
        f"pipeline {pipeline['pipeline_seconds']:.3f}s  "
        f"{pipeline['pipeline_speedup']:5.2f}x"
    )

    headline = max(
        (case for case in cases if case["family"] == "scale-free"),
        key=lambda case: case["nodes"],
    )
    report = {
        "benchmark": "decomposition",
        "mode": "quick" if args.quick else "full",
        "seed": SEED,
        "memory_method": "tracemalloc",
        "cases": cases,
        "pipeline": pipeline,
        "headline_case": {
            "name": headline["case"],
            "csr_speedup": headline["csr_speedup"],
            "target": args.target,
            "meets_target": headline["csr_speedup"] >= args.target,
            "regressed": headline["csr_speedup"] < 1.0,
        },
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    print(
        f"headline ({headline['case']}): csr {headline['csr_speedup']:.2f}x vs dict"
        f" (target {args.target:.1f}x)"
    )

    if report["headline_case"]["regressed"]:
        print("FAIL: CSR decomposition slower than the dict path")
        return 1
    if not report["headline_case"]["meets_target"]:
        print("note: below the speedup target (not a hard failure)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

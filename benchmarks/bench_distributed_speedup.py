"""Section 6.1 — distributed execution on the simulated cluster.

The paper deploys on a 10-machine cluster; its timing figures are
serial-equivalent, with the distribution "not account[ing] for the
speed-up due to simultaneous computations".  Here we quantify that
speed-up with the replay simulator: per-level block costs are measured
once, then scheduled onto growing clusters.  Also contrasts the LPT
scheduler against hash placement (which the paper's related work calls
the worst choice for scale-free data).
"""

from __future__ import annotations

from conftest import ratio_to_m
from repro.analysis.report import format_table
from repro.core.driver import find_max_cliques
from repro.distributed.cluster import ClusterSpec, paper_cluster
from repro.distributed.simulation import scaling_curve, simulate_reports

DATASET = "twitter1"
RATIO = 0.5
MACHINE_COUNTS = [1, 2, 4, 10]


def test_distributed_scaling_curve(benchmark, sweep, emit):
    graph = sweep.graph(DATASET)
    m = ratio_to_m(graph, RATIO)

    def run():
        result = find_max_cliques(graph, m, collect_reports=True)
        reports = [r for level in result.block_reports for r in level]
        return scaling_curve(reports, MACHINE_COUNTS, workers_per_machine=16)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "distributed_scaling",
        format_table(
            ["machines", "simulated makespan (s)", "speed-up"],
            rows,
            title=(
                f"Section 6.1 — simulated cluster scaling on {DATASET} "
                f"at m/d = {RATIO} (16 workers/machine)"
            ),
        ),
    )
    makespans = [makespan for _, makespan, _ in rows]
    speedups = [speedup for _, _, speedup in rows]
    assert all(a >= b - 1e-9 for a, b in zip(makespans, makespans[1:]))
    # More machines never hurt; the curve may already be saturated at one
    # 16-worker machine when a single slow block dominates the level, so
    # strict growth is not guaranteed — parallelism being realised is.
    assert speedups[-1] >= speedups[0] - 1e-9
    assert speedups[-1] > 1.5


def test_distributed_lpt_beats_hash(benchmark, sweep, emit):
    graph = sweep.graph(DATASET)
    m = ratio_to_m(graph, RATIO)

    def run():
        result = find_max_cliques(graph, m, collect_reports=True)
        reports = [r for level in result.block_reports for r in level]
        cluster = paper_cluster()
        rows = []
        for policy in ("lpt", "round_robin", "hash"):
            run_ = simulate_reports(reports, cluster, policy=policy)
            rows.append([policy, run_.makespan_seconds, run_.skew])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "distributed_policies",
        format_table(
            ["policy", "makespan (s)", "skew (max/mean load)"],
            rows,
            title=(
                "Scheduling policies on the paper's 10-machine cluster "
                "(LPT is the TORQUE stand-in; hash is the known-bad choice)"
            ),
        ),
    )
    by_policy = {row[0]: row[1] for row in rows}
    assert by_policy["lpt"] <= by_policy["hash"] + 1e-9
    assert by_policy["lpt"] <= by_policy["round_robin"] + 1e-9


def test_distributed_memory_fits(benchmark, sweep):
    # Every block must fit in a worker machine's memory by a huge margin
    # (the whole point of choosing m well below memory capacity).
    from repro.core.blocks import build_blocks
    from repro.core.feasibility import cut
    from repro.distributed.simulation import block_bytes

    graph = sweep.graph(DATASET)
    m = ratio_to_m(graph, RATIO)

    def max_block_bytes():
        feasible, _ = cut(graph, m)
        blocks = build_blocks(graph, feasible, m)
        return max(block_bytes(block) for block in blocks)

    biggest = benchmark.pedantic(max_block_bytes, rounds=1, iterations=1)
    assert biggest < ClusterSpec().memory_bytes_per_machine / 100

"""Shared-memory executor — dispatch traffic and parallel speed-up.

The zero-copy executor publishes the level graph once as CSR segments
and ships each block as a tiny descriptor (three ``int64`` id arrays),
while ``ProcessExecutor`` pickles every block — nodes, edges, labels —
onto the pipe.  This bench quantifies both claims:

* per-block dispatch bytes: descriptors must be strictly smaller than
  pickled blocks, and the gap should widen with block size;
* wall-clock: on a multicore box (>= 4 cores) the shared executor must
  beat the serial baseline by >= 2x on a Barabasi-Albert graph.

The graph size defaults to a smoke-test scale so the module stays inside
CI budgets; set ``REPRO_BENCH_EXECUTOR_NODES=20000`` to reproduce the
acceptance-scale run from the issue.
"""

from __future__ import annotations

import os
import time

from conftest import ratio_to_m
from repro.analysis.report import format_table
from repro.core.block_analysis import analyze_blocks
from repro.core.blocks import build_blocks
from repro.core.feasibility import cut
from repro.distributed.executor import (
    SharedMemoryExecutor,
    pickled_block_bytes,
)
from repro.graph.generators import barabasi_albert

NODES = int(os.environ.get("REPRO_BENCH_EXECUTOR_NODES", "4000"))
ATTACHMENT = 3
SEED = 7
RATIO = 0.5
WORKERS = min(4, os.cpu_count() or 1)


def _blocks():
    graph = barabasi_albert(NODES, ATTACHMENT, seed=SEED)
    m = ratio_to_m(graph, RATIO)
    feasible, _ = cut(graph, m)
    return graph, build_blocks(graph, feasible, m)


def test_shared_dispatch_bytes_beat_pickled_blocks(benchmark, emit):
    graph, blocks = _blocks()

    def run():
        executor = SharedMemoryExecutor(max_workers=WORKERS)
        executor.map_blocks(blocks, graph=graph)
        return executor.last_trace

    trace = benchmark.pedantic(run, rounds=1, iterations=1)
    pickled = sum(pickled_block_bytes(block) for block in blocks)
    descriptor = trace.total_dispatch_bytes
    rows = [
        ["process (pickled blocks)", len(blocks), pickled, pickled // len(blocks)],
        ["shared (descriptors)", len(blocks), descriptor, descriptor // len(blocks)],
        ["shared one-time publish", 1, trace.publish_bytes, trace.publish_bytes],
    ]
    emit(
        "executor_dispatch_bytes",
        format_table(
            ["channel", "messages", "total bytes", "bytes/message"],
            rows,
            title=(
                f"Dispatch traffic on BA(n={NODES}, m={ATTACHMENT}) — "
                "descriptors vs pickled blocks"
            ),
        ),
    )
    # The tentpole claim: per-block traffic collapses once the graph is
    # published out of band.  The one-time publish is amortised across
    # the whole level, so it is reported but not charged per block.
    assert descriptor < pickled
    assert descriptor / len(blocks) < pickled / len(blocks)


def test_shared_executor_speedup_over_serial(benchmark, emit):
    graph, blocks = _blocks()

    start = time.perf_counter()
    serial_cliques, _ = analyze_blocks(blocks)
    serial_seconds = time.perf_counter() - start

    executor = SharedMemoryExecutor(max_workers=WORKERS)

    def run():
        return executor.map_blocks(blocks, graph=graph)

    start = time.perf_counter()
    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    shared_seconds = time.perf_counter() - start

    shared_cliques = [c for report in reports for c in report.cliques]
    assert len(shared_cliques) == len(serial_cliques)

    speedup = serial_seconds / shared_seconds if shared_seconds else 0.0
    trace = executor.last_trace
    rows = [
        ["serial", 1, serial_seconds, 1.0],
        ["shared", WORKERS, shared_seconds, speedup],
    ]
    emit(
        "executor_shared_speedup",
        format_table(
            ["executor", "workers", "wall-clock (s)", "speed-up"],
            rows,
            title=(
                f"Shared-memory executor vs serial on BA(n={NODES}) — "
                f"{len(blocks)} blocks, publish {trace.publish_seconds:.3f}s, "
                f"peak worker RSS {trace.max_peak_rss_kb} kB"
            ),
        ),
    )
    # The >= 2x acceptance bar needs real cores; on smaller machines the
    # run still validates correctness and records the measured ratio.
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0

"""Extension — relaxed community models on top of the MCE output (§8).

Runs the two future-work community definitions the library implements:

* **k-clique communities** (clique percolation) directly over the
  two-level decomposition's clique output, across k;
* **maximal k-plexes** on a small dense block, compared against the
  clique count to show how the relaxation grows communities.
"""

from __future__ import annotations

from conftest import ratio_to_m
from repro.analysis.report import format_table
from repro.graph.generators import erdos_renyi
from repro.mce.tomita import tomita
from repro.relaxed.kplex import maximal_kplexes
from repro.relaxed.percolation import community_membership, k_clique_communities

DATASET = "google+"


def test_extension_k_clique_communities(benchmark, sweep, emit):
    result = sweep.result(DATASET, 0.5)

    graph = sweep.graph(DATASET)

    def measure():
        from repro.analysis.modularity import overlapping_quality

        rows = []
        for k in (3, 4, 5, 6):
            communities = k_clique_communities(result.cliques, k)
            membership = community_membership(communities)
            overlapping = sum(
                1 for indices in membership.values() if len(indices) > 1
            )
            quality = overlapping_quality(graph, communities)
            rows.append(
                [
                    k,
                    len(communities),
                    max((len(c) for c in communities), default=0),
                    len(membership),
                    overlapping,
                    quality.intra_edge_fraction,
                    quality.mean_conductance,
                ]
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "extension_percolation",
        format_table(
            [
                "k",
                "#communities",
                "largest",
                "covered nodes",
                "overlapping nodes",
                "intra-edge frac",
                "mean conductance",
            ],
            rows,
            title=(
                f"Section 8 extension — k-clique communities on {DATASET} "
                f"(from the m/d = 0.5 decomposition output)"
            ),
        ),
    )
    covered = [row[3] for row in rows]
    # Raising k tightens the definition: coverage shrinks monotonically.
    assert covered == sorted(covered, reverse=True)
    assert rows[0][1] > 0


def test_extension_distance_relaxations(benchmark, emit):
    # k-cliques / k-clans / certified k-clubs (Section 8's remaining
    # relaxations) on a dense block-sized subgraph.
    from repro.relaxed.distance import k_clans, k_cliques, kclubs_from_kclans

    graph = erdos_renyi(40, 0.12, seed=31)

    def measure():
        cliques_1 = len(list(k_cliques(graph, 1)))
        cliques_2 = list(k_cliques(graph, 2))
        clans_2 = list(k_clans(graph, 2))
        clubs_2 = kclubs_from_kclans(graph, 2)
        return cliques_1, cliques_2, clans_2, clubs_2

    cliques_1, cliques_2, clans_2, clubs_2 = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    emit(
        "extension_distance",
        format_table(
            ["model", "#maximal sets", "largest"],
            [
                ["1-cliques (= MCE)", cliques_1, "-"],
                [
                    "2-cliques (distance)",
                    len(cliques_2),
                    max(len(c) for c in cliques_2),
                ],
                ["2-clans", len(clans_2), max((len(c) for c in clans_2), default=0)],
                ["certified 2-clubs", len(clubs_2), max((len(c) for c in clubs_2), default=0)],
            ],
            title=(
                "Section 8 extension — distance-based relaxations on a "
                "sparse 40-node block"
            ),
        ),
    )
    # Structural containments: clans are a subset of 2-cliques; every
    # certified club came from a clan.
    assert set(clans_2) <= set(cliques_2)
    assert set(clubs_2) == set(clans_2)
    assert len(cliques_2) <= cliques_1 * 10  # sanity scale bound


def test_extension_kplex_decomposition(benchmark, emit):
    # Section 8's literal proposal: the paper's peel-and-filter recursion
    # applied to k-plex enumeration (Lemma 1 generalises to hereditary
    # properties).  Identical output to direct enumeration, fewer nodes
    # per round.
    from repro.relaxed.kplex_split import degree_split_kplexes

    graph = erdos_renyi(16, 0.35, seed=41)

    def measure():
        direct = set(maximal_kplexes(graph, 2))
        split = degree_split_kplexes(graph, 2, threshold=6)
        return direct, split

    direct, split = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "extension_kplex_split",
        format_table(
            ["strategy", "#maximal 2-plexes", "rounds"],
            [
                ["direct set enumeration", len(direct), 1],
                ["paper-style degree split", split.count, split.rounds],
            ],
            title=(
                "Section 8 extension — the decomposition recursion applied "
                "to k-plexes (outputs asserted identical)"
            ),
        ),
    )
    assert set(split.plexes) == direct
    assert split.rounds >= 1


def test_extension_kplex_vs_clique(benchmark, emit):
    graph = erdos_renyi(18, 0.45, seed=29)

    def measure():
        cliques = list(tomita(graph))
        plexes = list(maximal_kplexes(graph, 2, min_size=3))
        return cliques, plexes

    cliques, plexes = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "extension_kplex",
        format_table(
            ["model", "#maximal sets", "largest"],
            [
                ["cliques (1-plex)", len(cliques), max(len(c) for c in cliques)],
                ["2-plexes (size >= 3)", len(plexes), max(len(p) for p in plexes)],
            ],
            title="Section 8 extension — cliques vs 2-plexes on a dense block",
        ),
    )
    assert max(len(p) for p in plexes) >= max(len(c) for c in cliques)

"""Extension — incremental maintenance vs full recomputation (Section 8).

"We are also interested in studying an incremental version of our
approach that takes into account the evolution of the social network."
This bench replays a stream of edge insertions/deletions on a social
network and compares the incremental maintainer's total update time
against recomputing the clique set from scratch after every update.
"""

from __future__ import annotations

import random
import time

from repro.analysis.report import format_table
from repro.graph.generators import social_network
from repro.incremental.maintainer import IncrementalMCE
from repro.mce.tomita import tomita

UPDATES = 120


def _update_stream(graph, count, seed):
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    present = {frozenset(edge) for edge in graph.edges()}
    stream = []
    for _ in range(count):
        u, v = rng.sample(nodes, 2)
        key = frozenset((u, v))
        if key in present:
            stream.append(("delete", u, v))
            present.discard(key)
        else:
            stream.append(("insert", u, v))
            present.add(key)
    return stream


def test_incremental_vs_recompute(benchmark, emit):
    graph = social_network(250, attachment=3, planted_cliques=(8,), seed=17)
    stream = _update_stream(graph, UPDATES, seed=23)

    def measure():
        tracker = IncrementalMCE(graph)
        start = time.perf_counter()
        for op, u, v in stream:
            if op == "insert":
                tracker.insert_edge(u, v)
            else:
                tracker.delete_edge(u, v)
        incremental_seconds = time.perf_counter() - start

        mirror = graph.copy()
        start = time.perf_counter()
        final_recompute: set = set()
        for op, u, v in stream:
            if op == "insert":
                mirror.add_edge(u, v)
            else:
                mirror.remove_edge(u, v)
            final_recompute = set(tomita(mirror))
        recompute_seconds = time.perf_counter() - start
        return tracker, final_recompute, incremental_seconds, recompute_seconds

    tracker, recomputed, inc_s, rec_s = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    emit(
        "extension_incremental",
        format_table(
            ["strategy", "seconds", "per-update (ms)"],
            [
                ["incremental maintenance", inc_s, 1000 * inc_s / UPDATES],
                ["recompute after each update", rec_s, 1000 * rec_s / UPDATES],
            ],
            title=(
                f"Section 8 extension — {UPDATES} edge updates on a "
                f"{graph.num_nodes}-node network"
            ),
        ),
    )
    assert tracker.cliques == recomputed, "incremental result must be exact"
    assert inc_s < rec_s, "incremental must beat per-update recomputation"

"""Fault tolerance — re-execution under injected worker failures.

The graph-processing systems the paper surveys (Section 7) provide "a
fault-tolerant infrastructure for processing distributed data"; block
independence makes plain re-execution exactly correct here.  This bench
replays the measured block costs of one decomposition through the
event-driven simulator while injecting failures, and reports the
makespan overhead of each failure rate.  The invariant asserted: every
block completes exactly once at every failure rate.
"""

from __future__ import annotations

from conftest import ratio_to_m
from repro.analysis.report import format_table
from repro.core.driver import find_max_cliques
from repro.distributed.cluster import paper_cluster
from repro.distributed.events import simulate_events
from repro.distributed.scheduler import Task

DATASET = "twitter1"
RATIO = 0.5
FAILURE_RATES = (0.0, 0.05, 0.15, 0.30)


def test_fault_tolerant_reexecution(benchmark, sweep, emit):
    graph = sweep.graph(DATASET)
    m = ratio_to_m(graph, RATIO)

    def measure():
        result = find_max_cliques(graph, m, collect_reports=True)
        reports = [r for level in result.block_reports for r in level]
        tasks = [
            Task(
                task_id=i,
                cost_seconds=report.seconds,
                data_bytes=8
                * (report.features.num_nodes + 2 * report.features.num_edges),
            )
            for i, report in enumerate(reports)
        ]
        cluster = paper_cluster()
        rows = []
        for rate in FAILURE_RATES:
            sim = simulate_events(tasks, cluster, failure_rate=rate, seed=5)
            assert sim.completed_task_ids() == set(range(len(tasks)))
            rows.append(
                [
                    rate,
                    sim.makespan,
                    len(sim.failures),
                    sim.wasted_seconds,
                ]
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "fault_tolerance",
        format_table(
            ["failure rate", "makespan (s)", "#failures", "wasted work (s)"],
            rows,
            title=(
                f"Re-execution fault tolerance on {DATASET} blocks "
                f"(paper cluster, m/d = {RATIO})"
            ),
        ),
    )
    makespans = [row[1] for row in rows]
    failures = [row[2] for row in rows]
    assert failures[0] == 0
    assert failures[-1] > 0
    # Failures cost time but never correctness.
    assert makespans[-1] >= makespans[0]

"""Figure 10 — clique counts and sizes on facebook and google+.

Same measurement as Figure 9 (see ``bench_fig9_twitter_cliques``) on
the remaining two data sets, with maximum clique sizes 21 (facebook)
and 18 (google+).
"""

from __future__ import annotations

from conftest import RATIOS
from repro.analysis.cliques import provenance_split
from repro.analysis.report import format_table
from repro.graph.datasets import DATASETS

NETWORKS = ("facebook", "google+")


def test_fig10_counts_and_sizes(benchmark, sweep, emit):
    def run_sweep():
        rows = []
        for name in NETWORKS:
            for ratio in RATIOS:
                split = provenance_split(sweep.result(name, ratio))
                rows.append(
                    [
                        name,
                        ratio,
                        split.feasible_count,
                        split.hub_count,
                        split.feasible_avg_size,
                        split.hub_avg_size,
                        split.max_clique_size,
                    ]
                )
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(
        "fig10_fb_gplus_cliques",
        format_table(
            [
                "Network",
                "m/d",
                "#feasible cliques",
                "#hub-only cliques",
                "avg size (feasible)",
                "avg size (hub)",
                "max clique",
            ],
            rows,
            title=(
                "Figure 10 — maximal cliques on facebook and google+, "
                "split by provenance"
            ),
        ),
    )
    by_dataset: dict[str, dict[float, list]] = {}
    for row in rows:
        by_dataset.setdefault(row[0], {})[row[1]] = row
    for name, ratios in by_dataset.items():
        assert ratios[0.1][3] > 0, name
        assert ratios[0.1][3] > ratios[0.9][3], name
        assert ratios[0.1][5] >= 0.5 * ratios[0.1][4], name
        assert ratios[0.5][6] == DATASETS[name].paper_max_clique, name
        totals = {r[2] + r[3] for r in ratios.values()}
        assert len(totals) == 1, name

"""Figure 11 — provenance of the 200 largest maximal cliques.

The paper's most striking effectiveness result: among the 200 largest
cliques, the share computed on hub nodes "grows significantly around
the value 0.5 m/d" and reaches 20%-80% for m/d in [0.1, 0.5] — i.e. a
hub-oblivious decomposition would lose a large fraction of the most
significant communities.  We regenerate the split per data set and
ratio and assert that growth.
"""

from __future__ import annotations

from conftest import RATIOS
from repro.analysis.cliques import largest_cliques_split
from repro.analysis.report import format_table

TOP_K = 200


def test_fig11_largest_clique_provenance(benchmark, sweep, emit, dataset_names):
    def run_sweep():
        rows = []
        for name in dataset_names:
            for ratio in RATIOS:
                feasible_share, hub_share = largest_cliques_split(
                    sweep.result(name, ratio), k=TOP_K
                )
                rows.append([name, ratio, feasible_share, hub_share])
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    from repro.analysis.charts import grouped_bar_chart

    charts = []
    for name in dataset_names:
        dataset_rows = [row for row in rows if row[0] == name]
        charts.append(
            grouped_bar_chart(
                [f"m/d={row[1]}" for row in dataset_rows],
                {
                    "feasible": [row[2] for row in dataset_rows],
                    "hub-only": [row[3] for row in dataset_rows],
                },
                title=f"\n{name}:",
            )
        )
    emit(
        "fig11_largest_cliques",
        format_table(
            ["Network", "m/d", "feasible share", "hub-only share"],
            rows,
            title=(
                f"Figure 11 — provenance of the {TOP_K} largest maximal "
                "cliques (paper: hub share 20%-80% for m/d in [0.1, 0.5])"
            ),
        )
        + "\n"
        + "\n".join(charts),
    )
    by_dataset: dict[str, dict[float, float]] = {}
    for name, ratio, _feasible, hub in rows:
        by_dataset.setdefault(name, {})[ratio] = hub
    for name, hub_shares in by_dataset.items():
        # Shares are monotone-ish: the 0.1 ratio dominates 0.9.
        assert hub_shares[0.1] > hub_shares[0.9], name
        # At the smallest ratio a significant portion of the top-200 is
        # hub-only (paper: between 20% and 80%).
        assert hub_shares[0.1] >= 0.10, name
        # At the largest ratio hubs are rare, so the share is small.
        assert hub_shares[0.9] <= 0.50, name

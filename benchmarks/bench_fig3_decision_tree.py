"""Figure 3 — the best-fit decision tree.

Trains a fresh tree on the 80% split of the corpus (the paper used
rpart; we use our CART-style learner) and prints it next to the paper's
published tree, which ships verbatim in
:mod:`repro.decision.paper_tree`.
"""

from __future__ import annotations

import pytest

from repro.decision.paper_tree import paper_tree
from repro.decision.training import build_corpus, label_corpus, train


@pytest.fixture(scope="module")
def labelled():
    corpus = build_corpus(count=50, seed=7, size_range=(40, 160))
    return label_corpus(corpus)


def test_fig3_train_decision_tree(benchmark, labelled, emit):
    result = benchmark.pedantic(
        lambda: train(labelled, train_fraction=0.8, seed=13),
        rounds=1,
        iterations=1,
    )
    text = "\n".join(
        [
            "Figure 3 — decision tree for selecting the MCE combination",
            "",
            "Published tree (paper, Figure 3):",
            paper_tree().render(indent=2),
            "",
            f"Locally learned tree (trained on {len(result.training)} "
            f"graphs, test accuracy {result.test_accuracy:.0%}):",
            result.tree.render(indent=2),
        ]
    )
    emit("fig3_decision_tree", text)
    assert result.tree.depth() >= 0
    assert 0.0 <= result.test_accuracy <= 1.0


def test_fig3_paper_tree_prediction_speed(benchmark):
    from repro.decision.features import BlockFeatures

    tree = paper_tree()
    features = BlockFeatures(
        num_nodes=500, num_edges=2000, density=0.02, degeneracy=30, d_star=40
    )
    benchmark(lambda: tree.predict(features))

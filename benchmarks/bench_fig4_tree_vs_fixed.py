"""Figure 4 — total time with the decision tree vs fixed combinations.

The paper's bar chart: processing the testing split with the decision
tree's per-graph choice is faster than any of the five best fixed
combinations.  We regenerate the bars from measured per-graph timings.
The *shape* claim asserted here is the weaker, robust form: the tree is
never worse than the worst fixed combo and is close to the per-graph
oracle (timing noise makes strict dominance over the single best fixed
combo flaky on a small corpus).
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.decision.training import build_corpus, label_corpus, train


@pytest.fixture(scope="module")
def trained():
    corpus = build_corpus(count=50, seed=7, size_range=(40, 160))
    labelled = label_corpus(corpus)
    return train(labelled, train_fraction=0.8, seed=13)


def test_fig4_tree_vs_fixed_combos(benchmark, trained, emit):
    def build_rows():
        combo_totals = {
            name: trained.total_test_time(name)
            for name in trained.testing[0].timings
        }
        five_best = sorted(combo_totals, key=combo_totals.get)[:5]
        rows = [["Decision Tree", trained.total_test_time()]]
        rows.extend([name, combo_totals[name]] for name in five_best)
        oracle = sum(min(e.timings.values()) for e in trained.testing)
        worst = sum(max(e.timings.values()) for e in trained.testing)
        rows.append(["(per-graph oracle)", oracle])
        rows.append(["(worst fixed combo)", worst])
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    from repro.analysis.charts import bar_chart

    emit(
        "fig4_tree_vs_fixed",
        format_table(
            ["Strategy", "total time (s)"],
            rows,
            title=(
                "Figure 4 — time to compute cliques on the testing split "
                "with and without the decision tree"
            ),
        )
        + "\n\n"
        + bar_chart(
            [str(row[0]) for row in rows],
            [float(row[1]) for row in rows],
            unit="s",
        ),
    )
    totals = {row[0]: row[1] for row in rows}
    tree_time = totals["Decision Tree"]
    assert tree_time <= totals["(worst fixed combo)"] + 1e-9
    assert tree_time >= totals["(per-graph oracle)"] - 1e-9
    # The tree should sit in the better half of the strategy spread.
    midpoint = (totals["(per-graph oracle)"] + totals["(worst fixed combo)"]) / 2
    assert tree_time <= midpoint

"""Figure 6 — truncated degree distribution of the data sets.

The paper plots, per data set, the node counts at degrees 0..20 and
reports that on average 91% of nodes have degree at most 20 while about
3% of nodes are potential hubs.  We regenerate the series for the
stand-ins and assert both aggregate claims in relaxed form.
"""

from __future__ import annotations

from repro.analysis.degrees import degree_profile
from repro.analysis.report import format_table


def test_fig6_truncated_degree_distribution(benchmark, sweep, emit, dataset_names):
    def profiles():
        return [
            degree_profile(name, sweep.graph(name), truncate_at=20)
            for name in dataset_names
        ]

    rows = benchmark.pedantic(profiles, rounds=1, iterations=1)
    headers = ["Network"] + [f"d={d}" for d in range(0, 21, 2)] + ["<=20 frac", "alpha"]
    table_rows = []
    for profile in rows:
        cells: list[object] = [profile.name]
        cells.extend(profile.truncated_histogram[d] for d in range(0, 21, 2))
        cells.append(profile.low_degree_fraction)
        cells.append(profile.power_law_alpha)
        table_rows.append(cells)
    emit(
        "fig6_degree_distribution",
        format_table(
            headers,
            table_rows,
            title=(
                "Figure 6 — truncated degree distribution (even degrees "
                "shown; paper: ~91% of nodes in degree range [1, 20])"
            ),
        ),
    )
    low_fractions = [profile.low_degree_fraction for profile in rows]
    assert sum(low_fractions) / len(low_fractions) > 0.75
    # Scale-free tails: the ML estimate lands in the usual [1.8, 4] band.
    for profile in rows:
        assert 1.5 < profile.power_law_alpha < 4.5, profile.name


def test_fig6_hub_share_is_small(benchmark, sweep, dataset_names, emit):
    from repro.analysis.degrees import hub_shares

    def shares():
        rows = []
        for name in dataset_names:
            graph = sweep.graph(name)
            m = max(2, int(0.5 * graph.max_degree()))
            rows.append((name, hub_shares(graph, [m])[0][1]))
        return rows

    rows = benchmark.pedantic(shares, rounds=1, iterations=1)
    emit(
        "fig6_hub_share",
        format_table(
            ["Network", "hub fraction at m = 0.5*d"],
            rows,
            title="Hub share (paper: ~3% of nodes are potential hubs)",
        ),
    )
    for _name, share in rows:
        assert share < 0.10

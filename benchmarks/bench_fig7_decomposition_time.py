"""Figure 7 — time to compute the two-level decomposition vs m/d.

The paper sweeps m/d over {0.9, 0.7, 0.5, 0.3, 0.1} per data set and
reports (a) decomposition time growing as blocks shrink and (b) the
number of first-level iterations: two at ratios {0.5, 0.9}, three at
{0.1, 0.3}.  We regenerate the full sweep with clique analysis skipped
(``decompose_only``) and assert both shapes: more blocks and more
iterations at smaller ratios.
"""

from __future__ import annotations

from conftest import RATIOS, ratio_to_m
from repro.analysis.report import format_table
from repro.core.driver import decompose_only


def test_fig7_decomposition_sweep(benchmark, sweep, emit, dataset_names):
    def run_sweep():
        rows = []
        for name in dataset_names:
            graph = sweep.graph(name)
            for ratio in RATIOS:
                stats, iterations = decompose_only(graph, ratio_to_m(graph, ratio))
                rows.append(
                    [
                        name,
                        ratio,
                        sum(s.decomposition_seconds for s in stats),
                        sum(s.num_blocks for s in stats),
                        iterations,
                    ]
                )
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(
        "fig7_decomposition_time",
        format_table(
            ["Network", "m/d", "decomposition (s)", "#blocks", "iterations"],
            rows,
            title=(
                "Figure 7 — two-level decomposition time per m/d ratio "
                "(paper: 2 iterations at m/d in {0.5, 0.9}, 3 at {0.1, 0.3})"
            ),
        ),
    )
    by_dataset: dict[str, list[list]] = {}
    for row in rows:
        by_dataset.setdefault(row[0], []).append(row)
    for name, dataset_rows in by_dataset.items():
        dataset_rows.sort(key=lambda r: -r[1])  # 0.9 ... 0.1
        blocks = [r[3] for r in dataset_rows]
        iterations = [r[4] for r in dataset_rows]
        # Shrinking blocks -> more blocks, weakly more iterations.
        assert blocks[-1] > blocks[0], name
        assert iterations == sorted(iterations), name
        assert iterations[0] >= 2, name
        assert iterations[-1] >= 3, name


def test_fig7_overlap_grows_as_blocks_shrink(benchmark, sweep, emit):
    # Section 6.3 attributes the small-m slowdown to "an increasing
    # overlap among the neighborhood of each block"; measure it.
    from repro.core.blocks import build_blocks, decomposition_overlap
    from repro.core.feasibility import cut

    graph = sweep.graph("google+")

    def overlaps():
        rows = []
        for ratio in RATIOS:
            m = ratio_to_m(graph, ratio)
            feasible, _ = cut(graph, m)
            blocks = build_blocks(graph, feasible, m)
            rows.append([ratio, m, decomposition_overlap(blocks)])
        return rows

    rows = benchmark.pedantic(overlaps, rounds=1, iterations=1)
    emit(
        "fig7_overlap",
        format_table(
            ["m/d", "m", "node replication factor"],
            rows,
            title=(
                "Block overlap on google+ (Section 6.3 discusses overlap "
                "growth at small m/d; on the stand-ins the per-node factor "
                "instead FALLS because large-m blocks carry whole hub "
                "neighbourhoods as borders — a documented reproduction gap; "
                "the communication-event count, i.e. the #blocks column of "
                "fig7_decomposition_time, does grow as the paper describes)"
            ),
        ),
    )
    factors = [row[2] for row in rows]
    assert all(factor > 1.0 for factor in factors)


def test_fig7_decomposition_latency_benchmark(benchmark, sweep):
    # pytest-benchmark regression target: one representative decomposition.
    graph = sweep.graph("twitter1")
    m = ratio_to_m(graph, 0.5)
    benchmark.pedantic(
        lambda: decompose_only(graph, m), rounds=3, iterations=1
    )

"""Figure 8 — time to compute all maximal cliques vs m/d.

The paper plots, per data set, the serial clique-computation time over
the m/d sweep and observes (i) small blocks beat large ones (the
decomposition acts as a pre-processing step for MCE) and (ii) the curve
has a common "saddle" around m/d = 0.5 — the best trade-off before
per-block overheads start to dominate.  We regenerate the series from
the shared sweep and assert the robust half of that shape: analysis at
the saddle never loses badly to the big-block extreme, and the full
output is identical at every ratio.
"""

from __future__ import annotations

from conftest import RATIOS
from repro.analysis.report import format_table


def test_fig8_clique_time_sweep(benchmark, sweep, emit, dataset_names):
    def run_sweep():
        rows = []
        for name in dataset_names:
            for ratio in RATIOS:
                result = sweep.result(name, ratio)
                rows.append(
                    [
                        name,
                        ratio,
                        result.total_analysis_seconds(),
                        result.total_decomposition_seconds(),
                        result.num_cliques,
                    ]
                )
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    from repro.analysis.charts import grouped_bar_chart

    charts = []
    for name in dataset_names:
        dataset_rows = [row for row in rows if row[0] == name]
        charts.append(
            grouped_bar_chart(
                [f"m/d={row[1]}" for row in dataset_rows],
                {"analysis (s)": [row[2] for row in dataset_rows]},
                title=f"\n{name}:",
            )
        )
    emit(
        "fig8_clique_time",
        format_table(
            ["Network", "m/d", "analysis (s)", "decomposition (s)", "#cliques"],
            rows,
            title=(
                "Figure 8 — serial time to compute all maximal cliques "
                "per m/d ratio (paper: saddle point at m/d = 0.5)"
            ),
        )
        + "\n"
        + "\n".join(charts),
    )
    by_dataset: dict[str, dict[float, list]] = {}
    for row in rows:
        by_dataset.setdefault(row[0], {})[row[1]] = row
    for name, ratios in by_dataset.items():
        # Output is invariant across the sweep: same clique count at
        # every ratio (completeness does not depend on m).
        counts = {row[4] for row in ratios.values()}
        assert len(counts) == 1, name
        # Saddle-shape, robust form: the 0.5 ratio is never the worst.
        times = {ratio: row[2] for ratio, row in ratios.items()}
        assert times[0.5] < max(times.values()) or len(set(times.values())) == 1


def test_fig8_analysis_benchmark(benchmark, sweep):
    # Regression target: full run on the smallest data set at the saddle.
    from conftest import ratio_to_m
    from repro.core.driver import find_max_cliques

    graph = sweep.graph("google+")
    m = ratio_to_m(graph, 0.5)
    benchmark.pedantic(
        lambda: find_max_cliques(graph, m), rounds=3, iterations=1
    )

"""Figure 9 — clique counts and sizes on the Twitter data sets.

Per twitter1/2/3 and per m/d ratio, the paper plots (a) the number of
maximal cliques split into feasible-derived (white) and hub-only (gray)
and (b) the average clique size of each side, annotated with the
network's maximum clique size (27 / 31 / 33).  The claims the figure
carries:

* at every ratio a non-negligible number of cliques is hub-only — those
  are exactly the cliques a hub-oblivious method loses;
* shrinking m/d moves more cliques to the hub side;
* hub-only cliques are comparable in size to (on average larger than)
  the feasible ones.
"""

from __future__ import annotations

from conftest import RATIOS
from repro.analysis.cliques import provenance_split
from repro.analysis.report import format_table
from repro.graph.datasets import DATASETS

TWITTER = ("twitter1", "twitter2", "twitter3")


def test_fig9_counts_and_sizes(benchmark, sweep, emit):
    def run_sweep():
        rows = []
        for name in TWITTER:
            for ratio in RATIOS:
                split = provenance_split(sweep.result(name, ratio))
                rows.append(
                    [
                        name,
                        ratio,
                        split.feasible_count,
                        split.hub_count,
                        split.feasible_avg_size,
                        split.hub_avg_size,
                        split.max_clique_size,
                    ]
                )
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(
        "fig9_twitter_cliques",
        format_table(
            [
                "Network",
                "m/d",
                "#feasible cliques",
                "#hub-only cliques",
                "avg size (feasible)",
                "avg size (hub)",
                "max clique",
            ],
            rows,
            title=(
                "Figure 9 — maximal cliques on the Twitter data sets, "
                "split by provenance (white bars = feasible, gray = hub-only)"
            ),
        ),
    )
    by_dataset: dict[str, dict[float, list]] = {}
    for row in rows:
        by_dataset.setdefault(row[0], {})[row[1]] = row
    for name, ratios in by_dataset.items():
        # (1) Hub-only cliques exist at the small ratios.
        assert ratios[0.1][3] > 0, name
        # (2) The hub share grows as the ratio shrinks.
        assert ratios[0.1][3] > ratios[0.9][3], name
        # (3) Hub-only cliques are comparable in size to feasible ones
        # at the small ratios (paper: "in average greater than").
        assert ratios[0.1][5] >= 0.5 * ratios[0.1][4], name
        # (4) Figure annotation: the maximum clique size.
        assert ratios[0.5][6] == DATASETS[name].paper_max_clique, name
        # (5) Total output is ratio-invariant.
        totals = {r[2] + r[3] for r in ratios.values()}
        assert len(totals) == 1, name

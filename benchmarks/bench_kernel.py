#!/usr/bin/env python
"""Kernel benchmark — every backend on representative block shapes.

Standalone script (not a pytest bench module): it seeds the perf
trajectory for the packed-bitmap kernel by timing full maximal-clique
enumeration with Tomita's pivot on each backend, over block shapes a
worker actually sees, and writing a machine-readable ``BENCH_kernel.json``.

The headline case is the dense block (n=200, p=0.3): the ``bitmatrix``
batched kernel targets >=3x over ``bitsets`` there.  The script exits
nonzero if ``bitmatrix`` is *slower* than ``bitsets`` on that case, so
CI can run it as a regression smoke test (``--quick``).

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py [--quick]
        [--output BENCH_kernel.json] [--target 3.0]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.graph.generators import erdos_renyi
from repro.mce.backends import BACKEND_NAMES, build_backend
from repro.mce.recursion import expand, tomita_pivot

# (name, nodes, edge probability).  The dense case mirrors the issue's
# target regime; the others cover the medium/sparse/small shapes the
# decision tree routes between.
SHAPES: tuple[tuple[str, int, float], ...] = (
    ("dense", 200, 0.30),
    ("medium", 300, 0.10),
    ("sparse", 400, 0.02),
    ("small-dense", 64, 0.50),
)
QUICK_SHAPES = ("dense", "small-dense")
DENSE_CASE = "dense"
SEED = 97


def enumerate_once(graph, backend_name: str) -> tuple[float, int]:
    """Time one full Tomita enumeration; return (seconds, clique count)."""
    backend = build_backend(graph, backend_name)
    start = time.perf_counter()
    cliques = list(
        expand(backend, [], backend.full(), backend.empty(), tomita_pivot)
    )
    elapsed = time.perf_counter() - start
    return elapsed, len(cliques)


def run_case(name: str, n: int, p: float, repeats: int) -> dict:
    graph = erdos_renyi(n, p, seed=SEED)
    timings: dict[str, float] = {}
    counts: dict[str, int] = {}
    for backend_name in BACKEND_NAMES:
        best = float("inf")
        for _ in range(repeats):
            elapsed, count = enumerate_once(graph, backend_name)
            best = min(best, elapsed)
            counts[backend_name] = count
        timings[backend_name] = best
    if len(set(counts.values())) != 1:
        raise SystemExit(
            f"clique-count mismatch on {name!r}: {counts}"
        )
    bitsets = timings["bitsets"]
    return {
        "case": name,
        "n": n,
        "p": p,
        "edges": graph.num_edges,
        "cliques": counts["bitsets"],
        "repeats": repeats,
        "seconds": timings,
        "speedup_vs_bitsets": {
            backend: bitsets / timings[backend] for backend in timings
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: dense + small-dense shapes only, 2 repeats",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_kernel.json"),
        help="where to write the machine-readable results",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="best-of-N timing repeats (default 3, or 2 with --quick)",
    )
    parser.add_argument(
        "--target",
        type=float,
        default=3.0,
        help="dense-case bitmatrix-over-bitsets speedup target",
    )
    args = parser.parse_args(argv)

    repeats = args.repeats or (2 if args.quick else 3)
    shapes = [
        shape
        for shape in SHAPES
        if not args.quick or shape[0] in QUICK_SHAPES
    ]

    cases = []
    for name, n, p in shapes:
        case = run_case(name, n, p, repeats)
        cases.append(case)
        speedups = case["speedup_vs_bitsets"]
        print(f"{name} (n={n}, p={p}, {case['cliques']} cliques):")
        for backend in BACKEND_NAMES:
            print(
                f"  {backend:<10} {case['seconds'][backend] * 1000:9.2f} ms"
                f"   {speedups[backend]:5.2f}x vs bitsets"
            )

    dense = next(case for case in cases if case["case"] == DENSE_CASE)
    dense_speedup = dense["speedup_vs_bitsets"]["bitmatrix"]
    report = {
        "benchmark": "kernel",
        "mode": "quick" if args.quick else "full",
        "pivot": "tomita",
        "seed": SEED,
        "cases": cases,
        "dense_case": {
            "name": DENSE_CASE,
            "bitmatrix_speedup_vs_bitsets": dense_speedup,
            "target": args.target,
            "meets_target": dense_speedup >= args.target,
            "regressed": dense_speedup < 1.0,
        },
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    print(
        f"dense case: bitmatrix {dense_speedup:.2f}x vs bitsets"
        f" (target {args.target:.1f}x)"
    )

    if dense_speedup < 1.0:
        print("FAIL: bitmatrix slower than bitsets on the dense case")
        return 1
    if not report["dense_case"]["meets_target"]:
        print("note: below the speedup target (not a hard failure)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

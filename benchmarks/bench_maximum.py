#!/usr/bin/env python
"""Maximum-clique benchmark — branch and bound vs enumerate-then-max.

The naive way to find one maximum clique is to enumerate *all* maximal
cliques and keep the largest — exactly what a bound-driven search makes
unnecessary.  The Tomita–Kameda colouring bound prunes every branch that
cannot beat the incumbent, so on social-style graphs (heavy-tailed
degrees, a planted dense community) the search touches a vanishing
fraction of the maximal-clique landscape.

Arms, all producing the same ω(G):

* **enum-then-max** — full Tomita enumeration, keep the largest (the
  baseline the paper's systems would need absent a bound);
* **bitset** — :func:`maximum_clique_bitset`, pure-``int`` branch and
  bound with greedy colouring (the pre-bitmatrix solver);
* **bitmatrix** — :func:`maximum_clique`, the packed ``uint64``
  word-parallel kernel (the headline arm);
* **parallel** — :func:`parallel_maximum_clique` across worker
  processes with a shared incumbent (informational: process start-up
  dominates at benchmark scale, the arm exists to prove the plumbing).

Every arm's witness is verified as a clique of the right size before
any number is reported.  Each arm is timed over ``--repeats`` passes
after a warmup pass and the best pass is kept.  The headline is
``enum_then_max_seconds / bitmatrix_seconds``; the full run exits
nonzero below ``--target`` (default 10.0×), ``--quick`` (the CI smoke
gate) only fails below 1.0× or on a wrong answer.

Usage::

    PYTHONPATH=src python benchmarks/bench_maximum.py [--quick]
        [--output BENCH_maximum.json] [--repeats 3] [--target 10.0]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.distributed.executor import parallel_maximum_clique
from repro.graph.generators import disjoint_union, erdos_renyi, social_network
from repro.mce.maximum import maximum_clique, maximum_clique_bitset
from repro.mce.tomita import tomita

SEED = 29


def build_corpus(quick: bool):
    """A social network with a dense community attached.

    The heavy-tailed social part carries the planted maximum clique;
    the Erdős–Rényi part is the dense core whose maximal-clique count
    explodes — expensive to enumerate, cheap to bound away.
    """
    if quick:
        return disjoint_union(
            [
                social_network(
                    500, attachment=4, planted_cliques=(14,), seed=SEED
                ),
                erdos_renyi(120, 0.4, seed=SEED + 1),
            ]
        )
    return disjoint_union(
        [
            social_network(
                2000, attachment=5, planted_cliques=(18, 12), seed=SEED
            ),
            erdos_renyi(220, 0.45, seed=SEED + 1),
        ]
    )


def enum_then_max(graph):
    best: frozenset = frozenset()
    for clique in tomita(graph):
        if len(clique) > len(best):
            best = clique
    return best


def best_of(fn, repeats: int) -> tuple[float, object]:
    """Best wall time over ``repeats`` passes (after one warmup pass)."""
    answer = fn()  # warmup: imports, allocator, matrix packing
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        answer = fn()
        best = min(best, time.perf_counter() - start)
    return best, answer


def run_scenario(quick: bool, repeats: int) -> dict:
    graph = build_corpus(quick)

    arms = {
        "enum_then_max": lambda: enum_then_max(graph),
        "bitset": lambda: maximum_clique_bitset(graph),
        "bitmatrix": lambda: maximum_clique(graph),
        "parallel": lambda: parallel_maximum_clique(graph, max_workers=2),
    }
    seconds: dict[str, float] = {}
    omega: int | None = None
    for name, fn in arms.items():
        arm_seconds, found = best_of(fn, repeats)
        if not graph.is_clique(found):
            raise SystemExit(f"arm {name} returned a non-clique")
        if omega is None:
            omega = len(found)
        elif len(found) != omega:
            raise SystemExit(
                f"arm {name} found size {len(found)}, expected {omega}"
            )
        seconds[name] = arm_seconds

    return {
        "scenario": "social-network-planted",
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "omega": omega,
        "repeats": repeats,
        "enum_then_max_seconds": seconds["enum_then_max"],
        "bitset_seconds": seconds["bitset"],
        "bitmatrix_seconds": seconds["bitmatrix"],
        "parallel_seconds": seconds["parallel"],
        "speedup_bitmatrix_vs_enum": seconds["enum_then_max"]
        / seconds["bitmatrix"],
        "speedup_bitset_vs_enum": seconds["enum_then_max"] / seconds["bitset"],
        "speedup_bitmatrix_vs_bitset": seconds["bitset"]
        / seconds["bitmatrix"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller graph, gate only on regression",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_maximum.json"),
        help="where to write the machine-readable results",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed passes per arm (best is kept)",
    )
    parser.add_argument(
        "--target",
        type=float,
        default=10.0,
        help="required bitmatrix-vs-enumeration speedup (full mode only)",
    )
    args = parser.parse_args(argv)

    result = run_scenario(args.quick, args.repeats)
    result["quick"] = args.quick
    result["target"] = args.target
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    speedup = result["speedup_bitmatrix_vs_enum"]
    print(
        f"omega(G) = {result['omega']} on {result['nodes']} nodes / "
        f"{result['edges']} edges"
    )
    print(
        f"enum-then-max {result['enum_then_max_seconds']:.4f}s, "
        f"bitset {result['bitset_seconds']:.4f}s, "
        f"bitmatrix {result['bitmatrix_seconds']:.4f}s, "
        f"parallel {result['parallel_seconds']:.4f}s"
    )
    print(
        f"bitmatrix branch and bound beats enumeration {speedup:.1f}x "
        f"(target {args.target:.1f}x)"
    )
    print(f"wrote {args.output}")

    floor = 1.0 if args.quick else args.target
    if speedup < floor:
        print(
            f"FAIL: speedup {speedup:.2f}x below "
            f"{'regression floor' if args.quick else 'target'} {floor:.2f}x",
            file=sys.stderr,
        )
        return 1
    if args.quick and speedup < args.target:
        print(
            f"note: quick-mode speedup {speedup:.2f}x is below the "
            f"full-run target {args.target:.2f}x (gate is regression-only)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Wire-level view of one decomposition level (the OpenMPI stand-in).

Runs the coordinator/worker message protocol over the paper's cluster
for one data set's level-0 blocks and reports the traffic a real
deployment would put on the interconnect: assignments, results, bytes
each way, and the simulated makespan including transfer time.
"""

from __future__ import annotations

from conftest import ratio_to_m
from repro.analysis.report import format_table
from repro.core.blocks import build_blocks
from repro.core.feasibility import cut
from repro.distributed.cluster import paper_cluster
from repro.distributed.protocol import run_protocol_level

DATASET = "google+"
RATIO = 0.5


def test_protocol_wire_traffic(benchmark, sweep, emit):
    graph = sweep.graph(DATASET)
    m = ratio_to_m(graph, RATIO)
    feasible, _hubs = cut(graph, m)
    blocks = build_blocks(graph, feasible, m)
    cluster = paper_cluster()

    def measure():
        return run_protocol_level(blocks, cluster)

    cliques, trace = benchmark.pedantic(measure, rounds=1, iterations=1)
    assign_bytes = sum(m_.payload_bytes for m_ in trace.assignments)
    result_bytes = sum(m_.payload_bytes for m_ in trace.results)
    emit(
        "protocol_wire",
        format_table(
            ["quantity", "value"],
            [
                ["blocks shipped", len(trace.assignments)],
                ["results returned", len(trace.results)],
                ["bytes out (blocks)", assign_bytes],
                ["bytes back (cliques)", result_bytes],
                ["simulated makespan (s)", trace.makespan],
                ["busiest worker (s)", max(trace.worker_busy_seconds.values())],
                ["cliques collected", len(cliques)],
            ],
            title=(
                f"Coordinator/worker wire traffic for {DATASET} level 0 "
                f"(m/d = {RATIO}, paper cluster)"
            ),
        ),
    )
    assert len(trace.assignments) == len(blocks)
    assert len(trace.results) == len(blocks)
    assert assign_bytes > result_bytes * 0  # both positive
    assert trace.makespan > 0.0
    # The protocol's output agrees with the serial reference.
    from repro.core.block_analysis import analyze_blocks

    serial, _ = analyze_blocks(blocks)
    assert set(cliques) == set(serial)

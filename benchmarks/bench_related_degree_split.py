"""Related work — the degree-split strategy of Chang et al. [7].

Section 7 credits Chang, Yu and Qin with partitioning "the graph into
low and high degree nodes" for fast single-machine enumeration.  This
bench runs that strategy (no blocks) next to the paper's full two-level
decomposition and the single-machine exact baseline, separating how
much each layer contributes: the degree split alone already gives
completeness with small working sets; the blocks add the distribution
units and the density-seeking pre-processing.
"""

from __future__ import annotations

from conftest import ratio_to_m
from repro.analysis.report import format_table
from repro.baselines.degree_split import degree_split_mce
from repro.baselines.exact import exact_mce

DATASETS_USED = ("twitter1", "google+")
RATIO = 0.5


def test_degree_split_vs_two_level(benchmark, sweep, emit):
    def measure():
        rows = []
        for name in DATASETS_USED:
            graph = sweep.graph(name)
            m = ratio_to_m(graph, RATIO)
            two_level = sweep.result(name, RATIO)
            split = degree_split_mce(graph, m)
            exact = exact_mce(graph)
            assert set(split.cliques) == set(two_level.cliques) == set(
                exact.cliques
            )
            rows.append(
                [
                    name,
                    "two-level blocks (paper)",
                    two_level.total_analysis_seconds()
                    + two_level.total_decomposition_seconds(),
                    two_level.recursion_depth,
                ]
            )
            rows.append(
                [name, "degree split only (Chang et al.)", split.seconds, split.rounds]
            )
            rows.append([name, "single-machine exact", exact.seconds, 1])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "related_degree_split",
        format_table(
            ["Network", "strategy", "seconds", "rounds"],
            rows,
            title=(
                f"Related work — degree split [7] vs the full two-level "
                f"decomposition at m/d = {RATIO} (identical outputs asserted)"
            ),
        ),
    )
    assert len(rows) == 3 * len(DATASETS_USED)

"""Related work — exact maximum clique vs full enumeration ([27, 33, 30]).

Section 7 opens with the pruning tradition of exact maximum-clique
solvers (Östergård's cliquer, Tomita–Kameda branch and bound) and cites
Rossi et al. for large graphs.  This bench runs the library's
colouring-bounded branch and bound next to "enumerate everything, take
the largest" on the data-set stand-ins: when only ω(G) is needed, the
dedicated solver should win by a wide margin — which is exactly why
those papers exist and why the MCE problem is the harder one.
"""

from __future__ import annotations

import time

from repro.analysis.report import format_table
from repro.mce.maximum import maximum_clique
from repro.mce.tomita import tomita

DATASETS_USED = ("twitter1", "google+", "facebook")


def test_maximum_clique_vs_enumeration(benchmark, sweep, emit):
    def measure():
        rows = []
        for name in DATASETS_USED:
            graph = sweep.graph(name)
            start = time.perf_counter()
            best = maximum_clique(graph)
            bnb_seconds = time.perf_counter() - start
            start = time.perf_counter()
            biggest = max(tomita(graph), key=len)
            enum_seconds = time.perf_counter() - start
            assert len(best) == len(biggest)
            rows.append([name, len(best), bnb_seconds, enum_seconds])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "related_maximum_clique",
        format_table(
            [
                "Network",
                "omega(G)",
                "branch & bound (s)",
                "enumerate-all (s)",
            ],
            rows,
            title=(
                "Exact maximum clique [27, 33, 30] vs full enumeration "
                "(both exact; the dedicated solver answers the narrower "
                "question far faster)"
            ),
        ),
    )
    for row in rows:
        name, _omega, bnb, enum = row
        assert bnb < enum, name

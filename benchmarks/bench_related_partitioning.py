"""Related work — streaming partitioning vs hash placement ([31], §7).

Section 7: the partitioning of general graph-processing systems
"usually use random partitioning (i.e., hash partitioning) which is
proven to be the worst possible partitioning for scale-free networks".
This bench quantifies that on the data-set stand-ins: the Stanton–Kliot
linear-deterministic-greedy streaming partitioner against stateless
hashing, compared by edge cut (the communication a machine-local
neighbourhood gather would pay) at equal balance.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.distributed.streaming import partition_hash, partition_ldg

PARTS = 10  # the paper's ten machines


def test_streaming_partitioning_beats_hash(benchmark, sweep, emit, dataset_names):
    def measure():
        rows = []
        for name in dataset_names:
            graph = sweep.graph(name)
            ldg = partition_ldg(graph, PARTS)
            hashed = partition_hash(graph, PARTS)
            rows.append(
                [
                    name,
                    ldg.edge_cut(graph),
                    hashed.edge_cut(graph),
                    ldg.balance(),
                    hashed.balance(),
                ]
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "related_partitioning",
        format_table(
            [
                "Network",
                "LDG edge cut",
                "hash edge cut",
                "LDG balance",
                "hash balance",
            ],
            rows,
            title=(
                f"Streaming partitioning [31] vs hash placement over "
                f"{PARTS} machines (Section 7's claim quantified)"
            ),
        ),
    )
    for row in rows:
        name, ldg_cut, hash_cut, ldg_balance, _hash_balance = row
        assert ldg_cut < hash_cut, name
        assert ldg_balance <= 1.25, name

#!/usr/bin/env python
"""Result-plane benchmark — packed CliqueStore vs the frozenset plane.

On clique-dense social networks the *output* path used to dominate: every
maximal clique became a ``frozenset`` of Python labels (one object per
clique, one boxed reference per member), the provenance a dict keyed on
those frozensets, and the whole thing was deep-pickled through IPC and
spill segments.  The packed result plane keeps cliques as CSR-style
numpy buffers (uint64 offsets + uint32 vertex ids + int32 levels) from
the kernel's emit to the final :class:`CliqueResult` façade.

Methodology: one clique-dense corpus (a disjoint union of dense ER
communities — ≥10⁵ maximal cliques at full scale), enumerated end to
end by ``find_max_cliques`` twice with the *same* pinned kernel combo
(``tomita``/``bitmatrix``, the batched packed-bitmap kernel), so the
only variable between the arms is the result plane itself:

* **packed** — the default plane (``CliqueStore`` buffers everywhere);
* **frozenset** — the legacy plane, selected with
  ``REPRO_RESULT_PLANE=frozenset`` at the emitter seam, running the
  pre-packed code paths byte for byte.

Each arm runs in a *fresh subprocess* so parent peak-RSS is measured
cleanly: the child reports its best-of-N wall time, its peak-RSS growth
during enumeration (``ru_maxrss`` after minus resident size before —
the memory the clique plane itself costs), and a SHA-256 digest of the
canonicalized clique set.  The digests must match exactly — the two
planes are required to produce *byte-identical* clique sets before any
number is reported.

The full run exits nonzero when the speedup misses ``--target``
(default 2.5×) or the RSS ratio misses ``--rss-target`` (default 5×);
``--quick`` (the CI smoke gate) runs a smaller corpus and only fails on
an outright regression (< 1.0×ratio) or a digest mismatch.

Usage::

    PYTHONPATH=src python benchmarks/bench_resultplane.py [--quick]
        [--output BENCH_resultplane.json] [--repeats 3]
        [--target 2.5] [--rss-target 5.0]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import resource
import subprocess
import sys
import time
from pathlib import Path

SEED = 41

# (communities, nodes per community, edge probability, block size m)
FULL_CORPUS = (16, 44, 0.86, 48)
QUICK_CORPUS = (4, 40, 0.80, 40)


def build_corpus(communities: int, nodes: int, p: float):
    from repro.graph.generators import disjoint_union, erdos_renyi

    return disjoint_union(
        [
            erdos_renyi(nodes, p, seed=SEED + i)
            for i in range(communities)
        ]
    )


def clique_digest(cliques) -> str:
    """SHA-256 over the canonical clique set — byte-identical or bust."""
    canonical = sorted(
        tuple(sorted(map(repr, clique))) for clique in cliques
    )
    hasher = hashlib.sha256()
    for clique in canonical:
        for member in clique:
            hasher.update(member.encode())
            hasher.update(b"\x1f")
        hasher.update(b"\x1e")
    return hasher.hexdigest()


def current_rss_kb() -> int:
    with open("/proc/self/status") as status:
        for line in status:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    return 0


def run_arm(plane: str, corpus: tuple, repeats: int) -> dict:
    """Executed in the child process: one plane, one corpus, N passes."""
    os.environ["REPRO_RESULT_PLANE"] = plane
    from repro.core.driver import find_max_cliques
    from repro.mce.registry import Combo

    communities, nodes, p, m = corpus
    graph = build_corpus(communities, nodes, p)
    combo = Combo("tomita", "bitmatrix")
    best = float("inf")
    result = None
    rss_before = current_rss_kb()
    for _ in range(repeats):
        start = time.perf_counter()
        result = find_max_cliques(graph, m, combo=combo)
        best = min(best, time.perf_counter() - start)
    peak_after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "plane": plane,
        "seconds": best,
        "num_cliques": result.num_cliques,
        "max_clique_size": result.max_clique_size(),
        "rss_growth_kb": max(1, peak_after - rss_before),
        "digest": clique_digest(result.cliques),
    }


def run_arm_subprocess(plane: str, corpus: tuple, repeats: int) -> dict:
    """Run one arm in a fresh interpreter for a clean RSS high-water mark."""
    command = [
        sys.executable,
        os.path.abspath(__file__),
        "--arm",
        plane,
        "--corpus",
        json.dumps(list(corpus)),
        "--repeats",
        str(repeats),
    ]
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    proc = subprocess.run(
        command, capture_output=True, text=True, env=env, check=False
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{plane} arm failed:\n{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout.splitlines()[-1])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke gate")
    parser.add_argument("--output", default="BENCH_resultplane.json")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--target", type=float, default=2.5)
    parser.add_argument("--rss-target", type=float, default=5.0)
    parser.add_argument("--arm", help=argparse.SUPPRESS)
    parser.add_argument("--corpus", help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.arm:
        # Child mode: print one JSON line and exit.
        corpus = tuple(json.loads(args.corpus))
        print(json.dumps(run_arm(args.arm, corpus, args.repeats)))
        return 0

    corpus = QUICK_CORPUS if args.quick else FULL_CORPUS
    arms = {
        plane: run_arm_subprocess(plane, corpus, args.repeats)
        for plane in ("packed", "frozenset")
    }
    packed, legacy = arms["packed"], arms["frozenset"]

    identical = packed["digest"] == legacy["digest"]
    speedup = legacy["seconds"] / packed["seconds"]
    rss_ratio = legacy["rss_growth_kb"] / packed["rss_growth_kb"]
    throughput = packed["num_cliques"] / packed["seconds"]

    report = {
        "benchmark": "resultplane",
        "mode": "quick" if args.quick else "full",
        "corpus": {
            "communities": corpus[0],
            "nodes_per_community": corpus[1],
            "edge_probability": corpus[2],
            "block_size_m": corpus[3],
            "num_cliques": packed["num_cliques"],
        },
        "arms": arms,
        "clique_sets_identical": identical,
        "speedup": speedup,
        "parent_rss_ratio": rss_ratio,
        "packed_cliques_per_second": throughput,
        "targets": {"speedup": args.target, "rss_ratio": args.rss_target},
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    print(f"corpus: {packed['num_cliques']} maximal cliques")
    print(
        f"packed    {packed['seconds']:8.3f}s  "
        f"rss-growth {packed['rss_growth_kb'] / 1024:7.1f} MiB"
    )
    print(
        f"frozenset {legacy['seconds']:8.3f}s  "
        f"rss-growth {legacy['rss_growth_kb'] / 1024:7.1f} MiB"
    )
    print(
        f"speedup {speedup:.2f}x   parent-RSS ratio {rss_ratio:.2f}x   "
        f"throughput {throughput:,.0f} cliques/s"
    )
    print(f"clique sets identical: {identical}")

    if not identical:
        print("FAIL: the two planes produced different clique sets")
        return 1
    if args.quick:
        if speedup < 1.0:
            print(f"FAIL: packed plane regressed ({speedup:.2f}x < 1.0x)")
            return 1
        return 0
    if speedup < args.target:
        print(f"FAIL: speedup {speedup:.2f}x below target {args.target}x")
        return 1
    if rss_ratio < args.rss_target:
        print(
            f"FAIL: parent-RSS ratio {rss_ratio:.2f}x below target "
            f"{args.rss_target}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

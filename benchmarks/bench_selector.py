#!/usr/bin/env python
"""Selector benchmark — retrained tree vs the paper tree vs fixed combos.

Section 4's claim is that no single (algorithm, backend) combination
wins everywhere, so a per-block selector beats any fixed choice.  The
autotuner's claim (``repro tune``, ``docs/tuning.md``) goes one step
further: a tree retrained from *measured* per-block timings on the
deployment's own hardware beats the paper's hand-drawn Figure 3 tree,
whose thresholds encode 2016-era machines.

Methodology: build a five-dataset corpus — Table 1's regimes extended
with the two adversarial shapes this repo has optimisations for —

* **er-dense** — a dense Erdős–Rényi ball (bitmatrix territory);
* **ba** — a Barabási–Albert power-law network (hub recursion);
* **social-planted** — triadic-closure social graph with planted
  cliques (the paper's headline regime);
* **planted-straggler** — one dense block amid trivia (the splitter's
  regime);
* **many-small** — thousands of tiny blocks (dispatch-overhead regime).

Every dataset is decomposed exactly as ``find_max_cliques`` would
(:func:`~repro.decision.harvest.workload_blocks`), a cost-biased sample
of its blocks is re-run under **every** combination
(:func:`~repro.decision.harvest.counterfactual_rows` — clique sets are
verified to agree, so a wrong combo cannot win by being wrong), and the
pooled rows are argmin-labelled and fed to
:func:`~repro.decision.training.train_from_rows`.

The headline compares total measured analysis time over the corpus
under four choosers: the retrained tree, the paper tree, the extended
tree, and every fixed combo.  The full-run gate requires the retrained
tree to beat the paper tree AND every fixed combo, with the tree's own
prediction wall-time (selection overhead) under 1% of analysis time.
``--quick`` (the CI smoke gate) shrinks the corpus and only fails on an
outright regression — retrained worse than the paper tree — or an
overhead blowout, since microbenchmark timings on shared CI runners are
too noisy to separate close fixed combos reliably.

Usage::

    PYTHONPATH=src python benchmarks/bench_selector.py [--quick]
        [--output BENCH_selector.json] [--repeats 3] [--sample 24]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.decision.harvest import (
    counterfactual_rows,
    sample_blocks,
    workload_blocks,
)
from repro.decision.paper_tree import extended_tree, paper_tree
from repro.decision.training import (
    block_selection_overhead,
    train_from_rows,
)
from repro.decision.tree import DecisionTree, num_leaves
from repro.graph.generators import (
    barabasi_albert,
    disjoint_union,
    erdos_renyi,
    planted_straggler,
    social_network,
)

SEED = 1729

# (name, graph builder, block size m); the builder takes a size knob so
# --quick can shrink the corpus without changing its shape.
def corpus_recipes(quick: bool):
    scale = 1 if quick else 2
    return [
        (
            "er-dense",
            lambda: erdos_renyi(60 * scale, 0.25, seed=SEED),
            30 * scale,
        ),
        (
            "ba",
            lambda: barabasi_albert(150 * scale, 4, seed=SEED + 1),
            20 * scale,
        ),
        (
            "social-planted",
            lambda: social_network(
                120 * scale,
                attachment=3,
                planted_cliques=(12, 10, 8),
                seed=SEED + 2,
            ),
            30 * scale,
        ),
        (
            "planted-straggler",
            lambda: planted_straggler(
                dense_nodes=25 * scale,
                dense_p=0.5,
                tiny_blocks=15 * scale,
                tiny_size=6,
                tiny_p=0.4,
                seed=SEED + 3,
            ),
            25 * scale,
        ),
        (
            "many-small",
            lambda: disjoint_union(
                [
                    erdos_renyi(7, 0.6, seed=SEED + 10 + index)
                    for index in range(40 * scale)
                ]
            ),
            10,
        ),
    ]


def harvest_corpus(quick: bool, sample: int, repeats: int):
    """Counterfactually label a block sample from every dataset.

    Levels are offset per dataset so ``(level, block_id)`` keys never
    collide across datasets when the rows are pooled for labelling.
    """
    rows = []
    datasets = []
    for index, (name, build, m) in enumerate(corpus_recipes(quick)):
        graph = build()
        blocks = workload_blocks(graph, m)
        chosen = sample_blocks(blocks, sample, seed=SEED + index)
        offset = [
            (index * 1000 + level, block_id, block)
            for level, block_id, block in chosen
        ]
        dataset_rows = counterfactual_rows(offset, repeats=repeats)
        rows.extend(dataset_rows)
        datasets.append(
            {
                "name": name,
                "nodes": graph.num_nodes,
                "edges": graph.num_edges,
                "m": m,
                "blocks_total": len(blocks),
                "blocks_sampled": len(chosen),
                "rows": len(dataset_rows),
            }
        )
    return rows, datasets


def total_under_tree(result, tree: DecisionTree) -> float:
    """Corpus analysis seconds when ``tree`` picks each block's combo."""
    return sum(
        sample.timings.get(
            tree.predict(sample.features), max(sample.timings.values())
        )
        for sample in result.samples
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller corpus, gate only on regression",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_selector.json"),
        help="where to write the machine-readable results",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repetitions per (block, combo); best is kept",
    )
    parser.add_argument(
        "--sample",
        type=int,
        default=24,
        help="blocks counterfactually labelled per dataset",
    )
    parser.add_argument(
        "--overhead-budget",
        type=float,
        default=0.01,
        help="selection overhead ceiling as a fraction of analysis time",
    )
    args = parser.parse_args(argv)

    sample = min(args.sample, 8) if args.quick else args.sample
    repeats = 1 if args.quick else args.repeats
    start = time.perf_counter()
    rows, datasets = harvest_corpus(args.quick, sample, repeats)
    harvest_seconds = time.perf_counter() - start

    result = train_from_rows(rows)
    tuned_total = result.total_time()
    paper_total = total_under_tree(result, paper_tree())
    extended_total = total_under_tree(result, extended_tree())
    oracle_total = sum(s.timings[s.best] for s in result.samples)
    combo_labels = sorted({label for s in result.samples for label in s.timings})
    fixed_totals = {
        label: result.total_time(chooser=label) for label in combo_labels
    }
    best_fixed_label = min(fixed_totals, key=fixed_totals.get)
    best_fixed_total = fixed_totals[best_fixed_label]

    # Best of several passes, like every other timing here: the first
    # pass pays bytecode/cache warmup that a real run amortizes away.
    overhead_seconds = min(
        block_selection_overhead(result.samples, result.tree)
        for _ in range(5)
    )
    overhead_fraction = (
        overhead_seconds / tuned_total if tuned_total > 0 else 0.0
    )

    payload = {
        "quick": args.quick,
        "sample_per_dataset": sample,
        "repeats": repeats,
        "datasets": datasets,
        "rows": len(rows),
        "labelled_blocks": len(result.samples),
        "harvest_seconds": harvest_seconds,
        "tree_leaves": num_leaves(result.tree),
        "tree_leaves_before_pruning": result.unpruned_leaves,
        "training_accuracy": result.training_accuracy,
        "corpus_fingerprint": result.fingerprint,
        "win_counts": result.win_counts,
        "oracle_seconds": oracle_total,
        "tuned_seconds": tuned_total,
        "paper_seconds": paper_total,
        "extended_seconds": extended_total,
        "fixed_combo_seconds": fixed_totals,
        "best_fixed_combo": best_fixed_label,
        "speedup_vs_paper": paper_total / tuned_total,
        "speedup_vs_best_fixed": best_fixed_total / tuned_total,
        "selection_overhead_seconds": overhead_seconds,
        "selection_overhead_fraction": overhead_fraction,
        "overhead_budget": args.overhead_budget,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")

    print(
        f"harvested {len(rows)} rows over {len(datasets)} datasets "
        f"({len(result.samples)} labelled blocks) in {harvest_seconds:.1f}s"
    )
    print(
        f"retrained tree: {num_leaves(result.tree)} leaves "
        f"(pruned from {result.unpruned_leaves}), "
        f"accuracy {result.training_accuracy:.2f}"
    )
    print(
        f"corpus analysis time: tuned {tuned_total:.4f}s | "
        f"paper {paper_total:.4f}s | extended {extended_total:.4f}s | "
        f"best fixed {best_fixed_label} {best_fixed_total:.4f}s | "
        f"oracle {oracle_total:.4f}s"
    )
    print(
        f"speedup vs paper tree {payload['speedup_vs_paper']:.2f}x, "
        f"vs best fixed combo {payload['speedup_vs_best_fixed']:.2f}x"
    )
    print(
        f"selection overhead {overhead_seconds * 1e6:.0f}us "
        f"({overhead_fraction:.3%} of analysis time, "
        f"budget {args.overhead_budget:.0%})"
    )
    print(f"wrote {args.output}")

    failures = []
    if overhead_fraction >= args.overhead_budget:
        failures.append(
            f"selection overhead {overhead_fraction:.3%} breaches the "
            f"{args.overhead_budget:.0%} budget"
        )
    if tuned_total > paper_total:
        failures.append(
            f"retrained tree ({tuned_total:.4f}s) is slower than the "
            f"paper tree ({paper_total:.4f}s)"
        )
    if not args.quick and tuned_total > best_fixed_total:
        failures.append(
            f"retrained tree ({tuned_total:.4f}s) loses to fixed combo "
            f"{best_fixed_label} ({best_fixed_total:.4f}s)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if args.quick and tuned_total > best_fixed_total:
        print(
            f"note: quick-mode tree does not beat fixed combo "
            f"{best_fixed_label} (gate is regression-only)"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Straggler benchmark — anchor-level splitting vs whole-block dispatch.

The worst case for block-level parallelism is one block whose
Bron–Kerbosch cost dwarfs every other block's: whichever worker draws it
becomes the makespan while the rest drain the tiny blocks and idle
(reference [38] of the paper: "the analysis of few blocks takes far more
time than the rest").  Anchor-level splitting breaks that block into
per-anchor subtasks, so its cost spreads over the pool.

Methodology — same as ``bench_distributed_speedup.py``: per-task costs
are **measured** on a single worker (clean numbers, no contention), then
replayed under LPT onto a simulated 4-worker cluster
(:mod:`repro.distributed.simulation` is the local stand-in for the
paper's OpenMPI deployment).  The headline is the ratio of the replayed
makespans — unsplit over split — together with each schedule's
worker-idle fraction.  Real wall-clock times are reported alongside but
not gated: on a CI box with few free cores they measure the machine, not
the scheduler.

Both modes are verified clique-for-clique against the serial reference
before any number is reported; a mismatch aborts the run.

The full run exits nonzero when the makespan improvement misses the
``--target`` (default 1.5×); ``--quick`` (the CI smoke gate) only fails
on an outright regression (< 1.0×) or a clique mismatch.

Usage::

    PYTHONPATH=src python benchmarks/bench_straggler.py [--quick]
        [--output BENCH_straggler.json] [--workers 4] [--target 1.5]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.block_analysis import analyze_blocks
from repro.core.blocks import build_blocks
from repro.core.feasibility import cut
from repro.decision.features import adaptive_split_threshold
from repro.distributed.cluster import ClusterSpec
from repro.distributed.executor import SharedMemoryExecutor
from repro.distributed.scheduler import Schedule, Task, schedule_lpt
from repro.graph.generators import planted_straggler

SEED = 41


def canonical(cliques) -> set:
    return {frozenset(map(repr, clique)) for clique in cliques}


def idle_fraction(schedule: Schedule) -> float:
    """Fraction of worker-seconds spent waiting under ``schedule``."""
    workers = len(schedule.worker_loads)
    if schedule.makespan == 0.0 or workers == 0:
        return 0.0
    return 1.0 - schedule.total_work / (workers * schedule.makespan)


def local_cluster(workers: int) -> ClusterSpec:
    """A shared-memory 'cluster': one machine, no network cost."""
    return ClusterSpec(
        machines=1,
        workers_per_machine=workers,
        latency_seconds=0.0,
        bandwidth_bytes_per_second=1e15,
    )


def replay(costs: list[float], workers: int) -> Schedule:
    tasks = [
        Task(task_id=index, cost_seconds=cost) for index, cost in enumerate(costs)
    ]
    return schedule_lpt(tasks, local_cluster(workers))


def measured_run(executor: SharedMemoryExecutor, blocks, graph):
    """One timed ``map_blocks``; returns (reports, trace, wall_seconds)."""
    start = time.perf_counter()
    reports = executor.map_blocks(blocks, graph=graph)
    wall = time.perf_counter() - start
    return reports, executor.last_trace, wall


def fragment_costs(trace) -> list[float]:
    """Replayable per-task seconds of a split-mode run.

    Split blocks contribute one task per fragment (their merged
    block-level timing would double-count); unsplit blocks contribute
    their whole-block timing.
    """
    split_ids = set(trace.split_block_ids)
    costs = [t.seconds for t in trace.subtasks]
    costs.extend(
        t.seconds for t in trace.timings if t.block_id not in split_ids
    )
    return costs


def run_scenario(quick: bool, workers: int) -> dict:
    if quick:
        graph = planted_straggler(
            dense_nodes=26, dense_p=0.5, tiny_blocks=14, tiny_size=5, seed=SEED
        )
        m, subtasks = 32, 6
    else:
        graph = planted_straggler(
            dense_nodes=40, dense_p=0.5, tiny_blocks=30, tiny_size=6, seed=SEED
        )
        m, subtasks = 48, 8
    feasible, _ = cut(graph, m)
    blocks = build_blocks(graph, feasible, m)
    serial_cliques, serial_reports = analyze_blocks(blocks)
    reference = canonical(serial_cliques)

    # Measurement pass: one worker each, so per-task seconds are clean.
    # The split run uses the threshold the simulated cluster would pick.
    unsplit = SharedMemoryExecutor(max_workers=1)
    unsplit_reports, unsplit_trace, wall_unsplit = measured_run(
        unsplit, blocks, graph
    )
    threshold = adaptive_split_threshold(
        [report.features.estimated_cost() for report in serial_reports], workers
    )
    split = SharedMemoryExecutor(
        max_workers=1,
        split=True,
        split_threshold=threshold,
        split_subtasks=subtasks,
    )
    split_reports, split_trace, wall_split = measured_run(split, blocks, graph)

    for label, reports in (("unsplit", unsplit_reports), ("split", split_reports)):
        got = canonical(c for r in reports for c in r.cliques)
        if got != reference:
            raise SystemExit(f"{label} run lost cliques vs the serial reference")
    if not split_trace.splits:
        raise SystemExit("straggler block never crossed the split threshold")

    # Replay the measured costs onto the simulated cluster.
    unsplit_schedule = replay(
        [timing.seconds for timing in unsplit_trace.timings], workers
    )
    split_schedule = replay(fragment_costs(split_trace), workers)

    # Wall-clock comparison at the requested worker count (reported, not
    # gated: with fewer free cores than workers it measures the box).
    _, _, wall_unsplit_pool = measured_run(
        SharedMemoryExecutor(max_workers=workers), blocks, graph
    )
    _, _, wall_split_pool = measured_run(
        SharedMemoryExecutor(
            max_workers=workers,
            split=True,
            split_threshold=threshold,
            split_subtasks=subtasks,
        ),
        blocks,
        graph,
    )

    return {
        "scenario": "planted-straggler",
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "m": m,
        "blocks": len(blocks),
        "cliques": len(serial_cliques),
        "workers": workers,
        "split_threshold": threshold,
        "split_subtasks": subtasks,
        "blocks_split": len(split_trace.splits),
        "fragments": len(split_trace.subtasks),
        "unsplit_makespan_seconds": unsplit_schedule.makespan,
        "split_makespan_seconds": split_schedule.makespan,
        "makespan_improvement": unsplit_schedule.makespan
        / split_schedule.makespan,
        "unsplit_idle_fraction": idle_fraction(unsplit_schedule),
        "split_idle_fraction": idle_fraction(split_schedule),
        "unsplit_serial_seconds": unsplit_schedule.total_work,
        "split_serial_seconds": split_schedule.total_work,
        "wall_unsplit_1worker_seconds": wall_unsplit,
        "wall_split_1worker_seconds": wall_split,
        "wall_unsplit_pool_seconds": wall_unsplit_pool,
        "wall_split_pool_seconds": wall_split_pool,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller straggler, gate only on regression",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_straggler.json"),
        help="where to write the machine-readable results",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="simulated cluster width for the makespan replay",
    )
    parser.add_argument(
        "--target",
        type=float,
        default=1.5,
        help="required makespan improvement (full mode only)",
    )
    args = parser.parse_args(argv)

    result = run_scenario(args.quick, args.workers)
    result["quick"] = args.quick
    result["target"] = args.target
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    improvement = result["makespan_improvement"]
    print(
        f"straggler @ {args.workers} simulated workers: "
        f"makespan {result['unsplit_makespan_seconds']:.4f}s -> "
        f"{result['split_makespan_seconds']:.4f}s "
        f"({improvement:.2f}x, target {args.target:.2f}x)"
    )
    print(
        f"idle fraction {result['unsplit_idle_fraction']:.1%} -> "
        f"{result['split_idle_fraction']:.1%}; "
        f"{result['blocks_split']} block(s) split into "
        f"{result['fragments']} fragments"
    )
    print(f"wrote {args.output}")

    floor = 1.0 if args.quick else args.target
    if improvement < floor:
        print(
            f"FAIL: improvement {improvement:.2f}x below "
            f"{'regression floor' if args.quick else 'target'} {floor:.2f}x",
            file=sys.stderr,
        )
        return 1
    if args.quick and improvement < args.target:
        print(
            f"note: quick-mode improvement {improvement:.2f}x is below the "
            f"full-run target {args.target:.2f}x (gate is regression-only)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

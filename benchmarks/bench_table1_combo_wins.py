"""Table 1 — wins per (algorithm × data structure) combination.

The paper times all twelve combinations on a 50-graph heterogeneous
corpus and reports how often each was the fastest.  The headline claim
the table supports: *no combination dominates*, so a per-block selector
can beat any fixed choice.  We regenerate the table on the synthetic
corpus (same three random families plus the social stand-in family) and
assert the no-dominator claim.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.decision.training import build_corpus, label_corpus, win_counts
from repro.mce.registry import ALL_COMBOS, Combo, run_combo

CORPUS_SIZE = 50


@pytest.fixture(scope="module")
def labelled():
    corpus = build_corpus(count=CORPUS_SIZE, seed=7, size_range=(40, 160))
    return label_corpus(corpus)


def test_table1_win_counts(benchmark, labelled, emit):
    counts = benchmark.pedantic(
        lambda: win_counts(labelled), rounds=1, iterations=1
    )
    algorithms = ["bkpivot", "tomita", "eppstein", "xpivot"]
    backends = ["matrix", "lists", "bitsets"]
    rows = []
    for algorithm in algorithms:
        row: list[object] = [algorithm]
        for backend in backends:
            row.append(counts.get(Combo(algorithm, backend).name, 0))
        rows.append(row)
    emit(
        "table1_combo_wins",
        format_table(
            ["Algorithm", "Matrix", "Lists", "BitSets"],
            rows,
            title=(
                f"Table 1 — times each combination was fastest over "
                f"{CORPUS_SIZE} graphs (paper: BKPivot 7/0/2, "
                "Tomita 5/3/12, Eppstein 0/2/0, XPivot 7/12/0)"
            ),
        ),
    )
    assert sum(counts.values()) == CORPUS_SIZE
    # The paper's point: no single combination wins everywhere.
    assert max(counts.values()) < CORPUS_SIZE


def test_table1_no_dominating_combo(benchmark, labelled):
    def distinct_winners() -> int:
        return len(win_counts(labelled))

    winners = benchmark.pedantic(distinct_winners, rounds=1, iterations=1)
    assert winners >= 2


def test_representative_combo_timing(benchmark, labelled):
    # A pytest-benchmark timing of the paper's strongest combination on a
    # mid-sized corpus graph, for regression tracking.
    graph = labelled[len(labelled) // 2].graph
    combo = Combo("tomita", "bitsets")
    benchmark(lambda: run_combo(graph, combo))

"""Table 2 — parameter ranges of the training corpus.

The paper reports the min/max of the five block-classification
parameters over its 50-graph collection to show the corpus is
heterogeneous.  We regenerate the same table for our corpus and assert
the heterogeneity the decision tree depends on (orders of magnitude of
spread in size and density).
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.decision.features import BlockFeatures
from repro.decision.training import build_corpus


@pytest.fixture(scope="module")
def corpus_features():
    corpus = build_corpus(count=50, seed=7, size_range=(40, 160))
    return [(name, BlockFeatures.of(graph)) for name, graph in corpus]


def test_table2_parameter_ranges(benchmark, corpus_features, emit):
    def ranges():
        rows = []
        for metric in ("num_nodes", "num_edges", "density", "degeneracy", "d_star"):
            values = [features.value(metric) for _, features in corpus_features]
            rows.append([metric, min(values), max(values)])
        return rows

    rows = benchmark.pedantic(ranges, rounds=1, iterations=1)
    emit(
        "table2_corpus_ranges",
        format_table(
            ["Metric", "Min value", "Max value"],
            rows,
            title=(
                "Table 2 — ranges of the adopted parameters over the "
                "corpus (paper: nodes 50..685230, edges 199..6649470, "
                "density 0.00027..0.89, degeneracy 10..266, d* 15..713)"
            ),
        ),
    )
    by_metric = {row[0]: (row[1], row[2]) for row in rows}
    # Heterogeneity claims: wide spread in each dimension.
    assert by_metric["num_nodes"][1] >= 2 * by_metric["num_nodes"][0]
    assert by_metric["density"][1] >= 10 * by_metric["density"][0]
    assert by_metric["degeneracy"][1] >= 3 * max(by_metric["degeneracy"][0], 1)

"""Table 3 — the evaluation data sets.

Prints the paper's original statistics next to the calibrated stand-ins
actually used (DESIGN.md §2 documents the substitution) and checks the
calibration invariants: scale-free hub structure and the paper's maximum
clique sizes.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.graph.cores import degeneracy
from repro.graph.datasets import DATASETS


def test_table3_dataset_statistics(benchmark, sweep, emit, dataset_names):
    def build_rows():
        rows = []
        for name in dataset_names:
            spec = DATASETS[name]
            graph = sweep.graph(name)
            rows.append(
                [
                    name,
                    spec.paper_nodes,
                    spec.paper_edges,
                    spec.paper_max_degree,
                    graph.num_nodes,
                    graph.num_edges,
                    graph.max_degree(),
                    degeneracy(graph),
                ]
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    emit(
        "table3_datasets",
        format_table(
            [
                "Network",
                "paper nodes",
                "paper edges",
                "paper maxdeg",
                "standin nodes",
                "standin edges",
                "standin maxdeg",
                "standin degen",
            ],
            rows,
            title="Table 3 — data sets (paper originals vs calibrated stand-ins)",
        ),
    )
    for row in rows:
        # The hub structure the paper depends on: max degree far above
        # degeneracy, so every m/d ratio in the sweep converges.
        assert row[6] > 5 * row[7]


def test_max_clique_sizes_match_paper(benchmark, sweep, dataset_names):
    def clique_sizes():
        return {
            name: sweep.result(name, 0.5).max_clique_size()
            for name in dataset_names
        }

    sizes = benchmark.pedantic(clique_sizes, rounds=1, iterations=1)
    for name, size in sizes.items():
        assert size == DATASETS[name].paper_max_clique, name

"""Theorem 1 — convergence of the first-level recursion.

Two claims from Section 5, regenerated:

1. On the pathological graph ``H_n`` the recursion needs Ω(n) rounds
   (statement 2 of the theorem — each round peels a single node).
2. On real(istic) social networks the recursion needs only a handful of
   rounds (Section 6.2 observed at most three), because their degree
   distribution collapses quickly under peeling.
"""

from __future__ import annotations

import warnings

from repro.analysis.report import format_table
from repro.core.driver import find_max_cliques
from repro.graph.cores import degeneracy
from repro.graph.generators import h_n

H_N_M = 4
SIZES = (20, 40, 60, 80)


def test_theorem1_pathological_graph_is_linear(benchmark, emit):
    def run_hn_sweep():
        rows = []
        for n in SIZES:
            graph = h_n(n, H_N_M)
            # m = H_N_M + 1 exceeds the degeneracy (so Theorem 1 applies)
            # yet each round peels a single node — the worst case.
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                result = find_max_cliques(graph, H_N_M + 1)
            rows.append(
                [n, degeneracy(graph), result.recursion_depth, result.num_cliques]
            )
        return rows

    rows = benchmark.pedantic(run_hn_sweep, rounds=1, iterations=1)
    emit(
        "theorem1_h_n",
        format_table(
            ["n", "degeneracy", "recursion rounds", "#cliques"],
            rows,
            title=(
                f"Theorem 1 — H_n with m = {H_N_M}: rounds grow linearly "
                "with n (statement 2)"
            ),
        ),
    )
    depths = [row[2] for row in rows]
    # Linear growth: each extra node adds one extra peeling round.
    for (n1, _, d1, _), (n2, _, d2, _) in zip(rows, rows[1:]):
        assert d2 - d1 == n2 - n1
    assert depths[-1] >= SIZES[-1] - H_N_M - 2


def test_theorem1_real_networks_converge_fast(benchmark, sweep, emit, dataset_names):
    def depths():
        return [
            [name, sweep.result(name, 0.5).recursion_depth] for name in dataset_names
        ]

    rows = benchmark.pedantic(depths, rounds=1, iterations=1)
    emit(
        "theorem1_real_networks",
        format_table(
            ["Network", "recursion rounds at m/d = 0.5"],
            rows,
            title=(
                "Theorem 1 / Section 6.2 — realistic networks need only "
                "a few first-level iterations (paper: at most 3)"
            ),
        ),
    )
    for name, depth in rows:
        assert depth <= 4, name


def test_theorem1_m_above_degeneracy_guarantee(benchmark, sweep):
    # Completeness precondition: m > degeneracy converges without fallback.
    graph = sweep.graph("google+")

    def run():
        return find_max_cliques(
            graph, degeneracy(graph) + 1, fallback="raise"
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not result.fallback_used

"""Shared infrastructure for the benchmark harness.

Every table and figure of the paper's evaluation has one bench module
(see DESIGN.md §5).  The expensive shared computation — running
FIND-MAX-CLIQUES on all five data-set stand-ins at all five m/d ratios —
is cached at session scope, and every bench module writes its rendered
table both to stdout and to ``benchmarks/results/<name>.txt`` so the
artefacts survive pytest's output capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.driver import find_max_cliques
from repro.core.result import CliqueResult
from repro.graph.adjacency import Graph
from repro.graph.datasets import DATASET_NAMES, load_dataset

# The m/d ratios swept in Figures 7-11.
RATIOS: tuple[float, ...] = (0.9, 0.7, 0.5, 0.3, 0.1)

RESULTS_DIR = Path(__file__).parent / "results"


def ratio_to_m(graph: Graph, ratio: float) -> int:
    """Translate an m/d ratio to a block size for ``graph``."""
    return max(2, int(ratio * graph.max_degree()))


class SweepCache:
    """Lazily computed (dataset × ratio) clique results, shared per session."""

    def __init__(self) -> None:
        self._graphs: dict[str, Graph] = {}
        self._results: dict[tuple[str, float], CliqueResult] = {}

    def graph(self, dataset: str) -> Graph:
        if dataset not in self._graphs:
            self._graphs[dataset] = load_dataset(dataset)
        return self._graphs[dataset]

    def result(self, dataset: str, ratio: float) -> CliqueResult:
        key = (dataset, ratio)
        if key not in self._results:
            graph = self.graph(dataset)
            self._results[key] = find_max_cliques(
                graph, ratio_to_m(graph, ratio)
            )
        return self._results[key]


@pytest.fixture(scope="session")
def sweep() -> SweepCache:
    """The session-wide sweep cache."""
    return SweepCache()


@pytest.fixture(scope="session")
def emit():
    """Write a rendered report to stdout and benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


@pytest.fixture(scope="session")
def dataset_names() -> tuple[str, ...]:
    """The five evaluation data sets, in Table 3 order."""
    return DATASET_NAMES


def pytest_sessionfinish(session, exitstatus):
    """Concatenate all emitted tables into results/INDEX.txt.

    One file holding every regenerated table/figure, in name order —
    the single artefact to diff between benchmark runs.
    """
    if not RESULTS_DIR.is_dir():
        return
    parts: list[str] = []
    for path in sorted(RESULTS_DIR.glob("*.txt")):
        if path.name == "INDEX.txt":
            continue
        parts.append(f"===== {path.stem} =====")
        parts.append(path.read_text().rstrip())
        parts.append("")
    if parts:
        (RESULTS_DIR / "INDEX.txt").write_text("\n".join(parts) + "\n")

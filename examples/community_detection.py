"""Community detection — the paper's motivating application.

Models a follower network (the Section 1 scenario), enumerates maximal
cliques as rigorous communities, and answers the questions an analyst
would ask: which communities does a given user belong to, which
communities overlap, and which communities exist only among the
celebrity (hub) accounts.

Run with::

    python examples/community_detection.py
"""

from __future__ import annotations

from collections import defaultdict

from repro import find_max_cliques
from repro.core.feasibility import cut
from repro.graph import social_network


def main() -> None:
    # A follower network: heavy-tailed degrees, celebrities as hubs, and
    # tight planted friend groups.
    graph = social_network(
        800,
        attachment=4,
        closure_probability=0.55,
        planted_cliques=(14, 11, 9, 9, 7),
        seed=7,
    )
    m = max(2, graph.max_degree() // 5)
    result = find_max_cliques(graph, m)
    feasible, hubs = cut(graph, m)

    print(
        f"network: {graph.num_nodes} users, {graph.num_edges} follows, "
        f"{len(hubs)} celebrity accounts (degree >= {m})"
    )
    print(f"communities (maximal cliques): {result.num_cliques}")

    # --- Question 1: communities of the most-followed user ------------
    celebrity = max(graph.nodes(), key=graph.degree)
    memberships = [c for c in result.cliques if celebrity in c]
    memberships.sort(key=len, reverse=True)
    print(
        f"\nuser {celebrity} (degree {graph.degree(celebrity)}) belongs to "
        f"{len(memberships)} communities; the largest three:"
    )
    for clique in memberships[:3]:
        print(f"  size {len(clique):2d}: {sorted(clique)}")

    # --- Question 2: overlapping communities ---------------------------
    # Maximal cliques natively support overlap (a user in several friend
    # groups), unlike partition-based clustering (Section 7).
    membership_count: dict[object, int] = defaultdict(int)
    for clique in result.cliques:
        for node in clique:
            membership_count[node] += 1
    busiest = max(membership_count, key=membership_count.get)
    print(
        f"\nmost socially-embedded user: {busiest} sits in "
        f"{membership_count[busiest]} distinct communities"
    )

    # --- Question 3: celebrity-only communities ------------------------
    hub_communities = result.hub_cliques()
    print(
        f"\n{len(hub_communities)} communities consist of celebrity "
        "accounts only — the cliques the paper's first-level recursion "
        "exists to find:"
    )
    for clique in sorted(hub_communities, key=len, reverse=True)[:3]:
        print(f"  size {len(clique):2d}: {sorted(clique)}")

    # --- Question 4: how significant are they? -------------------------
    share = result.hub_share_of_largest(50)
    print(
        f"\nof the 50 largest communities, {share:.0%} are celebrity-only "
        "(they would be silently lost by a hub-oblivious decomposition)"
    )

    # --- Question 5: coarser, scored communities -----------------------
    # Merge cliques into overlapping k-clique communities (the Section 8
    # relaxation) and score the cover.
    from repro.analysis import overlapping_quality
    from repro.relaxed import k_clique_communities

    merged = k_clique_communities(result.cliques, k=4)
    quality = overlapping_quality(graph, merged)
    print(
        f"\nmerged into {len(merged)} overlapping 4-clique communities: "
        f"{quality.coverage:.0%} of users covered, "
        f"{quality.intra_edge_fraction:.0%} of follows explained, "
        f"mean conductance {quality.mean_conductance:.2f}"
    )


if __name__ == "__main__":
    main()

"""Evolving network — incremental clique maintenance (Section 8).

Social networks grow continuously; re-enumerating every clique after
each new friendship is wasteful.  This example simulates a growing
network with preferential attachment, maintains the community set
incrementally, and shows the communities of a chosen user updating live
as edges arrive — the paper's "incremental version" future-work item.

Run with::

    python examples/evolving_network.py
"""

from __future__ import annotations

import random
import time

from repro.graph import social_network
from repro.incremental import IncrementalMCE
from repro.mce import tomita


def main() -> None:
    base = social_network(300, attachment=3, closure_probability=0.4, seed=11)
    tracker = IncrementalMCE(base)
    print(
        f"initial network: {base.num_nodes} users, {base.num_edges} "
        f"friendships, {tracker.num_cliques} communities"
    )

    rng = random.Random(99)
    watched = max(base.nodes(), key=base.degree)
    print(
        f"watching user {watched} "
        f"(initially in {len(tracker.cliques_of(watched))} communities)\n"
    )

    nodes = list(base.nodes())
    updates = 150
    start = time.perf_counter()
    events = 0
    for step in range(updates):
        # 80% growth (new friendships, preferentially around the
        # watched hub), 20% churn (unfriending).
        if rng.random() < 0.8:
            u = watched if rng.random() < 0.3 else rng.choice(nodes)
            v = rng.choice(nodes)
            if u != v and not tracker.graph.has_edge(u, v):
                before = len(tracker.cliques_of(watched))
                tracker.insert_edge(u, v)
                after = len(tracker.cliques_of(watched))
                if after != before and watched in (u, v):
                    events += 1
                    if events <= 5:
                        print(
                            f"  step {step:3d}: {u}–{v} joined; user "
                            f"{watched} now in {after} communities"
                        )
        else:
            edges = list(tracker.graph.edges())
            if edges:
                u, v = rng.choice(edges)
                tracker.delete_edge(u, v)
    incremental_seconds = time.perf_counter() - start

    print(
        f"\nafter {updates} updates: {tracker.num_cliques} communities, "
        f"user {watched} in {len(tracker.cliques_of(watched))}"
    )

    # Verify against a full re-enumeration and compare the costs.
    start = time.perf_counter()
    recomputed = set(tomita(tracker.graph))
    recompute_seconds = time.perf_counter() - start
    assert tracker.cliques == recomputed
    print(
        f"incremental maintenance: {1000 * incremental_seconds / updates:.2f} "
        f"ms/update; one full re-enumeration alone costs "
        f"{1000 * recompute_seconds:.0f} ms"
    )


if __name__ == "__main__":
    main()

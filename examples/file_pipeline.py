"""File pipeline — the paper's Section 6.2 data flow, end to end.

The deployed system reads ⟨n1, e, n2⟩ triple files with hashed labels,
decomposes, analyses blocks on the cluster, and writes the cliques out.
This example runs that full pipeline locally: generate a network, write
it in the triple format, reload it, hash the labels, run the
distributed driver on the simulated cluster, and persist the cliques.

Run with::

    python examples/file_pipeline.py [workdir]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.distributed import run_distributed
from repro.graph import social_network
from repro.graph.io import hash_labels, read_cliques, read_triples, write_cliques, write_triples
from repro.graph.views import map_cliques


def main(workdir: str | None = None) -> None:
    base = Path(workdir) if workdir else Path(tempfile.mkdtemp(prefix="repro-"))
    base.mkdir(parents=True, exist_ok=True)

    # 1. A network with human-readable labels, as a data provider would
    #    export it.
    raw = social_network(400, attachment=3, planted_cliques=(10,), seed=21)
    named = raw.copy()
    # Give nodes "user<k>" labels to make the hashing step meaningful.
    from repro.graph.views import relabel

    named = relabel(named, {node: f"user{node}" for node in named.nodes()})

    triples_path = base / "network.triples"
    records = write_triples(named, triples_path)
    print(f"wrote {records} triple records to {triples_path}")

    # 2. Reload and hash labels (Section 6.2: "we encoded node and edge
    #    labels with hashes").
    loaded = read_triples(triples_path)
    assert loaded == named
    hashed, inverse = hash_labels(loaded)
    print(f"hashed {hashed.num_nodes} node labels")

    # 3. Distributed enumeration on the simulated 10-machine cluster.
    m = max(2, hashed.max_degree() // 4)
    result = run_distributed(hashed, m)
    print(
        f"found {result.num_cliques} maximal cliques with m = {m} "
        f"(simulated makespan {result.simulated_makespan():.3f}s, "
        f"speed-up {result.simulated_speedup():.1f}x)"
    )

    # 4. Translate cliques back to the original labels and persist.
    readable = map_cliques(result.cliques, inverse)
    cliques_path = base / "cliques.jsonl"
    write_cliques(readable, cliques_path)
    reloaded = read_cliques(cliques_path)
    assert set(reloaded) == set(readable)
    print(f"wrote {len(readable)} cliques to {cliques_path}")

    largest = max(reloaded, key=len)
    print(f"largest community ({len(largest)} members): {sorted(largest)[:6]}...")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)

"""Hub analysis — what goes wrong without the two-level decomposition.

Reproduces the paper's motivating failure: run an EmMCE-style
fixed-block decomposition (no hub handling) next to the complete
two-level decomposition at a small block size, and show the cliques the
naive strategy misses and the non-maximal cliques it fabricates.

Run with::

    python examples/hub_analysis.py
"""

from __future__ import annotations

from repro import find_max_cliques
from repro.analysis import format_table
from repro.baselines import naive_block_mce
from repro.graph import load_dataset


def main() -> None:
    graph = load_dataset("google+")
    m = max(2, graph.max_degree() // 10)  # m/d = 0.1, the efficient regime
    print(
        f"google+ stand-in: {graph.num_nodes} nodes, "
        f"{graph.num_edges} edges, block size m = {m}"
    )

    complete = find_max_cliques(graph, m)
    reference = set(complete.cliques)
    naive = naive_block_mce(graph, m)
    missed = naive.missed(reference)
    spurious = naive.spurious(graph)

    print()
    print(
        format_table(
            ["strategy", "#cliques reported", "missed", "non-maximal"],
            [
                ["two-level (this paper)", complete.num_cliques, 0, 0],
                ["naive fixed blocks", naive.num_cliques, len(missed), len(spurious)],
            ],
            title="Completeness at small block size",
        )
    )

    # How significant is what was lost?  Check the largest communities.
    top = complete.largest(200)
    top_missed = [clique for clique in top if clique in missed]
    print(
        f"\nof the 200 largest communities, the naive strategy loses "
        f"{len(top_missed)} ({len(top_missed) / len(top):.0%})"
    )
    if top_missed:
        biggest = max(top_missed, key=len)
        print(
            f"largest lost community has {len(biggest)} members, e.g. "
            f"{sorted(biggest)[:8]}..."
        )

    # And a sample of the fabricated output: a reported "community" that
    # is actually embedded in a larger one the naive strategy never saw.
    if spurious:
        sample = max(spurious, key=len)
        containing = max(
            (c for c in reference if sample < c), key=len, default=None
        )
        print(
            f"\nexample fabricated community: {sorted(sample)} is reported "
            "as maximal by the naive strategy"
        )
        if containing is not None:
            print(
                f"but it is contained in the real community of size "
                f"{len(containing)} around the hub nodes"
            )


if __name__ == "__main__":
    main()

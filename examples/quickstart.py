"""Quickstart — enumerate all maximal cliques of a social network.

Builds a small scale-free network with planted communities, runs the
paper's two-level decomposition, and prints what was found.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import find_max_cliques
from repro.graph import degeneracy, social_network


def main() -> None:
    # A 500-node preferential-attachment network with triadic closure and
    # two planted communities (a 12-clique and an 8-clique).
    graph = social_network(
        500,
        attachment=3,
        closure_probability=0.5,
        planted_cliques=(12, 8),
        seed=42,
    )
    print(f"network: {graph.num_nodes} nodes, {graph.num_edges} edges")
    print(f"max degree {graph.max_degree()}, degeneracy {degeneracy(graph)}")

    # Pick a block size well below the max degree (so hubs exist and the
    # two-level machinery is exercised) but above the degeneracy (so the
    # recursion is guaranteed to converge -- Theorem 1).
    m = max(2, graph.max_degree() // 4)
    print(f"block size m = {m}")

    result = find_max_cliques(graph, m)

    print(f"\nfound {result.num_cliques} maximal cliques")
    print(f"largest clique has {result.max_clique_size()} members")
    print(f"average clique size {result.average_clique_size():.2f}")
    print(f"first-level recursion took {result.recursion_depth} rounds")
    print(
        f"{len(result.hub_cliques())} cliques consist of hub nodes only "
        "(these are the ones a hub-oblivious decomposition would lose)"
    )

    print("\nthe five largest communities:")
    for clique in result.largest(5):
        members = ", ".join(str(node) for node in sorted(clique))
        print(f"  size {len(clique):2d}: {{{members}}}")


if __name__ == "__main__":
    main()

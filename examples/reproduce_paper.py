"""One-command miniature reproduction of the paper's evaluation.

Runs a scaled-down version of every Section 6 experiment on one data
set and prints a report in the order of the paper's figures.  The full
harness (all data sets, all ratios, assertions on every shape) lives in
``benchmarks/``; this script is the five-minute tour.

Run with::

    python examples/reproduce_paper.py [dataset]
"""

from __future__ import annotations

import sys

from repro import find_max_cliques
from repro.analysis import (
    bar_chart,
    degree_profile,
    format_table,
    grouped_bar_chart,
    largest_cliques_split,
    provenance_split,
)
from repro.baselines import naive_block_mce
from repro.distributed import paper_cluster, simulate_reports
from repro.graph import load_dataset
from repro.graph.datasets import DATASETS

RATIOS = (0.9, 0.5, 0.1)


def main(dataset: str = "google+") -> None:
    spec = DATASETS[dataset]
    graph = spec.build()
    d = graph.max_degree()

    print("=" * 72)
    print(f"Reproducing the EDBT 2016 evaluation on the {dataset} stand-in")
    print("=" * 72)

    # ---- Table 3 / Figure 6: the data set ---------------------------
    profile = degree_profile(dataset, graph)
    print(
        f"\n[Table 3] {graph.num_nodes} nodes, {graph.num_edges} edges, "
        f"max degree {d} (paper original: {spec.paper_nodes:,} nodes)"
    )
    print(
        f"[Figure 6] {profile.low_degree_fraction:.0%} of nodes have "
        f"degree <= 20; power-law alpha = {profile.power_law_alpha:.2f}"
    )

    # ---- Figures 7-10: the m/d sweep --------------------------------
    rows = []
    results = {}
    for ratio in RATIOS:
        m = max(2, int(ratio * d))
        result = find_max_cliques(graph, m, collect_reports=(ratio == 0.5))
        results[ratio] = result
        split = provenance_split(result)
        rows.append(
            [
                ratio,
                m,
                result.recursion_depth,
                result.total_decomposition_seconds(),
                result.total_analysis_seconds(),
                split.feasible_count,
                split.hub_count,
            ]
        )
    print()
    print(
        format_table(
            [
                "m/d",
                "m",
                "iters",
                "decomp (s)",
                "cliques (s)",
                "#feasible",
                "#hub-only",
            ],
            rows,
            title="[Figures 7-10] the m/d sweep",
        )
    )
    counts = {result.num_cliques for result in results.values()}
    assert len(counts) == 1, "output must be invariant in m"
    print(
        f"output invariant across the sweep: {counts.pop()} maximal "
        f"cliques, largest {results[0.5].max_clique_size()} "
        f"(paper's annotation: {spec.paper_max_clique})"
    )

    # ---- Figure 11: the 200 largest cliques -------------------------
    print()
    series = {"feasible": [], "hub-only": []}
    for ratio in RATIOS:
        feasible, hub = largest_cliques_split(results[ratio], k=200)
        series["feasible"].append(feasible)
        series["hub-only"].append(hub)
    print(
        grouped_bar_chart(
            [f"m/d={r}" for r in RATIOS],
            series,
            title="[Figure 11] provenance of the 200 largest cliques",
        )
    )

    # ---- Section 6 headline: vs the naive baseline ------------------
    m_small = max(2, int(0.1 * d))
    naive = naive_block_mce(graph, m_small)
    reference = set(results[0.1].cliques)
    missed = naive.missed(reference)
    print(
        f"\n[Section 6 headline] hub-oblivious blocks at m={m_small}: "
        f"missed {len(missed)}/{len(reference)} maximal cliques "
        f"({len(missed) / len(reference):.0%}) and fabricated "
        f"{len(naive.spurious(graph))} non-maximal ones"
    )

    # ---- Section 6.1: the simulated cluster -------------------------
    reports = [r for level in results[0.5].block_reports for r in level]
    run = simulate_reports(reports, paper_cluster())
    print(
        f"\n[Section 6.1] on the paper's 10-machine cluster (simulated): "
        f"serial {run.serial_seconds:.2f}s -> {run.makespan_seconds:.4f}s, "
        f"speed-up {run.speedup:.0f}x"
    )

    # ---- Theorem 1 ----------------------------------------------------
    from repro.graph.cores import degeneracy
    from repro.graph.generators import h_n

    dg = degeneracy(graph)
    print(
        f"\n[Theorem 1] degeneracy {dg} << max degree {d}: every swept m "
        f"exceeds it, so the recursion converged in "
        f"{max(r.recursion_depth for r in results.values())} rounds at worst."
    )
    pathological = h_n(40, 4)
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        worst = find_max_cliques(pathological, 5)
    print(
        f"the pathological H_40 needs {worst.recursion_depth} rounds — "
        "the Omega(n) lower bound of statement 2."
    )

    print("\nfull reproduction: pytest benchmarks/ --benchmark-only")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "google+")

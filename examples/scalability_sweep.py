"""Scalability sweep — the Section 6 experiment in miniature.

Sweeps the m/d ratio on one data-set stand-in, printing the
decomposition time, clique-computation time, recursion depth, and
provenance split per ratio (the Figure 7/8/9 series), then simulates
the run on the paper's 10-machine cluster to show the realised
speed-up.

Run with::

    python examples/scalability_sweep.py [dataset]

where ``dataset`` is one of twitter1, twitter2, twitter3, facebook,
google+ (default google+).
"""

from __future__ import annotations

import sys

from repro import find_max_cliques
from repro.analysis import format_table, provenance_split
from repro.distributed import paper_cluster, simulate_reports
from repro.graph import load_dataset

RATIOS = (0.9, 0.7, 0.5, 0.3, 0.1)


def main(dataset: str = "google+") -> None:
    graph = load_dataset(dataset)
    d = graph.max_degree()
    print(
        f"{dataset}: {graph.num_nodes} nodes, {graph.num_edges} edges, "
        f"max degree {d}"
    )

    rows = []
    reports_at_half = None
    for ratio in RATIOS:
        m = max(2, int(ratio * d))
        result = find_max_cliques(graph, m, collect_reports=True)
        split = provenance_split(result)
        rows.append(
            [
                ratio,
                m,
                result.recursion_depth,
                result.total_decomposition_seconds(),
                result.total_analysis_seconds(),
                split.feasible_count,
                split.hub_count,
            ]
        )
        if ratio == 0.5:
            reports_at_half = [
                report for level in result.block_reports for report in level
            ]

    print()
    print(
        format_table(
            [
                "m/d",
                "m",
                "iterations",
                "decomp (s)",
                "cliques (s)",
                "#feasible",
                "#hub-only",
            ],
            rows,
            title=f"m/d sweep on {dataset} (Figures 7, 8 and 9/10 in one table)",
        )
    )

    assert reports_at_half is not None
    run = simulate_reports(reports_at_half, paper_cluster())
    print(
        f"\non the paper's 10-machine cluster (simulated, m/d = 0.5): "
        f"serial {run.serial_seconds:.2f}s -> makespan "
        f"{run.makespan_seconds:.3f}s, speed-up {run.speedup:.1f}x, "
        f"load skew {run.skew:.2f}"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "google+")

"""Train the best-fit selector — the Section 4 pipeline, end to end.

Builds a heterogeneous graph corpus, times all twelve
(algorithm × data structure) combinations on every graph, trains a
CART-style decision tree on the 80% split, evaluates it on the held-out
20%, saves it to JSON, and uses it to drive the two-level decomposition
— exactly how the paper's deployment consumes its rpart tree.

Run with::

    python examples/train_selector.py [corpus_size]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import find_max_cliques
from repro.decision import (
    build_corpus,
    label_corpus,
    load_tree,
    paper_tree,
    save_tree,
    train,
    win_counts,
)
from repro.graph import social_network


def main(corpus_size: int = 30) -> None:
    print(f"building a {corpus_size}-graph corpus (ER + BA + WS + social)...")
    corpus = build_corpus(count=corpus_size, seed=7, size_range=(40, 140))

    print("timing all 12 combinations on every graph (Table 1)...")
    labelled = label_corpus(corpus)
    for combo, wins in sorted(
        win_counts(labelled).items(), key=lambda item: -item[1]
    ):
        print(f"  {combo}: fastest on {wins} graphs")

    print("\ntraining on the 80% split (Figure 3)...")
    result = train(labelled, train_fraction=0.8, seed=13)
    print(result.tree.render(indent=2))
    print(f"test accuracy: {result.test_accuracy:.0%}")
    print(
        f"test-split time — tree: {result.total_test_time():.4f}s, "
        f"oracle: {sum(min(e.timings.values()) for e in result.testing):.4f}s"
    )

    tree_path = Path(tempfile.mkdtemp(prefix="repro-")) / "selector.json"
    save_tree(result.tree, tree_path)
    print(f"\nsaved the trained tree to {tree_path}")

    # Deploy: drive the decomposition with the trained tree.
    graph = social_network(400, attachment=3, planted_cliques=(10,), seed=3)
    deployed = load_tree(tree_path)
    with_trained = find_max_cliques(graph, 30, tree=deployed)
    with_published = find_max_cliques(graph, 30, tree=paper_tree())
    assert set(with_trained.cliques) == set(with_published.cliques)
    print(
        f"deployment check: {with_trained.num_cliques} cliques with either "
        "tree (outputs identical, as they must be)"
    )
    print("combos chosen by the trained tree:", with_trained.block_combos)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 30)

"""Setup shim for environments without PEP 660 editable-install support.

``pip install -e .`` works normally where the ``wheel`` package is
available; on fully offline interpreters that lack it, this shim lets
``python setup.py develop`` provide the same editable install.
"""

from setuptools import setup

setup()

"""repro — hub-aware distributed maximal clique enumeration.

A faithful reimplementation of *Finding All Maximal Cliques in Very
Large Social Networks* (Conte, De Virgilio, Maccioni, Patrignani,
Torlone — EDBT 2016).  The headline entry point is
:func:`find_max_cliques`, the paper's two-level decomposition driver;
the subpackages expose every layer it is built from:

* :mod:`repro.graph` — graph container, generators, cores, serialisation;
* :mod:`repro.mce` — the four-algorithm × three-structure MCE portfolio;
* :mod:`repro.decision` — the best-fit decision tree (Figure 3) and its
  training pipeline;
* :mod:`repro.core` — CUT / BLOCKS / BLOCK-ANALYSIS / filtering;
* :mod:`repro.distributed` — the simulated cluster and executors;
* :mod:`repro.baselines` — exact, networkx and naive-block comparators;
* :mod:`repro.analysis` — measurement and report helpers.

Quickstart::

    from repro import Graph, find_max_cliques
    from repro.graph import social_network

    graph = social_network(500, attachment=3, seed=7)
    result = find_max_cliques(graph, m=32)
    print(result.num_cliques, result.max_clique_size())
"""

from repro.core.driver import decompose_only, find_max_cliques
from repro.core.planner import BlockSizePlan, recommend_block_size
from repro.core.result import CliqueResult, LevelStats
from repro.errors import (
    ConvergenceError,
    DecompositionError,
    ExecutorError,
    FormatError,
    GraphError,
    ReproError,
)
from repro.graph.adjacency import Graph, Node

__version__ = "1.0.0"

__all__ = [
    "decompose_only",
    "find_max_cliques",
    "BlockSizePlan",
    "recommend_block_size",
    "CliqueResult",
    "LevelStats",
    "ConvergenceError",
    "DecompositionError",
    "ExecutorError",
    "FormatError",
    "GraphError",
    "ReproError",
    "Graph",
    "Node",
    "__version__",
]

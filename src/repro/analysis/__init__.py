"""Measurement and reporting helpers for the evaluation harness."""

from repro.analysis.cliques import (
    ProvenanceSplit,
    largest_cliques_split,
    overlap_stats,
    provenance_split,
    size_histogram,
)
from repro.analysis.charts import bar_chart, grouped_bar_chart, log_bar_chart
from repro.analysis.degrees import DegreeProfile, degree_profile, hub_shares
from repro.analysis.dot import block_to_dot, decomposition_to_dot, graph_to_dot
from repro.analysis.modularity import CoverQuality, modularity, overlapping_quality
from repro.analysis.timing import TimingSample, measure
from repro.analysis.report import format_csv, format_series, format_table
from repro.analysis.triangles import (
    average_clustering,
    transitivity,
    triangle_counts,
    triangle_total,
)

__all__ = [
    "ProvenanceSplit",
    "largest_cliques_split",
    "overlap_stats",
    "provenance_split",
    "size_histogram",
    "DegreeProfile",
    "degree_profile",
    "hub_shares",
    "format_csv",
    "format_series",
    "format_table",
    "average_clustering",
    "transitivity",
    "triangle_counts",
    "triangle_total",
    "bar_chart",
    "grouped_bar_chart",
    "log_bar_chart",
    "TimingSample",
    "measure",
    "block_to_dot",
    "decomposition_to_dot",
    "graph_to_dot",
    "CoverQuality",
    "modularity",
    "overlapping_quality",
]

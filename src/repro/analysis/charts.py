"""ASCII chart rendering for benchmark output.

The paper communicates most results as bar charts and series plots;
the benchmark harness prints text tables plus these ASCII renderings so
the *shape* of each figure — who is bigger, where the crossover sits —
is visible directly in the terminal and in the recorded
``benchmarks/results/*.txt`` artefacts.
"""

from __future__ import annotations

import math
from typing import Sequence

_BAR = "█"
_HALF = "▌"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Render one horizontal bar per (label, value).

    Values must be non-negative; bars scale to the maximum value.

    Raises
    ------
    ValueError
        On mismatched lengths or negative values.
    """
    if len(labels) != len(values):
        raise ValueError(f"{len(labels)} labels but {len(values)} values")
    if any(value < 0 for value in values):
        raise ValueError("bar values must be non-negative")
    lines: list[str] = []
    if title:
        lines.append(title)
    if not labels:
        return "\n".join(lines + ["(no data)"])
    label_width = max(len(label) for label in labels)
    top = max(values) or 1.0
    for label, value in zip(labels, values):
        filled = value / top * width
        whole = int(filled)
        bar = _BAR * whole + (_HALF if filled - whole >= 0.5 else "")
        lines.append(f"{label.ljust(label_width)}  {bar} {value:.4g}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[str],
    series: dict[str, Sequence[float]],
    width: int = 40,
    title: str | None = None,
) -> str:
    """Render grouped bars: one block per group, one bar per series.

    This is the shape of the paper's Figures 9–11 (white/gray bars per
    m/d ratio).

    Raises
    ------
    ValueError
        If any series length differs from the number of groups.
    """
    for name, values in series.items():
        if len(values) != len(groups):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(groups)} groups"
            )
    lines: list[str] = []
    if title:
        lines.append(title)
    top = max(
        (value for values in series.values() for value in values), default=1.0
    ) or 1.0
    name_width = max((len(name) for name in series), default=0)
    for index, group in enumerate(groups):
        lines.append(f"{group}:")
        for name, values in series.items():
            value = values[index]
            bar = _BAR * int(value / top * width)
            lines.append(f"  {name.ljust(name_width)}  {bar} {value:.4g}")
    return "\n".join(lines)


def log_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str | None = None,
) -> str:
    """Like :func:`bar_chart` but on a log10 scale (Figures 9a/10a).

    Zero values render as empty bars.

    Raises
    ------
    ValueError
        On mismatched lengths or negative values.
    """
    if len(labels) != len(values):
        raise ValueError(f"{len(labels)} labels but {len(values)} values")
    if any(value < 0 for value in values):
        raise ValueError("bar values must be non-negative")
    lines: list[str] = []
    if title:
        lines.append(title)
    if not labels:
        return "\n".join(lines + ["(no data)"])
    logs = [math.log10(value) if value >= 1 else 0.0 for value in values]
    top = max(logs) or 1.0
    label_width = max(len(label) for label in labels)
    for label, value, logged in zip(labels, values, logs):
        bar = _BAR * int(logged / top * width)
        lines.append(f"{label.ljust(label_width)}  {bar} {value:g}")
    return "\n".join(lines)

"""Clique-set statistics behind Figures 9, 10 and 11.

Every measurement the paper plots about clique outputs is computed here:
counts and average sizes split by provenance (feasible-touching vs
hub-only), size histograms, and the hub share of the *k* largest cliques.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from statistics import mean

from repro.core.result import CliqueResult
from repro.graph.adjacency import Node


@dataclass(frozen=True)
class ProvenanceSplit:
    """Counts and sizes of one run's output, split as in Figures 9/10."""

    feasible_count: int
    hub_count: int
    feasible_avg_size: float
    hub_avg_size: float
    max_clique_size: int

    @property
    def total(self) -> int:
        """Total number of maximal cliques."""
        return self.feasible_count + self.hub_count

    @property
    def hub_fraction(self) -> float:
        """Share of cliques that are hub-only (0.0 when no cliques)."""
        if self.total == 0:
            return 0.0
        return self.hub_count / self.total


def provenance_split(result: CliqueResult) -> ProvenanceSplit:
    """Summarise a run's output by provenance (Figures 9a/9b, 10a/10b)."""
    feasible = result.feasible_cliques()
    hubs = result.hub_cliques()
    return ProvenanceSplit(
        feasible_count=len(feasible),
        hub_count=len(hubs),
        feasible_avg_size=mean(len(c) for c in feasible) if feasible else 0.0,
        hub_avg_size=mean(len(c) for c in hubs) if hubs else 0.0,
        max_clique_size=result.max_clique_size(),
    )


def size_histogram(cliques: list[frozenset[Node]]) -> dict[int, int]:
    """Return ``{clique size: count}`` over ``cliques``."""
    return dict(Counter(len(clique) for clique in cliques))


def largest_cliques_split(result: CliqueResult, k: int = 200) -> tuple[float, float]:
    """Provenance shares of the ``k`` largest cliques (Figure 11).

    Returns ``(feasible_share, hub_share)``; the two sum to 1.0 whenever
    the graph has at least one clique, and are both 0.0 otherwise.
    """
    top = result.largest(k)
    if not top:
        return (0.0, 0.0)
    hub = sum(1 for clique in top if result.provenance[clique] >= 1)
    return ((len(top) - hub) / len(top), hub / len(top))


def overlap_stats(
    reference: set[frozenset[Node]], candidate: set[frozenset[Node]]
) -> dict[str, int]:
    """Set-level agreement between two clique outputs.

    Returns a dict with ``common``, ``missed`` (in reference only) and
    ``extra`` (in candidate only) counts; used when comparing the naive
    baseline against the complete decomposition.
    """
    return {
        "common": len(reference & candidate),
        "missed": len(reference - candidate),
        "extra": len(candidate - reference),
    }

"""Degree-distribution analysis behind Figure 6.

Figure 6 plots the truncated degree distribution (degrees 0–20) of each
data set and the prose reports two aggregates: "most of the nodes
(i.e. 91% of the total, on average) provide a degree included in the
range [1, 20]" and "the amount of possible hub nodes ... represents the
3% of the total set of nodes".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.adjacency import Graph
from repro.graph.properties import (
    degree_histogram,
    fraction_with_degree_at_most,
    power_law_exponent,
)


@dataclass(frozen=True)
class DegreeProfile:
    """Degree-distribution summary of one network."""

    name: str
    num_nodes: int
    num_edges: int
    max_degree: int
    truncated_histogram: list[int]  # counts for degrees 0..truncate_at
    low_degree_fraction: float  # nodes with degree <= truncate_at
    power_law_alpha: float


def degree_profile(name: str, graph: Graph, truncate_at: int = 20) -> DegreeProfile:
    """Compute the Figure 6 profile of ``graph``.

    Raises
    ------
    ValueError
        If ``truncate_at`` is negative.
    """
    if truncate_at < 0:
        raise ValueError("truncate_at must be non-negative")
    return DegreeProfile(
        name=name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        max_degree=graph.max_degree(),
        truncated_histogram=degree_histogram(graph, max_degree=truncate_at),
        low_degree_fraction=fraction_with_degree_at_most(graph, truncate_at),
        power_law_alpha=power_law_exponent(graph),
    )


def hub_shares(graph: Graph, m_values: list[int]) -> list[tuple[int, float]]:
    """Fraction of hub nodes (degree ≥ m) for each block size in turn."""
    rows: list[tuple[int, float]] = []
    for m in m_values:
        if m < 1:
            raise ValueError("block sizes must be positive")
        hubs = sum(1 for node in graph.nodes() if graph.degree(node) >= m)
        rows.append((m, hubs / graph.num_nodes if graph.num_nodes else 0.0))
    return rows

"""Graphviz DOT export for inspection and debugging.

The paper's Figures 1 and 2 are exactly these pictures: the network
with hubs highlighted, and the block decomposition with kernel /
border / visited roles.  These exporters emit plain DOT text (no
Graphviz dependency; render with ``dot -Tpng`` wherever available).
"""

from __future__ import annotations

from repro.core.blocks import Block
from repro.graph.adjacency import Graph, Node

_ROLE_COLORS = {
    "kernel": "white",
    "border": "palegreen",
    "visited": "lightblue",
    "hub": "salmon",
}


def _quote(label: Node) -> str:
    """Render a node id as a quoted DOT identifier."""
    return '"' + str(label).replace("\\", "\\\\").replace('"', '\\"') + '"'


def graph_to_dot(
    graph: Graph,
    hubs: set[Node] | frozenset[Node] = frozenset(),
    name: str = "network",
) -> str:
    """Render ``graph`` as DOT, colouring ``hubs`` like Figure 1.

    Hub nodes are filled salmon (the paper's red), the rest white.
    """
    lines = [f"graph {_quote(name)} {{", "  node [style=filled];"]
    for node in graph.nodes():
        color = _ROLE_COLORS["hub"] if node in hubs else "white"
        lines.append(f"  {_quote(node)} [fillcolor={color}];")
    for u, v in graph.edges():
        lines.append(f"  {_quote(u)} -- {_quote(v)};")
    lines.append("}")
    return "\n".join(lines)


def block_to_dot(block: Block, name: str = "block") -> str:
    """Render one block as DOT with Figure 2's role colouring.

    Kernel nodes are white, border nodes green, visited nodes blue
    (double-marked in the paper's figure).
    """
    lines = [f"graph {_quote(name)} {{", "  node [style=filled];"]
    for node in block.graph.nodes():
        role = block.node_kind(node)
        shape = ' shape=doublecircle' if role == "visited" else ""
        lines.append(
            f"  {_quote(node)} [fillcolor={_ROLE_COLORS[role]}{shape}];"
        )
    for u, v in block.graph.edges():
        lines.append(f"  {_quote(u)} -- {_quote(v)};")
    lines.append("}")
    return "\n".join(lines)


def decomposition_to_dot(blocks: list[Block], name: str = "decomposition") -> str:
    """Render a whole decomposition as DOT clusters, one per block.

    Nodes appearing in several blocks are emitted once per cluster with
    a block-qualified id (DOT clusters cannot share nodes), mirroring
    how the decomposition physically replicates border nodes.
    """
    lines = [f"graph {_quote(name)} {{", "  node [style=filled];"]
    for index, block in enumerate(blocks):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f'    label="B{index + 1}";')
        for node in block.graph.nodes():
            role = block.node_kind(node)
            qualified = f"b{index}:{node}"
            lines.append(
                f"    {_quote(qualified)} "
                f'[label={_quote(node)} fillcolor={_ROLE_COLORS[role]}];'
            )
        for u, v in block.graph.edges():
            lines.append(
                f"    {_quote(f'b{index}:{u}')} -- {_quote(f'b{index}:{v}')};"
            )
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)

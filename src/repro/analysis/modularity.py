"""Newman modularity for evaluating detected communities.

The community-detection methods the paper surveys (Section 7:
WalkTrap, SCD, link clustering) are conventionally scored by
modularity — the excess of intra-community edges over a random-graph
expectation.  The percolation extension produces *overlapping*
communities, so two scorers are provided: strict modularity for a
partition, and a coverage/conductance-style summary for overlapping
covers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.graph.adjacency import Graph, Node


def modularity(graph: Graph, communities: Sequence[frozenset[Node]]) -> float:
    """Return the Newman modularity of a node partition.

    ``Q = Σ_c [ e_c / m  -  (d_c / 2m)² ]`` where ``e_c`` is the number
    of intra-community edges and ``d_c`` the total degree of community
    ``c``.  Range is ``[-1/2, 1)``; larger is better.

    Raises
    ------
    ValueError
        If the communities are not a partition of the node set (use
        :func:`overlapping_quality` for overlapping covers) or the
        graph has no edges.
    """
    if graph.num_edges == 0:
        raise ValueError("modularity is undefined on an edgeless graph")
    seen: set[Node] = set()
    for community in communities:
        overlap = community & seen
        if overlap:
            raise ValueError(
                f"communities overlap on {len(overlap)} nodes; "
                "use overlapping_quality for covers"
            )
        seen |= community
    if seen != set(graph.nodes()):
        raise ValueError("communities do not cover every node")
    m = graph.num_edges
    score = 0.0
    for community in communities:
        internal = 0
        degree_sum = 0
        for node in community:
            degree_sum += graph.degree(node)
            for neighbor in graph.neighbors(node):
                if neighbor in community:
                    internal += 1
        internal //= 2
        score += internal / m - (degree_sum / (2 * m)) ** 2
    return score


@dataclass(frozen=True)
class CoverQuality:
    """Quality summary of an (overlapping) community cover."""

    coverage: float  # fraction of nodes in >= 1 community
    intra_edge_fraction: float  # edges with both ends sharing a community
    mean_conductance: float  # lower is better; 0.0 for isolated communities


def overlapping_quality(
    graph: Graph, communities: Sequence[frozenset[Node]]
) -> CoverQuality:
    """Score an overlapping community cover.

    * *coverage* — fraction of nodes belonging to at least one community;
    * *intra-edge fraction* — fraction of edges whose endpoints share at
      least one community (1.0 means every tie is explained);
    * *mean conductance* — average over communities of
      ``cut(c) / min(vol(c), vol(V − c))`` (0.0 when communities have
      no outgoing edges).

    Returns zeros for an empty cover or an edgeless graph.
    """
    if not communities or graph.num_edges == 0:
        return CoverQuality(
            coverage=0.0, intra_edge_fraction=0.0, mean_conductance=0.0
        )
    covered: set[Node] = set()
    for community in communities:
        covered |= community
    coverage = len(covered) / graph.num_nodes if graph.num_nodes else 0.0

    membership: dict[Node, set[int]] = {}
    for index, community in enumerate(communities):
        for node in community:
            membership.setdefault(node, set()).add(index)
    intra = sum(
        1
        for u, v in graph.edges()
        if membership.get(u, set()) & membership.get(v, set())
    )
    intra_fraction = intra / graph.num_edges

    total_volume = 2 * graph.num_edges
    conductances: list[float] = []
    for community in communities:
        cut = 0
        volume = 0
        for node in community:
            volume += graph.degree(node)
            for neighbor in graph.neighbors(node):
                if neighbor not in community:
                    cut += 1
        denominator = min(volume, total_volume - volume)
        conductances.append(cut / denominator if denominator else 0.0)
    return CoverQuality(
        coverage=coverage,
        intra_edge_fraction=intra_fraction,
        mean_conductance=sum(conductances) / len(conductances),
    )

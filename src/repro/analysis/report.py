"""Fixed-width table and CSV emitters used by the benchmark harness.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that formatting in one place so every bench
target reads alike.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width text table.

    Floats are shown with 4 significant digits; everything else via
    ``str``.  Columns are sized to their widest cell.
    """
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row with {len(row)} cells does not match {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_csv(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render rows as minimal CSV (no quoting — callers pass plain cells)."""
    lines = [",".join(headers)]
    for row in rows:
        lines.append(",".join(_cell(value) for value in row))
    return "\n".join(lines)


def format_series(
    label: str, points: Iterable[tuple[object, object]]
) -> str:
    """Render an ``x -> y`` series as one labelled line per point."""
    lines = [label]
    for x, y in points:
        lines.append(f"  {_cell(x)} -> {_cell(y)}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    """Format one table cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)

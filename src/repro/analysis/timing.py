"""Repeated-measurement timing, the paper's Section 6 protocol.

"On each data set we ran Algorithm FIND-MAX-CLIQUES three times on each
machine and measured the average time."  This helper runs a callable a
configurable number of times and reports mean / best / worst / standard
deviation, so benchmarks can follow the same protocol and report noise
alongside the point estimate.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class TimingSample:
    """Aggregates of repeated wall-clock measurements of one callable."""

    runs: int
    mean_seconds: float
    best_seconds: float
    worst_seconds: float
    stdev_seconds: float

    @property
    def relative_spread(self) -> float:
        """``(worst - best) / mean``; a quick noise indicator."""
        if self.mean_seconds == 0.0:
            return 0.0
        return (self.worst_seconds - self.best_seconds) / self.mean_seconds


def measure(
    action: Callable[[], T], repeats: int = 3
) -> tuple[T, TimingSample]:
    """Run ``action`` ``repeats`` times; return its last result + timing.

    The callable must be idempotent (it is executed every repetition).

    Raises
    ------
    ValueError
        If ``repeats < 1``.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    durations: list[float] = []
    result: T | None = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = action()
        durations.append(time.perf_counter() - start)
    sample = TimingSample(
        runs=repeats,
        mean_seconds=statistics.fmean(durations),
        best_seconds=min(durations),
        worst_seconds=max(durations),
        stdev_seconds=statistics.stdev(durations) if repeats > 1 else 0.0,
    )
    return result, sample  # type: ignore[return-value]

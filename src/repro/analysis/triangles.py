"""Triangle counting and clustering coefficients.

The SCD approach the paper surveys (Section 7) scores communities by
contained triangles, and triadic closure is what gives the synthetic
data sets their clique structure, so the library carries the standard
triangle statistics: per-node counts, global transitivity, and the
average local clustering coefficient.
"""

from __future__ import annotations

from repro.graph.adjacency import Graph, Node


def triangle_counts(graph: Graph) -> dict[Node, int]:
    """Return, per node, the number of triangles through it.

    Runs in ``O(Σ deg(v)²)`` using neighbourhood intersections on the
    lower-degree endpoint of each edge, the standard edge-iterator
    algorithm.
    """
    counts: dict[Node, int] = {node: 0 for node in graph.nodes()}
    neighbors = {node: graph.neighbors(node) for node in graph.nodes()}
    for u, v in graph.edges():
        # A triangle {a, b, c} is seen from each of its three edges and
        # credits the opposite vertex each time, so after the sweep every
        # vertex of every triangle was credited exactly once.
        for w in neighbors[u] & neighbors[v]:
            counts[w] += 1
    return counts


def triangle_total(graph: Graph) -> int:
    """Return the total number of distinct triangles in ``graph``."""
    return sum(triangle_counts(graph).values()) // 3


def transitivity(graph: Graph) -> float:
    """Return the global clustering coefficient (3·triangles / triads).

    A *triad* is a path of length two; returns 0.0 when there are none.
    """
    triads = 0
    for node in graph.nodes():
        degree = graph.degree(node)
        triads += degree * (degree - 1) // 2
    if triads == 0:
        return 0.0
    return 3.0 * triangle_total(graph) / triads


def average_clustering(graph: Graph) -> float:
    """Return the mean local clustering coefficient over all nodes.

    Nodes of degree < 2 contribute 0, matching networkx's convention.
    Returns 0.0 for the empty graph.
    """
    if graph.num_nodes == 0:
        return 0.0
    counts = triangle_counts(graph)
    total = 0.0
    for node in graph.nodes():
        degree = graph.degree(node)
        if degree >= 2:
            total += 2.0 * counts[node] / (degree * (degree - 1))
    return total / graph.num_nodes

"""Comparator strategies: exact, networkx, and hub-oblivious blocks."""

from repro.baselines.degree_split import DegreeSplitResult, degree_split_mce
from repro.baselines.exact import ExactResult, exact_mce
from repro.baselines.naive_blocks import NaiveBlock, NaiveResult, naive_block_mce
from repro.baselines.networkx_mce import from_networkx, networkx_cliques, to_networkx

__all__ = [
    "DegreeSplitResult",
    "degree_split_mce",
    "ExactResult",
    "exact_mce",
    "NaiveBlock",
    "NaiveResult",
    "naive_block_mce",
    "from_networkx",
    "networkx_cliques",
    "to_networkx",
]

"""Single-machine degree-split enumeration, after Chang et al. [7].

The paper's related work (Section 7) highlights Chang, Yu and Qin,
*Fast maximal cliques enumeration in sparse graphs* (Algorithmica
2013): polynomial-delay enumeration "by using a strategy that
partitions the graph into low and high degree nodes" — the same
insight as the paper's first-level decomposition, but on one machine
and without blocks.

This implementation realises that strategy with the library's own
primitives, which makes it both a faithful related-work baseline and a
minimal illustration of why the degree split alone (without the
second-level blocks) already guarantees completeness:

1. every maximal clique touching a low-degree node is found by an
   anchored run inside that node's closed neighbourhood (which is small
   by construction);
2. the high-degree core is processed recursively, its degrees shrinking
   every round (Lemma 1 justifies the merge).

Compared to :func:`repro.core.driver.find_max_cliques` it skips block
building entirely — no distribution units, no density seeking — so the
benchmarks can separate how much of the paper's speed comes from the
split and how much from the blocks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.filtering import filter_contained
from repro.graph.adjacency import Graph, Node
from repro.graph.views import induced_subgraph
from repro.mce.anchored import enumerate_anchored_native
from repro.mce.backends import build_backend
from repro.mce.recursion import tomita_pivot


@dataclass(frozen=True)
class DegreeSplitResult:
    """Cliques plus bookkeeping of a degree-split enumeration."""

    cliques: list[frozenset[Node]]
    rounds: int
    seconds: float

    @property
    def num_cliques(self) -> int:
        """Number of maximal cliques found."""
        return len(self.cliques)


def degree_split_mce(graph: Graph, threshold: int) -> DegreeSplitResult:
    """Enumerate all maximal cliques via low/high degree splitting.

    Parameters
    ----------
    graph:
        The network; not modified.
    threshold:
        Nodes of degree below ``threshold`` count as low-degree in each
        round.  Completeness needs ``threshold > degeneracy(graph)``
        (the same Theorem 1 condition as the block driver); otherwise a
        round makes no progress and the residual core is finished with
        a direct exact enumeration.

    Returns
    -------
    DegreeSplitResult
        All maximal cliques of ``graph``, the number of split rounds,
        and the wall-clock time.

    Raises
    ------
    ValueError
        If ``threshold < 1``.
    """
    if threshold < 1:
        raise ValueError("threshold must be at least 1")
    start = time.perf_counter()
    level_cliques: list[list[frozenset[Node]]] = []
    current = graph
    rounds = 0
    while current.num_nodes > 0:
        low = [n for n in current.nodes() if current.degree(n) < threshold]
        high = [n for n in current.nodes() if current.degree(n) >= threshold]
        if not low:
            # Residual core: finish exactly (threshold <= degeneracy).
            from repro.mce.tomita import tomita

            level_cliques.append(list(tomita(current)))
            rounds += 1
            break
        level_cliques.append(_cliques_touching(current, low))
        rounds += 1
        if not high:
            break
        current = induced_subgraph(current, high)

    merged: list[frozenset[Node]] = []
    for cliques in reversed(level_cliques):
        merged = list(cliques) + filter_contained(merged, cliques)
    return DegreeSplitResult(
        cliques=merged, rounds=rounds, seconds=time.perf_counter() - start
    )


def _cliques_touching(graph: Graph, low: list[Node]) -> list[frozenset[Node]]:
    """All maximal cliques of ``graph`` containing a node of ``low``.

    One anchored enumeration per low-degree node over the whole graph
    backend; processed anchors move from the candidate side to the
    exclusion side, so each clique is emitted exactly once (the same
    P/X sweep as ``BLOCK-ANALYSIS``, without the blocks).
    """
    backend = build_backend(graph, "lists")
    candidates = backend.full()
    excluded = backend.empty()
    found: list[frozenset[Node]] = []
    for node in low:
        anchor = backend.index_of(node)
        for clique in enumerate_anchored_native(
            backend, anchor, candidates, excluded, tomita_pivot
        ):
            found.append(frozenset(backend.label(i) for i in clique))
        candidates = backend.remove(candidates, anchor)
        excluded = backend.add(excluded, anchor)
    return found

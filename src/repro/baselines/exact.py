"""Single-machine exact enumeration — the ground-truth baseline.

Runs one portfolio combination (default: Tomita on bitsets, the paper's
strongest all-round combo) on the whole graph in memory.  Every other
strategy in the library is validated against this output.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.graph.adjacency import Graph, Node
from repro.mce.registry import Combo


@dataclass(frozen=True)
class ExactResult:
    """Cliques plus wall-clock of a single-machine exact run."""

    cliques: list[frozenset[Node]]
    seconds: float
    combo: Combo

    @property
    def num_cliques(self) -> int:
        """Number of maximal cliques found."""
        return len(self.cliques)


def exact_mce(graph: Graph, combo: Combo | None = None) -> ExactResult:
    """Enumerate every maximal clique of ``graph`` on a single machine."""
    chosen = combo if combo is not None else Combo("tomita", "bitsets")
    start = time.perf_counter()
    cliques = list(chosen.run(graph))
    return ExactResult(
        cliques=cliques, seconds=time.perf_counter() - start, combo=chosen
    )

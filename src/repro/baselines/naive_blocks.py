"""Naive fixed-size block decomposition — the incompleteness baseline.

State-of-the-art decompositions before the paper (ExtMCE/EmMCE,
references [8, 10]) assume "that the neighborhood of each node fits
within a block".  When a hub's neighbourhood exceeds the block size,
"a portion of the neighborhood of n will be necessarily omitted and,
consequently, some maximal cliques involving n may remain undetected and
some non-maximal cliques could be erroneously found" (Section 1).

This module implements exactly that flawed strategy: every node —
including hubs — becomes a kernel node of some block, and a block that
would overflow the size limit simply **truncates** the neighbourhood.
The completeness benchmarks run it next to
:func:`repro.core.driver.find_max_cliques` to quantify the cliques a
hub-oblivious decomposition loses and the non-maximal cliques it
fabricates (the paper's motivating claim, Figures 9–11).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.graph.adjacency import Graph, Node
from repro.graph.views import induced_subgraph
from repro.mce.anchored import enumerate_anchored_native
from repro.mce.backends import build_backend
from repro.mce.recursion import tomita_pivot
from repro.mce.verify import is_maximal_clique


@dataclass(frozen=True)
class NaiveBlock:
    """A fixed-size block whose kernel neighbourhoods may be truncated."""

    kernel: tuple[Node, ...]
    border: frozenset[Node]
    visited: frozenset[Node]
    graph: Graph
    truncated: bool  # True when some kernel neighbourhood was cut off


@dataclass
class NaiveResult:
    """Output of the hub-oblivious baseline."""

    cliques: list[frozenset[Node]]
    blocks: list[NaiveBlock]
    truncated_blocks: int

    @property
    def num_cliques(self) -> int:
        """Number of distinct cliques reported (maximal or not!)."""
        return len(self.cliques)

    def missed(self, reference: set[frozenset[Node]]) -> set[frozenset[Node]]:
        """Maximal cliques of the reference output this baseline lost."""
        return reference - set(self.cliques)

    def spurious(self, graph: Graph) -> set[frozenset[Node]]:
        """Reported sets that are not maximal cliques of ``graph``."""
        return {
            clique
            for clique in self.cliques
            if not is_maximal_clique(graph, clique)
        }


def naive_block_mce(graph: Graph, m: int) -> NaiveResult:
    """Run the hub-oblivious fixed-block MCE strategy.

    Every node is assigned as kernel to exactly one block of at most
    ``m`` nodes; neighbours are added in deterministic order until the
    block is full, and whatever does not fit is silently dropped — the
    defect the paper's two-level decomposition exists to fix.

    Raises
    ------
    ValueError
        If ``m < 2`` (a block must fit a node and at least one
        neighbour).
    """
    if m < 2:
        raise ValueError("block size m must be at least 2")
    blocks = _build_naive_blocks(graph, m)
    seen: set[frozenset[Node]] = set()
    cliques: list[frozenset[Node]] = []
    for block in blocks:
        for clique in _analyze_naive_block(block):
            if clique not in seen:
                seen.add(clique)
                cliques.append(clique)
    return NaiveResult(
        cliques=cliques,
        blocks=blocks,
        truncated_blocks=sum(1 for block in blocks if block.truncated),
    )


def _build_naive_blocks(graph: Graph, m: int) -> list[NaiveBlock]:
    """Greedy fixed-size block construction over *all* nodes."""
    unassigned: dict[Node, None] = dict.fromkeys(graph.nodes())
    used_kernels: set[Node] = set()
    blocks: list[NaiveBlock] = []
    while unassigned:
        seed = next(iter(unassigned))
        kernel: list[Node] = []
        members: set[Node] = set()
        truncated = False
        queue: deque[Node] = deque([seed])
        while queue and len(members) < m:
            node = queue.popleft()
            if node in unassigned:
                del unassigned[node]
                kernel.append(node)
                members.add(node)
                added_all = True
                for neighbor in sorted(graph.neighbors(node), key=str):
                    if neighbor in members:
                        continue
                    if len(members) >= m:
                        added_all = False
                        break
                    members.add(neighbor)
                    if neighbor in unassigned:
                        queue.append(neighbor)
                if not added_all:
                    truncated = True
        kernel_set = set(kernel)
        visited = frozenset((members - kernel_set) & used_kernels)
        border = frozenset(members - kernel_set - visited)
        used_kernels |= kernel_set
        ordered = list(kernel)
        ordered.extend(sorted(border, key=str))
        ordered.extend(sorted(visited, key=str))
        blocks.append(
            NaiveBlock(
                kernel=tuple(kernel),
                border=border,
                visited=visited,
                graph=induced_subgraph(graph, ordered),
                truncated=truncated,
            )
        )
    return blocks


def _analyze_naive_block(block: NaiveBlock) -> list[frozenset[Node]]:
    """Anchored enumeration per kernel, exactly like BLOCK-ANALYSIS.

    The enumeration itself is sound; the *blocks* are what is broken —
    they do not contain the full neighbourhood of hub kernels, so
    "maximal in the block" no longer implies "maximal in the graph".
    """
    backend = build_backend(block.graph, "lists")
    candidates = backend.make_from_labels(list(block.kernel) + list(block.border))
    excluded = backend.make_from_labels(block.visited)
    cliques: list[frozenset[Node]] = []
    for kernel_node in block.kernel:
        anchor = backend.index_of(kernel_node)
        for clique in enumerate_anchored_native(
            backend, anchor, candidates, excluded, tomita_pivot
        ):
            cliques.append(frozenset(backend.label(i) for i in clique))
        candidates = backend.remove(candidates, anchor)
        excluded = backend.add(excluded, anchor)
    return cliques

"""networkx ``find_cliques`` wrapper — the independent reference.

networkx implements Bron–Kerbosch with the Tomita pivot; it is an
implementation this library shares no code with, which makes it the
cross-validation oracle of the test suite.  The wrapper is import-lazy so
the core library keeps zero dependency on networkx.
"""

from __future__ import annotations

from repro.graph.adjacency import Graph, Node


def networkx_cliques(graph: Graph) -> set[frozenset[Node]]:
    """Return the maximal cliques of ``graph`` per networkx.

    Raises
    ------
    ImportError
        If networkx is not installed (it is an optional test dependency).
    """
    import networkx as nx

    mirror = nx.Graph()
    mirror.add_nodes_from(graph.nodes())
    mirror.add_edges_from(graph.edges())
    return {frozenset(clique) for clique in nx.find_cliques(mirror)}


def to_networkx(graph: Graph):
    """Convert a :class:`repro.graph.Graph` to a ``networkx.Graph``."""
    import networkx as nx

    mirror = nx.Graph()
    mirror.add_nodes_from(graph.nodes())
    mirror.add_edges_from(graph.edges())
    return mirror


def from_networkx(mirror) -> Graph:
    """Convert a ``networkx.Graph`` to a :class:`repro.graph.Graph`.

    Self-loops are rejected (simple graphs only), matching the library's
    graph semantics.
    """
    graph = Graph()
    for node in mirror.nodes():
        graph.add_node(node)
    for u, v in mirror.edges():
        graph.add_edge(u, v)
    return graph

"""Command-line interface: ``python -m repro <command>``.

The core commands cover the deployment loop of the paper's system:

* ``generate`` — build a synthetic network (ER / BA / WS / social, or a
  named data-set stand-in) and write it in the triple format;
* ``stats`` — report the block-classification parameters and degree
  profile of a triple file;
* ``enumerate`` — run the two-level decomposition and write the maximal
  cliques as JSON lines;
* ``compare`` — run the hub-oblivious fixed-block baseline next to the
  complete decomposition and report what the baseline loses;
* ``tune`` — replay a workload, harvest per-block (features → best
  combo) measurements, and retrain the selector tree
  (see ``docs/tuning.md``); ``--tree auto`` anywhere then picks up the
  installed result.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.analysis.degrees import degree_profile
from repro.analysis.report import format_table
from repro.baselines.naive_blocks import naive_block_mce
from repro.core.driver import find_max_cliques
from repro.decision.persistence import resolve_tree
from repro.errors import ReproError
from repro.graph.adjacency import Graph
from repro.graph.datasets import DATASET_NAMES, load_dataset
from repro.graph.generators import (
    barabasi_albert,
    erdos_renyi,
    social_network,
    watts_strogatz,
)
from repro.graph.io import read_triples, write_cliques, write_triples
from repro.graph.properties import GraphSummary


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hub-aware distributed maximal clique enumeration (EDBT 2016).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic network as a triple file"
    )
    generate.add_argument(
        "--model",
        choices=["er", "ba", "ws", "social", "dataset"],
        required=True,
        help="random-graph family (or 'dataset' for a named stand-in)",
    )
    generate.add_argument("--nodes", type=int, default=1000)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--p", type=float, default=0.01, help="edge probability (er)"
    )
    generate.add_argument(
        "--attachment", type=int, default=3, help="edges per node (ba/social)"
    )
    generate.add_argument(
        "--k", type=int, default=4, help="ring degree (ws)"
    )
    generate.add_argument(
        "--beta", type=float, default=0.2, help="rewiring probability (ws)"
    )
    generate.add_argument(
        "--closure", type=float, default=0.5, help="triadic closure (social)"
    )
    generate.add_argument(
        "--plant",
        type=int,
        nargs="*",
        default=[],
        help="planted clique sizes (social)",
    )
    generate.add_argument(
        "--name",
        choices=list(DATASET_NAMES),
        help="stand-in name when --model dataset",
    )
    generate.add_argument("--out", required=True, help="output triple file")

    stats = commands.add_parser("stats", help="report graph statistics")
    stats.add_argument("--input", required=True, help="input triple file")

    enumerate_ = commands.add_parser(
        "enumerate", help="enumerate all maximal cliques"
    )
    enumerate_.add_argument("--input", required=True, help="input triple file")
    group = enumerate_.add_mutually_exclusive_group(required=True)
    group.add_argument("--m", type=int, help="block size")
    group.add_argument(
        "--ratio", type=float, help="block size as a fraction of max degree"
    )
    enumerate_.add_argument(
        "--output", help="write cliques as JSON lines to this path"
    )
    enumerate_.add_argument(
        "--tree",
        help=(
            "combo selector: a JSON tree file, 'paper' (the Figure 3 "
            "default), 'extended' (bitmatrix-aware), or 'auto' — the "
            "tree installed by 'repro tune' when present"
        ),
    )
    enumerate_.add_argument(
        "--fallback",
        choices=["exact", "raise"],
        default="exact",
        help="behaviour when m does not exceed the degeneracy",
    )
    enumerate_.add_argument(
        "--executor",
        choices=["serial", "process", "shared"],
        default="serial",
        help=(
            "block-analysis executor: in-process serial (default), a "
            "pickling process pool, or the zero-copy shared-memory pool"
        ),
    )
    enumerate_.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --executor process/shared (default: CPU count)",
    )
    enumerate_.add_argument(
        "--pipeline",
        action="store_true",
        help=(
            "stream blocks to workers while later levels are still being "
            "decomposed (requires --executor shared)"
        ),
    )
    enumerate_.add_argument(
        "--split",
        action="store_true",
        help=(
            "split straggler blocks into per-anchor subtasks dispatched "
            "through a work-stealing queue (requires --executor shared; "
            "works in barrier and --pipeline modes)"
        ),
    )
    enumerate_.add_argument(
        "--split-threshold",
        type=float,
        default=None,
        help=(
            "estimated-cost threshold above which a block is split; "
            "default: adaptive, from the batch's cost distribution"
        ),
    )
    enumerate_.add_argument(
        "--batch-blocks",
        action="store_true",
        help=(
            "pack small same-shape blocks into buckets and run each bucket "
            "as one fused multi-block kernel (requires --executor serial "
            "or shared; see docs/batching.md)"
        ),
    )
    enumerate_.add_argument(
        "--batch-cutoff",
        type=int,
        default=None,
        help=(
            "node-count cutoff below which blocks are batched; "
            "default: adaptive, from the batch's size distribution"
        ),
    )
    enumerate_.add_argument(
        "--min-clique-size",
        type=int,
        default=0,
        help=(
            "only report cliques of at least this size; blocks and "
            "anchors whose clique upper bound falls below the floor are "
            "skipped outright (see docs/maximum.md)"
        ),
    )
    enumerate_.add_argument(
        "--spill-dir",
        default=None,
        help=(
            "make the run durable: append finished blocks to CRC-checked "
            "segment files in this directory and track progress in an "
            "atomically updated manifest (see docs/durability.md)"
        ),
    )
    enumerate_.add_argument(
        "--resume",
        action="store_true",
        help=(
            "continue a crashed (or finished) durable run from --spill-dir: "
            "completed blocks are replayed from the segments instead of "
            "re-analysed; the clique output is identical either way"
        ),
    )
    enumerate_.add_argument(
        "--no-retry",
        action="store_true",
        help=(
            "fail the whole run when a worker dies instead of re-running "
            "its block in the parent (--executor shared only); with "
            "--spill-dir the error names the segment holding the progress "
            "already made durable"
        ),
    )

    compare = commands.add_parser(
        "compare", help="two-level decomposition vs the hub-oblivious baseline"
    )
    compare.add_argument("--input", required=True, help="input triple file")
    compare.add_argument("--m", type=int, required=True, help="block size")

    communities = commands.add_parser(
        "communities", help="k-clique communities from the MCE output"
    )
    communities.add_argument("--input", required=True, help="input triple file")
    communities.add_argument("--m", type=int, required=True, help="block size")
    communities.add_argument(
        "--k", type=int, default=4, help="percolation parameter (default 4)"
    )
    communities.add_argument(
        "--top", type=int, default=10, help="communities to print (default 10)"
    )

    maximum = commands.add_parser(
        "maximum", help="find one maximum clique (branch and bound)"
    )
    maximum.add_argument("--input", required=True, help="input triple file")

    max_clique = commands.add_parser(
        "max-clique",
        help="find one maximum clique (bitmatrix branch and bound)",
    )
    max_clique.add_argument("--input", required=True, help="input triple file")
    max_clique.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes for the parallel search with a shared "
            "incumbent (default 1: solve in-process)"
        ),
    )
    max_clique.add_argument(
        "--lower-bound",
        type=int,
        default=0,
        help=(
            "required clique size: branches that cannot reach it are "
            "pruned from the start; errors if no such clique exists"
        ),
    )

    top_k = commands.add_parser(
        "top-k",
        help="the K largest maximal cliques via bound-driven pruning",
    )
    top_k.add_argument("--input", required=True, help="input triple file")
    top_k.add_argument("--m", type=int, required=True, help="block size")
    top_k.add_argument(
        "-k", type=int, default=10, dest="k",
        help="how many cliques to report (default 10)",
    )
    top_k.add_argument(
        "--tolerance",
        type=int,
        default=2,
        help=(
            "initial slack below the maximum clique size for the "
            "enumeration floor (floor = max clique size - tolerance); "
            "the floor is lowered automatically until K cliques surface"
        ),
    )

    plan = commands.add_parser(
        "plan", help="recommend a block size m for a network"
    )
    plan.add_argument("--input", required=True, help="input triple file")
    plan.add_argument(
        "--backend",
        choices=["lists", "bitsets", "matrix"],
        default="bitsets",
        help="representation whose memory footprint bounds the block",
    )
    plan.add_argument(
        "--ratio",
        type=float,
        default=0.5,
        help="efficiency target as a fraction of max degree (default 0.5)",
    )
    plan.add_argument(
        "--tree",
        help=(
            "plan with a combo selector instead of --backend: a JSON "
            "tree file, 'paper', 'extended', or 'auto' (the tree "
            "installed by 'repro tune'); the memory bound then uses the "
            "backend the selector picks for this network"
        ),
    )

    tune = commands.add_parser(
        "tune",
        help="retrain the combo selector from measured block executions",
    )
    tune.add_argument("--input", required=True, help="input triple file")
    tune_size = tune.add_mutually_exclusive_group(required=True)
    tune_size.add_argument("--m", type=int, help="block size")
    tune_size.add_argument(
        "--ratio", type=float, help="block size as a fraction of max degree"
    )
    tune.add_argument(
        "--out",
        default=None,
        help=(
            "destination for the tuned tree JSON (default: the 'auto' "
            "path, $REPRO_TUNED_TREE or ~/.repro/tuned_tree.json)"
        ),
    )
    tune.add_argument(
        "--sample",
        type=int,
        default=16,
        help=(
            "blocks to re-run under every combo for counterfactual "
            "labels; 0 means all blocks (default 16)"
        ),
    )
    tune.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="timing repetitions per (block, combo); best is kept",
    )
    tune.add_argument("--seed", type=int, default=0, help="sampling seed")
    tune.add_argument(
        "--max-depth", type=int, default=6, help="tree depth cap (default 6)"
    )
    tune.add_argument(
        "--prune-alpha",
        type=float,
        default=None,
        help=(
            "cost-complexity penalty in seconds per extra leaf "
            "(default: 0.2%% of the corpus oracle time)"
        ),
    )
    tune.add_argument(
        "--spill-dir",
        default=None,
        help=(
            "also harvest rows from this durable run directory "
            "(segments written by enumerate --spill-dir)"
        ),
    )

    audit = commands.add_parser(
        "audit", help="re-verify a run from first principles"
    )
    audit.add_argument("--input", required=True, help="input triple file")
    audit.add_argument("--m", type=int, required=True, help="block size")
    audit.add_argument(
        "--skip-completeness",
        action="store_true",
        help="skip the (expensive) independent re-enumeration",
    )

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "stats":
            return _cmd_stats(args)
        if args.command == "enumerate":
            return _cmd_enumerate(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "communities":
            return _cmd_communities(args)
        if args.command == "plan":
            return _cmd_plan(args)
        if args.command == "tune":
            return _cmd_tune(args)
        if args.command == "maximum":
            return _cmd_maximum(args)
        if args.command == "max-clique":
            return _cmd_max_clique(args)
        if args.command == "top-k":
            return _cmd_top_k(args)
        if args.command == "audit":
            return _cmd_audit(args)
    except (ReproError, OSError, ValueError) as exc:
        # ValueError covers generator parameter validation (e.g. an odd
        # Watts-Strogatz ring degree) so misuse prints a message rather
        # than a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError("unreachable: argparse enforces a known command")


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = _generate_graph(args)
    records = write_triples(graph, args.out)
    print(
        f"wrote {graph.num_nodes} nodes / {records} edges "
        f"({args.model}) to {args.out}"
    )
    return 0


def _generate_graph(args: argparse.Namespace) -> Graph:
    if args.model == "er":
        return erdos_renyi(args.nodes, args.p, seed=args.seed)
    if args.model == "ba":
        return barabasi_albert(args.nodes, args.attachment, seed=args.seed)
    if args.model == "ws":
        return watts_strogatz(args.nodes, args.k, args.beta, seed=args.seed)
    if args.model == "social":
        return social_network(
            args.nodes,
            attachment=args.attachment,
            closure_probability=args.closure,
            planted_cliques=tuple(args.plant),
            seed=args.seed,
        )
    if args.name is None:
        raise ReproError("--model dataset requires --name")
    return load_dataset(args.name, seed=args.seed if args.seed else None)


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = read_triples(args.input)
    summary = GraphSummary.of(graph)
    profile = degree_profile(args.input, graph)
    print(
        format_table(
            ["metric", "value"],
            [
                ["nodes", summary.num_nodes],
                ["edges", summary.num_edges],
                ["density", summary.density],
                ["degeneracy", summary.degeneracy],
                ["d*", summary.d_star],
                ["max degree", profile.max_degree],
                ["degree<=20 fraction", profile.low_degree_fraction],
                ["power-law alpha", profile.power_law_alpha],
            ],
            title=f"statistics of {args.input}",
        )
    )
    return 0


def _cmd_enumerate(args: argparse.Namespace) -> int:
    graph = read_triples(args.input)
    if args.m is not None:
        m = args.m
    else:
        if not 0.0 < args.ratio <= 1.0:
            raise ReproError("--ratio must be in (0, 1]")
        m = max(2, int(args.ratio * graph.max_degree()))
    tree = resolve_tree(args.tree)
    from repro.distributed.executor import SharedMemoryExecutor, build_executor

    if args.pipeline and args.executor != "shared":
        raise ReproError("--pipeline requires --executor shared")
    if args.split and args.executor != "shared":
        raise ReproError("--split requires --executor shared")
    if args.no_retry and args.executor != "shared":
        raise ReproError("--no-retry requires --executor shared")
    if args.batch_blocks and args.executor == "process":
        raise ReproError("--batch-blocks requires --executor serial or shared")
    if args.batch_cutoff is not None and not args.batch_blocks:
        raise ReproError("--batch-cutoff requires --batch-blocks")
    if args.resume and not args.spill_dir:
        raise ReproError("--resume requires --spill-dir")
    executor = (
        None
        if args.executor == "serial"
        else build_executor(args.executor, max_workers=args.workers)
    )
    if args.no_retry:
        executor.retry_failed = False
    start = time.perf_counter()
    result = find_max_cliques(
        graph,
        m,
        tree=tree,
        fallback=args.fallback,
        executor=executor,
        pipeline=args.pipeline,
        split=args.split,
        split_threshold=args.split_threshold,
        batch_blocks=args.batch_blocks,
        batch_cutoff=args.batch_cutoff,
        min_clique_size=args.min_clique_size,
        spill_dir=args.spill_dir,
        resume=args.resume,
    )
    elapsed = time.perf_counter() - start
    print(
        f"{result.num_cliques} maximal cliques in {elapsed:.2f}s "
        f"(m={m}, {result.recursion_depth} recursion rounds, "
        f"max clique {result.max_clique_size()}, "
        f"{len(result.hub_cliques())} hub-only)"
    )
    if isinstance(executor, SharedMemoryExecutor) and executor.last_trace:
        trace = executor.last_trace
        if args.pipeline:
            for record in trace.levels:
                print(
                    f"level {record.level}: {record.num_blocks} blocks "
                    f"({record.num_feasible} feasible / {record.num_hubs} hubs), "
                    f"decomposed in {record.decompose_seconds:.3f}s, "
                    f"published {record.publish_bytes} bytes "
                    f"in {record.publish_seconds:.3f}s"
                )
            print(
                f"pipeline totals: {trace.total_decompose_seconds:.3f}s decomposition, "
                f"{trace.total_block_seconds:.3f}s serial-equivalent analysis, "
                f"peak worker RSS {trace.max_peak_rss_kb} kB"
            )
        else:
            print(
                f"shared-memory dispatch (last level): {trace.total_dispatch_bytes} "
                f"descriptor bytes, {trace.publish_bytes} published bytes, "
                f"peak worker RSS {trace.max_peak_rss_kb} kB"
            )
        if args.split:
            print(
                f"anchor-level splitting: {len(trace.splits)} blocks split "
                f"into {len(trace.subtasks)} fragments, "
                f"{trace.steal_count} stolen, "
                f"{len(trace.retried_subtasks)} subtasks retried"
            )
        if args.batch_blocks:
            print(
                f"batched dispatch: {trace.batched_block_count} blocks fused "
                f"into {len(trace.batches)} buckets "
                f"({sum(batch.sweeps for batch in trace.batches)} kernel sweeps)"
            )
    if result.pruning:
        pruning = result.pruning
        print(
            f"floor {pruning['min_clique_size']}: skipped "
            f"{pruning['blocks_skipped']}/{pruning['blocks_total']} blocks "
            f"and {pruning['anchors_skipped']} anchors"
        )
    if result.run_info:
        info = result.run_info
        print(
            f"durable run in {info['spill_dir']}: "
            f"{info['blocks_recorded']} blocks spilled "
            f"({info['flush_bytes']} bytes, {info['flush_seconds']:.3f}s), "
            f"{info['blocks_replayed']} replayed from "
            f"{len(info['segments'])} segment(s)"
        )
    if result.fallback_used:
        print("note: fell back to exact enumeration on the residual core")
    if args.output:
        written = write_cliques(result.cliques, args.output)
        print(f"wrote {written} cliques to {args.output}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = read_triples(args.input)
    complete = find_max_cliques(graph, args.m)
    reference = set(complete.cliques)
    naive = naive_block_mce(graph, args.m)
    missed = naive.missed(reference)
    spurious = naive.spurious(graph)
    print(
        format_table(
            ["strategy", "#reported", "missed", "non-maximal"],
            [
                ["two-level (complete)", complete.num_cliques, 0, 0],
                ["naive fixed blocks", naive.num_cliques, len(missed), len(spurious)],
            ],
            title=f"completeness comparison at m={args.m}",
        )
    )
    return 0 if not missed and not spurious else 2


def _cmd_communities(args: argparse.Namespace) -> int:
    from repro.relaxed.percolation import community_membership, k_clique_communities

    graph = read_triples(args.input)
    result = find_max_cliques(graph, args.m)
    communities = k_clique_communities(result.cliques, args.k)
    membership = community_membership(communities)
    overlapping = sum(1 for indices in membership.values() if len(indices) > 1)
    print(
        f"{len(communities)} {args.k}-clique communities covering "
        f"{len(membership)}/{graph.num_nodes} nodes "
        f"({overlapping} nodes in several communities)"
    )
    for index, community in enumerate(communities[: args.top]):
        members = sorted(map(str, community))
        preview = ", ".join(members[:10])
        suffix = ", ..." if len(members) > 10 else ""
        print(f"  #{index}: {len(community)} members [{preview}{suffix}]")
    return 0


def _cmd_maximum(args: argparse.Namespace) -> int:
    from repro.mce.maximum import maximum_clique

    graph = read_triples(args.input)
    start = time.perf_counter()
    best = maximum_clique(graph)
    elapsed = time.perf_counter() - start
    members = ", ".join(sorted(map(str, best)))
    print(f"omega(G) = {len(best)} in {elapsed:.3f}s")
    print(f"one maximum clique: {{{members}}}")
    return 0


def _cmd_max_clique(args: argparse.Namespace) -> int:
    from repro.mce.maximum import maximum_clique

    graph = read_triples(args.input)
    start = time.perf_counter()
    if args.workers and args.workers > 1:
        from repro.distributed.executor import parallel_maximum_clique

        best = parallel_maximum_clique(
            graph, max_workers=args.workers, lower_bound=args.lower_bound
        )
        mode = f"{args.workers} workers"
    else:
        best = maximum_clique(graph, lower_bound=args.lower_bound)
        mode = "in-process"
    elapsed = time.perf_counter() - start
    members = ", ".join(sorted(map(str, best)))
    print(f"omega(G) = {len(best)} in {elapsed:.3f}s ({mode})")
    print(f"one maximum clique: {{{members}}}")
    return 0


def _cmd_top_k(args: argparse.Namespace) -> int:
    from repro.mce.maximum import maximum_clique

    if args.k <= 0:
        raise ReproError("-k must be positive")
    if args.tolerance < 0:
        raise ReproError("--tolerance must be non-negative")
    graph = read_triples(args.input)
    start = time.perf_counter()
    k_star = len(maximum_clique(graph))
    bound_seconds = time.perf_counter() - start
    print(f"omega(G) = {k_star} in {bound_seconds:.3f}s")
    # Enumerate with a floor just below omega(G); if fewer than K cliques
    # survive, lower the floor and re-run until enough surface (or the
    # floor bottoms out at 1, which is an unfloored enumeration).
    floor = max(1, k_star - args.tolerance)
    while True:
        result = find_max_cliques(graph, args.m, min_clique_size=floor)
        if result.num_cliques >= args.k or floor <= 1:
            break
        floor = max(1, floor - 1)
    pruning = result.pruning or {}
    print(
        f"floor {floor}: {result.num_cliques} cliques, "
        f"skipped {pruning.get('blocks_skipped', 0)}/"
        f"{pruning.get('blocks_total', 0)} blocks and "
        f"{pruning.get('anchors_skipped', 0)} anchors"
    )
    for index, clique in enumerate(result.largest(args.k)):
        members = ", ".join(sorted(map(str, clique)))
        print(f"  #{index}: {len(clique)} members {{{members}}}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.core.planner import recommend_block_size

    graph = read_triples(args.input)
    plan = recommend_block_size(
        graph, backend=args.backend, ratio=args.ratio, tree=args.tree
    )
    rows = [
        ["recommended m", plan.m],
        ["m / max degree", plan.ratio],
        ["completeness lower bound", plan.completeness_lower_bound],
        ["memory upper bound", plan.memory_upper_bound],
        ["max degree", plan.max_degree],
    ]
    if plan.selected_combo:
        rows.append(["selected combo", plan.selected_combo])
    print(
        format_table(
            ["quantity", "value"],
            rows,
            title=f"block-size plan for {args.input}",
        )
    )
    print(f"rationale: {plan.rationale}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.decision.harvest import harvest_workload, rows_from_run_dir
    from repro.decision.persistence import default_tree_path, save_tree
    from repro.decision.training import (
        block_selection_overhead,
        train_from_rows,
    )
    from repro.decision.tree import num_leaves

    graph = read_triples(args.input)
    if args.m is not None:
        m = args.m
    else:
        if not 0.0 < args.ratio <= 1.0:
            raise ReproError("--ratio must be in (0, 1]")
        m = max(2, int(args.ratio * graph.max_degree()))
    start = time.perf_counter()
    harvest = harvest_workload(
        graph, m, sample=args.sample, repeats=args.repeats, seed=args.seed
    )
    rows = list(harvest.rows)
    if args.spill_dir:
        rows.extend(rows_from_run_dir(args.spill_dir))
    result = train_from_rows(
        rows, max_depth=args.max_depth, prune_alpha=args.prune_alpha
    )
    harvest_seconds = time.perf_counter() - start
    overhead = block_selection_overhead(result.samples, result.tree)
    destination = args.out if args.out else default_tree_path()
    save_tree(
        result.tree,
        destination,
        metadata={
            "trained_by": "repro tune",
            "source": args.input,
            "m": m,
            "rows": len(rows),
            "blocks": len(result.samples),
            "corpus_fingerprint": result.fingerprint,
            "win_counts": result.win_counts,
            "training_accuracy": result.training_accuracy,
        },
    )
    oracle = sum(sample.timings[sample.best] for sample in result.samples)
    tuned = result.total_time()
    fraction = overhead / tuned if tuned > 0 else 0.0
    print(
        f"harvested {len(rows)} rows "
        f"({harvest.live_rows} live, "
        f"{harvest.counterfactual_rows} counterfactual) from "
        f"{harvest.blocks_sampled}/{harvest.blocks_total} blocks "
        f"in {harvest_seconds:.2f}s"
    )
    print(
        f"trained on {len(result.samples)} labelled blocks: "
        f"{num_leaves(result.tree)} leaves "
        f"(pruned from {result.unpruned_leaves}), "
        f"accuracy {result.training_accuracy:.2f}"
    )
    for label, count in sorted(result.win_counts.items()):
        print(f"  {label}: wins {count}")
    print(
        f"corpus time under tuned tree {tuned:.4f}s "
        f"(oracle {oracle:.4f}s, regret {tuned - oracle:.4f}s); "
        f"selection overhead {fraction:.3%}"
    )
    print(f"wrote tuned tree to {destination}")
    print("deploy with: repro enumerate --tree auto (or --tree <path>)")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.core.audit import audit_result

    graph = read_triples(args.input)
    result = find_max_cliques(graph, args.m)
    report = audit_result(
        graph, result, check_completeness=not args.skip_completeness
    )
    print(
        f"audited {report.checked_cliques} cliques "
        f"(completeness {'checked' if report.completeness_checked else 'skipped'})"
    )
    if report.ok:
        print("audit clean")
        return 0
    for problem in report.problems:
        print(f"problem: {problem}")
    return 2


if __name__ == "__main__":
    sys.exit(main())

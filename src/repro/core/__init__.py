"""The paper's contribution: hub-aware two-level decomposition MCE."""

from repro.core.audit import AuditReport, audit_result
from repro.core.block_analysis import (
    BlockDescriptor,
    BlockReport,
    analyze_block,
    analyze_blocks,
    block_from_descriptor,
)
from repro.core.blocks import (
    SEED_ORDERS,
    Block,
    blocks_csr,
    build_blocks,
    decomposition_overlap,
    validate_blocks,
)
from repro.core.cliquestore import (
    CliqueBuffer,
    CliqueStore,
    GlobalCliqueIndex,
    packed_plane_enabled,
    store_of,
)
from repro.core.driver import decompose_only, decompose_only_csr, find_max_cliques
from repro.core.feasibility import cut, cut_csr, is_feasible, is_feasible_node
from repro.core.filtering import filter_contained, merge_level
from repro.core.planner import BlockSizePlan, recommend_block_size
from repro.core.result import CliqueResult, LevelStats
from repro.core.uniform_blocks import (
    block_size_spread,
    build_uniform_blocks,
    mean_block_density,
)

__all__ = [
    "AuditReport",
    "audit_result",
    "BlockDescriptor",
    "BlockReport",
    "analyze_block",
    "analyze_blocks",
    "block_from_descriptor",
    "SEED_ORDERS",
    "Block",
    "blocks_csr",
    "build_blocks",
    "decomposition_overlap",
    "validate_blocks",
    "decompose_only",
    "decompose_only_csr",
    "find_max_cliques",
    "cut",
    "cut_csr",
    "is_feasible",
    "is_feasible_node",
    "CliqueBuffer",
    "CliqueStore",
    "GlobalCliqueIndex",
    "packed_plane_enabled",
    "store_of",
    "filter_contained",
    "merge_level",
    "BlockSizePlan",
    "recommend_block_size",
    "CliqueResult",
    "LevelStats",
    "block_size_spread",
    "build_uniform_blocks",
    "mean_block_density",
]

"""Full result audit — trust, but verify.

:func:`audit_result` checks a :class:`CliqueResult` against its input
graph from first principles: every reported set is a maximal clique, no
duplicates, the per-clique provenance tags are consistent with the
level-0 feasible/hub split, and (optionally, expensive) the output is
*complete* — every maximal clique of the graph is present, established
with an independent in-library enumeration.

This is the function a downstream user runs once on their own data to
convince themselves of the installation, and the deep end of the test
suite's cross-checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.feasibility import cut
from repro.core.result import CliqueResult
from repro.graph.adjacency import Graph
from repro.mce.tomita import tomita
from repro.mce.verify import find_extension


@dataclass
class AuditReport:
    """Outcome of :func:`audit_result`; empty ``problems`` means clean."""

    problems: list[str] = field(default_factory=list)
    checked_cliques: int = 0
    completeness_checked: bool = False

    @property
    def ok(self) -> bool:
        """Whether every executed check passed."""
        return not self.problems


def audit_result(
    graph: Graph, result: CliqueResult, check_completeness: bool = True
) -> AuditReport:
    """Verify ``result`` against ``graph``; return the audit report.

    Parameters
    ----------
    graph:
        The graph the result was computed from (unmodified).
    result:
        The driver output under audit.
    check_completeness:
        Also re-enumerate the graph independently and compare as sets.
        Skippable because it costs a full exact MCE run.
    """
    report = AuditReport()
    seen: set[frozenset] = set()
    for clique in result.cliques:
        report.checked_cliques += 1
        if clique in seen:
            report.problems.append(f"duplicate clique {_show(clique)}")
            continue
        seen.add(clique)
        if not clique:
            report.problems.append("empty clique reported")
            continue
        if not graph.is_clique(clique):
            report.problems.append(f"not a clique: {_show(clique)}")
            continue
        witness = find_extension(graph, clique)
        if witness is not None:
            report.problems.append(
                f"not maximal: {_show(clique)} extendable by {witness!r}"
            )

    _check_provenance(graph, result, report)

    if check_completeness:
        report.completeness_checked = True
        expected = set(tomita(graph))
        missing = expected - seen
        extra = seen - expected
        if missing:
            report.problems.append(
                f"{len(missing)} maximal cliques missing, e.g. "
                f"{_show(next(iter(missing)))}"
            )
        if extra:
            report.problems.append(
                f"{len(extra)} unexpected sets reported, e.g. "
                f"{_show(next(iter(extra)))}"
            )
    return report


def _check_provenance(
    graph: Graph, result: CliqueResult, report: AuditReport
) -> None:
    """Provenance tags must match the level-0 feasible/hub split."""
    if set(result.provenance) != set(result.cliques):
        report.problems.append("provenance keys do not match the clique list")
        return
    feasible, _hubs = cut(graph, result.m)
    feasible_set = set(feasible)
    for clique, level in result.provenance.items():
        if level == 0:
            if feasible_set and not (clique & feasible_set):
                report.problems.append(
                    f"level-0 clique without feasible node: {_show(clique)}"
                )
        elif clique & feasible_set:
            report.problems.append(
                f"level-{level} clique contains a feasible node: {_show(clique)}"
            )


def _show(clique: frozenset) -> str:
    """Short deterministic rendering of a clique for messages."""
    members = sorted(map(str, clique))
    if len(members) > 8:
        return "{" + ", ".join(members[:8]) + f", ... ({len(members)} nodes)}}"
    return "{" + ", ".join(members) + "}"

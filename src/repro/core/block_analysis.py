"""Per-block clique detection (``BLOCK-ANALYSIS``, Alg. 4).

For one block the goal is: *all maximal cliques that have at least one
kernel node and no visited node.*  Those two conditions together make the
union over all blocks emit each feasible-touching maximal clique exactly
once — the clique is reported from the block whose kernel contains its
earliest-kernelised member, and suppressed everywhere else because that
member is "visited" there.

The procedure anchors one enumeration per kernel node ``k``, restricted
to ``N(k)``: candidates start as ``kernel ∪ border`` and excluded as
``visited``; after ``k`` is processed it moves from the candidate side to
the excluded side, exactly as in the paper's pseudo-code.  Maximality
against the *whole* network follows from the block invariant that every
neighbour of a kernel node is inside the block.

The enumeration combination (algorithm × data structure) is chosen per
block by a decision tree over the block's features (``bestfit``, line 1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.blocks import Block
from repro.decision.features import BlockFeatures
from repro.decision.paper_tree import paper_tree, select_combo
from repro.decision.tree import DecisionTree
from repro.graph.adjacency import Node
from repro.mce.anchored import enumerate_anchored_native
from repro.mce.backends import build_backend
from repro.mce.registry import Combo, get_pivot_rule


@dataclass
class BlockReport:
    """Outcome of analysing one block."""

    cliques: list[frozenset[Node]]
    combo: Combo
    features: BlockFeatures
    seconds: float
    kernel_nodes: int = 0
    extra: dict[str, float] = field(default_factory=dict)


def analyze_block(
    block: Block,
    tree: DecisionTree | None = None,
    combo: Combo | None = None,
) -> BlockReport:
    """Enumerate the block's contribution to the global clique set.

    Parameters
    ----------
    block:
        A block produced by :func:`repro.core.blocks.build_blocks`.
    tree:
        Decision tree used to pick the enumeration combo from the block's
        features; defaults to the paper's published tree (Figure 3).
    combo:
        Bypass the tree and force a specific combination (used by the
        ablation benchmarks that compare the tree against fixed combos).

    Returns
    -------
    BlockReport
        The cliques found (each has ≥ 1 kernel node and no visited node),
        the combination used, the block features, and the wall-clock time.
    """
    start = time.perf_counter()
    features = BlockFeatures.of(block.graph)
    if combo is None:
        combo = select_combo(tree if tree is not None else paper_tree(), features)
    backend = build_backend(block.graph, combo.backend)
    pivot_rule = get_pivot_rule(combo.algorithm)

    candidates = backend.make_from_labels(list(block.kernel) + list(block.border))
    excluded = backend.make_from_labels(block.visited)
    cliques: list[frozenset[Node]] = []
    for kernel_node in block.kernel:
        anchor = backend.index_of(kernel_node)
        for clique in enumerate_anchored_native(
            backend, anchor, candidates, excluded, pivot_rule
        ):
            cliques.append(frozenset(backend.label(i) for i in clique))
        candidates = backend.remove(candidates, anchor)
        excluded = backend.add(excluded, anchor)
    return BlockReport(
        cliques=cliques,
        combo=combo,
        features=features,
        seconds=time.perf_counter() - start,
        kernel_nodes=len(block.kernel),
    )


def analyze_blocks(
    blocks: list[Block],
    tree: DecisionTree | None = None,
    combo: Combo | None = None,
) -> tuple[list[frozenset[Node]], list[BlockReport]]:
    """Analyse every block serially; return all cliques plus the reports.

    The distributed runner (:mod:`repro.distributed.runner`) dispatches
    the same per-block work across simulated or real workers; this serial
    form is the reference implementation the others are tested against.
    """
    all_cliques: list[frozenset[Node]] = []
    reports: list[BlockReport] = []
    for block in blocks:
        report = analyze_block(block, tree=tree, combo=combo)
        all_cliques.extend(report.cliques)
        reports.append(report)
    return all_cliques, reports

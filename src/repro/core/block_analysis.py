"""Per-block clique detection (``BLOCK-ANALYSIS``, Alg. 4).

For one block the goal is: *all maximal cliques that have at least one
kernel node and no visited node.*  Those two conditions together make the
union over all blocks emit each feasible-touching maximal clique exactly
once — the clique is reported from the block whose kernel contains its
earliest-kernelised member, and suppressed everywhere else because that
member is "visited" there.

The procedure anchors one enumeration per kernel node ``k``, restricted
to ``N(k)``: candidates start as ``kernel ∪ border`` and excluded as
``visited``; after ``k`` is processed it moves from the candidate side to
the excluded side, exactly as in the paper's pseudo-code.  Kernel nodes
are anchored in **degeneracy order** (sparsest first): which kernel node
reports a clique shifts with the order, but the per-block clique *set*
is invariant — a clique is always reported at whichever of its kernel
members is anchored first — and peeling-order anchors leave denser
candidate sets to later anchors whose exclusion sets have already grown,
so the pivot prunes harder.  Maximality against the *whole* network
follows from the block invariant that every neighbour of a kernel node
is inside the block.

The enumeration combination (algorithm × data structure) is chosen per
block by a decision tree over the block's features (``bestfit``, line 1).
Two materialization paths produce identical results:
:func:`analyze_block` consumes a :class:`~repro.core.blocks.Block`
(subgraph as a ``Graph``), while :func:`analyze_block_csr` consumes a
:class:`BlockDescriptor` plus CSR views and builds the chosen backend
straight from a packed adjacency bitmap — no intermediate ``Graph`` —
which is what shared-memory workers run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.blocks import Block
from repro.core.cliquestore import CliqueStore, make_emitter
from repro.decision.features import (
    BlockFeatures,
    estimate_analysis_cost,
    features_from_bitmap,
)
from repro.decision.paper_tree import paper_tree, select_combo
from repro.decision.tree import DecisionTree
from repro.graph.adjacency import Graph, Node
from repro.graph.csr import BitmapScratch, extract_block_bitmap
from repro.mce.anchored import enumerate_anchored_native
from repro.mce.backends import Backend, backend_from_bitmap, build_backend
from repro.mce.bitmatrix import (
    BitMatrixBackend,
    bits_to_indices,
    degeneracy_order_packed,
    degeneracy_orders_many,
    enumerate_anchored_packed,
    expand_batched_many,
    pack_indices,
    pivot_kind_of,
    popcount_rows,
    words_for,
)
from repro.mce.maximum import clique_upper_bound_packed
from repro.mce.registry import Combo, get_pivot_rule


@dataclass
class BlockReport:
    """Outcome of analysing one block.

    ``cliques`` is a packed :class:`~repro.core.cliquestore.CliqueStore`
    on the default result plane (vertex ids into the store's own
    member-label table, so pickling across IPC ships raw array buffers
    plus one small label list) — or the legacy ``list[frozenset]`` when
    the frozenset plane is selected or the report was hand-built.  Both
    forms iterate as frozensets and support ``len``, which is the only
    surface downstream consumers rely on.
    """

    cliques: "CliqueStore | list[frozenset[Node]]"
    combo: Combo
    features: BlockFeatures
    seconds: float
    kernel_nodes: int = 0
    extra: dict[str, float] = field(default_factory=dict)


def analyze_block(
    block: Block,
    tree: DecisionTree | None = None,
    combo: Combo | None = None,
    min_clique_size: int = 0,
) -> BlockReport:
    """Enumerate the block's contribution to the global clique set.

    Parameters
    ----------
    block:
        A block produced by :func:`repro.core.blocks.build_blocks`.
    tree:
        Decision tree used to pick the enumeration combo from the block's
        features; defaults to the paper's published tree (Figure 3).
    combo:
        Bypass the tree and force a specific combination (used by the
        ablation benchmarks that compare the tree against fixed combos).
    min_clique_size:
        Enumeration floor: anchors whose subproblem cannot reach a
        clique of this size are skipped (their cliques are all smaller,
        see :func:`_anchor_below_floor`); the skip count lands in
        ``extra["anchors_skipped"]``.  ``0`` disables the pruning.

    Returns
    -------
    BlockReport
        The cliques found (each has ≥ 1 kernel node and no visited node),
        the combination used, the block features, and the wall-clock time.
    """
    start = time.perf_counter()
    features = BlockFeatures.of(block.graph)
    selection_seconds = 0.0
    if combo is None:
        select_start = time.perf_counter()
        combo = select_combo(tree if tree is not None else paper_tree(), features)
        selection_seconds = time.perf_counter() - select_start
    backend = build_backend(block.graph, combo.backend)
    pivot_rule = get_pivot_rule(combo.algorithm)

    candidates = backend.make_from_labels(list(block.kernel) + list(block.border))
    excluded = backend.make_from_labels(block.visited)
    kernel_order = _kernel_degeneracy_order(block)
    member_labels = [backend.label(i) for i in range(block.graph.num_nodes)]
    emitter = make_emitter(member_labels)
    anchors_skipped = 0
    for kernel_node in kernel_order:
        anchor = backend.index_of(kernel_node)
        if _anchor_below_floor(backend, anchor, candidates, min_clique_size):
            anchors_skipped += 1
        else:
            _emit_anchored(emitter, backend, anchor, candidates, excluded, pivot_rule)
        candidates = backend.remove(candidates, anchor)
        excluded = backend.add(excluded, anchor)
    cliques = emitter.build()
    extra: dict[str, float] = {}
    if anchors_skipped:
        extra["anchors_skipped"] = float(anchors_skipped)
    if selection_seconds:
        # The measured price of consulting the selector for this block;
        # harvests and benchmarks check it stays a vanishing fraction
        # of the analysis time (the <1% selection-overhead budget).
        extra["selection_seconds"] = selection_seconds
    return BlockReport(
        cliques=cliques,
        combo=combo,
        features=features,
        seconds=time.perf_counter() - start,
        kernel_nodes=len(block.kernel),
        extra=extra,
    )


def _anchor_below_floor(
    backend: Backend, anchor: int, candidates, min_clique_size: int
) -> bool:
    """Whether an anchored sweep cannot reach the enumeration floor.

    Every clique the anchor's sweep emits lies inside ``{anchor} ∪
    (N(anchor) ∩ candidates)`` — a member processed as an earlier
    anchor sits on the excluded side, and one already moved out of
    ``candidates`` would make the clique non-maximal there.  So when
    ``1 + |N(anchor) ∩ candidates| < floor`` the whole sweep is below
    the floor and can be skipped.  The anchor must still rotate to the
    excluded side afterwards: later anchors see exactly the states the
    unpruned sweep would have left them, which is what keeps the ≥-floor
    clique set identical (the exclusion side never depends on whether
    the anchor's own sweep ran).
    """
    return (
        min_clique_size > 1
        and 1 + backend.common_count(anchor, candidates) < min_clique_size
    )


def block_clique_bound(block: Block) -> int:
    """Upper bound on any clique the block can emit (``Graph`` path).

    Every reported clique lies inside kernel ∪ border (visited members
    are excluded by construction), so the bound is
    :func:`repro.mce.maximum.clique_upper_bound_packed` over that
    induced subgraph.  The barrier driver prices each block with this
    before dispatch and skips those falling below ``min_clique_size``.
    """
    members = list(block.kernel) + sorted(block.border, key=str)
    n = len(members)
    if n == 0:
        return 0
    index_of = {node: i for i, node in enumerate(members)}
    bitmap = np.zeros((n, words_for(n)), dtype=np.uint64)
    one = np.uint64(1)
    for i, node in enumerate(members):
        row = bitmap[i]
        for other in block.graph.neighbors(node):
            j = index_of.get(other)
            if j is not None:
                row[j >> 6] |= one << np.uint64(j & 63)
    return clique_upper_bound_packed(bitmap)


def block_clique_bound_csr(
    descriptor: "BlockDescriptor",
    indptr: np.ndarray,
    indices: np.ndarray,
    scratch: BitmapScratch | None = None,
) -> int:
    """CSR twin of :func:`block_clique_bound` for the pipeline driver."""
    member_ids = np.concatenate([descriptor.kernel_ids, descriptor.border_ids])
    if len(member_ids) == 0:
        return 0
    bitmap = extract_block_bitmap(indptr, indices, member_ids, scratch)
    return clique_upper_bound_packed(bitmap)


def _kernel_degeneracy_order(block: Block) -> list[Node]:
    """The block's kernel nodes in degeneracy (peeling) order.

    Must match :func:`repro.mce.bitmatrix.degeneracy_order_packed` on the
    descriptor's member ordering exactly — same smallest-index tie-break
    among minimum-residual-degree nodes — so a block analysed in a
    shared-memory worker (:func:`analyze_block_csr`) emits its cliques in
    the same order as the serial path, including when a crashed worker's
    block is retried in the parent.
    """
    if len(block.kernel) <= 1:
        return list(block.kernel)
    members = (
        list(block.kernel)
        + sorted(block.border, key=str)
        + sorted(block.visited, key=str)
    )
    index_of = {node: i for i, node in enumerate(members)}
    graph = block.graph
    neighbor_ids = [
        [index_of[other] for other in graph.neighbors(node)] for node in members
    ]
    degrees = [len(ids) for ids in neighbor_ids]
    alive = [True] * len(members)
    num_kernel = len(block.kernel)
    order: list[Node] = []
    for _ in range(len(members)):
        v = -1
        best = len(members) + 1
        for i, degree in enumerate(degrees):
            if alive[i] and degree < best:
                v = i
                best = degree
        alive[v] = False
        if v < num_kernel:
            order.append(members[v])
        for other in neighbor_ids[v]:
            if alive[other]:
                degrees[other] -= 1
    return order


def _emit_anchored(
    emitter, backend: Backend, anchor, candidates, excluded, pivot_rule
) -> None:
    """The single emission seam: one anchored sweep into one emitter.

    Every analysis path (dict-``Graph``, CSR, splittable, subtask — and,
    through :meth:`~repro.core.cliquestore.CliqueBuffer.extend_prefixed`,
    the bucket demux) funnels its cliques through here, so the output
    representation is decided in exactly one place.  The packed-bitmap
    backend emits array-natively — the batched kernel's spine columns
    land straight in the packed buffers, no per-clique tuple or
    frozenset — while other backends' tuple streams are bulk-flattened
    by the emitter.  Emission order matches the legacy frozenset loops
    exactly.
    """
    if isinstance(backend, BitMatrixBackend):
        enumerate_anchored_packed(
            backend, anchor, candidates, excluded, pivot_rule, sink=emitter
        )
        return
    emitter.extend(
        enumerate_anchored_native(backend, anchor, candidates, excluded, pivot_rule)
    )


@dataclass(frozen=True)
class BlockDescriptor:
    """A block reduced to node-id arrays over a published CSR snapshot.

    This is what the shared-memory executor ships to a worker instead of
    a pickled subgraph: three small ``int64`` arrays naming the block's
    members by their dense indices in the level graph's
    :class:`repro.graph.csr.CSRGraph`.  ``kernel_ids`` preserves kernel
    assignment order and ``border_ids``/``visited_ids`` are in the same
    sorted-by-``str`` order :mod:`repro.core.blocks` uses, so the block
    reconstructed by :func:`block_from_descriptor` has exactly the node
    ordering of the original — the analysis is bit-for-bit identical.
    """

    block_id: int
    kernel_ids: np.ndarray
    border_ids: np.ndarray
    visited_ids: np.ndarray
    estimated_cost: float = 0.0

    @classmethod
    def from_block(
        cls, block_id: int, block: Block, index_of: "dict[Node, int]"
    ) -> "BlockDescriptor":
        """Build a descriptor for ``block`` under the dense index map."""

        def ids(nodes) -> np.ndarray:
            return np.fromiter(
                (index_of[node] for node in nodes), dtype=np.int64, count=len(nodes)
            )

        return cls(
            block_id=block_id,
            kernel_ids=ids(block.kernel),
            border_ids=ids(sorted(block.border, key=str)),
            visited_ids=ids(sorted(block.visited, key=str)),
            estimated_cost=estimate_analysis_cost(
                block.graph.num_nodes, block.graph.num_edges
            ),
        )

    def nbytes(self) -> int:
        """Bytes of payload actually dispatched for this block."""
        return int(
            self.kernel_ids.nbytes + self.border_ids.nbytes + self.visited_ids.nbytes
        )

    @property
    def size(self) -> int:
        """Total number of nodes in the described block."""
        return len(self.kernel_ids) + len(self.border_ids) + len(self.visited_ids)


def block_from_descriptor(
    descriptor: BlockDescriptor,
    indptr: np.ndarray,
    indices: np.ndarray,
    labels: list[Node],
) -> Block:
    """Rebuild a :class:`Block` from CSR views of the level graph.

    The induced subgraph is recovered by walking each member's CSR row
    and keeping the endpoints inside the member set — the zero-copy
    replacement for pickling ``block.graph`` across the process
    boundary.  Node insertion order (kernel order, then sorted border,
    then sorted visited) matches :func:`repro.core.blocks.build_blocks`.
    """
    member_ids = np.concatenate(
        [descriptor.kernel_ids, descriptor.border_ids, descriptor.visited_ids]
    )
    member_set = set(member_ids.tolist())
    graph = Graph(nodes=(labels[i] for i in member_ids.tolist()))
    for u in member_ids.tolist():
        row = indices[indptr[u] : indptr[u + 1]]
        for v in row.tolist():
            if v in member_set and u < v:
                graph.add_edge(labels[u], labels[v])
    return Block(
        kernel=tuple(labels[i] for i in descriptor.kernel_ids.tolist()),
        border=frozenset(labels[i] for i in descriptor.border_ids.tolist()),
        visited=frozenset(labels[i] for i in descriptor.visited_ids.tolist()),
        graph=graph,
    )


def analyze_block_csr(
    descriptor: BlockDescriptor,
    indptr: np.ndarray,
    indices: np.ndarray,
    labels: list[Node],
    tree: DecisionTree | None = None,
    combo: Combo | None = None,
    scratch: BitmapScratch | None = None,
    min_clique_size: int = 0,
) -> BlockReport:
    """Analyse one block directly from CSR views — no ``Graph`` rebuild.

    The zero-copy fast path run inside shared-memory workers: the
    block's induced subgraph is packed straight from the CSR rows into
    an adjacency bitmap (:func:`~repro.graph.csr.extract_block_bitmap`,
    optionally through a per-worker scratch cache), features and the
    decision-tree choice are computed from the packed rows, and the
    chosen backend is materialized from the bitmap via ``from_packed``.
    Produces the same clique set as :func:`analyze_block` on the
    corresponding :func:`block_from_descriptor` block — the differential
    executor suite pins the two paths against each other.
    ``min_clique_size`` skips below-floor anchors as in
    :func:`analyze_block`.
    """
    start = time.perf_counter()
    bitmap, features, combo, backend, pivot_rule, num_members, member_labels = (
        _materialize_csr(descriptor, indptr, indices, labels, tree, combo, scratch)
    )
    selection_seconds = _LAST_SELECTION_SECONDS
    num_kernel = len(descriptor.kernel_ids)
    num_candidates = num_kernel + len(descriptor.border_ids)
    candidates = backend.make(range(num_candidates))
    excluded = backend.make(range(num_candidates, num_members))
    kernel_order = _kernel_order_of(bitmap, num_kernel)
    emitter = make_emitter(member_labels)
    anchors_skipped = 0
    for anchor in kernel_order:
        if _anchor_below_floor(backend, anchor, candidates, min_clique_size):
            anchors_skipped += 1
        else:
            _emit_anchored(emitter, backend, anchor, candidates, excluded, pivot_rule)
        candidates = backend.remove(candidates, anchor)
        excluded = backend.add(excluded, anchor)
    extra: dict[str, float] = {}
    if anchors_skipped:
        extra["anchors_skipped"] = float(anchors_skipped)
    if selection_seconds:
        extra["selection_seconds"] = selection_seconds
    return BlockReport(
        cliques=emitter.build(),
        combo=combo,
        features=features,
        seconds=time.perf_counter() - start,
        kernel_nodes=num_kernel,
        extra=extra,
    )


# Selector wall-clock of the most recent _materialize_csr call in this
# process (0.0 when a forced combo bypassed the tree).  A module global
# rather than a widened return tuple: only the whole-block path reports
# it, and worker processes each keep their own copy.
_LAST_SELECTION_SECONDS = 0.0


def _materialize_csr(
    descriptor: "BlockDescriptor | SubtaskDescriptor",
    indptr: np.ndarray,
    indices: np.ndarray,
    labels: list[Node],
    tree: DecisionTree | None,
    combo: Combo | None,
    scratch: BitmapScratch | None,
):
    """Shared CSR→backend materialization for blocks and subtasks.

    Returns ``(bitmap, features, combo, backend, pivot_rule, n,
    member_labels)``.  The member ordering (kernel, then border, then
    visited) is a pure function of the descriptor's id arrays, so every
    fragment of a split block sees the identical bitmap, features, and
    combo choice as an unsplit analysis of the same block —
    ``member_labels`` doubles as the emitters' per-block decode table.
    """
    member_ids = np.concatenate(
        [descriptor.kernel_ids, descriptor.border_ids, descriptor.visited_ids]
    )
    bitmap = extract_block_bitmap(indptr, indices, member_ids, scratch)
    features = features_from_bitmap(bitmap)
    global _LAST_SELECTION_SECONDS
    _LAST_SELECTION_SECONDS = 0.0
    if combo is None:
        select_start = time.perf_counter()
        combo = select_combo(tree if tree is not None else paper_tree(), features)
        _LAST_SELECTION_SECONDS = time.perf_counter() - select_start
    member_labels = [labels[i] for i in member_ids.tolist()]
    backend = backend_from_bitmap(combo.backend, member_labels, bitmap)
    pivot_rule = get_pivot_rule(combo.algorithm)
    return (
        bitmap,
        features,
        combo,
        backend,
        pivot_rule,
        len(member_ids),
        member_labels,
    )


def _kernel_order_of(bitmap: np.ndarray, num_kernel: int) -> list[int]:
    """Kernel member positions in degeneracy (peeling) order."""
    if num_kernel > 1:
        return [i for i in degeneracy_order_packed(bitmap) if i < num_kernel]
    return list(range(num_kernel))


# ----------------------------------------------------------------------
# Multi-block batched dispatch (bucket formation + demux)
# ----------------------------------------------------------------------
#
# Thousands of tiny blocks each pay a full per-block round-trip —
# bitmap extraction, two degeneracy peels, backend construction, and a
# batched-kernel launch per anchor — even though each launch advances
# only a handful of states.  Bucketing groups small blocks by padded
# shape so the whole group shares ONE lockstep peel and ONE multi-block
# kernel run (:func:`repro.mce.bitmatrix.expand_batched_many`): the
# per-sweep numpy dispatch cost is amortized over every block in the
# bucket.  The demux reproduces exactly the per-block clique sets and
# report structure of :func:`analyze_block_csr`, so buckets are a pure
# execution strategy — invisible to everything downstream.

# Blocks are padded to the next multiple of this quantum; buckets are
# keyed by the padded size, bounding padding waste below 1/PAD_QUANTUM
# of the bucket's rows in the worst case.
PAD_QUANTUM = 8


def padded_size(size: int) -> int:
    """Bucket key of a block: its size rounded up to the padding quantum."""
    return max(PAD_QUANTUM, ((size + PAD_QUANTUM - 1) // PAD_QUANTUM) * PAD_QUANTUM)


@dataclass(frozen=True)
class BlockBucket:
    """A group of same-padded-shape small blocks dispatched as one unit."""

    n_pad: int
    descriptors: tuple[BlockDescriptor, ...]

    @property
    def num_blocks(self) -> int:
        return len(self.descriptors)

    @property
    def estimated_cost(self) -> float:
        """Summed cost estimate — buckets schedule like one big block."""
        return float(sum(d.estimated_cost for d in self.descriptors))

    def nbytes(self) -> int:
        """Bytes of descriptor payload dispatched for this bucket."""
        return int(sum(d.nbytes() for d in self.descriptors))

    @property
    def padding_waste(self) -> float:
        """Fraction of padded adjacency rows that hold no real node."""
        total = self.num_blocks * self.n_pad
        if total == 0:
            return 0.0
        used = sum(d.size for d in self.descriptors)
        return 1.0 - used / total


def form_buckets(
    descriptors: "list[BlockDescriptor]",
    cutoff: int,
    max_bucket: int | None = None,
) -> "tuple[list[BlockBucket], list[BlockDescriptor]]":
    """Partition descriptors into shape buckets and pass-through blocks.

    Blocks of at most ``cutoff`` nodes are grouped by padded size
    (:func:`padded_size`); everything larger — the blocks where
    split/steal parallelism matters and one kernel launch is already
    well amortized — is returned unchanged for the per-block path.
    ``max_bucket`` (parallel executors) chunks each shape group so one
    popular shape does not collapse into a single giant work unit.
    Bucket membership preserves the input (LPT/stream) order within
    each bucket, and buckets are emitted smallest shape first, so the
    partition is deterministic.
    """
    by_shape: dict[int, list[BlockDescriptor]] = {}
    large: list[BlockDescriptor] = []
    for descriptor in descriptors:
        if descriptor.size > cutoff:
            large.append(descriptor)
        else:
            by_shape.setdefault(padded_size(descriptor.size), []).append(descriptor)
    buckets: list[BlockBucket] = []
    for n_pad, group in sorted(by_shape.items()):
        step = max_bucket if max_bucket is not None else len(group)
        for lo in range(0, len(group), max(step, 1)):
            buckets.append(
                BlockBucket(n_pad=n_pad, descriptors=tuple(group[lo : lo + step]))
            )
    return buckets, large


def analyze_bucket_csr(
    bucket: BlockBucket,
    indptr: np.ndarray,
    indices: np.ndarray,
    labels: list[Node],
    tree: DecisionTree | None = None,
    combo: Combo | None = None,
    scratch: BitmapScratch | None = None,
    batch_stats: dict | None = None,
    min_clique_size: int = 0,
) -> list[BlockReport]:
    """Analyse a whole bucket through one multi-block kernel run.

    Produces one :class:`BlockReport` per descriptor, in bucket order,
    with exactly the clique set :func:`analyze_block_csr` would report
    for the same block (the anchored sweep's root states are
    reconstructed per anchor from the lockstep degeneracy peel, so
    exact-once accounting is untouched).  Features, tree selection, and
    report fields match the per-block path; ``seconds`` is the bucket's
    wall-clock split evenly across its blocks (per-block attribution
    inside one fused kernel run is not observable), and ``extra``
    carries ``batched``/``bucket_blocks`` markers.

    A forced ``combo`` whose pivot rule the batched kernel cannot
    vectorize falls back to per-block analysis (identical output,
    per-block speed).  ``batch_stats`` (optional dict) receives the
    bucket-level counters the executor turns into a
    :class:`~repro.mce.instrumentation.BatchDispatch` record.
    """
    start = time.perf_counter()
    descriptors = bucket.descriptors
    num_blocks = len(descriptors)
    if num_blocks == 0:
        return []
    if combo is not None and pivot_kind_of(get_pivot_rule(combo.algorithm)) is None:
        return [
            analyze_block_csr(
                descriptor,
                indptr,
                indices,
                labels,
                tree,
                combo,
                scratch,
                min_clique_size=min_clique_size,
            )
            for descriptor in descriptors
        ]
    n_pad = bucket.n_pad
    words = words_for(n_pad)
    sizes = np.fromiter(
        (d.size for d in descriptors), dtype=np.int64, count=num_blocks
    )
    stacked = np.zeros((num_blocks, n_pad, words), dtype=np.uint64)
    member_ids_of: list[np.ndarray] = []
    for b, descriptor in enumerate(descriptors):
        member_ids = np.concatenate(
            [descriptor.kernel_ids, descriptor.border_ids, descriptor.visited_ids]
        )
        member_ids_of.append(member_ids)
        bitmap = extract_block_bitmap(indptr, indices, member_ids, scratch)
        stacked[b, : bitmap.shape[0], : bitmap.shape[1]] = bitmap
    # One lockstep peel yields every block's degeneracy (a feature) AND
    # its kernel anchor order — the per-block path pays two Python-loop
    # peels for the same information.
    degrees = popcount_rows(stacked.reshape(-1, words)).reshape(num_blocks, n_pad)
    orders, degeneracies = degeneracy_orders_many(stacked, sizes)
    num_edges = degrees.sum(axis=1) // 2
    d_stars = _d_stars_of_degree_matrix(degrees, n_pad)
    features_of: list[BlockFeatures] = []
    combos_of: list[Combo] = []
    for b in range(num_blocks):
        n = int(sizes[b])
        e = int(num_edges[b])
        features = BlockFeatures(
            num_nodes=n,
            num_edges=e,
            density=2.0 * e / (n * (n - 1)) if n > 1 else 0.0,
            degeneracy=int(degeneracies[b]),
            d_star=int(d_stars[b]),
        )
        features_of.append(features)
        combos_of.append(
            combo
            if combo is not None
            else select_combo(tree if tree is not None else paper_tree(), features)
        )
    # One vectorizable pivot kind drives the whole bucket (the clique
    # set is pivot-invariant); a unanimous recognized selection keeps
    # its kind, mixed selections default to tomita.
    kinds = {pivot_kind_of(get_pivot_rule(c.algorithm)) for c in combos_of}
    kind = kinds.pop() if len(kinds) == 1 and None not in kinds else "tomita"
    # Root (P, X) states, one per kernel anchor in degeneracy order:
    # anchors already processed move from the candidate to the excluded
    # side, reconstructed with a cumulative-OR over anchor bits exactly
    # as the serial sweep does incrementally.
    task_block_parts: list[np.ndarray] = []
    roots_p_parts: list[np.ndarray] = []
    roots_x_parts: list[np.ndarray] = []
    anchors_of: list[np.ndarray] = []
    skipped_of = np.zeros(num_blocks, dtype=np.int64)
    one = np.uint64(1)
    for b, descriptor in enumerate(descriptors):
        num_kernel = len(descriptor.kernel_ids)
        num_candidates = num_kernel + len(descriptor.border_ids)
        num_members = int(sizes[b])
        order_row = orders[b, :num_members]
        kernel_order = order_row[order_row < num_kernel]
        k = len(kernel_order)
        if k == 0:
            anchors_of.append(kernel_order)
            continue
        rows = stacked[b][kernel_order]
        anchor_bits = np.zeros((k, words), dtype=np.uint64)
        anchor_bits[np.arange(k), kernel_order >> 6] = one << (
            kernel_order.astype(np.uint64) & np.uint64(63)
        )
        previous = np.zeros_like(anchor_bits)
        if k > 1:
            np.bitwise_or.accumulate(anchor_bits[:-1], axis=0, out=previous[1:])
        cand0 = pack_indices(range(num_candidates), words)
        excl0 = pack_indices(range(num_candidates, num_members), words)
        roots_p = rows & cand0 & ~previous
        roots_x = rows & (excl0 | previous)
        if min_clique_size > 1:
            # Vectorized twin of _anchor_below_floor: an anchor whose
            # root state holds < floor−1 candidates cannot emit a clique
            # of floor size.  Rotation is already baked into the
            # cumulative-OR masks, so dropping a root row changes
            # nothing for the surviving ones.
            keep = 1 + popcount_rows(roots_p) >= min_clique_size
            skipped_of[b] = int(k - keep.sum())
            kernel_order = kernel_order[keep]
            roots_p = roots_p[keep]
            roots_x = roots_x[keep]
            k = len(kernel_order)
        anchors_of.append(kernel_order)
        if k == 0:
            continue
        roots_p_parts.append(roots_p)
        roots_x_parts.append(roots_x)
        task_block_parts.append(np.full(k, b, dtype=np.int64))
    if task_block_parts:
        task_blocks = np.concatenate(task_block_parts)
        roots_p = np.vstack(roots_p_parts)
        roots_x = np.vstack(roots_x_parts)
    else:
        task_blocks = np.empty(0, dtype=np.int64)
        roots_p = np.empty((0, words), dtype=np.uint64)
        roots_x = np.empty((0, words), dtype=np.uint64)
    kernel_stats: dict = {}
    extensions = expand_batched_many(
        stacked.reshape(-1, words),
        task_blocks,
        roots_p,
        roots_x,
        n_pad,
        kind,
        stats=kernel_stats,
    )
    elapsed = time.perf_counter() - start
    if batch_stats is not None:
        batch_stats["num_blocks"] = float(num_blocks)
        batch_stats["num_tasks"] = float(len(task_blocks))
        batch_stats["n_pad"] = float(n_pad)
        batch_stats["padding_waste"] = bucket.padding_waste
        batch_stats["sweeps"] = float(kernel_stats.get("sweeps", 0))
        batch_stats["seconds"] = elapsed
    reports: list[BlockReport] = []
    per_block_seconds = elapsed / num_blocks
    cursor = 0
    for b, descriptor in enumerate(descriptors):
        member_labels = [labels[i] for i in member_ids_of[b].tolist()]
        emitter = make_emitter(member_labels)
        for j, anchor in enumerate(anchors_of[b].tolist()):
            emitter.extend_prefixed(anchor, extensions[cursor + j])
        cursor += len(anchors_of[b])
        extra = {
            "batched": 1.0,
            "bucket_blocks": float(num_blocks),
        }
        if skipped_of[b]:
            extra["anchors_skipped"] = float(skipped_of[b])
        reports.append(
            BlockReport(
                cliques=emitter.build(),
                combo=combos_of[b],
                features=features_of[b],
                seconds=per_block_seconds,
                kernel_nodes=len(descriptor.kernel_ids),
                extra=extra,
            )
        )
    return reports


def _d_stars_of_degree_matrix(degrees: np.ndarray, n_pad: int) -> np.ndarray:
    """Per-row degree h-index of a padded degree matrix.

    Padding entries are zero-degree, which cannot satisfy ``degree >=
    rank`` for any rank ≥ 1, so the extra columns never change the
    h-index — each row agrees with :func:`_d_star_of_degrees` on the
    block's true degree sequence.
    """
    descending = -np.sort(-degrees, axis=1)
    at_least = descending >= np.arange(1, n_pad + 1)[None, :]
    has_any = at_least.any(axis=1)
    last_true = n_pad - np.argmax(at_least[:, ::-1], axis=1)
    return np.where(has_any, last_true, 0).astype(np.int64)


# ----------------------------------------------------------------------
# Anchor-level splitting (intra-block parallelism)
# ----------------------------------------------------------------------
#
# The anchored sweep of Algorithm 4 processes kernel nodes one at a
# time, and the (candidates, excluded) state at anchor position t is a
# *pure function* of the degeneracy order: candidates start as
# kernel ∪ border minus the anchors already processed, excluded as
# visited plus those anchors.  A contiguous range of anchor positions is
# therefore an independently computable subtask — run anywhere, in any
# order, the union over a partition of [0, K) is exactly the block's
# clique set, each clique exactly once, because the exclusion-set
# discipline that makes blocks non-overlapping also makes anchor ranges
# within a block non-overlapping.


@dataclass(frozen=True)
class SubtaskDescriptor:
    """A contiguous anchor range of one block's kernel sweep.

    Carries the same id arrays as the parent :class:`BlockDescriptor`
    (the worker re-extracts the identical bitmap from shared CSR) plus
    the precomputed degeneracy order of the kernel positions and the
    half-open range ``[start, stop)`` of that order this subtask owns.
    Anchors in ``kernel_order[:start]`` are treated as already processed
    (moved to the excluded side) so maximality and exact-once accounting
    are preserved without any cross-subtask communication.
    """

    block_id: int
    subtask_id: int
    kernel_ids: np.ndarray
    border_ids: np.ndarray
    visited_ids: np.ndarray
    kernel_order: np.ndarray
    start: int
    stop: int
    estimated_cost: float = 0.0

    def nbytes(self) -> int:
        """Bytes of payload actually dispatched for this subtask."""
        return int(
            self.kernel_ids.nbytes
            + self.border_ids.nbytes
            + self.visited_ids.nbytes
            + self.kernel_order.nbytes
        )


@dataclass(frozen=True)
class SplitResult:
    """A worker's answer when it split a block instead of finishing it.

    ``partial`` holds the cliques of anchor positions ``[0, done)``
    (empty for a pure probe, where the worker only computed the order
    and the per-anchor costs); the parent turns the remaining positions
    into :class:`SubtaskDescriptor` chunks via :func:`build_subtasks`.
    """

    block_id: int
    partial: BlockReport
    kernel_order: np.ndarray
    done: int
    anchor_costs: np.ndarray


def anchor_cost_estimates(
    bitmap: np.ndarray, kernel_order: list[int], num_candidates: int
) -> np.ndarray:
    """Estimated cost of each anchored enumeration, in sweep order.

    Position ``t``'s subproblem is the anchor plus ``P_t = N(anchor) ∩
    candidates_t``, where ``candidates_t`` excludes the anchors already
    processed — the same shrinking-candidate-set effect that makes late
    anchors cheap in degeneracy order.  Each estimate feeds
    :func:`~repro.decision.features.estimate_analysis_cost` with the
    subproblem's node and edge counts, so subtask chunking balances on
    the same scale the block scheduler uses.
    """
    words = bitmap.shape[1] if bitmap.ndim == 2 else 0
    costs = np.zeros(len(kernel_order), dtype=np.float64)
    if words == 0 or not kernel_order:
        return costs
    cand = pack_indices(range(num_candidates), words)
    anchor_bit = np.zeros(words, dtype=np.uint64)
    for t, anchor in enumerate(kernel_order):
        p = bitmap[anchor] & cand
        members = bits_to_indices(p)
        size = len(members)
        edges_within = (
            int(popcount_rows(bitmap[members] & p).sum()) // 2 if size else 0
        )
        costs[t] = estimate_analysis_cost(size + 1, edges_within + size)
        anchor_bit[:] = 0
        anchor_bit[anchor >> 6] = np.uint64(1) << np.uint64(anchor & 63)
        cand &= ~anchor_bit
    return costs


def build_subtasks(
    descriptor: BlockDescriptor,
    kernel_order: np.ndarray,
    anchor_costs: np.ndarray,
    done: int,
    target: int,
) -> list[SubtaskDescriptor]:
    """Chunk the unprocessed anchor positions into ``target`` subtasks.

    Greedy contiguous chunking: walk positions ``[done, K)`` in sweep
    order, closing a chunk once it accumulates its proportional share of
    the remaining estimated cost.  Contiguity keeps the per-subtask
    bitmap re-extraction overhead bounded by the chunk count (not the
    anchor count) and makes the merged clique order equal to the serial
    sweep.  Deterministic: same inputs, same chunks.
    """
    total_positions = len(kernel_order)
    remaining = total_positions - done
    if remaining <= 0:
        return []
    chunks = max(1, min(target, remaining))
    remaining_cost = float(anchor_costs[done:].sum())
    share = remaining_cost / chunks if remaining_cost > 0.0 else 0.0
    subtasks: list[SubtaskDescriptor] = []
    start = done
    accumulated = 0.0
    for position in range(done, total_positions):
        accumulated += float(anchor_costs[position])
        positions_left = total_positions - (position + 1)
        chunks_left = chunks - len(subtasks) - 1
        close = accumulated >= share and chunks_left > 0
        if (close and position + 1 > start) or positions_left == chunks_left:
            if position + 1 > start:
                subtasks.append(
                    _subtask_of(
                        descriptor, kernel_order, start, position + 1, accumulated
                    )
                )
                start = position + 1
                accumulated = 0.0
    if start < total_positions:
        subtasks.append(
            _subtask_of(
                descriptor, kernel_order, start, total_positions, accumulated
            )
        )
    return subtasks


def _subtask_of(
    descriptor: BlockDescriptor,
    kernel_order: np.ndarray,
    start: int,
    stop: int,
    cost: float,
) -> SubtaskDescriptor:
    return SubtaskDescriptor(
        block_id=descriptor.block_id,
        subtask_id=len_prefix_id(start),
        kernel_ids=descriptor.kernel_ids,
        border_ids=descriptor.border_ids,
        visited_ids=descriptor.visited_ids,
        kernel_order=np.asarray(kernel_order, dtype=np.int64),
        start=start,
        stop=stop,
        estimated_cost=cost,
    )


def len_prefix_id(start: int) -> int:
    """Subtask id of the chunk beginning at anchor position ``start``.

    Using the start position itself (rather than a running counter)
    keeps ids stable across re-splits and retries: the fragment covering
    positions ``[s, t)`` is always subtask ``s`` of its block, which is
    what the fault-injection spec ``kill:<block>.<subtask>`` targets.
    """
    return start


def analyze_block_csr_splittable(
    descriptor: BlockDescriptor,
    indptr: np.ndarray,
    indices: np.ndarray,
    labels: list[Node],
    tree: DecisionTree | None = None,
    combo: Combo | None = None,
    scratch: BitmapScratch | None = None,
    probe: bool = False,
    budget_seconds: float | None = None,
    min_clique_size: int = 0,
) -> "BlockReport | SplitResult":
    """Analyse a block, possibly yielding a split instead of a report.

    With ``probe=True`` (the parent's cost threshold flagged the block
    before dispatch) the worker computes the bitmap, features, kernel
    degeneracy order, and per-anchor cost estimates, then returns a
    :class:`SplitResult` immediately — all sweep work is delegated to
    subtasks.  Otherwise the block is analysed normally, except that
    when ``budget_seconds`` is set and the sweep overruns it with at
    least two anchors still pending, the worker stops after the current
    anchor and returns a :class:`SplitResult` carrying the cliques found
    so far — the mid-run re-split that lets an under-estimated straggler
    shed its tail onto idle workers.

    Blocks with fewer than two kernel anchors never split.
    """
    start_time = time.perf_counter()
    bitmap, features, combo, backend, pivot_rule, num_members, member_labels = (
        _materialize_csr(descriptor, indptr, indices, labels, tree, combo, scratch)
    )
    num_kernel = len(descriptor.kernel_ids)
    num_candidates = num_kernel + len(descriptor.border_ids)
    kernel_order = _kernel_order_of(bitmap, num_kernel)
    splittable = len(kernel_order) >= 2
    if probe and splittable:
        costs = anchor_cost_estimates(bitmap, kernel_order, num_candidates)
        partial = BlockReport(
            cliques=make_emitter(member_labels).build(),
            combo=combo,
            features=features,
            seconds=time.perf_counter() - start_time,
            kernel_nodes=num_kernel,
        )
        return SplitResult(
            block_id=descriptor.block_id,
            partial=partial,
            kernel_order=np.asarray(kernel_order, dtype=np.int64),
            done=0,
            anchor_costs=costs,
        )
    candidates = backend.make(range(num_candidates))
    excluded = backend.make(range(num_candidates, num_members))
    emitter = make_emitter(member_labels)
    anchors_skipped = 0
    for position, anchor in enumerate(kernel_order):
        if _anchor_below_floor(backend, anchor, candidates, min_clique_size):
            anchors_skipped += 1
        else:
            _emit_anchored(emitter, backend, anchor, candidates, excluded, pivot_rule)
        candidates = backend.remove(candidates, anchor)
        excluded = backend.add(excluded, anchor)
        done = position + 1
        overrun = (
            budget_seconds is not None
            and splittable
            and len(kernel_order) - done >= 2
            and time.perf_counter() - start_time > budget_seconds
        )
        if overrun:
            costs = anchor_cost_estimates(bitmap, kernel_order, num_candidates)
            partial = BlockReport(
                cliques=emitter.build(),
                combo=combo,
                features=features,
                seconds=time.perf_counter() - start_time,
                kernel_nodes=num_kernel,
                extra=(
                    {"anchors_skipped": float(anchors_skipped)}
                    if anchors_skipped
                    else {}
                ),
            )
            return SplitResult(
                block_id=descriptor.block_id,
                partial=partial,
                kernel_order=np.asarray(kernel_order, dtype=np.int64),
                done=done,
                anchor_costs=costs,
            )
    return BlockReport(
        cliques=emitter.build(),
        combo=combo,
        features=features,
        seconds=time.perf_counter() - start_time,
        kernel_nodes=num_kernel,
        extra={"anchors_skipped": float(anchors_skipped)} if anchors_skipped else {},
    )


def analyze_subtask_csr(
    subtask: SubtaskDescriptor,
    indptr: np.ndarray,
    indices: np.ndarray,
    labels: list[Node],
    tree: DecisionTree | None = None,
    combo: Combo | None = None,
    scratch: BitmapScratch | None = None,
    min_clique_size: int = 0,
) -> BlockReport:
    """Run one anchor range of a split block's kernel sweep.

    The (candidates, excluded) state is reconstructed from the
    precomputed degeneracy order: anchors before ``subtask.start`` are
    excluded exactly as if this worker had processed them itself, so the
    fragment reports precisely the cliques the serial sweep reports at
    positions ``[start, stop)`` — no more, no fewer.  A
    ``min_clique_size`` floor skips below-floor anchors of the range
    (same test as the unsplit sweep, so fragments stay bit-compatible).
    """
    start_time = time.perf_counter()
    bitmap, features, combo, backend, pivot_rule, num_members, member_labels = (
        _materialize_csr(subtask, indptr, indices, labels, tree, combo, scratch)
    )
    num_kernel = len(subtask.kernel_ids)
    num_candidates = num_kernel + len(subtask.border_ids)
    processed = [int(i) for i in subtask.kernel_order[: subtask.start]]
    processed_set = set(processed)
    candidates = backend.make(
        i for i in range(num_candidates) if i not in processed_set
    )
    excluded = backend.make(
        list(range(num_candidates, num_members)) + processed
    )
    emitter = make_emitter(member_labels)
    anchors_skipped = 0
    for position in range(subtask.start, subtask.stop):
        anchor = int(subtask.kernel_order[position])
        if _anchor_below_floor(backend, anchor, candidates, min_clique_size):
            anchors_skipped += 1
        else:
            _emit_anchored(emitter, backend, anchor, candidates, excluded, pivot_rule)
        candidates = backend.remove(candidates, anchor)
        excluded = backend.add(excluded, anchor)
    return BlockReport(
        cliques=emitter.build(),
        combo=combo,
        features=features,
        seconds=time.perf_counter() - start_time,
        kernel_nodes=subtask.stop - subtask.start,
        extra={"anchors_skipped": float(anchors_skipped)} if anchors_skipped else {},
    )


def merge_fragment_reports(
    block_id: int,
    num_kernel: int,
    total_positions: int,
    fragments: list[tuple[int, int, BlockReport]],
) -> BlockReport:
    """Merge ``(start, stop, report)`` fragments into one block report.

    Exact-once accounting is verified structurally: the fragment ranges
    must tile ``[0, total_positions)`` with no gap and no overlap, which
    — given that each fragment reports exactly its range's cliques — is
    the per-block version of the paper's visited/exclusion-set argument.
    Cliques concatenate in range order, reproducing the serial sweep's
    emission order; ``seconds`` sums to the serial-equivalent time.

    Raises
    ------
    ValueError
        When the fragment ranges do not tile the sweep.
    """
    ordered = sorted(fragments, key=lambda fragment: fragment[0])
    position = 0
    for start, stop, _ in ordered:
        if start != position or stop < start:
            raise ValueError(
                f"block {block_id}: fragment ranges do not tile the kernel "
                f"sweep (expected start {position}, got [{start}, {stop}))"
            )
        position = stop
    if position != total_positions:
        raise ValueError(
            f"block {block_id}: fragments cover {position} of "
            f"{total_positions} anchor positions"
        )
    first = ordered[0][2]
    packed = all(isinstance(report.cliques, CliqueStore) for _, _, report in ordered)
    if packed:
        cliques: "CliqueStore | list[frozenset[Node]]" = CliqueStore.concat(
            [report.cliques for _, _, report in ordered]
        )
    else:
        cliques = [
            clique for _, _, report in ordered for clique in report.cliques
        ]
    seconds = 0.0
    extra: dict[str, float] = {}
    for _, _, report in ordered:
        seconds += report.seconds
        skipped = float(report.extra.get("anchors_skipped", 0.0))
        if skipped:
            extra["anchors_skipped"] = extra.get("anchors_skipped", 0.0) + skipped
        extra["dispatch_bytes"] = extra.get("dispatch_bytes", 0.0) + float(
            report.extra.get("dispatch_bytes", 0.0)
        )
        extra["peak_rss_kb"] = max(
            extra.get("peak_rss_kb", 0.0), float(report.extra.get("peak_rss_kb", 0.0))
        )
        if report.extra.get("retried"):
            extra["retried"] = 1.0
    extra["split"] = 1.0
    extra["subtasks"] = float(len(ordered))
    if "worker_pid" in first.extra:
        extra["worker_pid"] = first.extra["worker_pid"]
    return BlockReport(
        cliques=cliques,
        combo=first.combo,
        features=first.features,
        seconds=seconds,
        kernel_nodes=num_kernel,
        extra=extra,
    )


def analyze_blocks(
    blocks: list[Block],
    tree: DecisionTree | None = None,
    combo: Combo | None = None,
    min_clique_size: int = 0,
) -> tuple[list[frozenset[Node]], list[BlockReport]]:
    """Analyse every block serially; return all cliques plus the reports.

    The distributed runner (:mod:`repro.distributed.runner`) dispatches
    the same per-block work across simulated or real workers; this serial
    form is the reference implementation the others are tested against.
    """
    all_cliques: list[frozenset[Node]] = []
    reports: list[BlockReport] = []
    for block in blocks:
        report = analyze_block(
            block, tree=tree, combo=combo, min_clique_size=min_clique_size
        )
        all_cliques.extend(report.cliques)
        reports.append(report)
    return all_cliques, reports

"""Per-block clique detection (``BLOCK-ANALYSIS``, Alg. 4).

For one block the goal is: *all maximal cliques that have at least one
kernel node and no visited node.*  Those two conditions together make the
union over all blocks emit each feasible-touching maximal clique exactly
once — the clique is reported from the block whose kernel contains its
earliest-kernelised member, and suppressed everywhere else because that
member is "visited" there.

The procedure anchors one enumeration per kernel node ``k``, restricted
to ``N(k)``: candidates start as ``kernel ∪ border`` and excluded as
``visited``; after ``k`` is processed it moves from the candidate side to
the excluded side, exactly as in the paper's pseudo-code.  Maximality
against the *whole* network follows from the block invariant that every
neighbour of a kernel node is inside the block.

The enumeration combination (algorithm × data structure) is chosen per
block by a decision tree over the block's features (``bestfit``, line 1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.blocks import Block
from repro.decision.features import BlockFeatures, estimate_analysis_cost
from repro.decision.paper_tree import paper_tree, select_combo
from repro.decision.tree import DecisionTree
from repro.graph.adjacency import Graph, Node
from repro.mce.anchored import enumerate_anchored_native
from repro.mce.backends import build_backend
from repro.mce.registry import Combo, get_pivot_rule


@dataclass
class BlockReport:
    """Outcome of analysing one block."""

    cliques: list[frozenset[Node]]
    combo: Combo
    features: BlockFeatures
    seconds: float
    kernel_nodes: int = 0
    extra: dict[str, float] = field(default_factory=dict)


def analyze_block(
    block: Block,
    tree: DecisionTree | None = None,
    combo: Combo | None = None,
) -> BlockReport:
    """Enumerate the block's contribution to the global clique set.

    Parameters
    ----------
    block:
        A block produced by :func:`repro.core.blocks.build_blocks`.
    tree:
        Decision tree used to pick the enumeration combo from the block's
        features; defaults to the paper's published tree (Figure 3).
    combo:
        Bypass the tree and force a specific combination (used by the
        ablation benchmarks that compare the tree against fixed combos).

    Returns
    -------
    BlockReport
        The cliques found (each has ≥ 1 kernel node and no visited node),
        the combination used, the block features, and the wall-clock time.
    """
    start = time.perf_counter()
    features = BlockFeatures.of(block.graph)
    if combo is None:
        combo = select_combo(tree if tree is not None else paper_tree(), features)
    backend = build_backend(block.graph, combo.backend)
    pivot_rule = get_pivot_rule(combo.algorithm)

    candidates = backend.make_from_labels(list(block.kernel) + list(block.border))
    excluded = backend.make_from_labels(block.visited)
    cliques: list[frozenset[Node]] = []
    for kernel_node in block.kernel:
        anchor = backend.index_of(kernel_node)
        for clique in enumerate_anchored_native(
            backend, anchor, candidates, excluded, pivot_rule
        ):
            cliques.append(frozenset(backend.label(i) for i in clique))
        candidates = backend.remove(candidates, anchor)
        excluded = backend.add(excluded, anchor)
    return BlockReport(
        cliques=cliques,
        combo=combo,
        features=features,
        seconds=time.perf_counter() - start,
        kernel_nodes=len(block.kernel),
    )


@dataclass(frozen=True)
class BlockDescriptor:
    """A block reduced to node-id arrays over a published CSR snapshot.

    This is what the shared-memory executor ships to a worker instead of
    a pickled subgraph: three small ``int64`` arrays naming the block's
    members by their dense indices in the level graph's
    :class:`repro.graph.csr.CSRGraph`.  ``kernel_ids`` preserves kernel
    assignment order and ``border_ids``/``visited_ids`` are in the same
    sorted-by-``str`` order :mod:`repro.core.blocks` uses, so the block
    reconstructed by :func:`block_from_descriptor` has exactly the node
    ordering of the original — the analysis is bit-for-bit identical.
    """

    block_id: int
    kernel_ids: np.ndarray
    border_ids: np.ndarray
    visited_ids: np.ndarray
    estimated_cost: float = 0.0

    @classmethod
    def from_block(
        cls, block_id: int, block: Block, index_of: "dict[Node, int]"
    ) -> "BlockDescriptor":
        """Build a descriptor for ``block`` under the dense index map."""

        def ids(nodes) -> np.ndarray:
            return np.fromiter(
                (index_of[node] for node in nodes), dtype=np.int64, count=len(nodes)
            )

        return cls(
            block_id=block_id,
            kernel_ids=ids(block.kernel),
            border_ids=ids(sorted(block.border, key=str)),
            visited_ids=ids(sorted(block.visited, key=str)),
            estimated_cost=estimate_analysis_cost(
                block.graph.num_nodes, block.graph.num_edges
            ),
        )

    def nbytes(self) -> int:
        """Bytes of payload actually dispatched for this block."""
        return int(
            self.kernel_ids.nbytes + self.border_ids.nbytes + self.visited_ids.nbytes
        )

    @property
    def size(self) -> int:
        """Total number of nodes in the described block."""
        return len(self.kernel_ids) + len(self.border_ids) + len(self.visited_ids)


def block_from_descriptor(
    descriptor: BlockDescriptor,
    indptr: np.ndarray,
    indices: np.ndarray,
    labels: list[Node],
) -> Block:
    """Rebuild a :class:`Block` from CSR views of the level graph.

    The induced subgraph is recovered by walking each member's CSR row
    and keeping the endpoints inside the member set — the zero-copy
    replacement for pickling ``block.graph`` across the process
    boundary.  Node insertion order (kernel order, then sorted border,
    then sorted visited) matches :func:`repro.core.blocks.build_blocks`.
    """
    member_ids = np.concatenate(
        [descriptor.kernel_ids, descriptor.border_ids, descriptor.visited_ids]
    )
    member_set = set(member_ids.tolist())
    graph = Graph(nodes=(labels[i] for i in member_ids.tolist()))
    for u in member_ids.tolist():
        row = indices[indptr[u] : indptr[u + 1]]
        for v in row.tolist():
            if v in member_set and u < v:
                graph.add_edge(labels[u], labels[v])
    return Block(
        kernel=tuple(labels[i] for i in descriptor.kernel_ids.tolist()),
        border=frozenset(labels[i] for i in descriptor.border_ids.tolist()),
        visited=frozenset(labels[i] for i in descriptor.visited_ids.tolist()),
        graph=graph,
    )


def analyze_blocks(
    blocks: list[Block],
    tree: DecisionTree | None = None,
    combo: Combo | None = None,
) -> tuple[list[frozenset[Node]], list[BlockReport]]:
    """Analyse every block serially; return all cliques plus the reports.

    The distributed runner (:mod:`repro.distributed.runner`) dispatches
    the same per-block work across simulated or real workers; this serial
    form is the reference implementation the others are tested against.
    """
    all_cliques: list[frozenset[Node]] = []
    reports: list[BlockReport] = []
    for block in blocks:
        report = analyze_block(block, tree=tree, combo=combo)
        all_cliques.extend(report.cliques)
        reports.append(report)
    return all_cliques, reports

"""Per-block clique detection (``BLOCK-ANALYSIS``, Alg. 4).

For one block the goal is: *all maximal cliques that have at least one
kernel node and no visited node.*  Those two conditions together make the
union over all blocks emit each feasible-touching maximal clique exactly
once — the clique is reported from the block whose kernel contains its
earliest-kernelised member, and suppressed everywhere else because that
member is "visited" there.

The procedure anchors one enumeration per kernel node ``k``, restricted
to ``N(k)``: candidates start as ``kernel ∪ border`` and excluded as
``visited``; after ``k`` is processed it moves from the candidate side to
the excluded side, exactly as in the paper's pseudo-code.  Kernel nodes
are anchored in **degeneracy order** (sparsest first): which kernel node
reports a clique shifts with the order, but the per-block clique *set*
is invariant — a clique is always reported at whichever of its kernel
members is anchored first — and peeling-order anchors leave denser
candidate sets to later anchors whose exclusion sets have already grown,
so the pivot prunes harder.  Maximality against the *whole* network
follows from the block invariant that every neighbour of a kernel node
is inside the block.

The enumeration combination (algorithm × data structure) is chosen per
block by a decision tree over the block's features (``bestfit``, line 1).
Two materialization paths produce identical results:
:func:`analyze_block` consumes a :class:`~repro.core.blocks.Block`
(subgraph as a ``Graph``), while :func:`analyze_block_csr` consumes a
:class:`BlockDescriptor` plus CSR views and builds the chosen backend
straight from a packed adjacency bitmap — no intermediate ``Graph`` —
which is what shared-memory workers run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.blocks import Block
from repro.decision.features import (
    BlockFeatures,
    estimate_analysis_cost,
    features_from_bitmap,
)
from repro.decision.paper_tree import paper_tree, select_combo
from repro.decision.tree import DecisionTree
from repro.graph.adjacency import Graph, Node
from repro.graph.csr import BitmapScratch, extract_block_bitmap
from repro.mce.anchored import enumerate_anchored_native
from repro.mce.backends import Backend, backend_from_bitmap, build_backend
from repro.mce.bitmatrix import (
    BitMatrixBackend,
    degeneracy_order_packed,
    enumerate_anchored_packed,
)
from repro.mce.registry import Combo, get_pivot_rule


@dataclass
class BlockReport:
    """Outcome of analysing one block."""

    cliques: list[frozenset[Node]]
    combo: Combo
    features: BlockFeatures
    seconds: float
    kernel_nodes: int = 0
    extra: dict[str, float] = field(default_factory=dict)


def analyze_block(
    block: Block,
    tree: DecisionTree | None = None,
    combo: Combo | None = None,
) -> BlockReport:
    """Enumerate the block's contribution to the global clique set.

    Parameters
    ----------
    block:
        A block produced by :func:`repro.core.blocks.build_blocks`.
    tree:
        Decision tree used to pick the enumeration combo from the block's
        features; defaults to the paper's published tree (Figure 3).
    combo:
        Bypass the tree and force a specific combination (used by the
        ablation benchmarks that compare the tree against fixed combos).

    Returns
    -------
    BlockReport
        The cliques found (each has ≥ 1 kernel node and no visited node),
        the combination used, the block features, and the wall-clock time.
    """
    start = time.perf_counter()
    features = BlockFeatures.of(block.graph)
    if combo is None:
        combo = select_combo(tree if tree is not None else paper_tree(), features)
    backend = build_backend(block.graph, combo.backend)
    pivot_rule = get_pivot_rule(combo.algorithm)

    candidates = backend.make_from_labels(list(block.kernel) + list(block.border))
    excluded = backend.make_from_labels(block.visited)
    kernel_order = _kernel_degeneracy_order(block)
    cliques: list[frozenset[Node]] = []
    for kernel_node in kernel_order:
        anchor = backend.index_of(kernel_node)
        for clique in _enumerate_anchored(
            backend, anchor, candidates, excluded, pivot_rule
        ):
            cliques.append(frozenset(backend.label(i) for i in clique))
        candidates = backend.remove(candidates, anchor)
        excluded = backend.add(excluded, anchor)
    return BlockReport(
        cliques=cliques,
        combo=combo,
        features=features,
        seconds=time.perf_counter() - start,
        kernel_nodes=len(block.kernel),
    )


def _kernel_degeneracy_order(block: Block) -> list[Node]:
    """The block's kernel nodes in degeneracy (peeling) order.

    Must match :func:`repro.mce.bitmatrix.degeneracy_order_packed` on the
    descriptor's member ordering exactly — same smallest-index tie-break
    among minimum-residual-degree nodes — so a block analysed in a
    shared-memory worker (:func:`analyze_block_csr`) emits its cliques in
    the same order as the serial path, including when a crashed worker's
    block is retried in the parent.
    """
    if len(block.kernel) <= 1:
        return list(block.kernel)
    members = (
        list(block.kernel)
        + sorted(block.border, key=str)
        + sorted(block.visited, key=str)
    )
    index_of = {node: i for i, node in enumerate(members)}
    graph = block.graph
    neighbor_ids = [
        [index_of[other] for other in graph.neighbors(node)] for node in members
    ]
    degrees = [len(ids) for ids in neighbor_ids]
    alive = [True] * len(members)
    num_kernel = len(block.kernel)
    order: list[Node] = []
    for _ in range(len(members)):
        v = -1
        best = len(members) + 1
        for i, degree in enumerate(degrees):
            if alive[i] and degree < best:
                v = i
                best = degree
        alive[v] = False
        if v < num_kernel:
            order.append(members[v])
        for other in neighbor_ids[v]:
            if alive[other]:
                degrees[other] -= 1
    return order


def _enumerate_anchored(backend: Backend, anchor, candidates, excluded, pivot_rule):
    """Dispatch one anchored run to the backend's best kernel.

    The packed-bitmap backend gets the explicit-stack word-parallel
    enumerator; every other backend runs the shared recursion.  Both
    yield the same clique tuples for the same inputs.
    """
    if isinstance(backend, BitMatrixBackend):
        return enumerate_anchored_packed(
            backend, anchor, candidates, excluded, pivot_rule
        )
    return enumerate_anchored_native(
        backend, anchor, candidates, excluded, pivot_rule
    )


@dataclass(frozen=True)
class BlockDescriptor:
    """A block reduced to node-id arrays over a published CSR snapshot.

    This is what the shared-memory executor ships to a worker instead of
    a pickled subgraph: three small ``int64`` arrays naming the block's
    members by their dense indices in the level graph's
    :class:`repro.graph.csr.CSRGraph`.  ``kernel_ids`` preserves kernel
    assignment order and ``border_ids``/``visited_ids`` are in the same
    sorted-by-``str`` order :mod:`repro.core.blocks` uses, so the block
    reconstructed by :func:`block_from_descriptor` has exactly the node
    ordering of the original — the analysis is bit-for-bit identical.
    """

    block_id: int
    kernel_ids: np.ndarray
    border_ids: np.ndarray
    visited_ids: np.ndarray
    estimated_cost: float = 0.0

    @classmethod
    def from_block(
        cls, block_id: int, block: Block, index_of: "dict[Node, int]"
    ) -> "BlockDescriptor":
        """Build a descriptor for ``block`` under the dense index map."""

        def ids(nodes) -> np.ndarray:
            return np.fromiter(
                (index_of[node] for node in nodes), dtype=np.int64, count=len(nodes)
            )

        return cls(
            block_id=block_id,
            kernel_ids=ids(block.kernel),
            border_ids=ids(sorted(block.border, key=str)),
            visited_ids=ids(sorted(block.visited, key=str)),
            estimated_cost=estimate_analysis_cost(
                block.graph.num_nodes, block.graph.num_edges
            ),
        )

    def nbytes(self) -> int:
        """Bytes of payload actually dispatched for this block."""
        return int(
            self.kernel_ids.nbytes + self.border_ids.nbytes + self.visited_ids.nbytes
        )

    @property
    def size(self) -> int:
        """Total number of nodes in the described block."""
        return len(self.kernel_ids) + len(self.border_ids) + len(self.visited_ids)


def block_from_descriptor(
    descriptor: BlockDescriptor,
    indptr: np.ndarray,
    indices: np.ndarray,
    labels: list[Node],
) -> Block:
    """Rebuild a :class:`Block` from CSR views of the level graph.

    The induced subgraph is recovered by walking each member's CSR row
    and keeping the endpoints inside the member set — the zero-copy
    replacement for pickling ``block.graph`` across the process
    boundary.  Node insertion order (kernel order, then sorted border,
    then sorted visited) matches :func:`repro.core.blocks.build_blocks`.
    """
    member_ids = np.concatenate(
        [descriptor.kernel_ids, descriptor.border_ids, descriptor.visited_ids]
    )
    member_set = set(member_ids.tolist())
    graph = Graph(nodes=(labels[i] for i in member_ids.tolist()))
    for u in member_ids.tolist():
        row = indices[indptr[u] : indptr[u + 1]]
        for v in row.tolist():
            if v in member_set and u < v:
                graph.add_edge(labels[u], labels[v])
    return Block(
        kernel=tuple(labels[i] for i in descriptor.kernel_ids.tolist()),
        border=frozenset(labels[i] for i in descriptor.border_ids.tolist()),
        visited=frozenset(labels[i] for i in descriptor.visited_ids.tolist()),
        graph=graph,
    )


def analyze_block_csr(
    descriptor: BlockDescriptor,
    indptr: np.ndarray,
    indices: np.ndarray,
    labels: list[Node],
    tree: DecisionTree | None = None,
    combo: Combo | None = None,
    scratch: BitmapScratch | None = None,
) -> BlockReport:
    """Analyse one block directly from CSR views — no ``Graph`` rebuild.

    The zero-copy fast path run inside shared-memory workers: the
    block's induced subgraph is packed straight from the CSR rows into
    an adjacency bitmap (:func:`~repro.graph.csr.extract_block_bitmap`,
    optionally through a per-worker scratch cache), features and the
    decision-tree choice are computed from the packed rows, and the
    chosen backend is materialized from the bitmap via ``from_packed``.
    Produces the same clique set as :func:`analyze_block` on the
    corresponding :func:`block_from_descriptor` block — the differential
    executor suite pins the two paths against each other.
    """
    start = time.perf_counter()
    member_ids = np.concatenate(
        [descriptor.kernel_ids, descriptor.border_ids, descriptor.visited_ids]
    )
    bitmap = extract_block_bitmap(indptr, indices, member_ids, scratch)
    features = features_from_bitmap(bitmap)
    if combo is None:
        combo = select_combo(tree if tree is not None else paper_tree(), features)
    member_labels = [labels[i] for i in member_ids.tolist()]
    backend = backend_from_bitmap(combo.backend, member_labels, bitmap)
    pivot_rule = get_pivot_rule(combo.algorithm)

    num_kernel = len(descriptor.kernel_ids)
    num_candidates = num_kernel + len(descriptor.border_ids)
    candidates = backend.make(range(num_candidates))
    excluded = backend.make(range(num_candidates, len(member_ids)))
    if num_kernel > 1:
        kernel_order = [
            i for i in degeneracy_order_packed(bitmap) if i < num_kernel
        ]
    else:
        kernel_order = list(range(num_kernel))
    cliques: list[frozenset[Node]] = []
    for anchor in kernel_order:
        for clique in _enumerate_anchored(
            backend, anchor, candidates, excluded, pivot_rule
        ):
            cliques.append(frozenset(backend.label(i) for i in clique))
        candidates = backend.remove(candidates, anchor)
        excluded = backend.add(excluded, anchor)
    return BlockReport(
        cliques=cliques,
        combo=combo,
        features=features,
        seconds=time.perf_counter() - start,
        kernel_nodes=num_kernel,
    )


def analyze_blocks(
    blocks: list[Block],
    tree: DecisionTree | None = None,
    combo: Combo | None = None,
) -> tuple[list[frozenset[Node]], list[BlockReport]]:
    """Analyse every block serially; return all cliques plus the reports.

    The distributed runner (:mod:`repro.distributed.runner`) dispatches
    the same per-block work across simulated or real workers; this serial
    form is the reference implementation the others are tested against.
    """
    all_cliques: list[frozenset[Node]] = []
    reports: list[BlockReport] = []
    for block in blocks:
        report = analyze_block(block, tree=tree, combo=combo)
        all_cliques.extend(report.cliques)
        reports.append(report)
    return all_cliques, reports

"""Second-level decomposition into blocks (``BLOCKS``, Alg. 3).

A **block** is a small subgraph processed independently by one worker.
Each block has three kinds of nodes (Section 3.2):

* **kernel** nodes — feasible nodes assigned to this block; kernel sets
  across all blocks form a partition of the feasible set ``Nf``, and the
  block contains the *entire* neighbourhood of every kernel node;
* **visited** nodes — block members that already served as kernel nodes
  of an earlier block (their cliques were fully reported there);
* **border** nodes — the remaining neighbours of the kernel set.

Blocks are grown greedily and density-seekingly: starting from a seed,
the next kernel node is the unassigned feasible border node with the
most adjacencies to the current kernel set, until adding any candidate
would overflow the block-size limit ``m`` or every candidate falls below
the adjacency threshold.  This "leverage[s] the adjacency of the nodes
to put dense subgraphs into the same block", producing internally
homogeneous chunks that an exact MCE algorithm then refines.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.errors import DecompositionError
from repro.graph.adjacency import Graph, Node
from repro.graph.csr import CSRGraph
from repro.graph.views import induced_subgraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (block_analysis imports us)
    from repro.core.block_analysis import BlockDescriptor


@dataclass(frozen=True)
class Block:
    """One unit of distributed work produced by the decomposition.

    ``kernel`` preserves assignment order (the order in which nodes were
    promoted from border to kernel), which :mod:`repro.core.block_analysis`
    uses for its deterministic anchored sweep.  ``graph`` is the subgraph
    of the input induced by ``kernel ∪ border ∪ visited``.
    """

    kernel: tuple[Node, ...]
    border: frozenset[Node]
    visited: frozenset[Node]
    graph: Graph

    @property
    def size(self) -> int:
        """Total number of nodes in the block."""
        return self.graph.num_nodes

    def node_kind(self, node: Node) -> str:
        """Return ``"kernel"``, ``"border"`` or ``"visited"`` for a member.

        Raises
        ------
        KeyError
            If ``node`` is not in the block.
        """
        if node in self.border:
            return "border"
        if node in self.visited:
            return "visited"
        if node in self.kernel:
            return "kernel"
        raise KeyError(f"node {node!r} is not in this block")

    def __repr__(self) -> str:
        return (
            f"Block(kernel={len(self.kernel)}, border={len(self.border)}, "
            f"visited={len(self.visited)})"
        )


SEED_ORDERS: tuple[str, ...] = ("insertion", "min_degree", "max_degree")


def build_blocks(
    graph: Graph,
    feasible: list[Node],
    m: int,
    min_adjacency: int = 1,
    seed_order: str = "insertion",
) -> list[Block]:
    """Partition ``feasible`` into kernel sets and return the blocks.

    Parameters
    ----------
    graph:
        The (current recursion level's) network.
    feasible:
        The feasible nodes of ``graph`` for block size ``m``, in the
        deterministic order produced by :func:`repro.core.feasibility.cut`.
    m:
        Maximum number of nodes per block; every feasible node's closed
        neighbourhood fits by definition.
    min_adjacency:
        Growth stops when no candidate border node has at least this many
        adjacencies with the current kernel set (the paper's "specified
        threshold").  The default of 1 accepts any adjacent candidate.
    seed_order:
        The paper's ``select(Nf)`` strategy for picking each block's
        first kernel node: ``"insertion"`` (the default, deterministic
        input order), ``"min_degree"`` (peel loose nodes first —
        reference [10] suggests increasing degree order), or
        ``"max_degree"`` (start blocks at local hubs).  The clique
        output is invariant; only block shapes change.

    Raises
    ------
    ValueError
        On a non-positive ``m`` or ``min_adjacency`` or an unknown
        ``seed_order``.
    DecompositionError
        If a supposedly feasible node does not fit in an empty block,
        which indicates ``feasible`` was not produced for this ``m``.
    """
    if m < 1:
        raise ValueError("block size m must be at least 1")
    if min_adjacency < 1:
        raise ValueError("min_adjacency must be at least 1")
    if seed_order not in SEED_ORDERS:
        raise ValueError(
            f"unknown seed_order {seed_order!r}; known: {', '.join(SEED_ORDERS)}"
        )
    ordered = list(feasible)
    if seed_order == "min_degree":
        ordered.sort(key=graph.degree)
    elif seed_order == "max_degree":
        ordered.sort(key=graph.degree, reverse=True)
    unassigned: dict[Node, None] = dict.fromkeys(ordered)
    used_kernels: set[Node] = set()
    blocks: list[Block] = []
    while unassigned:
        seed = next(iter(unassigned))
        block = _grow_block(graph, seed, unassigned, used_kernels, m, min_adjacency)
        blocks.append(block)
        used_kernels.update(block.kernel)
    return blocks


def _grow_block(
    graph: Graph,
    seed: Node,
    unassigned: dict[Node, None],
    used_kernels: set[Node],
    m: int,
    min_adjacency: int,
) -> Block:
    """Grow one block from ``seed``, consuming nodes from ``unassigned``."""
    kernel: list[Node] = []
    kernel_set: set[Node] = set()
    closed: set[Node] = set()  # kernel ∪ N(kernel), the block-size measure
    # candidate -> number of adjacencies with the current kernel set.
    adjacency_count: dict[Node, int] = {}

    candidate: Node | None = seed
    while candidate is not None:
        addition = graph.closed_neighborhood(candidate)
        if len(closed | addition) > m:
            if not kernel:
                raise DecompositionError(
                    f"seed {candidate!r} alone overflows block size {m}; "
                    "was the feasible set computed for a different m?"
                )
            break
        del unassigned[candidate]
        kernel.append(candidate)
        kernel_set.add(candidate)
        closed |= addition
        adjacency_count.pop(candidate, None)
        for neighbor in graph.neighbors(candidate):
            if neighbor in unassigned:
                adjacency_count[neighbor] = adjacency_count.get(neighbor, 0) + 1
        candidate = _select_candidate(adjacency_count, min_adjacency)

    neighborhood = closed - kernel_set
    visited = frozenset(neighborhood & used_kernels)
    border = frozenset(neighborhood - visited)
    members = list(kernel)
    members.extend(sorted(border, key=str))
    members.extend(sorted(visited, key=str))
    return Block(
        kernel=tuple(kernel),
        border=border,
        visited=visited,
        graph=induced_subgraph(graph, members),
    )


def _select_candidate(
    adjacency_count: dict[Node, int], min_adjacency: int
) -> Node | None:
    """Pick the unassigned border node most adjacent to the kernel set.

    Returns ``None`` when no candidate reaches ``min_adjacency``.  Ties
    break toward the candidate discovered first (dict insertion order),
    keeping block construction deterministic.
    """
    best: Node | None = None
    best_count = min_adjacency - 1
    for node, count in adjacency_count.items():
        if count > best_count:
            best = node
            best_count = count
    return best


def blocks_csr(
    csr: CSRGraph,
    feasible_ids: np.ndarray,
    m: int,
    min_adjacency: int = 1,
    seed_order: str = "insertion",
) -> Iterator["BlockDescriptor"]:
    """CSR-native ``BLOCKS``: stream one :class:`BlockDescriptor` per block.

    The id-space twin of :func:`build_blocks`, run entirely on the flat
    ``indptr``/``indices`` arrays of ``csr`` — no dict ``Graph``, no
    per-block induced subgraph.  The greedy density-seeking growth is
    incremental instead of rescanned: an ``adj_count`` array tracks each
    candidate's adjacencies to the current kernel set (updated once per
    promoted kernel node's neighbour row) and a bucket-of-heaps candidate
    structure answers "most adjacent, earliest discovered" in amortized
    ``O(log m)`` per counter bump, replacing the per-step
    O(|candidates|) scan of the dict path.  Per-block closed-set
    membership uses epoch stamps, so no array is reallocated or cleared
    between blocks.

    Descriptors are yielded as soon as each block's growth stops, which
    is what lets the pipeline driver dispatch them to workers while the
    rest of the level (and later levels) is still being decomposed.
    ``border_ids``/``visited_ids`` are in ascending dense-id order (the
    CSR-native deterministic order; the dict path sorts labels by
    ``str`` instead — block shapes may differ between the two paths, but
    the clique output is invariant to the partition).

    Parameters
    ----------
    csr:
        The current recursion level's graph as a CSR snapshot.
    feasible_ids:
        Strictly increasing dense ids of the feasible nodes of ``csr``
        for this ``m``, as produced by
        :func:`repro.core.feasibility.cut_csr`.
    m, min_adjacency, seed_order:
        As in :func:`build_blocks`.

    Raises
    ------
    ValueError
        On a non-positive ``m`` or ``min_adjacency`` or an unknown
        ``seed_order``.
    DecompositionError
        If a supposedly feasible node overflows an empty block
        (``feasible_ids`` computed for a different ``m``).
    """
    from repro.core.block_analysis import BlockDescriptor
    from repro.decision.features import estimate_analysis_cost

    if m < 1:
        raise ValueError("block size m must be at least 1")
    if min_adjacency < 1:
        raise ValueError("min_adjacency must be at least 1")
    if seed_order not in SEED_ORDERS:
        raise ValueError(
            f"unknown seed_order {seed_order!r}; known: {', '.join(SEED_ORDERS)}"
        )
    indptr, indices = csr.indptr, csr.indices
    n = csr.num_nodes
    ordered = np.asarray(feasible_ids, dtype=np.int64)
    if seed_order != "insertion" and len(ordered):
        degrees = csr.degree_array()[ordered]
        if seed_order == "min_degree":
            ordered = ordered[np.argsort(degrees, kind="stable")]
        else:
            ordered = ordered[np.argsort(-degrees, kind="stable")]

    is_candidate = np.zeros(n, dtype=bool)  # feasible and not yet a kernel
    is_candidate[feasible_ids] = True
    used_kernel = np.zeros(n, dtype=bool)
    # Epoch-stamped per-block state: a cell belongs to the current block
    # iff its stamp equals the block's epoch, so nothing is ever cleared.
    closed_epoch = np.zeros(n, dtype=np.int64)  # kernel ∪ N(kernel) members
    kernel_epoch = np.zeros(n, dtype=np.int64)
    count_epoch = np.zeros(n, dtype=np.int64)
    adj_count = np.zeros(n, dtype=np.int64)  # adjacencies to current kernel
    discovery = np.zeros(n, dtype=np.int64)  # first-counted order (tie-break)

    epoch = 0
    block_id = 0
    seed_cursor = 0
    while True:
        while seed_cursor < len(ordered) and not is_candidate[ordered[seed_cursor]]:
            seed_cursor += 1
        if seed_cursor >= len(ordered):
            return
        epoch += 1
        kernel: list[int] = []
        closed_chunks: list[np.ndarray] = []
        closed_size = 0
        # buckets[c] is a min-heap of (discovery, node) over candidates
        # whose adjacency count was c when pushed; stale entries (count
        # since bumped, or node promoted) are skipped lazily on pop.
        buckets: dict[int, list[tuple[int, int]]] = {}
        max_count = 0
        next_seq = 0

        def pop_best() -> int | None:
            nonlocal max_count
            while max_count >= min_adjacency:
                heap = buckets.get(max_count)
                while heap:
                    _, node = heapq.heappop(heap)
                    if is_candidate[node] and adj_count[node] == max_count:
                        return node
                max_count -= 1
            return None

        candidate: int | None = int(ordered[seed_cursor])
        while candidate is not None:
            row = indices[indptr[candidate] : indptr[candidate + 1]]
            fresh = row[closed_epoch[row] != epoch]
            addition = len(fresh) + (1 if closed_epoch[candidate] != epoch else 0)
            if closed_size + addition > m:
                if not kernel:
                    raise DecompositionError(
                        f"seed {csr.label(candidate)!r} alone overflows block "
                        f"size {m}; was the feasible set computed for a "
                        "different m?"
                    )
                break
            if closed_epoch[candidate] != epoch:
                closed_epoch[candidate] = epoch
                closed_chunks.append(np.array([candidate], dtype=np.int64))
            closed_epoch[fresh] = epoch
            closed_chunks.append(fresh)
            closed_size += addition
            is_candidate[candidate] = False
            kernel_epoch[candidate] = epoch
            kernel.append(candidate)
            grow = row[is_candidate[row]]
            if len(grow):
                # Rows are duplicate-free, so plain fancy-indexed updates
                # are exact (no np.add.at needed).
                first_seen = grow[count_epoch[grow] != epoch]
                count_epoch[first_seen] = epoch
                adj_count[first_seen] = 0
                discovery[first_seen] = np.arange(
                    next_seq, next_seq + len(first_seen), dtype=np.int64
                )
                next_seq += len(first_seen)
                adj_count[grow] += 1
                for count, seq, node in zip(
                    adj_count[grow].tolist(), discovery[grow].tolist(), grow.tolist()
                ):
                    heapq.heappush(buckets.setdefault(count, []), (seq, node))
                top = int(adj_count[grow].max())
                if top > max_count:
                    max_count = top
            candidate = pop_best()

        kernel_ids = np.asarray(kernel, dtype=np.int64)
        closed = np.concatenate(closed_chunks)
        neighborhood = closed[kernel_epoch[closed] != epoch]
        neighborhood.sort()
        visited_mask = used_kernel[neighborhood]
        visited_ids = neighborhood[visited_mask]
        border_ids = neighborhood[~visited_mask]
        used_kernel[kernel_ids] = True
        yield BlockDescriptor(
            block_id=block_id,
            kernel_ids=kernel_ids,
            border_ids=border_ids,
            visited_ids=visited_ids,
            estimated_cost=estimate_analysis_cost(
                closed_size,
                _induced_edge_count(indptr, indices, closed, closed_epoch, epoch),
            ),
        )
        block_id += 1


def _induced_edge_count(
    indptr: np.ndarray,
    indices: np.ndarray,
    members: np.ndarray,
    closed_epoch: np.ndarray,
    epoch: int,
) -> int:
    """Edges of the subgraph induced by ``members`` (one flat gather).

    ``closed_epoch[x] == epoch`` is the membership test — the caller has
    just stamped exactly the block's closed set with ``epoch``.
    """
    counts = indptr[members + 1] - indptr[members]
    total = int(counts.sum())
    if total == 0:
        return 0
    starts = np.cumsum(counts) - counts
    flat = (
        np.arange(total, dtype=np.int64)
        - np.repeat(starts, counts)
        + np.repeat(indptr[members], counts)
    )
    return int((closed_epoch[indices[flat]] == epoch).sum()) // 2


def decomposition_overlap(blocks: list[Block]) -> float:
    """Return the node-replication factor of a decomposition.

    ``(Σ block sizes) / #distinct nodes`` — 1.0 means no node appears
    in more than one block.  Section 6.3 attributes the slowdown at
    very small m/d to "an increasing overlap among the neighborhood of
    each block"; this is that quantity.  Returns 0.0 for an empty
    decomposition.
    """
    total = sum(block.size for block in blocks)
    distinct: set[Node] = set()
    for block in blocks:
        distinct.update(block.graph.nodes())
    if not distinct:
        return 0.0
    return total / len(distinct)


def validate_blocks(
    graph: Graph, blocks: list[Block], feasible: list[Node], m: int
) -> None:
    """Check every structural invariant of a block decomposition.

    Raises
    ------
    DecompositionError
        With a description of the first violated invariant:

        1. kernel sets partition the feasible set;
        2. no block exceeds ``m`` nodes;
        3. every block contains the full neighbourhood of each kernel node;
        4. kernel/border/visited are disjoint and cover the block;
        5. a visited node was a kernel node of an *earlier* block;
        6. each block graph is the induced subgraph of its member set.
    """
    seen_kernels: set[Node] = set()
    for index, block in enumerate(blocks):
        kernel_set = set(block.kernel)
        if len(kernel_set) != len(block.kernel):
            raise DecompositionError(f"block {index}: duplicate kernel nodes")
        if kernel_set & seen_kernels:
            raise DecompositionError(
                f"block {index}: kernel nodes reused from an earlier block"
            )
        if block.size > m:
            raise DecompositionError(
                f"block {index}: {block.size} nodes exceed block size {m}"
            )
        members = kernel_set | block.border | block.visited
        if len(members) != len(kernel_set) + len(block.border) + len(block.visited):
            raise DecompositionError(
                f"block {index}: kernel/border/visited sets overlap"
            )
        if set(block.graph.nodes()) != members:
            raise DecompositionError(
                f"block {index}: block graph nodes do not match member sets"
            )
        for node in block.kernel:
            for neighbor in graph.neighbors(node):
                if neighbor not in members:
                    raise DecompositionError(
                        f"block {index}: kernel node {node!r} is missing "
                        f"neighbour {neighbor!r}"
                    )
        for node in block.visited:
            if node not in seen_kernels:
                raise DecompositionError(
                    f"block {index}: visited node {node!r} was never a kernel"
                )
        for u in block.graph.nodes():
            for v in block.graph.neighbors(u):
                if not graph.has_edge(u, v):
                    raise DecompositionError(
                        f"block {index}: edge ({u!r}, {v!r}) absent from input"
                    )
            for v in graph.neighbors(u):
                if v in members and not block.graph.has_edge(u, v):
                    raise DecompositionError(
                        f"block {index}: induced edge ({u!r}, {v!r}) missing"
                    )
        seen_kernels |= kernel_set
    if seen_kernels != set(feasible):
        raise DecompositionError(
            "kernel sets across blocks do not partition the feasible set"
        )

"""Packed clique result plane: CSR-style buffers from kernel to result.

The hot output path of the enumeration used to materialize every maximal
clique as a ``frozenset`` of Python labels — one object per clique, one
boxed reference per member — and then pickle those objects through IPC
and spill segments.  On clique-dense social networks the emission cost
dwarfs the bitmatrix kernel time (the GPU formulation of Almasri et al.,
arXiv:2212.01473, and the shared-memory design of Das et al.,
arXiv:1807.09417, both flatten clique output into packed buffers for
exactly this reason).

:class:`CliqueStore` is the packed representation used everywhere now:

* ``offsets`` — ``uint64`` array of length ``num_cliques + 1``; clique
  ``i`` occupies ``vertices[offsets[i]:offsets[i + 1]]``;
* ``vertices`` — flat ``uint32`` member ids, one run per clique, in
  emission order;
* ``levels`` — optional per-clique ``int32`` provenance (the recursion
  level that produced each clique); ``None`` on block-level stores;
* ``labels`` — optional decode table: ``labels[id]`` is the node label
  of vertex id ``id``.  Block-level stores carry their block's member
  labels (small); the driver's merged store carries the run-wide table.

Stores are append-only by construction and never mutated after
:meth:`CliqueBuffer.build`, so views may be shared freely.  The
``frozenset`` API every downstream consumer expects (iteration, ``len``,
``in``, indexing) is preserved by on-demand decode.

:class:`CliqueBuffer` is the growing emitter the block-analysis paths
write into (amortized-doubling flat arrays, no per-clique Python
object), and :class:`GlobalCliqueIndex` unifies per-block label spaces
into one run-wide id space with a single vectorized gather per block.

Set ``REPRO_RESULT_PLANE=frozenset`` to route emission through the
legacy frozenset lists instead — the differential parity tests and the
result-plane benchmark use this to pin the two planes against each
other (see ``docs/resultplane.md``).
"""

from __future__ import annotations

import os
from itertools import chain
from typing import Iterable, Iterator, Sequence

import numpy as np

RESULT_PLANE_ENV = "REPRO_RESULT_PLANE"

_OFFSET_DTYPE = np.uint64
_VERTEX_DTYPE = np.uint32
_LEVEL_DTYPE = np.int32


def packed_plane_enabled() -> bool:
    """Whether emission goes to packed buffers (default) or frozensets."""
    return os.environ.get(RESULT_PLANE_ENV, "packed") != "frozenset"


class CliqueStore:
    """An ordered collection of cliques as packed CSR-style arrays.

    Behaves like the ``list[frozenset]`` it replaced — ``len``,
    iteration, indexing, ``in`` and ``==`` all decode on demand — while
    the aggregate statistics every report and result needs
    (:meth:`max_size`, :meth:`mean_size`, :meth:`size_histogram`,
    :meth:`top_k`) are O(1)-per-clique vectorized reads of the offsets
    array, touching no Python objects at all.
    """

    __slots__ = ("offsets", "vertices", "levels", "labels", "_decoded")

    def __init__(
        self,
        offsets: np.ndarray,
        vertices: np.ndarray,
        levels: np.ndarray | None = None,
        labels: Sequence | None = None,
    ) -> None:
        self.offsets = np.asarray(offsets, dtype=_OFFSET_DTYPE)
        self.vertices = np.asarray(vertices, dtype=_VERTEX_DTYPE)
        self.levels = (
            None if levels is None else np.asarray(levels, dtype=_LEVEL_DTYPE)
        )
        self.labels = labels
        self._decoded: list[frozenset] | None = None
        if len(self.offsets) == 0:
            raise ValueError("offsets must have at least one entry")
        if int(self.offsets[-1]) != len(self.vertices):
            raise ValueError(
                f"offsets claim {int(self.offsets[-1])} vertices, "
                f"buffer holds {len(self.vertices)}"
            )
        if self.levels is not None and len(self.levels) != len(self.offsets) - 1:
            raise ValueError(
                f"levels length {len(self.levels)} does not match "
                f"{len(self.offsets) - 1} cliques"
            )

    # -- construction --------------------------------------------------
    @classmethod
    def empty(cls, labels: Sequence | None = None) -> "CliqueStore":
        """A store holding no cliques."""
        return cls(
            np.zeros(1, dtype=_OFFSET_DTYPE),
            np.empty(0, dtype=_VERTEX_DTYPE),
            labels=labels,
        )

    @classmethod
    def from_cliques(
        cls,
        cliques: Iterable[Iterable],
        index_of: "dict | None" = None,
        labels: Sequence | None = None,
        levels: np.ndarray | None = None,
    ) -> "CliqueStore":
        """Pack an iterable of cliques (sets of labels or of int ids).

        With ``index_of`` the members are mapped through it (label →
        id); otherwise they must already be non-negative ints.  The
        legacy-conversion path for reports built outside the packed
        emitters (the exact-enumeration fallback, hand-built tests).
        """
        buffer = CliqueBuffer(labels=labels)
        if index_of is None:
            buffer.extend(cliques)
        else:
            for clique in cliques:
                buffer.append(index_of[node] for node in clique)
        store = buffer.build()
        if levels is not None:
            store.levels = np.asarray(levels, dtype=_LEVEL_DTYPE)
        return store

    @classmethod
    def concat(cls, stores: "Sequence[CliqueStore]") -> "CliqueStore":
        """Concatenate stores sharing one id space, preserving order.

        The caller is responsible for the stores living in the same
        vertex-id space (fragments of one block, or per-block stores
        already remapped by a :class:`GlobalCliqueIndex`).  Labels are
        taken from the first store that has any.
        """
        stores = [s for s in stores if s is not None]
        if not stores:
            return cls.empty()
        labels = next((s.labels for s in stores if s.labels is not None), None)
        counts = [len(s) for s in stores]
        total = sum(counts)
        offsets = np.zeros(total + 1, dtype=_OFFSET_DTYPE)
        cursor = 0
        base = np.uint64(0)
        for store in stores:
            k = len(store)
            offsets[cursor + 1 : cursor + k + 1] = store.offsets[1:] + base
            base = offsets[cursor + k]
            cursor += k
        vertices = (
            np.concatenate([s.vertices for s in stores])
            if total
            else np.empty(0, dtype=_VERTEX_DTYPE)
        )
        merged = cls(offsets, vertices, labels=labels)
        if any(s.levels is not None for s in stores):
            merged.levels = np.concatenate(
                [
                    s.levels
                    if s.levels is not None
                    else np.zeros(len(s), dtype=_LEVEL_DTYPE)
                    for s in stores
                ]
            ) if total else np.empty(0, dtype=_LEVEL_DTYPE)
        return merged

    def with_labels(self, labels: Sequence) -> "CliqueStore":
        """This store with a decode table attached (arrays shared)."""
        return CliqueStore(self.offsets, self.vertices, self.levels, labels)

    # -- vectorized aggregates ----------------------------------------
    @property
    def num_cliques(self) -> int:
        return len(self.offsets) - 1

    @property
    def sizes(self) -> np.ndarray:
        """Per-clique member counts (``int64``), one ``np.diff``."""
        return np.diff(self.offsets).astype(np.int64)

    @property
    def nbytes(self) -> int:
        """Bytes held by the packed buffers (labels excluded)."""
        nbytes = self.offsets.nbytes + self.vertices.nbytes
        if self.levels is not None:
            nbytes += self.levels.nbytes
        return int(nbytes)

    def max_size(self) -> int:
        """Largest clique size, or 0 when empty."""
        if self.num_cliques == 0:
            return 0
        return int(self.sizes.max())

    def mean_size(self) -> float:
        """Mean clique size, or 0.0 when empty."""
        if self.num_cliques == 0:
            return 0.0
        return float(len(self.vertices)) / self.num_cliques

    def size_histogram(self) -> "dict[int, int]":
        """``{size: count}`` over all cliques, via one bincount."""
        if self.num_cliques == 0:
            return {}
        counts = np.bincount(self.sizes)
        return {
            int(size): int(count)
            for size, count in enumerate(counts)
            if count
        }

    def top_k(self, k: int) -> np.ndarray:
        """Indices of the ``k`` largest cliques plus all boundary ties.

        An :func:`np.argpartition` on the offsets diff — the returned
        indices cover every clique whose size reaches the ``k``-th
        largest, so a caller applying a deterministic tie-break sees
        every candidate.  Sorted by size descending (stable).
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        n = self.num_cliques
        if k == 0 or n == 0:
            return np.empty(0, dtype=np.int64)
        sizes = self.sizes
        if k < n:
            threshold = sizes[np.argpartition(-sizes, k - 1)[k - 1]]
            candidates = np.flatnonzero(sizes >= threshold)
        else:
            candidates = np.arange(n, dtype=np.int64)
        order = np.argsort(-sizes[candidates], kind="stable")
        return candidates[order]

    # -- selection / remapping ----------------------------------------
    def select(self, which: np.ndarray) -> "CliqueStore":
        """A new store holding the cliques picked by mask or indices."""
        which = np.asarray(which)
        indices = np.flatnonzero(which) if which.dtype == bool else which
        sizes = self.sizes[indices]
        offsets = np.zeros(len(indices) + 1, dtype=_OFFSET_DTYPE)
        np.cumsum(sizes, out=offsets[1:])
        if len(indices):
            starts = self.offsets[indices].astype(np.int64)
            gather = _span_gather(starts, sizes)
            vertices = self.vertices[gather]
        else:
            vertices = np.empty(0, dtype=_VERTEX_DTYPE)
        levels = None if self.levels is None else self.levels[indices]
        return CliqueStore(offsets, vertices, levels, self.labels)

    def remap(self, table: np.ndarray, labels: Sequence | None = None) -> "CliqueStore":
        """A new store with every vertex id mapped through ``table``."""
        vertices = table[self.vertices].astype(_VERTEX_DTYPE)
        return CliqueStore(self.offsets, vertices, self.levels, labels)

    # -- decode (the frozenset back-compat surface) -------------------
    def members(self, i: int) -> np.ndarray:
        """Vertex-id view of clique ``i`` (no decode, no copy)."""
        return self.vertices[int(self.offsets[i]) : int(self.offsets[i + 1])]

    def decode(self, i: int) -> frozenset:
        """Clique ``i`` as a frozenset of labels (ids when unlabeled)."""
        row = self.members(i).tolist()
        labels = self.labels
        if labels is None:
            return frozenset(row)
        return frozenset(labels[v] for v in row)

    def to_list(self) -> "list[frozenset]":
        """Every clique decoded, in emission order (cached)."""
        if self._decoded is None:
            labels = self.labels
            offsets = self.offsets.tolist()
            flat = self.vertices.tolist()
            if labels is not None:
                flat = [labels[v] for v in flat]
            self._decoded = [
                frozenset(flat[offsets[i] : offsets[i + 1]])
                for i in range(self.num_cliques)
            ]
        return self._decoded

    def __len__(self) -> int:
        return self.num_cliques

    def __iter__(self) -> Iterator[frozenset]:
        return iter(self.to_list())

    def __getitem__(self, item):
        return self.to_list()[item]

    def __contains__(self, clique) -> bool:
        return clique in self.to_list()

    def __eq__(self, other) -> bool:
        if isinstance(other, CliqueStore):
            return self.to_list() == other.to_list()
        if isinstance(other, list):
            return self.to_list() == other
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"CliqueStore(cliques={self.num_cliques}, "
            f"vertices={len(self.vertices)}, "
            f"labeled={self.labels is not None})"
        )

    # -- pickling (the decode cache never crosses a process) ----------
    def __getstate__(self):
        return (self.offsets, self.vertices, self.levels, self.labels)

    def __setstate__(self, state):
        self.offsets, self.vertices, self.levels, self.labels = state
        self._decoded = None


def _span_gather(starts: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Flat gather indices for contiguous spans ``[start, start+size)``.

    Vectorized: one ``repeat`` for the bases plus a segmented ramp
    (zero-length spans simply contribute nothing).
    """
    total = int(sizes.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    bases = np.repeat(starts, sizes)
    span_starts = np.zeros(len(sizes), dtype=np.int64)
    np.cumsum(sizes[:-1], out=span_starts[1:])
    ramp = np.arange(total, dtype=np.int64) - np.repeat(span_starts, sizes)
    return bases + ramp


class CliqueBuffer:
    """Growing packed emitter: kernels write here, no per-clique object.

    Maintains amortized-doubling flat ``vertices``/``counts`` arrays;
    :meth:`build` snapshots them into an immutable :class:`CliqueStore`.
    Three entry points cover every emission shape in the codebase:

    * :meth:`extend` — an iterable of int tuples (the stack kernel and
      the native backends), flattened with one C-level ``fromiter``;
    * :meth:`extend_prefixed` — the bucket demux: per-anchor extension
      lists with the anchor scattered in front, fully vectorized;
    * :meth:`append_columns` — the batched kernel's array-native sink:
      one emit record's spine columns land as a single 2-D fill.
    """

    __slots__ = ("labels", "_vertices", "_used", "_counts", "_num")

    def __init__(self, labels: Sequence | None = None) -> None:
        self.labels = labels
        self._vertices = np.empty(256, dtype=_VERTEX_DTYPE)
        self._used = 0
        self._counts = np.empty(64, dtype=np.int64)
        self._num = 0

    # -- growth --------------------------------------------------------
    def _reserve_vertices(self, extra: int) -> None:
        needed = self._used + extra
        if needed > len(self._vertices):
            grown = max(needed, 2 * len(self._vertices))
            buffer = np.empty(grown, dtype=_VERTEX_DTYPE)
            buffer[: self._used] = self._vertices[: self._used]
            self._vertices = buffer

    def _reserve_counts(self, extra: int) -> None:
        needed = self._num + extra
        if needed > len(self._counts):
            grown = max(needed, 2 * len(self._counts))
            buffer = np.empty(grown, dtype=np.int64)
            buffer[: self._num] = self._counts[: self._num]
            self._counts = buffer

    def _append_flat(self, flat: np.ndarray, counts: np.ndarray) -> None:
        total = len(flat)
        self._reserve_vertices(total)
        self._vertices[self._used : self._used + total] = flat
        self._used += total
        k = len(counts)
        self._reserve_counts(k)
        self._counts[self._num : self._num + k] = counts
        self._num += k

    # -- emission entry points ----------------------------------------
    def append(self, members: Iterable[int]) -> None:
        """Emit one clique given as an iterable of vertex ids."""
        flat = np.fromiter(members, dtype=_VERTEX_DTYPE)
        self._append_flat(flat, np.array([len(flat)], dtype=np.int64))

    def extend(self, cliques: Iterable[Iterable[int]]) -> None:
        """Emit many cliques (int tuples); one C-level flatten."""
        if not isinstance(cliques, (list, tuple)):
            cliques = list(cliques)
        if not cliques:
            return
        counts = np.fromiter(map(len, cliques), dtype=np.int64, count=len(cliques))
        total = int(counts.sum())
        flat = np.fromiter(
            chain.from_iterable(cliques), dtype=_VERTEX_DTYPE, count=total
        )
        self._append_flat(flat, counts)

    def extend_prefixed(
        self, prefix_id: int, extensions: "Sequence[tuple[int, ...]]"
    ) -> None:
        """Emit ``(prefix, *extension)`` for each extension, vectorized.

        The multi-block demux path: the anchor id is scattered into the
        first slot of every clique with one fancy-index store, the
        extension bodies with one masked store.
        """
        if not extensions:
            return
        k = len(extensions)
        counts = (
            np.fromiter(map(len, extensions), dtype=np.int64, count=k) + 1
        )
        total = int(counts.sum())
        flat = np.empty(total, dtype=_VERTEX_DTYPE)
        starts = np.zeros(k, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        flat[starts] = prefix_id
        body = np.ones(total, dtype=bool)
        body[starts] = False
        flat[body] = np.fromiter(
            chain.from_iterable(extensions), dtype=_VERTEX_DTYPE, count=total - k
        )
        self._append_flat(flat, counts)

    def append_columns(
        self, prefix: "tuple[int, ...]", columns: "list[np.ndarray]"
    ) -> None:
        """Emit one batched-kernel record: ``k`` cliques as columns.

        ``columns[d][j]`` is member ``d`` of clique ``j`` (root-first
        spine order); the shared ``prefix`` is broadcast in front.  The
        whole record lands with one 2-D fill — no tuples, no zip.
        """
        k = len(columns[0]) if columns else 0
        if k == 0:
            return
        width = len(prefix) + len(columns)
        body = np.empty((k, width), dtype=_VERTEX_DTYPE)
        for d, value in enumerate(prefix):
            body[:, d] = value
        for d, column in enumerate(columns):
            body[:, len(prefix) + d] = column
        self._append_flat(
            body.reshape(-1), np.full(k, width, dtype=np.int64)
        )

    # -- finalize ------------------------------------------------------
    def __len__(self) -> int:
        return self._num

    def build(self) -> CliqueStore:
        """Snapshot the buffers into an immutable :class:`CliqueStore`."""
        offsets = np.zeros(self._num + 1, dtype=_OFFSET_DTYPE)
        np.cumsum(self._counts[: self._num], out=offsets[1:])
        return CliqueStore(
            offsets,
            self._vertices[: self._used].copy(),
            labels=self.labels,
        )


class FrozensetEmitter:
    """The legacy emission plane behind the same seam.

    Selected with ``REPRO_RESULT_PLANE=frozenset``; produces exactly the
    ``list[frozenset]`` the pre-packed code built, so the differential
    parity tests and the result-plane benchmark can compare the two
    planes like for like.
    """

    __slots__ = ("labels", "cliques")

    def __init__(self, labels: Sequence) -> None:
        self.labels = labels
        self.cliques: list[frozenset] = []

    def append(self, members: Iterable[int]) -> None:
        labels = self.labels
        self.cliques.append(frozenset(labels[i] for i in members))

    def extend(self, cliques: Iterable[Iterable[int]]) -> None:
        labels = self.labels
        self.cliques.extend(
            frozenset(labels[i] for i in clique) for clique in cliques
        )

    def extend_prefixed(
        self, prefix_id: int, extensions: "Sequence[tuple[int, ...]]"
    ) -> None:
        labels = self.labels
        self.cliques.extend(
            frozenset(labels[i] for i in (prefix_id, *extension))
            for extension in extensions
        )

    def append_columns(self, prefix, columns) -> None:
        self.extend(
            prefix + row for row in zip(*[column.tolist() for column in columns])
        )

    def __len__(self) -> int:
        return len(self.cliques)

    def build(self) -> "list[frozenset]":
        return self.cliques


def make_emitter(labels: Sequence) -> "CliqueBuffer | FrozensetEmitter":
    """The single emission seam: one emitter per analysed block.

    Every analysis path builds its emitter here, so switching planes
    (packed arrays vs legacy frozensets) is one environment variable —
    read per block, which is what lets forked workers inherit it.
    """
    if packed_plane_enabled():
        return CliqueBuffer(labels=labels)
    return FrozensetEmitter(labels)


def store_of(cliques) -> CliqueStore:
    """Normalize a report's ``cliques`` field to a :class:`CliqueStore`.

    Stores pass through; legacy frozenset lists (hand-built reports,
    the frozenset plane, replays of legacy spill segments) are packed
    with a local label table in first-appearance order.
    """
    if isinstance(cliques, CliqueStore):
        return cliques
    index: dict = {}
    labels: list = []
    buffer = CliqueBuffer(labels=labels)
    for clique in cliques:
        ids = []
        for node in clique:
            node_id = index.get(node)
            if node_id is None:
                node_id = index[node] = len(labels)
                labels.append(node)
            ids.append(node_id)
        buffer.append(ids)
    return buffer.build()


class GlobalCliqueIndex:
    """Unify per-block label spaces into one run-wide vertex-id space.

    The driver feeds every block report through :meth:`add`; each call
    costs one small Python loop over the block's *member labels* (tens
    of nodes) plus one vectorized gather over its clique buffer
    (potentially millions of entries).  The shared ``labels`` list is
    append-only, so stores remapped earlier stay valid as it grows.
    """

    def __init__(self) -> None:
        self._index: dict = {}
        self.labels: list = []

    def ids_for(self, labels: Sequence) -> np.ndarray:
        """Global ids of a block's label table (registering new ones)."""
        index = self._index
        table = self.labels
        out = np.empty(len(labels), dtype=np.int64)
        for i, label in enumerate(labels):
            node_id = index.get(label)
            if node_id is None:
                node_id = index[label] = len(table)
                table.append(label)
            out[i] = node_id
        return out

    def add(self, cliques) -> CliqueStore:
        """Remap one report's cliques into the global id space."""
        store = store_of(cliques)
        if store.labels is None:
            # Unlabeled stores are already in a caller-managed id space;
            # treat ids as labels so the invariant (one global space)
            # holds for hand-built int cliques too.
            used = np.unique(store.vertices)
            table = self.ids_for([int(v) for v in used])
            mapping = np.zeros(
                int(used.max()) + 1 if len(used) else 1, dtype=np.int64
            )
            mapping[used] = table
            return store.remap(mapping, labels=self.labels)
        table = self.ids_for(store.labels)
        return store.remap(table, labels=self.labels)

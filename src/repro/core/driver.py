"""``FIND-MAX-CLIQUES`` (Alg. 1): the recursive two-level decomposition.

Each round (one "first-level decomposition" iteration):

1. ``CUT`` splits the current graph into feasible nodes and hubs;
2. ``BLOCKS`` partitions the feasible nodes into blocks;
3. ``BLOCK-ANALYSIS`` enumerates, per block, the maximal cliques touching
   that block's kernel — together these are exactly the maximal cliques
   of the current graph containing at least one feasible node;
4. the next round recurses on the subgraph induced by the hubs, whose
   degrees are strongly reduced.

When the recursion bottoms out, levels are merged bottom-up with the
Lemma 1 filter: a deeper (hub-only) clique survives unless some
shallower clique contains it.  Theorem 1 guarantees the recursion
terminates whenever ``m`` exceeds the degeneracy of the input; the
driver enforces this with a convergence guard whose behaviour is chosen
by the ``fallback`` argument.
"""

from __future__ import annotations

import time
import warnings
from collections import Counter

import numpy as np

from repro.core.block_analysis import (
    analyze_block,
    block_clique_bound,
    block_clique_bound_csr,
)
from repro.core.blocks import blocks_csr, build_blocks
from repro.core.cliquestore import (
    CliqueStore,
    GlobalCliqueIndex,
    packed_plane_enabled,
)
from repro.core.feasibility import cut, cut_csr
from repro.core.filtering import contained_mask, filter_contained, filter_min_size
from repro.core.result import CliqueResult, LevelStats
from repro.decision.features import BlockFeatures
from repro.decision.paper_tree import paper_tree, select_combo
from repro.decision.persistence import resolve_tree
from repro.decision.tree import DecisionTree
from repro.errors import ConvergenceError, ExecutorError
from repro.graph.adjacency import Graph, Node
from repro.graph.csr import BitmapScratch, CSRGraph, induced_csr
from repro.graph.views import induced_subgraph
from repro.mce.instrumentation import BlockBound
from repro.mce.registry import Combo
from repro.runs.manifest import fingerprint_run
from repro.runs.runlog import RunLog

FALLBACK_MODES: tuple[str, ...] = ("exact", "raise")


def find_max_cliques(
    graph: Graph,
    m: int,
    tree: "DecisionTree | str | None" = None,
    combo: Combo | None = None,
    fallback: str = "exact",
    min_adjacency: int = 1,
    collect_reports: bool = False,
    executor=None,
    pipeline: bool = False,
    split: bool = False,
    split_threshold: float | None = None,
    batch_blocks: bool = False,
    batch_cutoff: int | None = None,
    min_clique_size: int = 0,
    spill_dir=None,
    resume: bool = False,
) -> CliqueResult:
    """Enumerate every maximal clique of ``graph`` with block size ``m``.

    Parameters
    ----------
    graph:
        The network; it is not modified.
    m:
        Maximum number of nodes per block.  Completeness requires
        ``m > degeneracy(graph)`` (Theorem 1); smaller values trigger the
        ``fallback`` behaviour on the irreducible core.
    tree:
        Decision tree selecting the per-block (algorithm × structure)
        combination; defaults to the paper's published tree.  Also
        accepts a specification string resolved by
        :func:`repro.decision.persistence.resolve_tree`: ``"paper"``,
        ``"extended"``, a path to a saved tree JSON, or ``"auto"`` —
        the tree installed by ``repro tune`` (falling back to the paper
        tree when none is installed).  The resolved tree flows through
        every dispatch path: the serial loop, the shared-memory barrier
        (whole, split, and batched), and the streaming pipeline.
    combo:
        Force a fixed combination for every block instead of the tree.
    fallback:
        ``"exact"`` (default) — if some recursion level has no feasible
        node at all, run the best-fit exact MCE on the residual core and
        warn; ``"raise"`` — raise :class:`ConvergenceError` instead.
    min_adjacency:
        Density threshold for block growth (see
        :func:`repro.core.blocks.build_blocks`).
    collect_reports:
        When true, keep every per-block :class:`BlockReport` (grouped by
        recursion level) on the result; the distributed simulator replays
        those measured costs.
    executor:
        An object with the executors' ``map_blocks`` interface (see
        :mod:`repro.distributed.executor`) used to analyse each level's
        blocks; ``None`` (the default) analyses them serially in-process.
        The clique output is identical for every executor.
    pipeline:
        When true, run the CSR-native streaming decomposition instead of
        the barrier loop: each level's graph lives as a CSR snapshot,
        ``cut_csr``/``blocks_csr`` stream :class:`BlockDescriptor`\\ s
        into the executor's worker pool while later levels are still
        being decomposed, and no dict ``Graph`` is ever built for a
        level or a block.  Requires a
        :class:`~repro.distributed.executor.SharedMemoryExecutor` (one
        is constructed when ``executor`` is ``None``).  The clique
        output is identical to the barrier mode.
    split:
        Enable anchor-level splitting of straggler blocks (see
        ``docs/scheduling.md``): blocks whose estimated cost exceeds the
        split threshold are expanded into independently scheduled
        subtasks.  Requires a shared-memory executor (barrier or
        pipeline mode); the clique output is identical either way.
    split_threshold:
        Override the adaptive split threshold with a fixed cost value
        (only meaningful with ``split=True``).
    batch_blocks:
        Enable multi-block batched dispatch (see ``docs/batching.md``):
        small same-padded-shape blocks are packed into buckets and each
        bucket runs as one fused multi-block kernel, amortizing per-block
        dispatch overhead in the many-small-blocks regime.  Works with
        the serial in-process path, a
        :class:`~repro.distributed.executor.SerialExecutor`, or a
        :class:`~repro.distributed.executor.SharedMemoryExecutor`
        (barrier or pipeline, with or without ``split``); the clique
        output is identical either way.
    batch_cutoff:
        Override the adaptive node-count cutoff below which blocks are
        batched (only meaningful with ``batch_blocks=True``).
    min_clique_size:
        Enumeration floor (see ``docs/maximum.md``): only maximal
        cliques with at least this many members are returned.  Beyond
        filtering the output, the floor *prunes the search*: every block
        is priced with a cheap clique upper bound
        (:func:`repro.core.block_analysis.block_clique_bound`) and
        skipped outright when the bound falls below the floor, and
        inside analysed blocks, anchors whose candidate neighbourhood
        cannot reach the floor are skipped before their Bron–Kerbosch
        sweep.  The returned cliques are exactly the size-``≥ floor``
        subset of an unfloored run; the ``pruning`` digest on the result
        records how much work the bounds avoided.  ``0`` (the default)
        disables the floor entirely.
    spill_dir:
        Directory for a *durable* run (see ``docs/durability.md``): as
        blocks finish, their reports are appended to CRC-checked segment
        files and the completed block ids are recorded in an atomically
        updated manifest, so a crash loses at most the blocks in flight.
        Works with every executor, in barrier and pipeline modes.
    resume:
        Continue a durable run that crashed (or finished) in
        ``spill_dir``: the manifest is validated against the current
        graph/config fingerprint, every completed block is skipped and
        its spilled report replayed, and a torn final record left by a
        crash mid-write is truncated.  The clique output is identical to
        an uninterrupted run.  Requires ``spill_dir``.

    Returns
    -------
    CliqueResult
        All maximal cliques with per-clique provenance (the recursion
        level that produced each) and per-level statistics.

    Raises
    ------
    ValueError
        On a non-positive ``m`` or unknown ``fallback`` mode.
    ConvergenceError
        With ``fallback="raise"`` when ``m`` is at most the degeneracy of
        the residual graph at some level.
    """
    if m < 1:
        raise ValueError("block size m must be at least 1")
    if fallback not in FALLBACK_MODES:
        raise ValueError(
            f"unknown fallback mode {fallback!r}; known: {', '.join(FALLBACK_MODES)}"
        )
    if resume and spill_dir is None:
        raise ValueError("resume=True requires spill_dir")
    if min_clique_size < 0:
        raise ValueError("min_clique_size must be non-negative")
    resolved_tree = resolve_tree(tree)
    selection_tree = resolved_tree if resolved_tree is not None else paper_tree()
    if split:
        executor = _configure_split(executor, split_threshold, pipeline)
    if batch_blocks:
        executor = _configure_batch(executor, batch_cutoff, pipeline)
    if min_clique_size > 0:
        executor = _configure_prune(executor, min_clique_size)
    run_log: RunLog | None = None
    if spill_dir is not None:
        # The floor changes which blocks are recorded, so it is part of
        # the durable run's identity: resuming a floored run with a
        # different floor must fail the fingerprint check.
        mode = "pipeline" if pipeline else "barrier"
        if min_clique_size > 0:
            mode += f"+floor{min_clique_size}"
        run_log = RunLog(
            spill_dir,
            fingerprint_run(
                graph,
                m,
                min_adjacency,
                mode=mode,
                combo=combo.name if combo is not None else None,
            ),
            resume=resume,
        )
    if pipeline:
        try:
            return _pipeline_enumerate(
                graph,
                m,
                selection_tree,
                combo,
                fallback,
                min_adjacency,
                collect_reports,
                executor,
                run_log,
                min_clique_size,
            )
        finally:
            if run_log is not None:
                run_log.close()

    try:
        return _barrier_enumerate(
            graph,
            m,
            selection_tree,
            combo,
            fallback,
            min_adjacency,
            collect_reports,
            executor,
            run_log,
            min_clique_size,
        )
    finally:
        if run_log is not None:
            run_log.close()


def _barrier_enumerate(
    graph: Graph,
    m: int,
    selection_tree: DecisionTree,
    combo: Combo | None,
    fallback: str,
    min_adjacency: int,
    collect_reports: bool,
    executor,
    run_log: RunLog | None,
    min_clique_size: int = 0,
) -> CliqueResult:
    """The original level-synchronous loop (every non-pipeline mode)."""
    level_cliques: "list[CliqueStore | list[frozenset[Node]]]" = []
    clique_index = GlobalCliqueIndex()
    level_stats: list[LevelStats] = []
    level_reports: list[list] = []
    combo_counter: Counter[str] = Counter()
    fallback_used = False
    blocks_total = 0
    blocks_skipped = 0
    anchors_skipped = 0
    bound_records: list[BlockBound] = []

    current = graph
    level = 0
    while current.num_nodes > 0:
        decomposition_start = time.perf_counter()
        feasible, hubs = cut(current, m)
        if not feasible:
            if fallback == "raise":
                raise ConvergenceError(
                    f"no feasible node at recursion level {level}: block size "
                    f"{m} does not exceed the degeneracy of the residual "
                    f"graph ({current.num_nodes} nodes remain)",
                    core_size=current.num_nodes,
                )
            warnings.warn(
                f"FIND-MAX-CLIQUES did not converge at level {level} "
                f"(m={m} <= degeneracy of the residual core of "
                f"{current.num_nodes} nodes); falling back to exact "
                "enumeration on the core",
                RuntimeWarning,
                stacklevel=2,
            )
            decomposition_seconds = time.perf_counter() - decomposition_start
            cliques, analysis_seconds, used = _exact_core(
                current, selection_tree, combo
            )
            cliques = filter_min_size(cliques, min_clique_size)
            if packed_plane_enabled() and (
                not level_cliques or _packed_levels(level_cliques)
            ):
                # Keep the whole run on one plane: pack the exact-core
                # fallback into the run-wide id space too.
                cliques = clique_index.add(cliques)
            combo_counter[used.name] += 1
            level_cliques.append(cliques)
            level_stats.append(
                LevelStats(
                    level=level,
                    num_nodes=current.num_nodes,
                    num_edges=current.num_edges,
                    num_feasible=0,
                    num_hubs=current.num_nodes,
                    num_blocks=0,
                    decomposition_seconds=decomposition_seconds,
                    analysis_seconds=analysis_seconds,
                    cliques_found=len(cliques),
                    fallback_used=True,
                )
            )
            fallback_used = True
            break

        blocks = build_blocks(current, feasible, m, min_adjacency=min_adjacency)
        blocks_total += len(blocks)
        level_bounds: list[BlockBound] = []
        if min_clique_size > 1:
            # Price every block before dispatch; a block whose bound
            # falls below the floor cannot emit a surviving clique, so
            # it never reaches an executor at all.
            kept = []
            for block_id, block in enumerate(blocks):
                bound = block_clique_bound(block)
                skipped = bound < min_clique_size
                level_bounds.append(
                    BlockBound(
                        level=level,
                        block_id=block_id,
                        bound=bound,
                        floor=min_clique_size,
                        skipped=skipped,
                    )
                )
                if skipped:
                    blocks_skipped += 1
                else:
                    kept.append(block)
            blocks = kept
            bound_records.extend(level_bounds)
        decomposition_seconds = time.perf_counter() - decomposition_start

        analysis_start = time.perf_counter()
        if executor is None and run_log is None:
            reports = [
                analyze_block(
                    block,
                    tree=selection_tree,
                    combo=combo,
                    min_clique_size=min_clique_size,
                )
                for block in blocks
            ]
        else:
            if executor is None:
                # A durable serial run routes through SerialExecutor,
                # which already speaks the skip/replay/record protocol.
                from repro.distributed.executor import SerialExecutor

                executor = SerialExecutor()
                if min_clique_size > 0:
                    executor = _configure_prune(executor, min_clique_size)
            reports = executor.map_blocks(
                blocks,
                tree=selection_tree,
                combo=combo,
                graph=current,
                run_log=run_log,
                level=level,
            )
        cliques = _level_cliques_of(reports, clique_index)
        analysis_seconds = time.perf_counter() - analysis_start
        cliques = filter_min_size(cliques, min_clique_size)
        for report in reports:
            combo_counter[report.combo.name] += 1
            anchors_skipped += int(report.extra.get("anchors_skipped", 0.0))
        if collect_reports:
            level_reports.append(reports)

        level_cliques.append(cliques)
        level_stats.append(
            LevelStats(
                level=level,
                num_nodes=current.num_nodes,
                num_edges=current.num_edges,
                num_feasible=len(feasible),
                num_hubs=len(hubs),
                num_blocks=len(blocks),
                decomposition_seconds=decomposition_seconds,
                analysis_seconds=analysis_seconds,
                cliques_found=len(cliques),
            )
        )
        if not hubs:
            break
        current = induced_subgraph(current, hubs)
        level += 1

    payload = _result_payload(level_cliques)
    # The executor's trace is reset on every map_blocks call, so the
    # per-level bound records are replayed into the *final* trace here —
    # after the loop — where they describe the whole run.
    trace = getattr(executor, "last_trace", None)
    if trace is not None:
        for record in bound_records:
            trace.record_bound(record)
    run_info = None
    if run_log is not None:
        run_log.finalize()
        run_info = _run_info(run_log)
    return CliqueResult(
        **payload,
        levels=level_stats,
        m=m,
        fallback_used=fallback_used,
        block_combos=dict(combo_counter),
        block_reports=level_reports,
        run_info=run_info,
        pruning=_pruning_info(
            min_clique_size, blocks_total, blocks_skipped, anchors_skipped
        ),
    )


def _pruning_info(
    min_clique_size: int,
    blocks_total: int,
    blocks_skipped: int,
    anchors_skipped: int,
) -> dict | None:
    """Bound-pruning digest for :attr:`CliqueResult.pruning`."""
    if min_clique_size <= 0:
        return None
    return {
        "min_clique_size": min_clique_size,
        "blocks_total": blocks_total,
        "blocks_skipped": blocks_skipped,
        "anchors_skipped": anchors_skipped,
    }


def _run_info(run_log: RunLog) -> dict:
    """Durability digest attached to the result of a spill run."""
    return {
        "spill_dir": str(run_log.directory),
        "resumed": run_log.resumed,
        "blocks_replayed": run_log.num_recovered,
        "blocks_recorded": len(run_log.flushes),
        "flush_seconds": sum(flush.seconds for flush in run_log.flushes),
        "flush_bytes": sum(flush.segment_bytes for flush in run_log.flushes),
        "segments": list(run_log.manifest.segments),
    }


def decompose_only(
    graph: Graph, m: int, min_adjacency: int = 1, fallback: str = "exact"
) -> tuple[list[LevelStats], int]:
    """Run only the two-level decomposition, skipping clique analysis.

    Used by the Figure 7 benchmark, which times decomposition in
    isolation.  Returns the per-level statistics (analysis fields zeroed)
    and the number of first-level iterations performed.

    Raises
    ------
    ConvergenceError
        With ``fallback="raise"`` on a non-convergent ``m``.
    """
    if m < 1:
        raise ValueError("block size m must be at least 1")
    if fallback not in FALLBACK_MODES:
        raise ValueError(
            f"unknown fallback mode {fallback!r}; known: {', '.join(FALLBACK_MODES)}"
        )
    stats: list[LevelStats] = []
    current = graph
    level = 0
    while current.num_nodes > 0:
        start = time.perf_counter()
        feasible, hubs = cut(current, m)
        if not feasible:
            if fallback == "raise":
                raise ConvergenceError(
                    f"no feasible node at recursion level {level}",
                    core_size=current.num_nodes,
                )
            break
        blocks = build_blocks(current, feasible, m, min_adjacency=min_adjacency)
        seconds = time.perf_counter() - start
        stats.append(
            LevelStats(
                level=level,
                num_nodes=current.num_nodes,
                num_edges=current.num_edges,
                num_feasible=len(feasible),
                num_hubs=len(hubs),
                num_blocks=len(blocks),
                decomposition_seconds=seconds,
                analysis_seconds=0.0,
                cliques_found=0,
            )
        )
        if not hubs:
            break
        current = induced_subgraph(current, hubs)
        level += 1
    return stats, len(stats)


def _configure_split(executor, split_threshold: float | None, pipeline: bool):
    """Apply the driver's split settings to the executor.

    Splitting happens inside the shared-memory dispatch loop, so it
    needs a :class:`~repro.distributed.executor.SharedMemoryExecutor`
    (in barrier or pipeline mode); asking for it on the serial or
    process executor is an error rather than a silent no-op.
    """
    from repro.distributed.executor import SharedMemoryExecutor

    if executor is None and pipeline:
        executor = SharedMemoryExecutor()
    if not isinstance(executor, SharedMemoryExecutor):
        raise ExecutorError(
            "anchor-level splitting (split=True) requires a "
            "SharedMemoryExecutor; got "
            f"{type(executor).__name__ if executor is not None else 'the serial in-process path'}"
        )
    executor.split = True
    if split_threshold is not None:
        executor.split_threshold = split_threshold
    return executor


def _configure_batch(executor, batch_cutoff: int | None, pipeline: bool):
    """Apply the driver's batching settings to the executor.

    Batched dispatch is implemented by the serial and shared-memory
    executors (the process executor pickles whole ``Block`` objects and
    has no shared CSR to pack buckets from); asking for it elsewhere is
    an error rather than a silent no-op.  With no executor given, a
    batching :class:`~repro.distributed.executor.SerialExecutor` (or, in
    pipeline mode, a :class:`~repro.distributed.executor.SharedMemoryExecutor`)
    is constructed.
    """
    from repro.distributed.executor import SerialExecutor, SharedMemoryExecutor

    if executor is None:
        executor = SharedMemoryExecutor() if pipeline else SerialExecutor()
    if not isinstance(executor, (SerialExecutor, SharedMemoryExecutor)):
        raise ExecutorError(
            "batched dispatch (batch_blocks=True) requires a SerialExecutor "
            f"or a SharedMemoryExecutor; got {type(executor).__name__}"
        )
    executor.batch_blocks = True
    if batch_cutoff is not None:
        executor.batch_cutoff = batch_cutoff
    return executor


def _configure_prune(executor, min_clique_size: int):
    """Propagate the enumeration floor to the executor's workers.

    Every executor that carries a ``min_clique_size`` field forwards it
    to the block-analysis workers, which then skip anchors whose
    candidate neighbourhood cannot reach the floor.  Executors without
    the field (e.g. the replay simulator) simply analyse every anchor —
    the floor stays *correct* regardless, because the driver prices and
    skips whole blocks itself and floor-filters each level's cliques;
    worker-side anchor skipping is purely an optimisation.
    """
    if executor is not None and hasattr(executor, "min_clique_size"):
        executor.min_clique_size = min_clique_size
    return executor


def _pipeline_enumerate(
    graph: Graph,
    m: int,
    selection_tree: DecisionTree,
    combo: Combo | None,
    fallback: str,
    min_adjacency: int,
    collect_reports: bool,
    executor,
    run_log: RunLog | None = None,
    min_clique_size: int = 0,
) -> CliqueResult:
    """The streaming CSR-native twin of the barrier loop.

    Decomposition (``cut_csr`` → ``blocks_csr`` → ``induced_csr``) runs
    level by level in the parent while the
    :class:`~repro.distributed.executor.PipelineSession` workers consume
    descriptors concurrently; the single synchronization point is
    ``session.finish()`` after the *last* level is decomposed.  Per-level
    ``analysis_seconds`` is therefore the serial-equivalent sum of the
    per-block times, not a wall-clock interval (blocks of different
    levels overlap by design).
    """
    from repro.distributed.executor import SharedMemoryExecutor

    if executor is None:
        executor = SharedMemoryExecutor()
        if min_clique_size > 0:
            executor = _configure_prune(executor, min_clique_size)
    if not isinstance(executor, SharedMemoryExecutor):
        raise ExecutorError(
            "pipeline mode streams BlockDescriptors over shared memory and "
            f"requires a SharedMemoryExecutor, got {type(executor).__name__}"
        )

    level_meta: list[tuple[int, int, int, int, int, list[int], float]] = []
    fallback_level: tuple[int, int, int, float, float, list, Combo] | None = None
    fallback_used = False
    blocks_total = 0
    blocks_skipped = 0
    anchors_skipped = 0
    bound_scratch = BitmapScratch() if min_clique_size > 1 else None

    session = executor.open_pipeline(
        tree=selection_tree, combo=combo, run_log=run_log
    )
    try:
        current = CSRGraph(graph)
        level = 0
        while current.num_nodes > 0:
            decomposition_start = time.perf_counter()
            feasible_ids, hub_ids = cut_csr(current, m)
            if not len(feasible_ids):
                if fallback == "raise":
                    raise ConvergenceError(
                        f"no feasible node at recursion level {level}: block "
                        f"size {m} does not exceed the degeneracy of the "
                        f"residual graph ({current.num_nodes} nodes remain)",
                        core_size=current.num_nodes,
                    )
                warnings.warn(
                    f"FIND-MAX-CLIQUES did not converge at level {level} "
                    f"(m={m} <= degeneracy of the residual core of "
                    f"{current.num_nodes} nodes); falling back to exact "
                    "enumeration on the core",
                    RuntimeWarning,
                    stacklevel=3,
                )
                decomposition_seconds = time.perf_counter() - decomposition_start
                cliques, analysis_seconds, used = _exact_core(
                    current.to_graph(), selection_tree, combo
                )
                fallback_level = (
                    level,
                    current.num_nodes,
                    current.num_edges,
                    decomposition_seconds,
                    analysis_seconds,
                    cliques,
                    used,
                )
                fallback_used = True
                break
            session.publish_level(level, current)
            num_blocks = 0
            submitted: list[int] = []
            for descriptor in blocks_csr(
                current, feasible_ids, m, min_adjacency=min_adjacency
            ):
                block_id = descriptor.block_id
                num_blocks += 1
                blocks_total += 1
                if min_clique_size > 1:
                    # Price the descriptor before it enters the worker
                    # stream; a below-floor block is never submitted.
                    bound = block_clique_bound_csr(
                        descriptor,
                        current.indptr,
                        current.indices,
                        bound_scratch,
                    )
                    skipped = bound < min_clique_size
                    session.trace.record_bound(
                        BlockBound(
                            level=level,
                            block_id=block_id,
                            bound=bound,
                            floor=min_clique_size,
                            skipped=skipped,
                        )
                    )
                    if skipped:
                        blocks_skipped += 1
                        continue
                session.submit(level, descriptor)
                submitted.append(block_id)
            next_csr = induced_csr(current, hub_ids) if len(hub_ids) else None
            decomposition_seconds = time.perf_counter() - decomposition_start
            session.end_level(
                level,
                decomposition_seconds,
                len(submitted),
                len(feasible_ids),
                len(hub_ids),
            )
            level_meta.append(
                (
                    level,
                    current.num_nodes,
                    current.num_edges,
                    len(feasible_ids),
                    len(hub_ids),
                    submitted,
                    decomposition_seconds,
                )
            )
            if next_csr is None:
                break
            current = next_csr
            level += 1
        grouped = session.finish()
    finally:
        session.close()

    level_cliques: "list[CliqueStore | list[frozenset[Node]]]" = []
    level_stats: list[LevelStats] = []
    level_reports: list[list] = []
    combo_counter: Counter[str] = Counter()
    clique_index = GlobalCliqueIndex()
    for level, nodes, edges, feasible, hubs, submitted, seconds in level_meta:
        by_id = grouped.get(level, {})
        reports = [by_id[i] for i in submitted]
        cliques = filter_min_size(
            _level_cliques_of(reports, clique_index), min_clique_size
        )
        for report in reports:
            combo_counter[report.combo.name] += 1
            anchors_skipped += int(report.extra.get("anchors_skipped", 0.0))
        if collect_reports:
            level_reports.append(reports)
        level_cliques.append(cliques)
        level_stats.append(
            LevelStats(
                level=level,
                num_nodes=nodes,
                num_edges=edges,
                num_feasible=feasible,
                num_hubs=hubs,
                num_blocks=len(submitted),
                decomposition_seconds=seconds,
                analysis_seconds=sum(report.seconds for report in reports),
                cliques_found=len(cliques),
            )
        )
    if fallback_level is not None:
        level, nodes, edges, dec_seconds, ana_seconds, cliques, used = fallback_level
        combo_counter[used.name] += 1
        cliques = filter_min_size(cliques, min_clique_size)
        if packed_plane_enabled() and (
            not level_cliques or _packed_levels(level_cliques)
        ):
            cliques = clique_index.add(cliques)
        level_cliques.append(cliques)
        level_stats.append(
            LevelStats(
                level=level,
                num_nodes=nodes,
                num_edges=edges,
                num_feasible=0,
                num_hubs=nodes,
                num_blocks=0,
                decomposition_seconds=dec_seconds,
                analysis_seconds=ana_seconds,
                cliques_found=len(cliques),
                fallback_used=True,
            )
        )

    payload = _result_payload(level_cliques)
    run_info = None
    if run_log is not None:
        run_log.finalize()
        run_info = _run_info(run_log)
    return CliqueResult(
        **payload,
        levels=level_stats,
        m=m,
        fallback_used=fallback_used,
        block_combos=dict(combo_counter),
        block_reports=level_reports,
        run_info=run_info,
        pruning=_pruning_info(
            min_clique_size, blocks_total, blocks_skipped, anchors_skipped
        ),
    )


def decompose_only_csr(
    graph: Graph | CSRGraph,
    m: int,
    min_adjacency: int = 1,
    seed_order: str = "insertion",
    fallback: str = "exact",
) -> tuple[list[LevelStats], int]:
    """CSR-native twin of :func:`decompose_only` (no clique analysis).

    Runs ``cut_csr`` → ``blocks_csr`` → ``induced_csr`` per level,
    consuming the descriptor stream without dispatching it.  Accepts a
    dict ``Graph`` (converted once up front) or an existing
    :class:`CSRGraph`; the per-level statistics mirror
    :func:`decompose_only`, so the decomposition benchmark compares the
    two paths like for like.

    Raises
    ------
    ConvergenceError
        With ``fallback="raise"`` on a non-convergent ``m``.
    """
    if m < 1:
        raise ValueError("block size m must be at least 1")
    if fallback not in FALLBACK_MODES:
        raise ValueError(
            f"unknown fallback mode {fallback!r}; known: {', '.join(FALLBACK_MODES)}"
        )
    current = graph if isinstance(graph, CSRGraph) else CSRGraph(graph)
    stats: list[LevelStats] = []
    level = 0
    while current.num_nodes > 0:
        start = time.perf_counter()
        feasible_ids, hub_ids = cut_csr(current, m)
        if not len(feasible_ids):
            if fallback == "raise":
                raise ConvergenceError(
                    f"no feasible node at recursion level {level}",
                    core_size=current.num_nodes,
                )
            break
        num_blocks = sum(
            1
            for _ in blocks_csr(
                current,
                feasible_ids,
                m,
                min_adjacency=min_adjacency,
                seed_order=seed_order,
            )
        )
        next_csr = induced_csr(current, hub_ids) if len(hub_ids) else None
        seconds = time.perf_counter() - start
        stats.append(
            LevelStats(
                level=level,
                num_nodes=current.num_nodes,
                num_edges=current.num_edges,
                num_feasible=len(feasible_ids),
                num_hubs=len(hub_ids),
                num_blocks=num_blocks,
                decomposition_seconds=seconds,
                analysis_seconds=0.0,
                cliques_found=0,
            )
        )
        if next_csr is None:
            break
        current = next_csr
        level += 1
    return stats, len(stats)


def _exact_core(
    graph: Graph, tree: DecisionTree, combo: Combo | None
) -> tuple[list[frozenset[Node]], float, Combo]:
    """Best-fit exact enumeration on a non-convergent residual core."""
    chosen = combo if combo is not None else select_combo(
        tree, BlockFeatures.of(graph)
    )
    start = time.perf_counter()
    cliques = list(chosen.run(graph))
    return cliques, time.perf_counter() - start, chosen


def _level_cliques_of(
    reports: list, clique_index: GlobalCliqueIndex
) -> "CliqueStore | list[frozenset[Node]]":
    """Assemble one level's cliques from its block reports.

    Packed reports (the default plane) are remapped into the run-wide
    vertex-id space — one small Python loop over each block's member
    labels plus one vectorized gather — and concatenated as raw buffers;
    no clique is decoded.  Legacy frozenset reports (the
    ``REPRO_RESULT_PLANE=frozenset`` baseline arm, or replays of
    legacy-format spill segments) keep the list plane end to end.
    """
    if reports and all(
        isinstance(report.cliques, CliqueStore) for report in reports
    ):
        merged = CliqueStore.concat(
            [clique_index.add(report.cliques) for report in reports]
        )
        if merged.labels is None:
            merged = merged.with_labels(clique_index.labels)
        return merged
    return [clique for report in reports for clique in report.cliques]


def _packed_levels(level_cliques: list) -> bool:
    """Whether every per-level payload is a packed :class:`CliqueStore`."""
    return bool(level_cliques) and all(
        isinstance(cliques, CliqueStore) for cliques in level_cliques
    )


def _result_payload(level_cliques: list) -> dict:
    """Merged-clique kwargs for :class:`CliqueResult` — packed or legacy."""
    if _packed_levels(level_cliques):
        return {"store": _merge_levels_packed(level_cliques)}
    merged, provenance = _merge_levels(level_cliques)
    return {"cliques": merged, "provenance": provenance}


def _merge_levels_packed(level_stores: "list[CliqueStore]") -> CliqueStore:
    """Packed twin of :func:`_merge_levels`.

    Same bottom-up Lemma-1 sweep, but containment runs in int space
    (:func:`~repro.core.filtering.contained_mask`) and the provenance is
    the merged store's per-clique ``levels`` array instead of a
    ``dict[frozenset, int]``.  All stores share the driver's run-wide id
    space, so survivors concatenate as raw buffers.
    """
    merged = CliqueStore.empty()
    labels = next(
        (store.labels for store in level_stores if store.labels is not None),
        None,
    )
    for level in range(len(level_stores) - 1, -1, -1):
        feasible_side = level_stores[level]
        feasible_side.levels = np.full(
            len(feasible_side), level, dtype=np.int32
        )
        surviving = merged.select(~contained_mask(merged, feasible_side))
        merged = CliqueStore.concat([feasible_side, surviving])
    if merged.labels is None and labels is not None:
        merged = merged.with_labels(labels)
    if merged.levels is None:
        merged.levels = np.zeros(len(merged), dtype=np.int32)
    return merged


def _merge_levels(
    level_cliques: list[list[frozenset[Node]]],
) -> tuple[list[frozenset[Node]], dict[frozenset[Node], int]]:
    """Merge per-level clique sets bottom-up with the Lemma 1 filter.

    Returns the final clique list and the provenance map (clique → level
    at which it was found).  Deeper levels are filtered against shallower
    ones, so a hub-only clique survives only when no feasible-side clique
    contains it.
    """
    merged: list[frozenset[Node]] = []
    provenance: dict[frozenset[Node], int] = {}
    for level in range(len(level_cliques) - 1, -1, -1):
        feasible_side = level_cliques[level]
        for clique in feasible_side:
            provenance[clique] = level
        surviving = filter_contained(merged, feasible_side)
        merged = list(feasible_side) + surviving
    provenance = {clique: provenance[clique] for clique in merged}
    return merged, provenance

"""Feasibility predicate and first-level decomposition (``CUT``, Alg. 2).

A block holds at most ``m`` nodes.  A set of nodes ``S`` is *feasible*
when ``S`` together with its whole neighbourhood fits in one block:
``|S ∪ N(S)| ≤ m``.  For a single node this reduces to ``degree < m``,
which is exactly the paper's split between feasible nodes and **hubs**
(Section 2): a hub's neighbourhood cannot be captured by any single
block, which is what makes naive block decompositions incomplete.

``CUT`` partitions the node set into the feasible set ``Nf`` and the hub
set ``Nh``; the driver recurses on the subgraph induced by ``Nh``.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.graph.adjacency import Graph, Node
from repro.graph.csr import CSRGraph


def is_feasible(
    nodes: Iterable[Node],
    graph: Graph,
    m: int,
    degrees: Mapping[Node, int] | None = None,
) -> bool:
    """Return whether ``nodes`` plus all their neighbours fit in a block.

    Implements the paper's ``isfeasible`` procedure: "takes as input a set
    of nodes, the graph G and the maximum block size m and checks whether
    the union of the given nodes and all their neighborhoods in G has
    [at most] m elements".

    A single-node query reduces to ``degree + 1 <= m`` and is answered in
    O(1) — from ``degrees`` when the caller precomputed a degree lookup,
    otherwise from the graph — without materializing the closed
    neighbourhood; only multi-node queries take the set-union path.

    Raises
    ------
    ValueError
        If ``m`` is not positive.
    NodeNotFoundError
        If any node is absent from ``graph``.
    """
    if m < 1:
        raise ValueError("block size m must be at least 1")
    nodes = list(nodes)
    if len(nodes) == 1:
        node = nodes[0]
        if degrees is not None and node in degrees:
            return degrees[node] + 1 <= m
        return graph.degree(node) + 1 <= m
    closed: set[Node] = set()
    for node in nodes:
        closed.add(node)
        closed.update(graph.neighbors(node))
        if len(closed) > m:
            return False
    return True


def is_feasible_node(node: Node, graph: Graph, m: int) -> bool:
    """Return whether the single ``node`` is feasible (``degree < m``)."""
    if m < 1:
        raise ValueError("block size m must be at least 1")
    return graph.degree(node) + 1 <= m


def cut(graph: Graph, m: int) -> tuple[list[Node], list[Node]]:
    """Split the nodes of ``graph`` into feasible and hub nodes (Alg. 2).

    Returns ``(feasible, hubs)`` as lists in the graph's node insertion
    order, so downstream block building is deterministic.

    Raises
    ------
    ValueError
        If ``m`` is not positive.
    """
    if m < 1:
        raise ValueError("block size m must be at least 1")
    feasible: list[Node] = []
    hubs: list[Node] = []
    # One pass precomputes the degree lookup so the per-node feasibility
    # check is a plain O(1) comparison (no closed-neighbourhood set).
    degrees = {node: graph.degree(node) for node in graph.nodes()}
    for node, degree in degrees.items():
        if degree + 1 <= m:
            feasible.append(node)
        else:
            hubs.append(node)
    return feasible, hubs


def cut_csr(csr: CSRGraph, m: int) -> tuple[np.ndarray, np.ndarray]:
    """``CUT`` straight off a CSR snapshot's degree array (no ``Graph``).

    Returns ``(feasible_ids, hub_ids)`` as strictly increasing ``int64``
    dense-index arrays over ``csr`` — ascending dense index is exactly
    the snapshot's insertion order, so this is the id-space twin of
    :func:`cut`.  The whole split is two vectorized comparisons on
    ``np.diff(indptr)``.

    Raises
    ------
    ValueError
        If ``m`` is not positive.
    """
    if m < 1:
        raise ValueError("block size m must be at least 1")
    degrees = csr.degree_array()
    feasible_mask = degrees + 1 <= m
    return (
        np.flatnonzero(feasible_mask).astype(np.int64),
        np.flatnonzero(~feasible_mask).astype(np.int64),
    )

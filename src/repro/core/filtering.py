"""Redundant-clique filtering (Lemma 1, Alg. 1 line 7).

Lemma 1: for any bipartition ``(N1, N2)`` of the nodes, the maximal
cliques of ``G`` are ``C1 ∪ C2'``, where ``C1`` are the maximal cliques
touching ``N1``, ``C2`` the maximal cliques of the subgraph induced by
``N2``, and ``C2'`` is ``C2`` with every clique *contained in* some
clique of ``C1`` filtered out.  The driver applies this at every level of
the hub recursion: hub-only cliques that extend with a feasible node are
exactly the ones some feasible-side clique contains.

The filter is indexed rather than quadratic: cliques of ``C1`` are
indexed by member node, and a candidate ``c`` is dropped iff the index
sets of all its members intersect — i.e. some single ``C1`` clique
contains every member of ``c``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.cliquestore import CliqueStore
from repro.graph.adjacency import Node


def filter_contained(
    candidates: Iterable[frozenset[Node]],
    reference: Sequence[frozenset[Node]],
) -> list[frozenset[Node]]:
    """Return the candidates not contained in any reference clique.

    A candidate equal to a reference clique is also dropped (it is
    "contained" and would be a duplicate).  The empty candidate set is
    always dropped when any reference clique exists.

    Complexity: ``O(Σ|c| · avg-membership)`` — each candidate intersects
    the per-node posting lists of its members, smallest list first.
    """
    membership: dict[Node, set[int]] = {}
    for index, clique in enumerate(reference):
        for node in clique:
            membership.setdefault(node, set()).add(index)

    kept: list[frozenset[Node]] = []
    for candidate in candidates:
        if _is_contained(candidate, membership, bool(reference)):
            continue
        kept.append(candidate)
    return kept


def _is_contained(
    candidate: frozenset[Node],
    membership: dict[Node, set[int]],
    any_reference: bool,
) -> bool:
    """Return whether some indexed reference clique ⊇ ``candidate``."""
    if not candidate:
        return any_reference
    posting_lists: list[set[int]] = []
    for node in candidate:
        postings = membership.get(node)
        if not postings:
            return False  # some member appears in no reference clique
        posting_lists.append(postings)
    posting_lists.sort(key=len)
    common = set(posting_lists[0])
    for postings in posting_lists[1:]:
        common &= postings
        if not common:
            return False
    return True


def filter_min_size(cliques, min_clique_size: int):
    """Return the cliques with at least ``min_clique_size`` members.

    The enumeration floor behind ``find_max_cliques(min_clique_size=f)``.
    Applying it per level *before* Lemma 1 merging is sound: a hub
    clique of size ≥ f contained in some feasible clique is contained
    in one of size ≥ f (containment never shrinks the container), so
    every reference that matters for deduplication survives the floor;
    and a clique lost from a bound-skipped block is itself < f, so any
    hub clique it contains is < f and is dropped here anyway.

    Accepts either the legacy ``list[frozenset]`` (returns a list) or a
    packed :class:`CliqueStore` (returns a store — one vectorized mask
    on the offsets diff, no decode).
    """
    if isinstance(cliques, CliqueStore):
        if min_clique_size <= 1:
            return cliques
        return cliques.select(cliques.sizes >= min_clique_size)
    if min_clique_size <= 1:
        return list(cliques)
    return [clique for clique in cliques if len(clique) >= min_clique_size]


def contained_mask(
    candidates: CliqueStore, reference: CliqueStore
) -> np.ndarray:
    """Packed Lemma-1 test: which candidates lie inside a reference clique.

    Both stores must share one vertex-id space (the driver's
    :class:`~repro.core.cliquestore.GlobalCliqueIndex` guarantees this).
    Returns a boolean array over the candidates, ``True`` where some
    reference clique contains the candidate (equality counts).  The
    posting lists are built only for vertex ids that actually occur in a
    candidate (one ``np.isin`` prefilter), then each candidate
    intersects its members' lists smallest-first — the same indexed
    algorithm as :func:`filter_contained`, in pure int space.
    """
    num = candidates.num_cliques
    contained = np.zeros(num, dtype=bool)
    if num == 0:
        return contained
    if reference.num_cliques == 0:
        # Only empty candidates are "contained" when nothing references.
        return contained
    cand_nodes = np.unique(candidates.vertices)
    ref_nodes = reference.vertices
    ref_ids = np.repeat(
        np.arange(reference.num_cliques, dtype=np.int64), reference.sizes
    )
    relevant = np.isin(ref_nodes, cand_nodes)
    ref_nodes = ref_nodes[relevant]
    ref_ids = ref_ids[relevant]
    order = np.argsort(ref_nodes, kind="stable")
    ref_nodes = ref_nodes[order]
    ref_ids = ref_ids[order]
    uniques, starts = np.unique(ref_nodes, return_index=True)
    bounds = np.append(starts, len(ref_nodes))
    postings: dict[int, set[int]] = {
        int(node): set(ref_ids[bounds[i] : bounds[i + 1]].tolist())
        for i, node in enumerate(uniques.tolist())
    }
    offsets = candidates.offsets.tolist()
    flat = candidates.vertices.tolist()
    for i in range(num):
        members = flat[offsets[i] : offsets[i + 1]]
        if not members:
            contained[i] = True
            continue
        posting_lists: list[set[int]] = []
        for node in members:
            posting = postings.get(node)
            if not posting:
                break
            posting_lists.append(posting)
        else:
            posting_lists.sort(key=len)
            common = set(posting_lists[0])
            for posting in posting_lists[1:]:
                common &= posting
                if not common:
                    break
            contained[i] = bool(common)
    return contained


def merge_level_packed(
    feasible: CliqueStore, hub: CliqueStore
) -> CliqueStore:
    """Packed twin of :func:`merge_level`: ``Cf ∪ filter(Ch, Cf)``.

    Feasible cliques first, surviving hub cliques after, both in their
    original emission order — the order the legacy list merge produced.
    """
    surviving = hub.select(~contained_mask(hub, feasible))
    return CliqueStore.concat([feasible, surviving])


def merge_level(
    feasible_cliques: list[frozenset[Node]],
    hub_cliques: list[frozenset[Node]],
) -> list[frozenset[Node]]:
    """Combine one recursion level per Algorithm 1 line 7–8.

    Returns ``Cf ∪ filter(Ch, Cf)`` with the feasible cliques first (the
    driver relies on this order to preserve provenance tagging).
    """
    surviving = filter_contained(hub_cliques, feasible_cliques)
    return list(feasible_cliques) + surviving

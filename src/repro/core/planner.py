"""Block-size planning: choosing ``m`` before a run.

The paper leaves ``m`` to the operator, bounded by two constraints and
one preference:

* **completeness** (Theorem 1): ``m`` must exceed the degeneracy of the
  network, or some level of the recursion never terminates;
* **memory** (Section 1: "m is bounded by the dimension of the
  memory"): a block's backend representation must fit in a worker's
  RAM — and operating at 1/100 or 1/1000 of memory is *faster*;
* **efficiency** (Section 6.3): the sweet spot of the sweep sits around
  ``m ≈ 0.5 × max degree``.

:func:`recommend_block_size` folds the three into one number with an
explicit rationale, so callers stop hand-tuning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.decision.features import BlockFeatures
from repro.decision.paper_tree import select_combo
from repro.decision.persistence import resolve_tree
from repro.decision.tree import DecisionTree
from repro.distributed.cluster import ClusterSpec
from repro.errors import ConvergenceError
from repro.graph.adjacency import Graph
from repro.graph.cores import degeneracy, degeneracy_csr
from repro.graph.csr import CSRGraph
from repro.graph.properties import d_star as graph_d_star
from repro.mce.memory import max_block_nodes_for_memory


@dataclass(frozen=True)
class BlockSizePlan:
    """A recommended ``m`` with the bounds that produced it."""

    m: int
    completeness_lower_bound: int  # degeneracy + 1
    memory_upper_bound: int  # largest block the backend fits
    max_degree: int
    target: int  # the efficiency preference before clamping
    rationale: str
    # Combo the selection tree picks for the network's own features when
    # planning is tree-aware ("" when a fixed backend was given): the
    # plan's memory bound then uses that combo's backend, so planning
    # and execution price blocks with the same representation.
    selected_combo: str = ""

    @property
    def ratio(self) -> float:
        """The recommended m as a fraction of the maximum degree."""
        if self.max_degree == 0:
            return 0.0
        return self.m / self.max_degree


def recommend_block_size(
    graph: Graph | CSRGraph,
    cluster: ClusterSpec | None = None,
    backend: str = "bitsets",
    ratio: float = 0.5,
    memory_fraction: float = 0.01,
    tree: "DecisionTree | str | None" = None,
) -> BlockSizePlan:
    """Recommend a block size ``m`` for ``graph``.

    Parameters
    ----------
    graph:
        The network to be decomposed — either a dict :class:`Graph` or a
        :class:`~repro.graph.csr.CSRGraph` snapshot.  A CSR snapshot is
        planned natively (degrees from ``indptr``, degeneracy via
        :func:`~repro.graph.cores.degeneracy_csr`), so the pipeline
        driver can plan from the snapshot it will publish without
        expanding a dict graph first.
    cluster:
        Worker description; defaults to the paper's 8 GB machines.
    backend:
        The representation whose footprint bounds the block
        (worst-case dense model, see :mod:`repro.mce.memory`).
        Ignored when ``tree`` is given.
    tree:
        Plan with the same selector execution will use: a
        :class:`DecisionTree` or a specification string
        (``"paper"``/``"extended"``/``"auto"``/a saved-tree path, see
        :func:`repro.decision.persistence.resolve_tree`).  The tree is
        run on the network's own features and the chosen combination's
        backend replaces ``backend`` for the memory bound, so ``repro
        plan --tree`` and ``repro enumerate --tree`` can no longer
        silently diverge on which representation they budget for.
    ratio:
        Efficiency preference as a fraction of the maximum degree
        (the paper's saddle point, 0.5, by default).
    memory_fraction:
        Fraction of a machine's memory one block may use; the paper
        reports 1/100 to 1/1000 of memory is the fast regime.

    Returns
    -------
    BlockSizePlan
        ``m`` clamped into
        ``[degeneracy + 1, memory bound]`` with the efficiency target
        ``ratio × max_degree`` as the starting point.

    Raises
    ------
    ValueError
        On an empty graph or out-of-range ``ratio``/``memory_fraction``.
    ConvergenceError
        When no completeness-preserving ``m`` fits the memory budget
        (``degeneracy + 1`` exceeds the memory bound); the caller must
        raise the budget or accept the exact-fallback driver mode.
    """
    if graph.num_nodes == 0:
        raise ValueError("cannot plan a block size for an empty graph")
    if not 0.0 < ratio <= 1.0:
        raise ValueError("ratio must be in (0, 1]")
    if not 0.0 < memory_fraction <= 1.0:
        raise ValueError("memory_fraction must be in (0, 1]")
    spec = cluster if cluster is not None else ClusterSpec()
    budget = max(1, int(spec.memory_bytes_per_machine * memory_fraction))
    if isinstance(graph, CSRGraph):
        core = degeneracy_csr(graph)
        degrees = graph.degree_array()
        max_degree = int(degrees.max()) if len(degrees) else 0
    else:
        core = degeneracy(graph)
        max_degree = graph.max_degree()
    lower = core + 1
    selected_combo = ""
    resolved = resolve_tree(tree)
    if resolved is not None:
        combo = select_combo(resolved, _whole_graph_features(graph, core))
        backend = combo.backend
        selected_combo = combo.name
    memory_bound = max_block_nodes_for_memory(budget, backend)
    target = max(2, int(ratio * max_degree))

    if lower > memory_bound:
        raise ConvergenceError(
            f"no completeness-preserving m fits the memory budget: "
            f"degeneracy + 1 = {lower} but only {memory_bound}-node blocks "
            f"fit in {budget} bytes with the {backend!r} backend",
            core_size=lower,
        )
    m = min(max(target, lower), memory_bound)
    if m == target:
        rationale = (
            f"efficiency target {ratio:g} x max degree ({max_degree}) "
            "fits both bounds"
        )
    elif m == lower:
        rationale = (
            f"raised to degeneracy + 1 = {lower} for the Theorem 1 "
            "completeness guarantee"
        )
    else:
        rationale = (
            f"capped at {memory_bound} nodes by the "
            f"{memory_fraction:g} x memory budget ({budget} bytes, "
            f"{backend} backend)"
        )
    if selected_combo:
        rationale += (
            f"; selector picked {selected_combo}, so the memory bound "
            f"uses the {backend!r} backend"
        )
    return BlockSizePlan(
        m=m,
        completeness_lower_bound=lower,
        memory_upper_bound=memory_bound,
        max_degree=max_degree,
        target=target,
        rationale=rationale,
        selected_combo=selected_combo,
    )


def _whole_graph_features(
    graph: Graph | CSRGraph, core: int
) -> BlockFeatures:
    """The network's own five selector features (degeneracy precomputed)."""
    n = graph.num_nodes
    if isinstance(graph, CSRGraph):
        degrees = graph.degree_array()
        num_edges = int(degrees.sum()) // 2
        density = 2.0 * num_edges / (n * (n - 1)) if n > 1 else 0.0
        descending = np.sort(degrees)[::-1]
        at_least = descending >= np.arange(1, n + 1)
        hits = np.flatnonzero(at_least)
        d_star = int(hits[-1]) + 1 if len(hits) else 0
    else:
        num_edges = graph.num_edges
        density = graph.density()
        d_star = graph_d_star(graph)
    return BlockFeatures(
        num_nodes=n,
        num_edges=num_edges,
        density=density,
        degeneracy=core,
        d_star=d_star,
    )

"""Result containers for the two-level decomposition driver.

The paper's evaluation splits every measurement by *provenance*: cliques
found at recursion level 0 touch at least one feasible node (the white
bars of Figures 9–11), while cliques found at deeper levels consist of
level-0 hub nodes only (the gray bars).  :class:`CliqueResult` keeps that
tag per clique, plus per-level statistics for the decomposition-time and
convergence experiments (Figure 7, Theorem 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean

from repro.graph.adjacency import Node


@dataclass(frozen=True)
class LevelStats:
    """Measurements of one first-level recursion round."""

    level: int
    num_nodes: int
    num_edges: int
    num_feasible: int
    num_hubs: int
    num_blocks: int
    decomposition_seconds: float
    analysis_seconds: float
    cliques_found: int
    fallback_used: bool = False


@dataclass
class CliqueResult:
    """Complete output of :func:`repro.core.driver.find_max_cliques`."""

    cliques: list[frozenset[Node]]
    provenance: dict[frozenset[Node], int]
    levels: list[LevelStats]
    m: int
    fallback_used: bool = False
    block_combos: dict[str, int] = field(default_factory=dict)
    # One list of BlockReport per recursion level, populated when the
    # driver is called with collect_reports=True (used by the distributed
    # simulator, which replays the measured per-block costs).
    block_reports: list = field(default_factory=list)
    # Durability digest of a spill-to-disk run (spill_dir=...): spill
    # directory, blocks recorded vs replayed, flush cost, segment names.
    # None for in-memory runs.
    run_info: dict | None = None
    # Bound-driven pruning digest (min_clique_size > 0 runs): the floor,
    # blocks priced/skipped, and anchors skipped inside analysed blocks.
    # None when the run enumerated without a floor.
    pruning: dict | None = None

    # ------------------------------------------------------------------
    # Provenance splits (Figures 9–11)
    # ------------------------------------------------------------------
    def feasible_cliques(self) -> list[frozenset[Node]]:
        """Cliques found at level 0 — they contain a feasible node."""
        return [c for c in self.cliques if self.provenance[c] == 0]

    def hub_cliques(self) -> list[frozenset[Node]]:
        """Cliques found at level ≥ 1 — composed exclusively of hubs."""
        return [c for c in self.cliques if self.provenance[c] >= 1]

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def num_cliques(self) -> int:
        """Total number of maximal cliques found."""
        return len(self.cliques)

    @property
    def recursion_depth(self) -> int:
        """Number of first-level decomposition rounds executed."""
        return len(self.levels)

    def max_clique_size(self) -> int:
        """Size of the largest clique, or 0 when there are none."""
        return max((len(c) for c in self.cliques), default=0)

    def average_clique_size(self) -> float:
        """Mean clique size, or 0.0 when there are none."""
        if not self.cliques:
            return 0.0
        return mean(len(c) for c in self.cliques)

    def average_size_by_provenance(self) -> tuple[float, float]:
        """Return ``(avg feasible size, avg hub-only size)`` (0.0 if none)."""
        feasible = self.feasible_cliques()
        hubs = self.hub_cliques()
        return (
            mean(len(c) for c in feasible) if feasible else 0.0,
            mean(len(c) for c in hubs) if hubs else 0.0,
        )

    def largest(self, k: int) -> list[frozenset[Node]]:
        """Return the ``k`` largest cliques (ties broken deterministically).

        This is the paper's "200 largest maximal cliques" selection for
        Figure 11.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        ordered = sorted(
            self.cliques, key=lambda c: (-len(c), sorted(map(str, c)))
        )
        return ordered[:k]

    def hub_share_of_largest(self, k: int) -> float:
        """Fraction of the ``k`` largest cliques that are hub-only.

        Returns 0.0 when the graph has no cliques at all.
        """
        top = self.largest(k)
        if not top:
            return 0.0
        hub_count = sum(1 for c in top if self.provenance[c] >= 1)
        return hub_count / len(top)

    def total_decomposition_seconds(self) -> float:
        """Wall-clock spent in CUT + BLOCKS across all levels (Figure 7)."""
        return sum(level.decomposition_seconds for level in self.levels)

    def total_analysis_seconds(self) -> float:
        """Wall-clock spent in BLOCK-ANALYSIS across all levels (Fig. 8)."""
        return sum(level.analysis_seconds for level in self.levels)

    def summary(self) -> dict[str, object]:
        """Return a JSON-serialisable digest of this run.

        Contains the counts, sizes, timings and per-level breakdown a
        monitoring pipeline would record; clique bodies are excluded
        (persist those with :func:`repro.graph.io.write_cliques`).
        """
        feasible_avg, hub_avg = self.average_size_by_provenance()
        return {
            "m": self.m,
            "num_cliques": self.num_cliques,
            "max_clique_size": self.max_clique_size(),
            "average_clique_size": self.average_clique_size(),
            "feasible_cliques": len(self.feasible_cliques()),
            "hub_only_cliques": len(self.hub_cliques()),
            "feasible_avg_size": feasible_avg,
            "hub_avg_size": hub_avg,
            "recursion_depth": self.recursion_depth,
            "fallback_used": self.fallback_used,
            "decomposition_seconds": self.total_decomposition_seconds(),
            "analysis_seconds": self.total_analysis_seconds(),
            "block_combos": dict(self.block_combos),
            "run_info": dict(self.run_info) if self.run_info else None,
            "pruning": dict(self.pruning) if self.pruning else None,
            "levels": [
                {
                    "level": level.level,
                    "num_nodes": level.num_nodes,
                    "num_edges": level.num_edges,
                    "num_feasible": level.num_feasible,
                    "num_hubs": level.num_hubs,
                    "num_blocks": level.num_blocks,
                    "cliques_found": level.cliques_found,
                    "fallback_used": level.fallback_used,
                }
                for level in self.levels
            ],
        }

    def __repr__(self) -> str:
        return (
            f"CliqueResult(cliques={self.num_cliques}, m={self.m}, "
            f"levels={self.recursion_depth}, "
            f"max_size={self.max_clique_size()})"
        )

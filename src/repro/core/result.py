"""Result containers for the two-level decomposition driver.

The paper's evaluation splits every measurement by *provenance*: cliques
found at recursion level 0 touch at least one feasible node (the white
bars of Figures 9–11), while cliques found at deeper levels consist of
level-0 hub nodes only (the gray bars).  :class:`CliqueResult` keeps that
tag per clique, plus per-level statistics for the decomposition-time and
convergence experiments (Figure 7, Theorem 1).

Since the packed result plane (``docs/resultplane.md``) the canonical
payload is a :class:`~repro.core.cliquestore.CliqueStore` — CSR-style
numpy buffers with a per-clique ``levels`` array as the provenance.  The
legacy surface (``result.cliques`` as a real ``list[frozenset]``,
``result.provenance`` as a ``dict[frozenset, int]``) is decoded lazily
and cached, so code that never touches clique bodies (CLI summaries,
monitoring digests) pays only vectorized reads of the offsets array.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cliquestore import CliqueStore, store_of
from repro.graph.adjacency import Node


@dataclass(frozen=True)
class LevelStats:
    """Measurements of one first-level recursion round."""

    level: int
    num_nodes: int
    num_edges: int
    num_feasible: int
    num_hubs: int
    num_blocks: int
    decomposition_seconds: float
    analysis_seconds: float
    cliques_found: int
    fallback_used: bool = False


class CliqueResult:
    """Complete output of :func:`repro.core.driver.find_max_cliques`.

    A lazy façade over a packed :class:`CliqueStore`.  Construct it
    either the packed way (``store=`` carrying a per-clique ``levels``
    provenance array) or the legacy way (``cliques=`` list plus
    ``provenance=`` dict); each representation materializes the other on
    first access and caches it.  Aggregates (:attr:`num_cliques`,
    :meth:`max_clique_size`, :meth:`average_clique_size`,
    :meth:`size_histogram`, :meth:`largest`) read the offsets/levels
    arrays directly — no frozenset is decoded until clique *bodies* are
    asked for.
    """

    def __init__(
        self,
        cliques: "list[frozenset[Node]] | None" = None,
        provenance: "dict[frozenset[Node], int] | None" = None,
        levels: "list[LevelStats] | None" = None,
        m: int = 0,
        fallback_used: bool = False,
        block_combos: "dict[str, int] | None" = None,
        block_reports: "list | None" = None,
        run_info: "dict | None" = None,
        pruning: "dict | None" = None,
        store: "CliqueStore | None" = None,
    ) -> None:
        if store is None and cliques is None:
            raise ValueError("CliqueResult needs cliques= or store=")
        self._store = store
        self._cliques = list(cliques) if cliques is not None else None
        self._provenance = dict(provenance) if provenance is not None else None
        self.levels = list(levels) if levels is not None else []
        self.m = m
        self.fallback_used = fallback_used
        self.block_combos = dict(block_combos) if block_combos else {}
        # One list of BlockReport per recursion level, populated when the
        # driver is called with collect_reports=True (used by the
        # distributed simulator, which replays measured per-block costs).
        self.block_reports = block_reports if block_reports is not None else []
        # Durability digest of a spill-to-disk run (spill_dir=...); None
        # for in-memory runs.
        self.run_info = run_info
        # Bound-driven pruning digest (min_clique_size > 0 runs); None
        # when the run enumerated without a floor.
        self.pruning = pruning

    # ------------------------------------------------------------------
    # The packed plane and its lazy legacy decode
    # ------------------------------------------------------------------
    @property
    def store(self) -> CliqueStore:
        """The packed clique buffers (built on demand from legacy lists).

        The per-clique provenance rides along as ``store.levels``.  This
        is the zero-copy surface: segment spills, the future query
        service, and the benchmarks read it directly.
        """
        if self._store is None:
            packed = store_of(self._cliques)
            if self._provenance is not None:
                packed.levels = np.fromiter(
                    (self._provenance.get(c, 0) for c in self._cliques),
                    dtype=np.int32,
                    count=len(self._cliques),
                )
            self._store = packed
        return self._store

    @property
    def cliques(self) -> "list[frozenset[Node]]":
        """Every clique as a frozenset, decoded on first access (cached).

        A real list — downstream code slices, concatenates and sorts it.
        """
        if self._cliques is None:
            self._cliques = self.store.to_list()
        return self._cliques

    @property
    def clique_levels(self) -> np.ndarray:
        """Per-clique provenance levels as an ``int32`` array."""
        store = self.store
        if store.levels is not None:
            return store.levels
        return np.zeros(store.num_cliques, dtype=np.int32)

    @property
    def provenance(self) -> "dict[frozenset[Node], int]":
        """Legacy provenance mapping, built lazily from the levels array."""
        if self._provenance is None:
            self._provenance = dict(
                zip(self.cliques, self.clique_levels.tolist())
            )
        return self._provenance

    # ------------------------------------------------------------------
    # Provenance splits (Figures 9–11)
    # ------------------------------------------------------------------
    def feasible_cliques(self) -> "list[frozenset[Node]]":
        """Cliques found at level 0 — they contain a feasible node."""
        return self._by_level(hub=False)

    def hub_cliques(self) -> "list[frozenset[Node]]":
        """Cliques found at level ≥ 1 — composed exclusively of hubs."""
        return self._by_level(hub=True)

    def _by_level(self, hub: bool) -> "list[frozenset[Node]]":
        levels = self.clique_levels
        mask = levels >= 1 if hub else levels == 0
        if mask.all():
            return list(self.cliques)
        if not mask.any():
            return []
        cliques = self.cliques
        return [cliques[i] for i in np.flatnonzero(mask).tolist()]

    # ------------------------------------------------------------------
    # Aggregates — vectorized reads of the packed arrays
    # ------------------------------------------------------------------
    @property
    def num_cliques(self) -> int:
        """Total number of maximal cliques found."""
        if self._store is not None:
            return self._store.num_cliques
        return len(self._cliques)

    @property
    def recursion_depth(self) -> int:
        """Number of first-level decomposition rounds executed."""
        return len(self.levels)

    def max_clique_size(self) -> int:
        """Size of the largest clique, or 0 when there are none."""
        return self.store.max_size()

    def average_clique_size(self) -> float:
        """Mean clique size, or 0.0 when there are none."""
        return self.store.mean_size()

    def size_histogram(self) -> "dict[int, int]":
        """``{size: count}`` over all cliques — one bincount."""
        return self.store.size_histogram()

    def average_size_by_provenance(self) -> tuple[float, float]:
        """Return ``(avg feasible size, avg hub-only size)`` (0.0 if none)."""
        sizes = self.store.sizes
        hub = self.clique_levels >= 1
        feasible_sizes = sizes[~hub]
        hub_sizes = sizes[hub]
        return (
            float(feasible_sizes.mean()) if len(feasible_sizes) else 0.0,
            float(hub_sizes.mean()) if len(hub_sizes) else 0.0,
        )

    def largest(self, k: int) -> "list[frozenset[Node]]":
        """Return the ``k`` largest cliques (ties broken deterministically).

        This is the paper's "200 largest maximal cliques" selection for
        Figure 11.  An argpartition over the offsets diff narrows the
        field to the cliques that can reach the top ``k`` (plus boundary
        ties); only those are decoded and tie-broken.
        """
        candidates = self._largest_candidates(k)
        return [clique for clique, _ in candidates[:k]]

    def _largest_candidates(self, k: int) -> "list[tuple[frozenset[Node], int]]":
        """Top-``k``-with-ties as ``(clique, level)``, deterministically ordered."""
        if k < 0:
            raise ValueError("k must be non-negative")
        store = self.store
        indices = store.top_k(k)
        levels = self.clique_levels
        decoded = [
            (store.decode(int(i)), int(levels[int(i)])) for i in indices
        ]
        decoded.sort(key=lambda pair: (-len(pair[0]), sorted(map(str, pair[0]))))
        return decoded

    def hub_share_of_largest(self, k: int) -> float:
        """Fraction of the ``k`` largest cliques that are hub-only.

        Returns 0.0 when the graph has no cliques at all.
        """
        top = self._largest_candidates(k)[:k]
        if not top:
            return 0.0
        hub_count = sum(1 for _, level in top if level >= 1)
        return hub_count / len(top)

    def total_decomposition_seconds(self) -> float:
        """Wall-clock spent in CUT + BLOCKS across all levels (Figure 7)."""
        return sum(level.decomposition_seconds for level in self.levels)

    def total_analysis_seconds(self) -> float:
        """Wall-clock spent in BLOCK-ANALYSIS across all levels (Fig. 8)."""
        return sum(level.analysis_seconds for level in self.levels)

    def summary(self) -> dict[str, object]:
        """Return a JSON-serialisable digest of this run.

        Contains the counts, sizes, timings and per-level breakdown a
        monitoring pipeline would record; clique bodies are excluded
        (persist those with :func:`repro.graph.io.write_cliques`).
        Computed entirely from the packed arrays — no clique is decoded.
        """
        feasible_avg, hub_avg = self.average_size_by_provenance()
        hub_mask = self.clique_levels >= 1
        return {
            "m": self.m,
            "num_cliques": self.num_cliques,
            "max_clique_size": self.max_clique_size(),
            "average_clique_size": self.average_clique_size(),
            "feasible_cliques": int(np.count_nonzero(~hub_mask)),
            "hub_only_cliques": int(np.count_nonzero(hub_mask)),
            "feasible_avg_size": feasible_avg,
            "hub_avg_size": hub_avg,
            "recursion_depth": self.recursion_depth,
            "fallback_used": self.fallback_used,
            "decomposition_seconds": self.total_decomposition_seconds(),
            "analysis_seconds": self.total_analysis_seconds(),
            "block_combos": dict(self.block_combos),
            "run_info": dict(self.run_info) if self.run_info else None,
            "pruning": dict(self.pruning) if self.pruning else None,
            "levels": [
                {
                    "level": level.level,
                    "num_nodes": level.num_nodes,
                    "num_edges": level.num_edges,
                    "num_feasible": level.num_feasible,
                    "num_hubs": level.num_hubs,
                    "num_blocks": level.num_blocks,
                    "cliques_found": level.cliques_found,
                    "fallback_used": level.fallback_used,
                }
                for level in self.levels
            ],
        }

    def __repr__(self) -> str:
        return (
            f"CliqueResult(cliques={self.num_cliques}, m={self.m}, "
            f"levels={self.recursion_depth}, "
            f"max_size={self.max_clique_size()})"
        )

"""Uniform-size second-level decomposition — the [10]-style comparator.

Section 3.2: "Here, we model blocks similarly to [10] but allow for
blocks of heterogeneous sizes and leverage the adjacency of the nodes
to put dense subgraphs into the same block."  To measure what that
buys, this module implements the *other* design: hub-aware (only
feasible nodes become kernels, so completeness is preserved) but with
kernel sets grown in plain insertion order up to a uniform target —
no density seeking, no heterogeneity.

The ablation benchmark runs both second-level strategies under the
same driver and compares block homogeneity, internal density, and
analysis time; the clique output must be identical (both decompositions
satisfy the same invariants).
"""

from __future__ import annotations

from repro.core.blocks import Block
from repro.errors import DecompositionError
from repro.graph.adjacency import Graph, Node
from repro.graph.views import induced_subgraph


def build_uniform_blocks(
    graph: Graph, feasible: list[Node], m: int
) -> list[Block]:
    """Partition ``feasible`` into insertion-order kernel sets.

    Kernels are taken in the given order, each block growing until the
    next feasible node (with its neighbourhood) would overflow ``m`` —
    no preference for adjacency, which tends to produce blocks of
    similar size whose members are unrelated.  All Block invariants of
    :func:`repro.core.blocks.validate_blocks` still hold, so the result
    is a drop-in replacement for the density-seeking decomposition.

    Raises
    ------
    ValueError
        If ``m`` is not positive.
    DecompositionError
        If a supposedly feasible node overflows an empty block.
    """
    if m < 1:
        raise ValueError("block size m must be at least 1")
    blocks: list[Block] = []
    used_kernels: set[Node] = set()
    pending = list(feasible)
    position = 0
    while position < len(pending):
        kernel: list[Node] = []
        kernel_set: set[Node] = set()
        closed: set[Node] = set()
        while position < len(pending):
            candidate = pending[position]
            addition = graph.closed_neighborhood(candidate)
            if len(closed | addition) > m:
                if not kernel:
                    raise DecompositionError(
                        f"seed {candidate!r} alone overflows block size {m}"
                    )
                break
            kernel.append(candidate)
            kernel_set.add(candidate)
            closed |= addition
            position += 1
        neighborhood = closed - kernel_set
        visited = frozenset(neighborhood & used_kernels)
        border = frozenset(neighborhood - visited)
        members = list(kernel)
        members.extend(sorted(border, key=str))
        members.extend(sorted(visited, key=str))
        blocks.append(
            Block(
                kernel=tuple(kernel),
                border=border,
                visited=visited,
                graph=induced_subgraph(graph, members),
            )
        )
        used_kernels |= kernel_set
    return blocks


def block_size_spread(blocks: list[Block]) -> float:
    """Return max/mean block size; 0.0 for an empty decomposition.

    The density-seeking strategy produces *heterogeneous* sizes (high
    spread around dense regions), the uniform strategy flattens them.
    """
    if not blocks:
        return 0.0
    sizes = [block.size for block in blocks]
    return max(sizes) * len(sizes) / sum(sizes)


def mean_block_density(blocks: list[Block]) -> float:
    """Return the mean edge density over blocks (0.0 if none)."""
    if not blocks:
        return 0.0
    return sum(block.graph.density() for block in blocks) / len(blocks)

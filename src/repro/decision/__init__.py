"""Best-fit MCE algorithm selection via decision trees (Section 4)."""

from repro.decision.features import (
    FEATURE_NAMES,
    BlockFeatures,
    extract_features,
    features_from_bitmap,
)
from repro.decision.paper_tree import (
    combo_for_label,
    extended_tree,
    paper_tree,
    select_combo,
)
from repro.decision.persistence import (
    load_tree,
    save_tree,
    tree_from_dict,
    tree_to_dict,
)
from repro.decision.training import (
    LabelledGraph,
    TrainingResult,
    build_corpus,
    label_corpus,
    train,
    win_counts,
)
from repro.decision.tree import (
    DecisionTree,
    Leaf,
    Split,
    accuracy,
    fit_tree,
    gini,
    majority_label,
)

__all__ = [
    "FEATURE_NAMES",
    "BlockFeatures",
    "extract_features",
    "features_from_bitmap",
    "combo_for_label",
    "extended_tree",
    "paper_tree",
    "select_combo",
    "load_tree",
    "save_tree",
    "tree_from_dict",
    "tree_to_dict",
    "LabelledGraph",
    "TrainingResult",
    "build_corpus",
    "label_corpus",
    "train",
    "win_counts",
    "DecisionTree",
    "Leaf",
    "Split",
    "accuracy",
    "fit_tree",
    "gini",
    "majority_label",
]

"""Block feature extraction for best-fit algorithm selection.

Section 4: "The parameters we used to classify blocks are the following:
(a) number of nodes; (b) number of edges; (c) density; (d) degeneracy;
and (e) the maximum value d* for which the graph has at least d* nodes
with degree greater or equal than d*."

Features are bundled as a :class:`BlockFeatures` record whose field order
is the canonical feature-vector order used by the tree learner.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.graph.adjacency import Graph
from repro.graph.cores import degeneracy as graph_degeneracy
from repro.graph.properties import d_star as graph_d_star

FEATURE_NAMES: tuple[str, ...] = (
    "num_nodes",
    "num_edges",
    "density",
    "degeneracy",
    "d_star",
)


@dataclass(frozen=True)
class BlockFeatures:
    """The five easy-to-compute block parameters of Section 4."""

    num_nodes: int
    num_edges: int
    density: float
    degeneracy: int
    d_star: int

    @classmethod
    def of(cls, graph: Graph) -> "BlockFeatures":
        """Extract the features of ``graph`` (linear time except density)."""
        return cls(
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            density=graph.density(),
            degeneracy=graph_degeneracy(graph),
            d_star=graph_d_star(graph),
        )

    def vector(self) -> tuple[float, ...]:
        """Return the features as floats in :data:`FEATURE_NAMES` order."""
        return tuple(float(getattr(self, f.name)) for f in fields(self))

    def value(self, name: str) -> float:
        """Return a single feature by name.

        Raises
        ------
        KeyError
            If ``name`` is not one of :data:`FEATURE_NAMES`.
        """
        if name not in FEATURE_NAMES:
            raise KeyError(
                f"unknown feature {name!r}; known: {', '.join(FEATURE_NAMES)}"
            )
        return float(getattr(self, name))

    def estimated_cost(self) -> float:
        """Dispatch-ordering cost estimate; see :func:`estimate_analysis_cost`."""
        return estimate_analysis_cost(self.num_nodes, self.num_edges)


def extract_features(graph: Graph) -> BlockFeatures:
    """Return :class:`BlockFeatures.of(graph)`; a readable free function."""
    return BlockFeatures.of(graph)


def features_from_bitmap(bitmap: np.ndarray) -> BlockFeatures:
    """Extract :class:`BlockFeatures` from a packed adjacency bitmap.

    The bitmap-direct twin of :meth:`BlockFeatures.of` used by the
    zero-copy worker path: all five parameters are computed from the
    ``n × ceil(n/64)`` ``uint64`` adjacency rows (degrees by word
    popcount, degeneracy by packed peeling, ``d*`` from the degree
    sequence) and agree exactly with the ``Graph``-based extraction on
    the same subgraph, so the decision tree selects the same combination
    no matter which path materialized the block.
    """
    from repro.mce.bitmatrix import degeneracy_packed, popcount_rows

    n = int(bitmap.shape[0])
    degrees = popcount_rows(bitmap)
    num_edges = int(degrees.sum()) // 2
    density = 2.0 * num_edges / (n * (n - 1)) if n > 1 else 0.0
    return BlockFeatures(
        num_nodes=n,
        num_edges=num_edges,
        density=density,
        degeneracy=degeneracy_packed(bitmap),
        d_star=_d_star_of_degrees(degrees, n),
    )


def _d_star_of_degrees(degrees: np.ndarray, n: int) -> int:
    """Degree h-index from a degree vector (same convention as ``d_star``)."""
    if n == 0:
        return 0
    descending = np.sort(degrees)[::-1]
    at_least = descending >= np.arange(1, n + 1)
    hits = np.flatnonzero(at_least)
    return int(hits[-1]) + 1 if len(hits) else 0


def estimate_analysis_cost(num_nodes: int, num_edges: int) -> float:
    """Heuristic analysis cost of a block, for dispatch ordering.

    Moon–Moser bounds the clique count by ``3^(n/3)``, but within one
    decomposition the blocks share the size cap ``m``, so what separates
    cheap blocks from expensive ones is density; the estimate scales the
    node count by an exponential in the *average degree*.  Only the
    ordering matters (LPT dispatch feeds costly blocks to workers
    first), so the constant factors are irrelevant — the estimate just
    has to be monotone in size and density, and computable in O(1) from
    counts the block graph already maintains.
    """
    if num_nodes <= 0:
        return 0.0
    average_degree = 2.0 * num_edges / num_nodes
    return num_nodes * 3.0 ** (average_degree / 3.0)

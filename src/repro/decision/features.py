"""Block feature extraction for best-fit algorithm selection.

Section 4: "The parameters we used to classify blocks are the following:
(a) number of nodes; (b) number of edges; (c) density; (d) degeneracy;
and (e) the maximum value d* for which the graph has at least d* nodes
with degree greater or equal than d*."

Features are bundled as a :class:`BlockFeatures` record whose field order
is the canonical feature-vector order used by the tree learner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields

import numpy as np

from repro.graph.adjacency import Graph
from repro.graph.cores import degeneracy as graph_degeneracy
from repro.graph.properties import d_star as graph_d_star

FEATURE_NAMES: tuple[str, ...] = (
    "num_nodes",
    "num_edges",
    "density",
    "degeneracy",
    "d_star",
)


@dataclass(frozen=True)
class BlockFeatures:
    """The five easy-to-compute block parameters of Section 4."""

    num_nodes: int
    num_edges: int
    density: float
    degeneracy: int
    d_star: int

    @classmethod
    def of(cls, graph: Graph) -> "BlockFeatures":
        """Extract the features of ``graph`` (linear time except density)."""
        return cls(
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            density=graph.density(),
            degeneracy=graph_degeneracy(graph),
            d_star=graph_d_star(graph),
        )

    def vector(self) -> tuple[float, ...]:
        """Return the features as floats in :data:`FEATURE_NAMES` order."""
        return tuple(float(getattr(self, f.name)) for f in fields(self))

    def value(self, name: str) -> float:
        """Return a single feature by name.

        Raises
        ------
        KeyError
            If ``name`` is not one of :data:`FEATURE_NAMES`.
        """
        if name not in FEATURE_NAMES:
            raise KeyError(
                f"unknown feature {name!r}; known: {', '.join(FEATURE_NAMES)}"
            )
        return float(getattr(self, name))

    def estimated_cost(self) -> float:
        """Dispatch-ordering cost estimate; see :func:`estimate_analysis_cost`."""
        return estimate_analysis_cost(self.num_nodes, self.num_edges)

    def clique_upper_bound(self) -> int:
        """Structural clique bound: ``min(n, degeneracy + 1)``.

        Every k-clique needs k mutually adjacent vertices, each of
        degree ≥ k−1 inside the clique, so ω ≤ degeneracy + 1 (and
        trivially ω ≤ n).  The block-pruning layer tightens this with a
        greedy colouring over the packed rows — see
        :func:`repro.mce.maximum.clique_upper_bound_packed`.
        """
        return min(self.num_nodes, self.degeneracy + 1)


def extract_features(graph: Graph) -> BlockFeatures:
    """Return :class:`BlockFeatures.of(graph)`; a readable free function."""
    return BlockFeatures.of(graph)


def features_from_bitmap(bitmap: np.ndarray) -> BlockFeatures:
    """Extract :class:`BlockFeatures` from a packed adjacency bitmap.

    The bitmap-direct twin of :meth:`BlockFeatures.of` used by the
    zero-copy worker path: all five parameters are computed from the
    ``n × ceil(n/64)`` ``uint64`` adjacency rows (degrees by word
    popcount, degeneracy by packed peeling, ``d*`` from the degree
    sequence) and agree exactly with the ``Graph``-based extraction on
    the same subgraph, so the decision tree selects the same combination
    no matter which path materialized the block.
    """
    from repro.mce.bitmatrix import degeneracy_packed, popcount_rows

    n = int(bitmap.shape[0])
    degrees = popcount_rows(bitmap)
    num_edges = int(degrees.sum()) // 2
    density = 2.0 * num_edges / (n * (n - 1)) if n > 1 else 0.0
    return BlockFeatures(
        num_nodes=n,
        num_edges=num_edges,
        density=density,
        degeneracy=degeneracy_packed(bitmap),
        d_star=_d_star_of_degrees(degrees, n),
    )


def _d_star_of_degrees(degrees: np.ndarray, n: int) -> int:
    """Degree h-index from a degree vector (same convention as ``d_star``)."""
    if n == 0:
        return 0
    descending = np.sort(degrees)[::-1]
    at_least = descending >= np.arange(1, n + 1)
    hits = np.flatnonzero(at_least)
    return int(hits[-1]) + 1 if len(hits) else 0


def estimate_analysis_cost(num_nodes: int, num_edges: int) -> float:
    """Heuristic analysis cost of a block, for dispatch ordering.

    Moon–Moser bounds the clique count by ``3^(n/3)``, but within one
    decomposition the blocks share the size cap ``m``, so what separates
    cheap blocks from expensive ones is density; the estimate scales the
    node count by an exponential in the largest clique the edge count
    can support — ``k(k-1)/2 ≤ e`` gives ``k = (1 + sqrt(1 + 8e)) / 2``
    — capped at ``n``.  Only the ordering matters (LPT dispatch and the
    split threshold feed costly blocks to workers first), so constant
    factors are irrelevant; what the schedulers rely on is that the
    estimate is non-negative, monotone non-decreasing in both node and
    edge count, and computable in O(1) from counts the block graph
    already maintains.  (The earlier ``n * 3^(avg_degree/3)`` form was
    *not* monotone in ``n``: adding an isolated node to a dense block
    lowered its estimate.)

    Blocks large and dense enough that the exponential exceeds float
    range saturate to ``inf`` instead of raising ``OverflowError`` —
    the magnitude check runs in log-space, so the estimate stays
    monotone across the saturation boundary (everything past it is the
    shared ``inf`` plateau, and LPT sorts it first either way).
    """
    if num_nodes <= 0:
        return 0.0
    clique_bound = 0.5 * (1.0 + math.sqrt(1.0 + 8.0 * max(num_edges, 0)))
    exponent = min(float(num_nodes), clique_bound)
    # log of the estimate; float max is exp(709.78...), saturate with a
    # safety margin so the pow below can never overflow.
    log_cost = math.log(num_nodes) + (exponent / 3.0) * math.log(3.0)
    if log_cost >= 700.0:
        return float("inf")
    return num_nodes * 3.0 ** (exponent / 3.0)


def adaptive_batch_cutoff(block_sizes: "list[int]", floor: int = 64) -> int:
    """Node-count cutoff below which blocks join a batched bucket.

    Batched multi-block dispatch amortizes numpy call overhead across
    many *small* blocks; big blocks already amortize it internally (and
    are the ones split/steal handles).  The cutoff is the batch's median
    block size rounded up to the next multiple of 8 (the bucket padding
    quantum), floored at ``floor`` so the common regime — thousands of
    tiny blocks next to a handful of large ones — batches everything
    that fits in one ``uint64`` word row.  Returns ``floor`` for an
    empty batch.
    """
    if not block_sizes:
        return floor
    ordered = sorted(block_sizes)
    median = ordered[len(ordered) // 2]
    padded = ((median + 7) // 8) * 8
    return max(floor, padded)


def adaptive_split_threshold(costs: "list[float]", num_workers: int) -> float:
    """Cost above which a block is worth splitting into anchor subtasks.

    Derived from the batch's own cost distribution, not a hardcoded
    constant: a block is a straggler when its estimated cost exceeds the
    batch's *fair share* (total cost / workers) — by definition such a
    block makes its worker the makespan even under a perfect assignment
    of everything else.  On batches with more blocks than workers the
    threshold is additionally floored at twice the median positive cost
    so that a near-uniform batch (where every block sits close to the
    fair share) is not shredded into subtasks for no makespan win.

    Returns ``inf`` (never split) for serial execution or an
    empty/zero-cost batch.
    """
    if num_workers <= 1:
        return float("inf")
    positive = sorted(cost for cost in costs if cost > 0.0)
    if not positive:
        return float("inf")
    fair_share = sum(positive) / num_workers
    if len(positive) < num_workers:
        # Fewer tasks than workers: splitting is the only parallelism.
        return fair_share
    typical = positive[len(positive) // 2]
    return max(fair_share, 2.0 * typical)

"""Harvesting selector training rows from real execution traces.

The paper fits its Section-4 decision tree once, on whole-graph timings
of a 50-graph corpus (Table 1).  This module closes the loop at the
granularity the selector actually operates on — *blocks*: every
enumeration already measures ``(block features, chosen combo, wall
time)`` per block, and those measurements are a free training corpus.

Three row sources feed the autotuner (``repro tune``):

* **live rows** — what the run actually did, read from collected
  :class:`~repro.core.block_analysis.BlockReport` lists, from an
  :class:`~repro.mce.instrumentation.ExecutionTrace` (every dispatch
  path records the chosen combo and feature vector in its
  :class:`~repro.mce.instrumentation.BlockTiming`), or replayed from a
  spill directory's segment files without re-running anything;
* **counterfactual rows** — the Table-1 labelling done per block: a
  sampled subset of the workload's blocks is re-analysed under *every*
  combination in the registry, so the learner sees what each block
  would have cost under the roads not taken;
* :func:`harvest_workload` — the one-call combination: enumerate once
  for live rows, then counterfactually relabel a sample of blocks.

Rows are deliberately dumb records; grouping rows into per-block
``(features → argmin combo)`` training samples is the job of
:func:`repro.decision.training.train_from_rows`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path

from repro.decision.features import FEATURE_NAMES, BlockFeatures
from repro.errors import TrainingError
from repro.graph.adjacency import Graph
from repro.mce.instrumentation import ExecutionTrace
from repro.mce.registry import ALL_COMBOS, Combo

# extra-dict flags worth keeping on a row: the dispatch knobs in effect
# when the measurement was taken (a batched measurement of a block is
# not interchangeable with a whole-block one).
_KNOB_FLAGS = ("batched", "split", "replayed", "retried")


@dataclass(frozen=True)
class TrainingRow:
    """One (features, combo, measured seconds) observation of one block.

    ``source`` is ``"live"`` (the run's own measurement), ``"replayed"``
    (recovered from a spill segment), or ``"counterfactual"`` (a forced
    re-run under a combo the selector did not pick).  ``knobs`` lists
    the dispatch flags in effect (``batched``/``split``/...), so a
    trainer can separate fused-bucket timings from whole-block ones.
    ``level``/``block_id`` identify the block within its run — rows
    sharing both describe the *same* block under different combos,
    which is what argmin labelling groups on.
    """

    features: BlockFeatures
    combo: str
    seconds: float
    source: str = "live"
    level: int = 0
    block_id: int = -1
    knobs: tuple[str, ...] = ()

    def vector(self) -> tuple[float, ...]:
        """The row's feature vector in :data:`FEATURE_NAMES` order."""
        return self.features.vector()


def _knobs_of(extra: dict) -> tuple[str, ...]:
    return tuple(flag for flag in _KNOB_FLAGS if extra.get(flag))


def rows_from_reports(
    reports, level: int = 0, source: str = "live"
) -> list[TrainingRow]:
    """One live row per :class:`BlockReport`, in block order."""
    rows: list[TrainingRow] = []
    for block_id, report in enumerate(reports):
        rows.append(
            TrainingRow(
                features=report.features,
                combo=report.combo.name,
                seconds=report.seconds,
                source="replayed" if report.extra.get("replayed") else source,
                level=level,
                block_id=block_id,
                knobs=_knobs_of(report.extra),
            )
        )
    return rows


def rows_from_result(result) -> list[TrainingRow]:
    """Live rows from a ``find_max_cliques(collect_reports=True)`` result.

    Raises
    ------
    TrainingError
        When the result carries no reports (run without
        ``collect_reports=True``).
    """
    if not result.block_reports:
        raise TrainingError(
            "result carries no block reports; run find_max_cliques with "
            "collect_reports=True to harvest from it"
        )
    rows: list[TrainingRow] = []
    for level, reports in enumerate(result.block_reports):
        rows.extend(rows_from_reports(reports, level=level))
    return rows


def rows_from_trace(trace: ExecutionTrace, level: int = 0) -> list[TrainingRow]:
    """Live rows from an executor's :class:`ExecutionTrace`.

    Every dispatch path (whole, split, batched, pipeline) records the
    chosen combo and feature vector in its block timings; records
    predating those fields (or replayed with zero measured time) are
    skipped rather than fabricated.
    """
    rows: list[TrainingRow] = []
    for timing in trace.timings:
        if not timing.combo or len(timing.features) != len(FEATURE_NAMES):
            continue
        if timing.replayed and timing.seconds == 0.0:
            continue
        rows.append(
            TrainingRow(
                features=BlockFeatures(
                    num_nodes=int(timing.features[0]),
                    num_edges=int(timing.features[1]),
                    density=timing.features[2],
                    degeneracy=int(timing.features[3]),
                    d_star=int(timing.features[4]),
                ),
                combo=timing.combo,
                seconds=timing.seconds,
                source="live",
                level=level,
                block_id=timing.block_id,
                knobs=("retried",) if timing.retried else (),
            )
        )
    return rows


def rows_from_run_dir(spill_dir: str | Path) -> list[TrainingRow]:
    """Replay a spill directory's segments into rows, re-running nothing.

    Reads every ``*.seg`` file with the torn-tail-tolerant recovery
    reader, so a crashed run's partial progress still harvests.  The
    stored reports carry their combo, features, and measured seconds —
    the time the block cost when it actually ran, not the (free) replay.

    Raises
    ------
    TrainingError
        When the directory holds no segment files at all.
    CorruptSegmentError
        On mid-file corruption (a torn tail is truncated, not an error).
    """
    from repro.runs.runlog import SEGMENT_SUFFIX
    from repro.runs.segments import decode_block_record, recover_segment

    directory = Path(spill_dir)
    paths = sorted(directory.glob(f"*{SEGMENT_SUFFIX}"))
    if not paths:
        raise TrainingError(f"no spill segments in {directory}")
    rows: list[TrainingRow] = []
    for path in paths:
        payloads, _ = recover_segment(path)
        for payload in payloads:
            level, block_id, report = decode_block_record(payload)
            rows.append(
                TrainingRow(
                    features=report.features,
                    combo=report.combo.name,
                    seconds=report.seconds,
                    source="replayed",
                    level=level,
                    block_id=block_id,
                    knobs=_knobs_of(report.extra),
                )
            )
    return rows


def counterfactual_rows(
    blocks: "list[tuple[int, int, object]]",
    combos: tuple[Combo, ...] = ALL_COMBOS,
    repeats: int = 1,
) -> list[TrainingRow]:
    """Re-run each ``(level, block_id, block)`` under every combo.

    The paper's Table-1 labelling, done per block: every combination is
    timed on the same block (best of ``repeats``), so downstream
    argmin labelling knows the block's true winner rather than only the
    cost of whatever the current selector picked.  As a safety net the
    clique sets of all combos are compared — a combo that disagrees is
    a correctness bug, and silently training on its timing would be
    worse than crashing.

    Raises
    ------
    TrainingError
        On an empty combo tuple, a non-positive ``repeats``, or a
        clique-set disagreement between combos.
    """
    from repro.core.block_analysis import analyze_block

    if not combos:
        raise TrainingError("no combinations to compare")
    if repeats < 1:
        raise TrainingError("repeats must be at least 1")
    rows: list[TrainingRow] = []
    for level, block_id, block in blocks:
        reference: set | None = None
        for combo in combos:
            best = float("inf")
            for _ in range(repeats):
                report = analyze_block(block, combo=combo)
                best = min(best, report.seconds)
            cliques = {frozenset(clique) for clique in report.cliques}
            if reference is None:
                reference = cliques
            elif cliques != reference:
                raise TrainingError(
                    f"combo {combo.name} disagrees on block "
                    f"{level}.{block_id}: {len(cliques)} cliques vs "
                    f"{len(reference)} from {combos[0].name}"
                )
            rows.append(
                TrainingRow(
                    features=report.features,
                    combo=combo.name,
                    seconds=best,
                    source="counterfactual",
                    level=level,
                    block_id=block_id,
                )
            )
    return rows


def workload_blocks(
    graph: Graph, m: int, min_adjacency: int = 1
) -> "list[tuple[int, int, object]]":
    """Every ``(level, block_id, block)`` the decomposition would run.

    Mirrors the driver's barrier loop (CUT → BLOCKS → recurse on hubs)
    without analysing anything, so the counterfactual sampler can put
    its hands on the actual :class:`~repro.core.blocks.Block` objects a
    run of ``find_max_cliques(graph, m)`` dispatches.  A level with no
    feasible node ends the walk (the driver's exact-fallback regime has
    no blocks to harvest).
    """
    from repro.core.blocks import build_blocks
    from repro.core.feasibility import cut
    from repro.graph.views import induced_subgraph

    out: list[tuple[int, int, object]] = []
    current = graph
    level = 0
    while current.num_nodes > 0:
        feasible, hubs = cut(current, m)
        if not feasible:
            break
        blocks = build_blocks(current, feasible, m, min_adjacency=min_adjacency)
        for block_id, block in enumerate(blocks):
            out.append((level, block_id, block))
        current = induced_subgraph(current, hubs)
        level += 1
    return out


def sample_blocks(
    blocks: "list[tuple[int, int, object]]",
    sample: int,
    seed: int = 0,
) -> "list[tuple[int, int, object]]":
    """A deterministic sample of blocks, biased toward the expensive end.

    Half the budget goes to the costliest blocks (by the features-based
    estimate — they dominate total analysis time, so their labels
    matter most), the rest to a uniform draw over the remainder so
    small-block regimes stay represented.
    """
    if sample <= 0 or sample >= len(blocks):
        return list(blocks)
    by_cost = sorted(
        blocks,
        key=lambda item: BlockFeatures.of(item[2].graph).estimated_cost(),
        reverse=True,
    )
    top = by_cost[: max(1, sample // 2)]
    rest = by_cost[len(top):]
    rng = random.Random(seed)
    fill = rng.sample(rest, min(sample - len(top), len(rest)))
    chosen = top + fill
    chosen.sort(key=lambda item: (item[0], item[1]))
    return chosen


@dataclass
class Harvest:
    """Outcome of :func:`harvest_workload`: the rows plus provenance."""

    rows: list[TrainingRow] = field(default_factory=list)
    blocks_total: int = 0
    blocks_sampled: int = 0

    @property
    def live_rows(self) -> int:
        return sum(1 for row in self.rows if row.source == "live")

    @property
    def counterfactual_rows(self) -> int:
        return sum(1 for row in self.rows if row.source == "counterfactual")


def harvest_workload(
    graph: Graph,
    m: int,
    combos: tuple[Combo, ...] = ALL_COMBOS,
    sample: int = 16,
    repeats: int = 1,
    seed: int = 0,
    min_adjacency: int = 1,
) -> Harvest:
    """Enumerate once for live rows, then counterfactually label a sample.

    The live pass runs the serial driver with ``collect_reports=True``
    (every block's chosen combo and measured time); the counterfactual
    pass re-runs ``sample`` blocks — picked by :func:`sample_blocks` —
    under every combo in ``combos``.  ``sample <= 0`` relabels *every*
    block (the full Table-1 treatment; expensive but exhaustive).
    """
    from repro.core.driver import find_max_cliques

    result = find_max_cliques(graph, m, collect_reports=True,
                              min_adjacency=min_adjacency)
    rows = rows_from_result(result)
    blocks = workload_blocks(graph, m, min_adjacency=min_adjacency)
    chosen = sample_blocks(blocks, sample, seed=seed) if blocks else []
    rows.extend(counterfactual_rows(chosen, combos=combos, repeats=repeats))
    return Harvest(
        rows=rows,
        blocks_total=len(blocks),
        blocks_sampled=len(chosen),
    )

"""The published decision tree of Figure 3, verbatim.

The figure's tree selects one of four (structure/algorithm) combinations
from two block parameters:

.. code-block:: text

    degeneracy > 25?
      false: [Lists/XPivot]
      true:  #nodes < 8558?
        false: [Matrix/XPivot]
        true:  degeneracy > 52?
          true:  [BitSets/Tomita]
          false: [Matrix/BKPivot]

The extracted figure text is ambiguous about which child hangs off which
edge; this reconstruction (documented in DESIGN.md §2) keeps all four
leaf combinations and both published thresholds, and routes sparse blocks
to the list-based XPivot and very dense small blocks to BitSets/Tomita,
consistent with the prose ("if the block is sparse, we find the maximal
cliques with the algorithm in [17], while if the block is dense we adopt
the algorithm described in [34]").

Because the tree predates any local training run, it gives the library a
deterministic default selector; :func:`repro.decision.training.train`
learns a fresh tree from local timings when preferred.

:func:`extended_tree` is the representation-aware variant: same shape
and thresholds as Figure 3, but the dense leaves select the packed
``bitmatrix`` structure (this reproduction's fourth representation,
absent from the paper) whose word-parallel kernel dominates
``bitsets``/``matrix`` exactly where those leaves fire.
"""

from __future__ import annotations

from repro.decision.features import BlockFeatures
from repro.decision.tree import DecisionTree, Leaf, Split
from repro.mce.registry import ALGORITHM_NAMES, Combo
from repro.mce.backends import BACKEND_NAMES

# Combo display names used as tree labels, in the paper's notation.
LISTS_XPIVOT = Combo("xpivot", "lists").name
MATRIX_XPIVOT = Combo("xpivot", "matrix").name
BITSETS_TOMITA = Combo("tomita", "bitsets").name
MATRIX_BKPIVOT = Combo("bkpivot", "matrix").name
BITMATRIX_TOMITA = Combo("tomita", "bitmatrix").name
BITMATRIX_XPIVOT = Combo("xpivot", "bitmatrix").name
BITMATRIX_BKPIVOT = Combo("bkpivot", "bitmatrix").name

_LABEL_TO_COMBO: dict[str, Combo] = {
    Combo(algorithm, backend).name: Combo(algorithm, backend)
    for algorithm in ALGORITHM_NAMES
    for backend in BACKEND_NAMES
}


def paper_tree() -> DecisionTree:
    """Return the Figure 3 tree as a :class:`DecisionTree`."""
    return Split(
        feature="degeneracy",
        threshold=25,
        if_true=Split(
            # Figure 3 tests "#nodes < 8558"; expressed here as the
            # complementary "> 8557.5" test with swapped branches so that
            # exactly the integer node counts below 8558 take the false
            # branch.
            feature="num_nodes",
            threshold=8557.5,
            if_true=Leaf(MATRIX_XPIVOT),
            if_false=Split(
                feature="degeneracy",
                threshold=52,
                if_true=Leaf(BITSETS_TOMITA),
                if_false=Leaf(MATRIX_BKPIVOT),
            ),
        ),
        if_false=Leaf(LISTS_XPIVOT),
    )


def extended_tree() -> DecisionTree:
    """Return the Figure 3 tree rewired onto the packed-bitmap backend.

    The paper's thresholds are kept verbatim — they classify block
    *shape*, which has not changed — but every leaf that chose a dense
    quadratic structure (``bitsets`` or ``matrix``) now selects
    ``bitmatrix``: the same memory regime (8× smaller than ``matrix``,
    see :func:`repro.mce.memory.estimate_backend_bytes`) with
    word-parallel set algebra and vectorized pivots.  Sparse blocks
    still route to ``[Lists/XPivot]``, where adjacency lists beat any
    quadratic representation.  Not used by default — callers opt in via
    ``analyze_block(..., tree=extended_tree())`` or the driver/executor
    ``tree`` parameter — so paper-faithful runs stay bit-identical.
    """
    return Split(
        feature="degeneracy",
        threshold=25,
        if_true=Split(
            feature="num_nodes",
            threshold=8557.5,
            if_true=Leaf(BITMATRIX_XPIVOT),
            if_false=Split(
                feature="degeneracy",
                threshold=52,
                if_true=Leaf(BITMATRIX_TOMITA),
                if_false=Leaf(BITMATRIX_BKPIVOT),
            ),
        ),
        if_false=Leaf(LISTS_XPIVOT),
    )


def combo_for_label(label: str) -> Combo:
    """Translate a tree leaf label like ``[Lists/XPivot]`` to a combo.

    Raises
    ------
    KeyError
        If ``label`` is not a known combination name.
    """
    try:
        return _LABEL_TO_COMBO[label]
    except KeyError:
        known = ", ".join(sorted(_LABEL_TO_COMBO))
        raise KeyError(f"unknown combo label {label!r}; known: {known}") from None


def select_combo(tree: DecisionTree, features: BlockFeatures) -> Combo:
    """Run ``features`` through ``tree`` and return the selected combo."""
    return combo_for_label(tree.predict(features))

"""Decision-tree (de)serialisation.

A trained selector is an asset: the paper trains once on a 50-graph
corpus and then reuses the tree for every block of every data set.
This module round-trips trees through a plain JSON document so a
training run can be saved next to the deployment that uses it.

Since the autotuner (``repro tune``, :mod:`repro.decision.harvest`)
made trees long-lived artifacts, the on-disk payload is an explicitly
versioned envelope::

    {"version": 1,
     "root": {"kind": "split", ...},
     "metadata": {"corpus_fingerprint": "...", ...}}

``metadata`` is free-form provenance — the autotuner records the
training-corpus fingerprint, row counts, and win counts there so a
deployed tree can always be traced back to the measurements that
produced it.  Bare node dictionaries (the pre-versioning format) are
still accepted on read, so trees saved by older builds keep loading;
anything claiming an unknown ``version`` is refused with a clear
``ValueError`` instead of failing deep inside ``predict``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.decision.tree import DecisionTree, Leaf, Split
from repro.errors import FormatError, TrainingError

# Version of the envelope written by tree_to_dict/save_tree.  Bump when
# the payload shape changes; tree_from_dict must keep reading every
# older version (or refuse with a message naming the supported ones).
TREE_SCHEMA_VERSION = 1

# Environment override for the deployed tuned-tree location; "auto"
# tree resolution checks this before the home-directory default.
TUNED_TREE_ENV = "REPRO_TUNED_TREE"


def tree_to_dict(tree: DecisionTree, metadata: dict | None = None) -> dict:
    """Encode a tree (plus optional provenance) as a versioned envelope."""
    payload: dict = {
        "version": TREE_SCHEMA_VERSION,
        "root": _node_to_dict(tree),
    }
    if metadata:
        payload["metadata"] = dict(metadata)
    return payload


def _node_to_dict(tree: DecisionTree) -> dict:
    """Encode one node as nested plain dictionaries."""
    if isinstance(tree, Leaf):
        return {"kind": "leaf", "label": tree.label}
    return {
        "kind": "split",
        "feature": tree.feature,
        "threshold": tree.threshold,
        "if_true": _node_to_dict(tree.if_true),
        "if_false": _node_to_dict(tree.if_false),
    }


def tree_from_dict(payload: dict) -> DecisionTree:
    """Decode a tree encoded by :func:`tree_to_dict`.

    Accepts both the versioned envelope and a bare node dictionary
    (the pre-versioning format, treated as an implicit version-1 root).

    Raises
    ------
    ValueError
        On an envelope whose ``version`` this build does not read.
        (Raised as :class:`FormatError`, which subclasses both
        :class:`ReproError` and :class:`ValueError`.)
    FormatError
        On malformed payloads (unknown kind, missing fields, or an
        unknown feature name — the latter surfaces the underlying
        :class:`TrainingError` message).
    """
    if not isinstance(payload, dict):
        raise FormatError(f"expected an object, got {type(payload).__name__}")
    if "version" in payload or "root" in payload:
        version = payload.get("version")
        if version != TREE_SCHEMA_VERSION:
            raise FormatError(
                f"unsupported tree schema version {version!r}; this build "
                f"reads version {TREE_SCHEMA_VERSION} (and legacy bare "
                "node payloads)"
            )
        root = payload.get("root")
        if root is None:
            raise FormatError("versioned payload without a 'root' node")
        return _node_from_dict(root)
    return _node_from_dict(payload)


def tree_metadata(payload: dict) -> dict:
    """Return the envelope's ``metadata`` block ({} for legacy payloads)."""
    if not isinstance(payload, dict):
        raise FormatError(f"expected an object, got {type(payload).__name__}")
    metadata = payload.get("metadata", {})
    if not isinstance(metadata, dict):
        raise FormatError("metadata must be an object")
    return metadata


def _node_from_dict(payload: dict) -> DecisionTree:
    """Decode one node encoded by :func:`_node_to_dict`."""
    if not isinstance(payload, dict):
        raise FormatError(f"expected an object, got {type(payload).__name__}")
    kind = payload.get("kind")
    if kind == "leaf":
        label = payload.get("label")
        if not isinstance(label, str):
            raise FormatError("leaf without a string label")
        return Leaf(label)
    if kind == "split":
        try:
            return Split(
                feature=payload["feature"],
                threshold=float(payload["threshold"]),
                if_true=_node_from_dict(payload["if_true"]),
                if_false=_node_from_dict(payload["if_false"]),
            )
        except KeyError as exc:
            raise FormatError(f"split missing field {exc}") from exc
        except (TypeError, ValueError, TrainingError) as exc:
            raise FormatError(f"malformed split: {exc}") from exc
    raise FormatError(f"unknown node kind {kind!r}")


def save_tree(
    tree: DecisionTree,
    destination: str | Path,
    metadata: dict | None = None,
) -> None:
    """Write ``tree`` to ``destination`` as an indented JSON envelope."""
    destination = Path(destination)
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(
        json.dumps(tree_to_dict(tree, metadata=metadata), indent=2) + "\n"
    )


def load_tree(source: str | Path) -> DecisionTree:
    """Read a tree written by :func:`save_tree`.

    Raises
    ------
    FormatError
        On invalid JSON or payload shape (including an unsupported
        schema version).
    """
    tree, _ = load_tree_with_metadata(source)
    return tree


def load_tree_with_metadata(source: str | Path) -> tuple[DecisionTree, dict]:
    """Read a tree and its provenance metadata ({} for legacy payloads).

    Raises
    ------
    FormatError
        On invalid JSON or payload shape.
    """
    try:
        payload = json.loads(Path(source).read_text())
    except json.JSONDecodeError as exc:
        raise FormatError(f"invalid JSON in {source}: {exc}") from exc
    return tree_from_dict(payload), tree_metadata(payload)


def default_tree_path() -> Path:
    """Where ``repro tune`` installs the deployed tree by default.

    ``$REPRO_TUNED_TREE`` overrides the ``~/.repro/tuned_tree.json``
    convention (tests and multi-corpus deployments point it elsewhere).
    """
    override = os.environ.get(TUNED_TREE_ENV)
    if override:
        return Path(override)
    return Path.home() / ".repro" / "tuned_tree.json"


def load_default_tree() -> DecisionTree | None:
    """The deployed tuned tree, or ``None`` when none is installed."""
    path = default_tree_path()
    if not path.exists():
        return None
    return load_tree(path)


def resolve_tree(
    spec: "DecisionTree | str | None",
) -> DecisionTree | None:
    """Turn a tree specification into a tree (or ``None`` for the default).

    ``None`` and actual trees pass through.  Strings resolve as:

    * ``"paper"`` — the published Figure 3 tree;
    * ``"extended"`` — the bitmatrix-aware variant;
    * ``"auto"`` — the deployed tuned tree (:func:`default_tree_path`)
      when one is installed, otherwise ``None`` so callers fall back to
      the paper tree;
    * anything else — a path to a JSON tree file.

    Raises
    ------
    FormatError
        When a path resolves to an unreadable or malformed payload.
    """
    if spec is None or isinstance(spec, (Leaf, Split)):
        return spec
    if spec == "paper":
        from repro.decision.paper_tree import paper_tree

        return paper_tree()
    if spec == "extended":
        from repro.decision.paper_tree import extended_tree

        return extended_tree()
    if spec == "auto":
        return load_default_tree()
    try:
        return load_tree(spec)
    except OSError as exc:
        raise FormatError(f"cannot read tree file {spec!r}: {exc}") from exc

"""Decision-tree (de)serialisation.

A trained selector is an asset: the paper trains once on a 50-graph
corpus and then reuses the tree for every block of every data set.
This module round-trips trees through a plain JSON document so a
training run can be saved next to the deployment that uses it.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.decision.tree import DecisionTree, Leaf, Split
from repro.errors import FormatError, TrainingError


def tree_to_dict(tree: DecisionTree) -> dict:
    """Encode a tree as nested plain dictionaries."""
    if isinstance(tree, Leaf):
        return {"kind": "leaf", "label": tree.label}
    return {
        "kind": "split",
        "feature": tree.feature,
        "threshold": tree.threshold,
        "if_true": tree_to_dict(tree.if_true),
        "if_false": tree_to_dict(tree.if_false),
    }


def tree_from_dict(payload: dict) -> DecisionTree:
    """Decode a tree encoded by :func:`tree_to_dict`.

    Raises
    ------
    FormatError
        On malformed payloads (unknown kind, missing fields, or an
        unknown feature name — the latter surfaces the underlying
        :class:`TrainingError` message).
    """
    if not isinstance(payload, dict):
        raise FormatError(f"expected an object, got {type(payload).__name__}")
    kind = payload.get("kind")
    if kind == "leaf":
        label = payload.get("label")
        if not isinstance(label, str):
            raise FormatError("leaf without a string label")
        return Leaf(label)
    if kind == "split":
        try:
            return Split(
                feature=payload["feature"],
                threshold=float(payload["threshold"]),
                if_true=tree_from_dict(payload["if_true"]),
                if_false=tree_from_dict(payload["if_false"]),
            )
        except KeyError as exc:
            raise FormatError(f"split missing field {exc}") from exc
        except (TypeError, ValueError, TrainingError) as exc:
            raise FormatError(f"malformed split: {exc}") from exc
    raise FormatError(f"unknown node kind {kind!r}")


def save_tree(tree: DecisionTree, destination: str | Path) -> None:
    """Write ``tree`` to ``destination`` as indented JSON."""
    Path(destination).write_text(json.dumps(tree_to_dict(tree), indent=2) + "\n")


def load_tree(source: str | Path) -> DecisionTree:
    """Read a tree written by :func:`save_tree`.

    Raises
    ------
    FormatError
        On invalid JSON or payload shape.
    """
    try:
        payload = json.loads(Path(source).read_text())
    except json.JSONDecodeError as exc:
        raise FormatError(f"invalid JSON in {source}: {exc}") from exc
    return tree_from_dict(payload)

"""Training harness for the best-fit decision tree (Section 4).

The paper "measured the performance of each combination of
data-structure/algorithm on a collection of heterogeneous graphs" —
50 graphs from the Erdős–Rényi, Barabási–Albert and Watts–Strogatz models
plus SNAP data — then "divided the graph collection in training and
testing set with an 80/20 ratio" and fed the training split to a
recursive-partitioning learner.  This module rebuilds that pipeline:

* :func:`build_corpus` — a heterogeneous seeded graph collection;
* :func:`label_corpus` — time every combination on every graph and label
  each graph with its fastest combo (Table 1's win counts fall out);
* :func:`train` — fit a tree on the 80% split and report test accuracy
  and total selection time versus fixed combos (Figure 4).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.decision.features import BlockFeatures
from repro.decision.tree import DecisionTree, accuracy, fit_tree
from repro.errors import TrainingError
from repro.graph.adjacency import Graph
from repro.graph.generators import (
    barabasi_albert,
    erdos_renyi,
    social_network,
    watts_strogatz,
)
from repro.mce.registry import ALL_COMBOS, Combo, time_combo


@dataclass(frozen=True)
class LabelledGraph:
    """One corpus entry: graph, features, per-combo timings, best combo."""

    name: str
    graph: Graph
    features: BlockFeatures
    timings: dict[str, float]
    best: str


@dataclass
class TrainingResult:
    """Output of :func:`train`: tree, splits, and evaluation numbers."""

    tree: DecisionTree
    training: list[LabelledGraph]
    testing: list[LabelledGraph]
    test_accuracy: float
    win_counts: dict[str, int] = field(default_factory=dict)

    def total_test_time(self, chooser: str | None = None) -> float:
        """Sum, over the test split, of the chosen combo's measured time.

        With ``chooser=None`` the tree picks per graph (the paper's
        "Decision Tree" bar of Figure 4); otherwise ``chooser`` names a
        fixed combination applied everywhere.
        """
        total = 0.0
        for entry in self.testing:
            label = (
                self.tree.predict(entry.features) if chooser is None else chooser
            )
            total += entry.timings[label]
        return total


def build_corpus(
    count: int = 50, seed: int = 7, size_range: tuple[int, int] = (40, 160)
) -> list[tuple[str, Graph]]:
    """Generate a heterogeneous corpus of ``count`` named graphs.

    Cycles through the three synthetic families of Section 4 plus the
    social-network stand-in family, with sizes and parameters drawn from
    ``size_range`` so the corpus spans sparse to dense blocks (the spread
    reported in Table 2).
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    low, high = size_range
    if not 10 <= low <= high:
        raise ValueError("size_range must satisfy 10 <= low <= high")
    rng = random.Random(seed)
    corpus: list[tuple[str, Graph]] = []
    for index in range(count):
        n = rng.randint(low, high)
        family = index % 4
        graph_seed = rng.randrange(2**31)
        if family == 0:
            p = rng.choice([0.05, 0.1, 0.2, 0.4, 0.6, 0.8])
            graph = erdos_renyi(n, p, seed=graph_seed)
            name = f"er-{index}-n{n}-p{p}"
        elif family == 1:
            m = rng.choice([2, 3, 5, 8])
            graph = barabasi_albert(max(n, m + 1), m, seed=graph_seed)
            name = f"ba-{index}-n{n}-m{m}"
        elif family == 2:
            k = rng.choice([4, 6, 10])
            beta = rng.choice([0.05, 0.2, 0.5])
            graph = watts_strogatz(max(n, k + 1), k, beta, seed=graph_seed)
            name = f"ws-{index}-n{n}-k{k}"
        else:
            attachment = rng.choice([2, 3, 4])
            clique = rng.choice([6, 9, 12])
            graph = social_network(
                max(n, attachment + 1),
                attachment=attachment,
                closure_probability=0.5,
                planted_cliques=(clique,),
                seed=graph_seed,
            )
            name = f"soc-{index}-n{n}-a{attachment}"
        corpus.append((name, graph))
    return corpus


def label_corpus(
    corpus: list[tuple[str, Graph]],
    combos: tuple[Combo, ...] = ALL_COMBOS,
    repeats: int = 1,
) -> list[LabelledGraph]:
    """Time every combo on every graph; label each graph with its winner."""
    if not combos:
        raise TrainingError("no combinations to compare")
    labelled: list[LabelledGraph] = []
    for name, graph in corpus:
        timings = {
            combo.name: time_combo(graph, combo, repeats=repeats)
            for combo in combos
        }
        best = min(timings, key=lambda label: (timings[label], label))
        labelled.append(
            LabelledGraph(
                name=name,
                graph=graph,
                features=BlockFeatures.of(graph),
                timings=timings,
                best=best,
            )
        )
    return labelled


def win_counts(labelled: list[LabelledGraph]) -> dict[str, int]:
    """Count, per combo, on how many graphs it was the fastest (Table 1)."""
    counts: dict[str, int] = {}
    for entry in labelled:
        counts[entry.best] = counts.get(entry.best, 0) + 1
    return counts


def train(
    labelled: list[LabelledGraph],
    train_fraction: float = 0.8,
    seed: int = 13,
    max_depth: int = 4,
    min_samples: int = 3,
) -> TrainingResult:
    """Fit a tree on a shuffled train/test split of a labelled corpus.

    Raises
    ------
    TrainingError
        If the split would leave either side empty.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be strictly between 0 and 1")
    entries = list(labelled)
    random.Random(seed).shuffle(entries)
    cut = round(len(entries) * train_fraction)
    training, testing = entries[:cut], entries[cut:]
    if not training or not testing:
        raise TrainingError(
            f"corpus of {len(entries)} graphs cannot be split "
            f"{train_fraction:.0%}/{1 - train_fraction:.0%}"
        )
    tree = fit_tree(
        [entry.features for entry in training],
        [entry.best for entry in training],
        max_depth=max_depth,
        min_samples=min_samples,
    )
    return TrainingResult(
        tree=tree,
        training=training,
        testing=testing,
        test_accuracy=accuracy(
            tree,
            [entry.features for entry in testing],
            [entry.best for entry in testing],
        ),
        win_counts=win_counts(entries),
    )


def selection_overhead(labelled: list[LabelledGraph], tree: DecisionTree) -> float:
    """Measure the wall-clock cost of tree predictions alone (negligible).

    The paper's argument requires the selector itself to be cheap relative
    to enumeration; benchmarks report this number alongside Figure 4.
    """
    start = time.perf_counter()
    for entry in labelled:
        tree.predict(entry.features)
    return time.perf_counter() - start

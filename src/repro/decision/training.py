"""Training harness for the best-fit decision tree (Section 4).

The paper "measured the performance of each combination of
data-structure/algorithm on a collection of heterogeneous graphs" —
50 graphs from the Erdős–Rényi, Barabási–Albert and Watts–Strogatz models
plus SNAP data — then "divided the graph collection in training and
testing set with an 80/20 ratio" and fed the training split to a
recursive-partitioning learner.  This module rebuilds that pipeline:

* :func:`build_corpus` — a heterogeneous seeded graph collection;
* :func:`label_corpus` — time every combination on every graph and label
  each graph with its fastest combo (Table 1's win counts fall out);
* :func:`train` — fit a tree on the 80% split and report test accuracy
  and total selection time versus fixed combos (Figure 4).
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass, field

from repro.decision.features import BlockFeatures
from repro.decision.tree import (
    DecisionTree,
    accuracy,
    fit_tree,
    num_leaves,
    prune_tree,
)
from repro.errors import TrainingError
from repro.graph.adjacency import Graph
from repro.graph.generators import (
    barabasi_albert,
    erdos_renyi,
    social_network,
    watts_strogatz,
)
from repro.mce.registry import ALL_COMBOS, Combo, time_combo


@dataclass(frozen=True)
class LabelledGraph:
    """One corpus entry: graph, features, per-combo timings, best combo."""

    name: str
    graph: Graph
    features: BlockFeatures
    timings: dict[str, float]
    best: str


@dataclass
class TrainingResult:
    """Output of :func:`train`: tree, splits, and evaluation numbers."""

    tree: DecisionTree
    training: list[LabelledGraph]
    testing: list[LabelledGraph]
    test_accuracy: float
    win_counts: dict[str, int] = field(default_factory=dict)

    def total_test_time(self, chooser: str | None = None) -> float:
        """Sum, over the test split, of the chosen combo's measured time.

        With ``chooser=None`` the tree picks per graph (the paper's
        "Decision Tree" bar of Figure 4); otherwise ``chooser`` names a
        fixed combination applied everywhere.
        """
        total = 0.0
        for entry in self.testing:
            label = (
                self.tree.predict(entry.features) if chooser is None else chooser
            )
            total += entry.timings[label]
        return total


def build_corpus(
    count: int = 50, seed: int = 7, size_range: tuple[int, int] = (40, 160)
) -> list[tuple[str, Graph]]:
    """Generate a heterogeneous corpus of ``count`` named graphs.

    Cycles through the three synthetic families of Section 4 plus the
    social-network stand-in family, with sizes and parameters drawn from
    ``size_range`` so the corpus spans sparse to dense blocks (the spread
    reported in Table 2).
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    low, high = size_range
    if not 10 <= low <= high:
        raise ValueError("size_range must satisfy 10 <= low <= high")
    rng = random.Random(seed)
    corpus: list[tuple[str, Graph]] = []
    for index in range(count):
        n = rng.randint(low, high)
        family = index % 4
        graph_seed = rng.randrange(2**31)
        if family == 0:
            p = rng.choice([0.05, 0.1, 0.2, 0.4, 0.6, 0.8])
            graph = erdos_renyi(n, p, seed=graph_seed)
            name = f"er-{index}-n{n}-p{p}"
        elif family == 1:
            m = rng.choice([2, 3, 5, 8])
            graph = barabasi_albert(max(n, m + 1), m, seed=graph_seed)
            name = f"ba-{index}-n{n}-m{m}"
        elif family == 2:
            k = rng.choice([4, 6, 10])
            beta = rng.choice([0.05, 0.2, 0.5])
            graph = watts_strogatz(max(n, k + 1), k, beta, seed=graph_seed)
            name = f"ws-{index}-n{n}-k{k}"
        else:
            attachment = rng.choice([2, 3, 4])
            clique = rng.choice([6, 9, 12])
            graph = social_network(
                max(n, attachment + 1),
                attachment=attachment,
                closure_probability=0.5,
                planted_cliques=(clique,),
                seed=graph_seed,
            )
            name = f"soc-{index}-n{n}-a{attachment}"
        corpus.append((name, graph))
    return corpus


def label_corpus(
    corpus: list[tuple[str, Graph]],
    combos: tuple[Combo, ...] = ALL_COMBOS,
    repeats: int = 1,
) -> list[LabelledGraph]:
    """Time every combo on every graph; label each graph with its winner."""
    if not combos:
        raise TrainingError("no combinations to compare")
    labelled: list[LabelledGraph] = []
    for name, graph in corpus:
        timings = {
            combo.name: time_combo(graph, combo, repeats=repeats)
            for combo in combos
        }
        best = min(timings, key=lambda label: (timings[label], label))
        labelled.append(
            LabelledGraph(
                name=name,
                graph=graph,
                features=BlockFeatures.of(graph),
                timings=timings,
                best=best,
            )
        )
    return labelled


def win_counts(labelled: list[LabelledGraph]) -> dict[str, int]:
    """Count, per combo, on how many graphs it was the fastest (Table 1)."""
    counts: dict[str, int] = {}
    for entry in labelled:
        counts[entry.best] = counts.get(entry.best, 0) + 1
    return counts


def train(
    labelled: list[LabelledGraph],
    train_fraction: float = 0.8,
    seed: int = 13,
    max_depth: int = 4,
    min_samples: int = 3,
) -> TrainingResult:
    """Fit a tree on a shuffled train/test split of a labelled corpus.

    Raises
    ------
    TrainingError
        If the split would leave either side empty.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be strictly between 0 and 1")
    entries = list(labelled)
    random.Random(seed).shuffle(entries)
    cut = round(len(entries) * train_fraction)
    training, testing = entries[:cut], entries[cut:]
    if not training or not testing:
        raise TrainingError(
            f"corpus of {len(entries)} graphs cannot be split "
            f"{train_fraction:.0%}/{1 - train_fraction:.0%}"
        )
    tree = fit_tree(
        [entry.features for entry in training],
        [entry.best for entry in training],
        max_depth=max_depth,
        min_samples=min_samples,
    )
    return TrainingResult(
        tree=tree,
        training=training,
        testing=testing,
        test_accuracy=accuracy(
            tree,
            [entry.features for entry in testing],
            [entry.best for entry in testing],
        ),
        win_counts=win_counts(entries),
    )


# ----------------------------------------------------------------------
# Trace-driven retraining (repro tune)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LabelledBlock:
    """One per-block training sample distilled from harvested rows.

    ``timings`` maps combo name → best measured seconds for this block
    (live and counterfactual rows merged, minimum per combo); ``best``
    is the argmin — the class the regression-to-argmin labelling
    assigns.  ``level``/``block_id`` keep the provenance.
    """

    features: BlockFeatures
    timings: dict[str, float]
    best: str
    level: int = 0
    block_id: int = -1

    def regret(self, label: str) -> float:
        """Seconds lost by predicting ``label`` instead of the argmin.

        Labels the block was never measured under cost the block's
        *worst* measured time (pessimistic, so an unmeasured prediction
        is never rewarded).
        """
        price = self.timings.get(label, max(self.timings.values()))
        return price - self.timings[self.best]


@dataclass
class TunedResult:
    """Output of :func:`train_from_rows`: the pruned tree + provenance."""

    tree: DecisionTree
    samples: list[LabelledBlock]
    win_counts: dict[str, int] = field(default_factory=dict)
    training_accuracy: float = 0.0
    fingerprint: str = ""
    unpruned_leaves: int = 0

    def total_time(self, chooser: str | None = None) -> float:
        """Sum over samples of the chosen combo's measured seconds.

        ``chooser=None`` lets the tree pick per block; a combo name
        applies that fixed combination everywhere.  Unmeasured picks
        price at the block's worst measured time.
        """
        total = 0.0
        for sample in self.samples:
            label = (
                self.tree.predict(sample.features)
                if chooser is None
                else chooser
            )
            total += sample.timings.get(label, max(sample.timings.values()))
        return total

    def total_regret(self) -> float:
        """Seconds the tree's picks lose versus per-block oracles."""
        return sum(
            sample.regret(self.tree.predict(sample.features))
            for sample in self.samples
        )


def label_rows(rows, min_combos: int = 2) -> list[LabelledBlock]:
    """Group harvested rows per block and label each with its argmin.

    Rows sharing ``(level, block_id)`` describe the same block under
    different combos (or repeated measurements — the minimum per combo
    wins).  Blocks measured under fewer than ``min_combos``
    combinations are dropped: a block only ever seen under the combo
    the current selector picked carries no signal about what *should*
    have run, and training on it would just teach the old tree back.

    Raises
    ------
    TrainingError
        When no block survives the ``min_combos`` filter.
    """
    grouped: dict[tuple[int, int], dict[str, float]] = {}
    features_of: dict[tuple[int, int], BlockFeatures] = {}
    for row in rows:
        key = (row.level, row.block_id)
        timings = grouped.setdefault(key, {})
        timings[row.combo] = min(
            timings.get(row.combo, float("inf")), row.seconds
        )
        features_of.setdefault(key, row.features)
    samples: list[LabelledBlock] = []
    for key in sorted(grouped):
        timings = grouped[key]
        if len(timings) < min_combos:
            continue
        best = min(timings, key=lambda label: (timings[label], label))
        samples.append(
            LabelledBlock(
                features=features_of[key],
                timings=dict(timings),
                best=best,
                level=key[0],
                block_id=key[1],
            )
        )
    if not samples:
        raise TrainingError(
            f"no block was measured under >= {min_combos} combinations; "
            "harvest counterfactual rows (repro tune does) before training"
        )
    return samples


def corpus_fingerprint(samples: list[LabelledBlock]) -> str:
    """A stable digest of the training corpus (features + timings).

    Persisted in the tree's metadata so a deployed selector can always
    be traced back to the measurements that produced it, and so a
    retrain on identical data is recognisable as such.  The per-sample
    lines are sorted before hashing, so the digest identifies the *set*
    of measurements — harvest order (which varies with dispatch
    interleaving) does not change it.
    """
    lines = []
    for sample in samples:
        timings = ";".join(
            f"{label}={sample.timings[label]:.9f}"
            for label in sorted(sample.timings)
        )
        lines.append(f"{sample.features.vector()!r}|{timings}")
    digest = hashlib.sha256()
    for line in sorted(lines):
        digest.update(line.encode())
    return digest.hexdigest()


def train_from_rows(
    rows,
    max_depth: int = 6,
    min_samples: int = 2,
    prune_alpha: float | None = None,
    min_combos: int = 2,
) -> TunedResult:
    """Fit and cost-complexity-prune a selector on harvested rows.

    The regression-to-argmin labelling of the tentpole: rows are grouped
    per block (:func:`label_rows`), the winning combo becomes the class,
    and a CART tree is fit on the winners — then pruned with per-block
    *regret seconds* as the cost so every surviving split demonstrably
    buys analysis time.  ``prune_alpha`` is the seconds-per-leaf price
    of tree complexity; ``None`` derives it as 0.2% of the corpus's
    oracle (all-argmin) time, which keeps trees shallow enough that
    ``selection_overhead`` stays far under the 1%-of-analysis budget.

    Raises
    ------
    TrainingError
        On an unusable row set (see :func:`label_rows`).
    """
    samples = label_rows(rows, min_combos=min_combos)
    features = [sample.features for sample in samples]
    labels = [sample.best for sample in samples]
    tree = fit_tree(
        features, labels, max_depth=max_depth, min_samples=min_samples
    )
    unpruned = num_leaves(tree)
    oracle_seconds = sum(s.timings[s.best] for s in samples)
    alpha = (
        prune_alpha if prune_alpha is not None else 0.002 * oracle_seconds
    )
    costs = [
        {label: s.timings[label] - s.timings[s.best] for label in s.timings}
        for s in samples
    ]
    tree = prune_tree(tree, features, costs, alpha=alpha)
    counts: dict[str, int] = {}
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
    return TunedResult(
        tree=tree,
        samples=samples,
        win_counts=counts,
        training_accuracy=accuracy(tree, features, labels),
        fingerprint=corpus_fingerprint(samples),
        unpruned_leaves=unpruned,
    )


def block_selection_overhead(
    samples: list[LabelledBlock], tree: DecisionTree
) -> float:
    """Wall-clock cost of the tree's predictions over all samples."""
    start = time.perf_counter()
    for sample in samples:
        tree.predict(sample.features)
    return time.perf_counter() - start


def selection_overhead(labelled: list[LabelledGraph], tree: DecisionTree) -> float:
    """Measure the wall-clock cost of tree predictions alone (negligible).

    The paper's argument requires the selector itself to be cheap relative
    to enumeration; benchmarks report this number alongside Figure 4.
    """
    start = time.perf_counter()
    for entry in labelled:
        tree.predict(entry.features)
    return time.perf_counter() - start

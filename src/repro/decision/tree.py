"""A CART-style classification tree for best-fit combo selection.

The paper trains its selector with "the recursive partitioning algorithm
in [32]" (rpart).  This module implements the same family: binary
threshold splits on the five block features, chosen greedily to minimise
Gini impurity, with standard stopping rules (max depth, minimum node
size, no informative split).  Trees are plain nested dataclasses so the
paper's published tree (Figure 3, :mod:`repro.decision.paper_tree`) can
be written literally, printed, serialised and traversed with the same
code as learned trees.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence, Union

from repro.decision.features import FEATURE_NAMES, BlockFeatures
from repro.errors import TrainingError


@dataclass(frozen=True)
class Leaf:
    """A terminal node predicting a single class label."""

    label: str

    def predict(self, features: BlockFeatures) -> str:
        """Return the predicted label (independent of ``features``)."""
        return self.label

    def depth(self) -> int:
        """Return 0; leaves have no children."""
        return 0

    def render(self, indent: int = 0) -> str:
        """Return a one-line textual rendering of the leaf."""
        return " " * indent + f"-> {self.label}"


@dataclass(frozen=True)
class Split:
    """An internal node testing ``feature > threshold``.

    ``if_true`` is followed when the block's feature value is strictly
    greater than the threshold, matching the reading of Figure 3
    ("degeneracy > 25").  "Less-than" tests from the figure
    ("#nodes < 8558") are expressed by swapping the branches around a
    ``> threshold`` test with the complementary threshold.
    """

    feature: str
    threshold: float
    if_true: "DecisionTree"
    if_false: "DecisionTree"

    def __post_init__(self) -> None:
        if self.feature not in FEATURE_NAMES:
            raise TrainingError(
                f"unknown split feature {self.feature!r}; "
                f"known: {', '.join(FEATURE_NAMES)}"
            )

    def predict(self, features: BlockFeatures) -> str:
        """Route ``features`` to a leaf and return its label."""
        branch = (
            self.if_true
            if features.value(self.feature) > self.threshold
            else self.if_false
        )
        return branch.predict(features)

    def depth(self) -> int:
        """Return the height of the subtree rooted here."""
        return 1 + max(self.if_true.depth(), self.if_false.depth())

    def render(self, indent: int = 0) -> str:
        """Return a multi-line textual rendering of the subtree."""
        pad = " " * indent
        lines = [
            pad + f"{self.feature} > {self.threshold:g}?",
            pad + "  true:",
            self.if_true.render(indent + 4),
            pad + "  false:",
            self.if_false.render(indent + 4),
        ]
        return "\n".join(lines)


DecisionTree = Union[Leaf, Split]


def gini(labels: Sequence[str]) -> float:
    """Return the Gini impurity of a label multiset (0 when pure)."""
    total = len(labels)
    if total == 0:
        return 0.0
    counts = Counter(labels)
    return 1.0 - sum((count / total) ** 2 for count in counts.values())


def majority_label(labels: Sequence[str]) -> str:
    """Return the most frequent label; ties break lexicographically."""
    counts = Counter(labels)
    best_count = max(counts.values())
    return min(label for label, count in counts.items() if count == best_count)


def fit_tree(
    samples: Sequence[BlockFeatures],
    labels: Sequence[str],
    max_depth: int = 5,
    min_samples: int = 4,
) -> DecisionTree:
    """Learn a classification tree from labelled block features.

    Parameters
    ----------
    samples, labels:
        Parallel sequences: the feature record of each training graph and
        the name of its best-performing (algorithm × backend) combo.
    max_depth:
        Maximum number of split levels.
    min_samples:
        Nodes with fewer samples become leaves.

    Raises
    ------
    TrainingError
        On an empty or length-mismatched training set.
    """
    if len(samples) != len(labels):
        raise TrainingError(
            f"{len(samples)} samples but {len(labels)} labels"
        )
    if not samples:
        raise TrainingError("training set is empty")
    return _grow(list(samples), list(labels), max_depth, min_samples)


def _grow(
    samples: list[BlockFeatures],
    labels: list[str],
    depth_left: int,
    min_samples: int,
) -> DecisionTree:
    """Recursive tree construction."""
    if depth_left == 0 or len(samples) < min_samples or gini(labels) == 0.0:
        return Leaf(majority_label(labels))
    best = _best_split(samples, labels)
    if best is None:
        return Leaf(majority_label(labels))
    feature, threshold = best
    true_idx = [
        i for i, s in enumerate(samples) if s.value(feature) > threshold
    ]
    false_idx = [
        i for i, s in enumerate(samples) if s.value(feature) <= threshold
    ]
    return Split(
        feature=feature,
        threshold=threshold,
        if_true=_grow(
            [samples[i] for i in true_idx],
            [labels[i] for i in true_idx],
            depth_left - 1,
            min_samples,
        ),
        if_false=_grow(
            [samples[i] for i in false_idx],
            [labels[i] for i in false_idx],
            depth_left - 1,
            min_samples,
        ),
    )


def _best_split(
    samples: list[BlockFeatures], labels: list[str]
) -> tuple[str, float] | None:
    """Return the (feature, threshold) with lowest weighted Gini, or None.

    Candidate thresholds are midpoints between consecutive distinct sorted
    feature values, the standard CART enumeration.  Returns ``None`` when
    no split improves on the parent impurity.
    """
    parent = gini(labels)
    total = len(labels)
    best: tuple[str, float] | None = None
    best_score = parent - 1e-12  # require strict improvement
    for feature in FEATURE_NAMES:
        values = sorted({s.value(feature) for s in samples})
        for low, high in zip(values, values[1:]):
            threshold = (low + high) / 2.0
            true_labels = [
                label
                for s, label in zip(samples, labels)
                if s.value(feature) > threshold
            ]
            false_labels = [
                label
                for s, label in zip(samples, labels)
                if s.value(feature) <= threshold
            ]
            if not true_labels or not false_labels:
                continue
            score = (
                len(true_labels) * gini(true_labels)
                + len(false_labels) * gini(false_labels)
            ) / total
            if score < best_score:
                best_score = score
                best = (feature, threshold)
    return best


def num_leaves(tree: DecisionTree) -> int:
    """Return the number of leaves in the tree (1 for a bare leaf)."""
    if isinstance(tree, Leaf):
        return 1
    return num_leaves(tree.if_true) + num_leaves(tree.if_false)


def tree_labels(tree: DecisionTree) -> set[str]:
    """Return the set of labels the tree can ever predict."""
    if isinstance(tree, Leaf):
        return {tree.label}
    return tree_labels(tree.if_true) | tree_labels(tree.if_false)


def prune_tree(
    tree: DecisionTree,
    samples: Sequence[BlockFeatures],
    costs: "Sequence[dict[str, float]]",
    alpha: float = 0.0,
) -> DecisionTree:
    """Cost-complexity pruning: collapse splits that don't pay their way.

    ``costs[i]`` maps each candidate label to the cost of predicting it
    for ``samples[i]``.  For classification this is the 0/1
    misclassification indicator; the autotuner passes per-block *regret
    seconds* (``timings[label] - min(timings)``), so pruning trades
    selector complexity directly against lost analysis time.  A label a
    cost mapping does not price defaults to the mapping's worst entry
    (pessimistic, so pruning never hides an unpriced prediction).

    The pruned tree minimises ``total cost + alpha * num_leaves`` over
    all prunings of ``tree`` (bottom-up dynamic programming, exact for a
    fixed ``alpha``): a subtree is replaced by its best single leaf
    whenever the leaf's cost is within ``alpha`` per saved leaf of the
    subtree's.  ``alpha=0`` removes only splits that win nothing at
    all; larger values buy shallower trees — the knob the autotuner
    uses to keep ``selection_overhead`` under its budget.

    Samples that reach no leaf of a subtree (empty routing) leave the
    subtree's structure untouched.

    Raises
    ------
    TrainingError
        On a length mismatch between ``samples`` and ``costs`` or a
        negative ``alpha``.
    """
    if len(samples) != len(costs):
        raise TrainingError(
            f"{len(samples)} samples but {len(costs)} cost mappings"
        )
    if alpha < 0.0:
        raise TrainingError("alpha must be non-negative")
    pruned, _, _ = _prune(tree, list(samples), list(costs), alpha)
    return pruned


def _cost_of(cost: dict[str, float], label: str) -> float:
    """Price one prediction; unpriced labels cost the mapping's worst."""
    if label in cost:
        return cost[label]
    return max(cost.values()) if cost else 0.0


def _best_leaf(
    subtree: DecisionTree, costs: "list[dict[str, float]]"
) -> tuple[str, float]:
    """The cheapest single-leaf replacement among the subtree's labels."""
    candidates = sorted(tree_labels(subtree))
    best_label, best_cost = candidates[0], float("inf")
    for label in candidates:
        total = sum(_cost_of(cost, label) for cost in costs)
        if total < best_cost:
            best_label, best_cost = label, total
    return best_label, best_cost


def _prune(
    tree: DecisionTree,
    samples: "list[BlockFeatures]",
    costs: "list[dict[str, float]]",
    alpha: float,
) -> tuple[DecisionTree, float, int]:
    """Return (pruned subtree, its total cost, its leaf count)."""
    if isinstance(tree, Leaf):
        total = sum(_cost_of(cost, tree.label) for cost in costs)
        return tree, total, 1
    if not samples:
        # No routed evidence: keep the structure as trained.
        return tree, 0.0, num_leaves(tree)
    true_idx = [
        i for i, s in enumerate(samples)
        if s.value(tree.feature) > tree.threshold
    ]
    false_idx = [
        i for i, s in enumerate(samples)
        if s.value(tree.feature) <= tree.threshold
    ]
    if_true, true_cost, true_leaves = _prune(
        tree.if_true,
        [samples[i] for i in true_idx],
        [costs[i] for i in true_idx],
        alpha,
    )
    if_false, false_cost, false_leaves = _prune(
        tree.if_false,
        [samples[i] for i in false_idx],
        [costs[i] for i in false_idx],
        alpha,
    )
    kept_cost = true_cost + false_cost
    kept_leaves = true_leaves + false_leaves
    leaf_label, leaf_cost = _best_leaf(tree, costs)
    # Collapse when the leaf is no worse than the split once each leaf
    # it saves is credited alpha (<= keeps the tie-break on the simpler
    # tree, the standard weakest-link convention).
    if leaf_cost <= kept_cost + alpha * (kept_leaves - 1):
        return Leaf(leaf_label), leaf_cost, 1
    return (
        Split(tree.feature, tree.threshold, if_true, if_false),
        kept_cost,
        kept_leaves,
    )


def accuracy(
    tree: DecisionTree,
    samples: Sequence[BlockFeatures],
    labels: Sequence[str],
) -> float:
    """Return the fraction of ``samples`` the tree labels correctly."""
    if not samples:
        return 0.0
    hits = sum(
        1
        for sample, label in zip(samples, labels)
        if tree.predict(sample) == label
    )
    return hits / len(samples)

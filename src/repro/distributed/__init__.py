"""Distributed execution substrate: cluster model, schedulers, executors."""

from repro.distributed.cluster import ClusterSpec, paper_cluster
from repro.distributed.executor import (
    EXECUTOR_NAMES,
    PipelineSession,
    ProcessExecutor,
    SerialExecutor,
    SharedMemoryExecutor,
    SimulatedExecutor,
    build_executor,
    pickled_block_bytes,
)
from repro.distributed.events import (
    CompletionRecord,
    EventSimulationResult,
    FailureRecord,
    failure_overhead_curve,
    simulate_events,
)
from repro.distributed.loader import (
    ShardedDataset,
    estimated_load_seconds,
    load_shards,
    shard_graph,
)
from repro.distributed.protocol import (
    Message,
    ProtocolTrace,
    run_protocol_level,
)
from repro.distributed.runner import DistributedResult, run_distributed
from repro.distributed.scheduler import (
    SCHEDULERS,
    Schedule,
    StreamingLPTBuffer,
    Task,
    lpt_order,
    schedule_hash,
    schedule_lpt,
    schedule_round_robin,
)
from repro.distributed.streaming import (
    Partition,
    partition_hash,
    partition_ldg,
)
from repro.distributed.simulation import (
    SimulatedRun,
    block_bytes,
    scaling_curve,
    simulate_level,
    simulate_reports,
)

__all__ = [
    "ClusterSpec",
    "paper_cluster",
    "CompletionRecord",
    "EventSimulationResult",
    "FailureRecord",
    "failure_overhead_curve",
    "simulate_events",
    "EXECUTOR_NAMES",
    "PipelineSession",
    "ProcessExecutor",
    "SerialExecutor",
    "SharedMemoryExecutor",
    "SimulatedExecutor",
    "build_executor",
    "pickled_block_bytes",
    "DistributedResult",
    "run_distributed",
    "Message",
    "ProtocolTrace",
    "run_protocol_level",
    "ShardedDataset",
    "estimated_load_seconds",
    "load_shards",
    "shard_graph",
    "SCHEDULERS",
    "Schedule",
    "StreamingLPTBuffer",
    "Task",
    "lpt_order",
    "schedule_hash",
    "schedule_lpt",
    "schedule_round_robin",
    "Partition",
    "partition_hash",
    "partition_ldg",
    "SimulatedRun",
    "block_bytes",
    "scaling_curve",
    "simulate_level",
    "simulate_reports",
]

"""Cluster topology description for the distributed substrate.

Section 6.1 deploys the paper's system on "a 10-nodes time-shared
cluster, where each machine is equipped with 8 GB DDR3 RAM, 4 CPUs
2.67 GHz Intel Xeon with 4 cores and 8 threads", scheduled by TORQUE
over a Lustre file system.  :class:`ClusterSpec` captures the parameters
that matter to block scheduling — worker slots, per-machine memory, and
a linear network-cost model — and :func:`paper_cluster` returns that
testbed's description.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster for block distribution.

    The network model is linear: shipping ``b`` bytes to a worker costs
    ``latency_seconds + b / bandwidth_bytes_per_second``.  Memory is
    per-machine and bounds the block size a machine accepts.
    """

    machines: int = 10
    workers_per_machine: int = 16
    memory_bytes_per_machine: int = 8 * 1024**3
    bandwidth_bytes_per_second: float = 1.0e9
    latency_seconds: float = 1.0e-4

    def __post_init__(self) -> None:
        if self.machines < 1:
            raise ValueError("machines must be at least 1")
        if self.workers_per_machine < 1:
            raise ValueError("workers_per_machine must be at least 1")
        if self.memory_bytes_per_machine < 1:
            raise ValueError("memory_bytes_per_machine must be positive")
        if self.bandwidth_bytes_per_second <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_seconds < 0:
            raise ValueError("latency must be non-negative")

    @property
    def total_workers(self) -> int:
        """Total number of parallel worker slots across the cluster."""
        return self.machines * self.workers_per_machine

    def machine_of_worker(self, worker: int) -> int:
        """Return the machine hosting worker slot ``worker``.

        Raises
        ------
        ValueError
            If the slot index is out of range.
        """
        if not 0 <= worker < self.total_workers:
            raise ValueError(
                f"worker {worker} out of range [0, {self.total_workers})"
            )
        return worker // self.workers_per_machine

    def transfer_seconds(self, data_bytes: int) -> float:
        """Cost of shipping ``data_bytes`` to one worker (linear model)."""
        if data_bytes < 0:
            raise ValueError("data_bytes must be non-negative")
        return self.latency_seconds + data_bytes / self.bandwidth_bytes_per_second


def paper_cluster() -> ClusterSpec:
    """Return the paper's Section 6.1 testbed.

    Ten machines; 4 CPUs × 4 cores each are modelled as 16 worker slots
    per machine (the 2-way SMT threads share cores, so they are not
    counted as independent capacity); 8 GB of RAM per machine; a gigabit
    interconnect with sub-millisecond latency.
    """
    return ClusterSpec(
        machines=10,
        workers_per_machine=16,
        memory_bytes_per_machine=8 * 1024**3,
        bandwidth_bytes_per_second=1.0e9 / 8,  # 1 Gb/s expressed in bytes
        latency_seconds=2.0e-4,
    )

"""Discrete-event cluster simulation with worker failures.

The static schedulers in :mod:`repro.distributed.scheduler` answer
"what is the makespan of a fixed assignment?".  This module answers the
operational questions the paper's OpenMPI/TORQUE deployment faces on a
*time-shared* cluster (Section 6.1): tasks arrive at a coordinator,
workers pull work as they free up, and a worker can **fail** mid-task —
in which case its task is re-queued and re-executed elsewhere, the
standard re-execution fault-tolerance of the graph-processing systems
surveyed in Section 7 (Pregel, GraphLab).

Because blocks are self-contained and side-effect-free, re-execution is
exactly correct: the simulation asserts that every task completes
exactly once regardless of injected failures, and reports how much
wall-clock the failures cost.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field

from repro.distributed.cluster import ClusterSpec
from repro.distributed.scheduler import Task
from repro.errors import SchedulingError


@dataclass(frozen=True)
class CompletionRecord:
    """One successful task execution in the simulated timeline."""

    task_id: int
    worker: int
    started: float
    finished: float
    attempt: int


@dataclass(frozen=True)
class FailureRecord:
    """One injected worker failure."""

    task_id: int
    worker: int
    at_time: float
    attempt: int


@dataclass
class EventSimulationResult:
    """Timeline and aggregates of one event-driven run."""

    makespan: float
    completions: list[CompletionRecord]
    failures: list[FailureRecord]
    wasted_seconds: float = field(default=0.0)

    def completed_task_ids(self) -> set[int]:
        """Ids of tasks that finished successfully."""
        return {record.task_id for record in self.completions}


def simulate_events(
    tasks: list[Task],
    cluster: ClusterSpec,
    failure_rate: float = 0.0,
    seed: int = 0,
    max_attempts: int = 10,
) -> EventSimulationResult:
    """Run a pull-based event simulation of ``tasks`` on ``cluster``.

    Parameters
    ----------
    tasks:
        Independent work items (block analyses with replay costs).
    cluster:
        Worker topology and network model; each task pays its transfer
        cost on every attempt (the block must be re-shipped).
    failure_rate:
        Probability that any given execution attempt fails mid-task.
        Failures cost the attempt's full duration (detected at the end,
        the pessimistic heartbeat model) and re-queue the task.
    seed:
        Seed for the failure draw; simulations are deterministic.
    max_attempts:
        Safety bound per task.

    Returns
    -------
    EventSimulationResult
        Completion timeline (every task exactly once), failure log and
        the wall-clock wasted on failed attempts.

    Raises
    ------
    SchedulingError
        On duplicate task ids, a failure rate outside [0, 1), or a task
        exceeding ``max_attempts`` (statistically implausible unless the
        failure rate is near 1).
    """
    if not 0.0 <= failure_rate < 1.0:
        raise SchedulingError("failure_rate must be in [0, 1)")
    seen: set[int] = set()
    for task in tasks:
        if task.task_id in seen:
            raise SchedulingError(f"duplicate task id {task.task_id}")
        seen.add(task.task_id)

    rng = random.Random(seed)
    # Longest-first queue: the pull model plus LPT ordering.
    queue: list[tuple[float, int, Task, int]] = [
        (-task.cost_seconds, task.task_id, task, 1) for task in tasks
    ]
    heapq.heapify(queue)
    # Worker availability: (free_at_time, worker_id).
    workers: list[tuple[float, int]] = [
        (0.0, worker) for worker in range(cluster.total_workers)
    ]
    heapq.heapify(workers)

    completions: list[CompletionRecord] = []
    failures: list[FailureRecord] = []
    wasted = 0.0
    makespan = 0.0
    while queue:
        _, _, task, attempt = heapq.heappop(queue)
        if attempt > max_attempts:
            raise SchedulingError(
                f"task {task.task_id} exceeded {max_attempts} attempts"
            )
        free_at, worker = heapq.heappop(workers)
        duration = task.cost_seconds + cluster.transfer_seconds(task.data_bytes)
        finish = free_at + duration
        if rng.random() < failure_rate:
            failures.append(
                FailureRecord(
                    task_id=task.task_id,
                    worker=worker,
                    at_time=finish,
                    attempt=attempt,
                )
            )
            wasted += duration
            heapq.heappush(
                queue, (-task.cost_seconds, task.task_id, task, attempt + 1)
            )
            # The failed worker is replaced (treated as restarted) and
            # becomes available again after the failed attempt.
            heapq.heappush(workers, (finish, worker))
            continue
        completions.append(
            CompletionRecord(
                task_id=task.task_id,
                worker=worker,
                started=free_at,
                finished=finish,
                attempt=attempt,
            )
        )
        makespan = max(makespan, finish)
        heapq.heappush(workers, (finish, worker))
    return EventSimulationResult(
        makespan=makespan,
        completions=completions,
        failures=failures,
        wasted_seconds=wasted,
    )


def failure_overhead_curve(
    tasks: list[Task],
    cluster: ClusterSpec,
    failure_rates: list[float],
    seed: int = 0,
) -> list[tuple[float, float, int]]:
    """Makespan and failure count as the failure rate grows.

    Returns one ``(failure_rate, makespan, failures)`` row per rate —
    the fault-tolerance cost curve of re-execution.
    """
    rows: list[tuple[float, float, int]] = []
    for rate in failure_rates:
        result = simulate_events(tasks, cluster, failure_rate=rate, seed=seed)
        rows.append((rate, result.makespan, len(result.failures)))
    return rows

"""Execution strategies for independent block analyses.

The decomposition's blocks are self-contained, so analysing them is an
embarrassingly parallel map.  Four executors share one interface
(``map_blocks``):

* :class:`SerialExecutor` — the deterministic reference; used by the
  driver and by every test;
* :class:`ProcessExecutor` — real parallelism on the local machine via
  ``concurrent.futures``; blocks and reports are pickled across the
  process boundary;
* :class:`SharedMemoryExecutor` — real parallelism with zero-copy
  dispatch: the level graph is published once as CSR arrays in POSIX
  shared memory, workers attach to it, and each block travels as a
  :class:`~repro.core.block_analysis.BlockDescriptor` of node-id arrays
  instead of a pickled subgraph.  Blocks are dispatched in
  decreasing-estimated-cost order (LPT) through the pool's shared queue
  so the expensive blocks start first and workers self-balance;
* :class:`SimulatedExecutor` — serial execution plus a replayed cluster
  schedule, reporting what the wall-clock *would be* on a cluster
  (the local stand-in for the paper's OpenMPI deployment).

Both process-based executors raise :class:`repro.errors.ExecutorError`
with the failing block id when a worker raises; the shared-memory
executor can additionally retry blocks in the parent when a worker
*dies* (SIGKILL, OOM), and always reaps its shared-memory segments.

For the fault-tolerance tests, workers honour the
``REPRO_FAULT_INJECT`` environment variable (``kill:<block_id>`` or
``raise:<block_id>``); it only ever triggers inside a pool worker, never
in the parent process.
"""

from __future__ import annotations

import os
import pickle
import resource
import signal
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import parent_process

from repro.core.block_analysis import (
    BlockDescriptor,
    BlockReport,
    analyze_block,
    analyze_block_csr,
)
from repro.graph.csr import BitmapScratch
from repro.core.blocks import Block
from repro.decision.tree import DecisionTree
from repro.distributed.cluster import ClusterSpec
from repro.distributed.scheduler import StreamingLPTBuffer, lpt_order
from repro.distributed.simulation import SimulatedRun, simulate_level
from repro.errors import ExecutorError
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph, SharedCSR, SharedCSRHandle
from repro.mce.instrumentation import (
    BlockTiming,
    ExecutionTrace,
    LevelDecomposition,
)
from repro.mce.registry import Combo

FAULT_INJECT_ENV = "REPRO_FAULT_INJECT"


def _maybe_inject_fault(block_id: int) -> None:
    """Test hook: crash or raise on a chosen block, in pool workers only."""
    spec = os.environ.get(FAULT_INJECT_ENV)
    if not spec or parent_process() is None:
        return
    kind, _, target = spec.partition(":")
    if target != str(block_id):
        return
    if kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if kind == "raise":
        raise RuntimeError(f"injected failure on block {block_id}")


class SerialExecutor:
    """Analyse blocks one after another in the calling process."""

    def map_blocks(
        self,
        blocks: list[Block],
        tree: DecisionTree | None = None,
        combo: Combo | None = None,
        graph: Graph | None = None,
    ) -> list[BlockReport]:
        """Return one :class:`BlockReport` per block, in block order."""
        return [analyze_block(block, tree=tree, combo=combo) for block in blocks]


def _analyze_one(args: tuple[Block, DecisionTree | None, Combo | None]) -> BlockReport:
    """Top-level worker function (must be picklable for process pools)."""
    block, tree, combo = args
    return analyze_block(block, tree=tree, combo=combo)


def _analyze_indexed(
    args: tuple[int, Block, DecisionTree | None, Combo | None],
) -> BlockReport:
    """Worker wrapper that tags failures with the offending block id."""
    index, block, tree, combo = args
    try:
        _maybe_inject_fault(index)
        return analyze_block(block, tree=tree, combo=combo)
    except Exception as exc:
        raise ExecutorError(
            f"block {index} failed in worker {os.getpid()}: "
            f"{type(exc).__name__}: {exc}",
            block_id=index,
        ) from exc


@dataclass
class ProcessExecutor:
    """Analyse blocks in a local process pool.

    ``max_workers=None`` lets the pool size default to the CPU count.
    Submissions are chunked (``chunksize``; by default ``len(blocks)``
    split four ways per worker) so small blocks amortise the per-task
    IPC round-trip.  Results are returned in block order regardless of
    completion order.

    Raises
    ------
    ExecutorError
        When a worker raises (the message names the failing block) or a
        worker process dies.
    """

    max_workers: int | None = None
    chunksize: int | None = None

    def map_blocks(
        self,
        blocks: list[Block],
        tree: DecisionTree | None = None,
        combo: Combo | None = None,
        graph: Graph | None = None,
    ) -> list[BlockReport]:
        """Return one :class:`BlockReport` per block, in block order."""
        if not blocks:
            return []
        workers = self.max_workers or os.cpu_count() or 1
        chunk = self.chunksize or max(1, len(blocks) // (workers * 4))
        payloads = [(i, block, tree, combo) for i, block in enumerate(blocks)]
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            try:
                return list(pool.map(_analyze_indexed, payloads, chunksize=chunk))
            except BrokenProcessPool as exc:
                raise ExecutorError(
                    "a worker process died while analysing blocks; "
                    "use SharedMemoryExecutor for in-parent retry"
                ) from exc


# ----------------------------------------------------------------------
# Shared-memory executor
# ----------------------------------------------------------------------

# Populated by _shm_worker_init in each pool worker; the attached
# snapshot and the (tree, combo) selection travel once per worker, not
# once per block.
_WORKER_STATE: dict[str, object] = {}


def _shm_worker_init(
    handle: SharedCSRHandle, tree: DecisionTree | None, combo: Combo | None
) -> None:
    """Pool initializer: attach to the published CSR snapshot."""
    shared = SharedCSR.attach(handle)
    _WORKER_STATE["shared"] = shared
    _WORKER_STATE["tree"] = tree
    _WORKER_STATE["combo"] = combo
    _WORKER_STATE["scratch"] = BitmapScratch()


def _shm_analyze(descriptor: BlockDescriptor) -> tuple[int, BlockReport]:
    """Analyse one block straight from the attached CSR views.

    The block's backend is materialized from a packed bitmap extracted
    directly out of the shared CSR rows (``analyze_block_csr``) — the
    worker never rebuilds a ``Graph`` or a dict-of-sets adjacency, which
    removes a silent O(edges) reconstruction per block.  The per-worker
    :class:`BitmapScratch` reuses extraction buffers across same-sized
    blocks.
    """
    shared: SharedCSR = _WORKER_STATE["shared"]  # type: ignore[assignment]
    try:
        _maybe_inject_fault(descriptor.block_id)
        report = analyze_block_csr(
            descriptor,
            shared.indptr,
            shared.indices,
            shared.labels,
            tree=_WORKER_STATE["tree"],  # type: ignore[arg-type]
            combo=_WORKER_STATE["combo"],  # type: ignore[arg-type]
            scratch=_WORKER_STATE["scratch"],  # type: ignore[arg-type]
        )
    except Exception as exc:
        raise ExecutorError(
            f"block {descriptor.block_id} failed in worker {os.getpid()}: "
            f"{type(exc).__name__}: {exc}",
            block_id=descriptor.block_id,
        ) from exc
    report.extra["dispatch_bytes"] = float(descriptor.nbytes())
    report.extra["peak_rss_kb"] = float(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    )
    report.extra["worker_pid"] = float(os.getpid())
    return descriptor.block_id, report


@dataclass
class SharedMemoryExecutor:
    """Zero-copy parallel block analysis over a shared CSR snapshot.

    ``map_blocks`` publishes the level graph once (shared memory),
    derives one :class:`BlockDescriptor` per block, and submits the
    descriptors in decreasing estimated-cost order, one task each, so
    idle workers always pull the largest remaining block (dynamic LPT).
    Reports stream back as they complete; per-block wall-clock, worker
    peak RSS and dispatched bytes are collected on :attr:`last_trace`.

    ``retry_failed`` (default on) re-runs a block serially in the parent
    when its worker dies mid-batch — block analyses are pure functions,
    so plain re-execution is exactly correct — and raises
    :class:`ExecutorError` only if the retry fails too.  The shared
    segments are always unlinked, including on the failure paths.
    """

    max_workers: int | None = None
    retry_failed: bool = True
    # Reorder-buffer depth for pipeline mode; None = max(4, workers).
    pipeline_lookahead: int | None = None
    last_trace: ExecutionTrace | None = field(default=None, init=False, repr=False)

    def open_pipeline(
        self, tree: DecisionTree | None = None, combo: Combo | None = None
    ) -> "PipelineSession":
        """Start a streaming decompose→dispatch session (pipeline mode).

        The returned :class:`PipelineSession` owns one worker pool for
        the whole multi-level run; the pipeline driver publishes each
        level's CSR and streams descriptors into it while later levels
        are still being decomposed.  The session's trace is installed as
        :attr:`last_trace` immediately, so callers can inspect per-level
        decomposition timing as soon as the run ends.
        """
        session = PipelineSession(
            self.max_workers,
            tree,
            combo,
            retry_failed=self.retry_failed,
            lookahead=self.pipeline_lookahead,
        )
        self.last_trace = session.trace
        return session

    def map_blocks(
        self,
        blocks: list[Block],
        tree: DecisionTree | None = None,
        combo: Combo | None = None,
        graph: Graph | None = None,
    ) -> list[BlockReport]:
        """Return one :class:`BlockReport` per block, in block order.

        ``graph`` should be the level graph the blocks were cut from;
        when omitted, the union of the block subgraphs is used (the
        union contains every induced edge of every block, so the
        reconstruction is still exact).
        """
        if not blocks:
            self.last_trace = ExecutionTrace()
            return []
        publish_start = time.perf_counter()
        csr = CSRGraph(graph if graph is not None else _union_graph(blocks))
        index_of = {node: i for i, node in enumerate(csr.labels)}
        descriptors = [
            BlockDescriptor.from_block(i, block, index_of)
            for i, block in enumerate(blocks)
        ]
        shared = SharedCSR.publish(csr)
        trace = ExecutionTrace(
            publish_bytes=shared.nbytes(),
            publish_seconds=time.perf_counter() - publish_start,
        )
        self.last_trace = trace
        order = lpt_order([descriptor.estimated_cost for descriptor in descriptors])
        results: dict[int, BlockReport] = {}
        try:
            with ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_shm_worker_init,
                initargs=(shared.handle, tree, combo),
            ) as pool:
                pending = {
                    pool.submit(_shm_analyze, descriptors[i]): i for i in order
                }
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        block_id = pending.pop(future)
                        try:
                            _, report = future.result()
                        except BrokenProcessPool:
                            report = self._retry(blocks[block_id], block_id, tree, combo)
                        except ExecutorError:
                            raise
                        results[block_id] = report
                        trace.record(_timing_of(block_id, report))
        finally:
            shared.close()
            shared.unlink()
        return [results[i] for i in range(len(blocks))]

    def _retry(
        self,
        block: Block,
        block_id: int,
        tree: DecisionTree | None,
        combo: Combo | None,
    ) -> BlockReport:
        """Re-run a block whose worker died; in the parent, serially."""
        if not self.retry_failed:
            raise ExecutorError(
                f"worker process died while analysing block {block_id}",
                block_id=block_id,
            )
        try:
            report = analyze_block(block, tree=tree, combo=combo)
        except Exception as exc:
            raise ExecutorError(
                f"block {block_id} failed again on in-parent retry: "
                f"{type(exc).__name__}: {exc}",
                block_id=block_id,
            ) from exc
        report.extra["retried"] = 1.0
        return report


def _pipeline_worker_init(tree: DecisionTree | None, combo: Combo | None) -> None:
    """Pool initializer for pipeline mode: no snapshot yet, just state.

    Unlike :func:`_shm_worker_init`, the worker does not attach to one
    fixed snapshot — the pipeline publishes one CSR per recursion level
    and each task names its level's handle, so workers attach lazily and
    cache the attachment per segment name.
    """
    _WORKER_STATE["tree"] = tree
    _WORKER_STATE["combo"] = combo
    _WORKER_STATE["scratch"] = BitmapScratch()
    _WORKER_STATE["attached"] = {}


def _pipeline_analyze(
    handle: SharedCSRHandle, descriptor: BlockDescriptor
) -> tuple[int, BlockReport]:
    """Analyse one streamed block against its level's shared snapshot."""
    attached: dict[str, SharedCSR] = _WORKER_STATE["attached"]  # type: ignore[assignment]
    shared = attached.get(handle.indptr_name)
    if shared is None:
        shared = SharedCSR.attach(handle)
        attached[handle.indptr_name] = shared
    try:
        _maybe_inject_fault(descriptor.block_id)
        report = analyze_block_csr(
            descriptor,
            shared.indptr,
            shared.indices,
            shared.labels,
            tree=_WORKER_STATE["tree"],  # type: ignore[arg-type]
            combo=_WORKER_STATE["combo"],  # type: ignore[arg-type]
            scratch=_WORKER_STATE["scratch"],  # type: ignore[arg-type]
        )
    except Exception as exc:
        raise ExecutorError(
            f"block {descriptor.block_id} failed in worker {os.getpid()}: "
            f"{type(exc).__name__}: {exc}",
            block_id=descriptor.block_id,
        ) from exc
    report.extra["dispatch_bytes"] = float(descriptor.nbytes())
    report.extra["peak_rss_kb"] = float(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    )
    report.extra["worker_pid"] = float(os.getpid())
    return descriptor.block_id, report


class PipelineSession:
    """One streaming decompose→dispatch run over a shared worker pool.

    The producer (the pipeline driver) interleaves three calls per
    recursion level — :meth:`publish_level` (export the level CSR to
    shared memory once), :meth:`submit` (hand over each
    :class:`BlockDescriptor` the moment ``blocks_csr`` yields it), and
    :meth:`end_level` (flush the reorder buffer and record the level's
    decomposition timing) — then a single :meth:`finish` that waits for
    every in-flight block and returns the reports grouped by level.
    Workers start consuming level-0 blocks while later levels are still
    being decomposed; a :class:`~repro.distributed.scheduler.StreamingLPTBuffer`
    gives the dispatch order a bounded-lookahead LPT shape.

    Lifetime rules: every published segment stays mapped in the parent
    (retries read it) and alive for attached workers until
    :meth:`close`, which shuts the pool down *before* unlinking — call
    it from a ``finally`` block, as the pipeline driver does.  When a
    worker dies mid-run the affected blocks are re-analysed in the
    parent from the still-mapped segments (pure function, so plain
    re-execution is exactly correct), matching ``map_blocks`` semantics.
    """

    def __init__(
        self,
        max_workers: int | None,
        tree: DecisionTree | None,
        combo: Combo | None,
        retry_failed: bool = True,
        lookahead: int | None = None,
    ) -> None:
        workers = max_workers or os.cpu_count() or 1
        self._tree = tree
        self._combo = combo
        self._retry_failed = retry_failed
        self._pool = ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_pipeline_worker_init,
            initargs=(tree, combo),
        )
        self._buffer = StreamingLPTBuffer(
            lookahead if lookahead is not None else max(4, workers)
        )
        self._published: dict[int, SharedCSR] = {}
        self._publish_stats: dict[int, tuple[float, int]] = {}
        self._futures: dict[object, tuple[int, BlockDescriptor]] = {}
        self._results: dict[tuple[int, int], BlockReport] = {}
        self._parent_scratch = BitmapScratch()
        self._closed = False
        self.trace = ExecutionTrace()

    # -- producer side -----------------------------------------------------
    def publish_level(self, level: int, csr: CSRGraph) -> None:
        """Export one level's CSR snapshot to shared memory (once)."""
        start = time.perf_counter()
        shared = SharedCSR.publish(csr)
        self._published[level] = shared
        self._publish_stats[level] = (time.perf_counter() - start, shared.nbytes())
        self.trace.publish_bytes += shared.nbytes()
        self.trace.publish_seconds += self._publish_stats[level][0]

    def submit(self, level: int, descriptor: BlockDescriptor) -> None:
        """Queue one streamed block; may dispatch buffered blocks."""
        for released in self._buffer.push(
            descriptor.estimated_cost, (level, descriptor)
        ):
            self._dispatch(*released)  # type: ignore[misc]

    def end_level(
        self,
        level: int,
        decompose_seconds: float,
        num_blocks: int,
        num_feasible: int,
        num_hubs: int,
    ) -> None:
        """Flush this level's buffered blocks and record its timing."""
        for released in self._buffer.drain():
            self._dispatch(*released)  # type: ignore[misc]
        publish_seconds, publish_bytes = self._publish_stats.get(level, (0.0, 0))
        self.trace.record_level(
            LevelDecomposition(
                level=level,
                decompose_seconds=decompose_seconds,
                publish_seconds=publish_seconds,
                publish_bytes=publish_bytes,
                num_blocks=num_blocks,
                num_feasible=num_feasible,
                num_hubs=num_hubs,
            )
        )

    # -- consumer side -----------------------------------------------------
    def finish(self) -> dict[int, dict[int, BlockReport]]:
        """Wait for every in-flight block; reports by ``[level][block_id]``.

        Raises
        ------
        ExecutorError
            When a worker raised while analysing a block, or a died
            worker's block failed again on the in-parent retry.
        """
        for released in self._buffer.drain():
            self._dispatch(*released)  # type: ignore[misc]
        while self._futures:
            done, _ = wait(self._futures, return_when=FIRST_COMPLETED)
            for future in done:
                level, descriptor = self._futures.pop(future)
                try:
                    _, report = future.result()
                except BrokenProcessPool:
                    report = self._parent_retry(level, descriptor)
                self._record(level, descriptor, report)
        grouped: dict[int, dict[int, BlockReport]] = {}
        for (level, block_id), report in self._results.items():
            grouped.setdefault(level, {})[block_id] = report
        return grouped

    def close(self) -> None:
        """Shut the pool down, then unlink every published segment."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True, cancel_futures=True)
        for shared in self._published.values():
            shared.close()
            shared.unlink()

    def __enter__(self) -> "PipelineSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals ---------------------------------------------------------
    def _dispatch(self, level: int, descriptor: BlockDescriptor) -> None:
        handle = self._published[level].handle
        try:
            future = self._pool.submit(_pipeline_analyze, handle, descriptor)
        except BrokenProcessPool:
            # The pool died earlier in the run; analyse in the parent so
            # the stream keeps flowing and no block is lost.
            report = self._parent_retry(level, descriptor)
            self._record(level, descriptor, report)
            return
        self._futures[future] = (level, descriptor)

    def _parent_retry(
        self, level: int, descriptor: BlockDescriptor
    ) -> BlockReport:
        if not self._retry_failed:
            raise ExecutorError(
                f"worker process died while analysing block "
                f"{descriptor.block_id} of level {level}",
                block_id=descriptor.block_id,
            )
        shared = self._published[level]
        try:
            report = analyze_block_csr(
                descriptor,
                shared.indptr,
                shared.indices,
                shared.labels,
                tree=self._tree,
                combo=self._combo,
                scratch=self._parent_scratch,
            )
        except Exception as exc:
            raise ExecutorError(
                f"block {descriptor.block_id} of level {level} failed again "
                f"on in-parent retry: {type(exc).__name__}: {exc}",
                block_id=descriptor.block_id,
            ) from exc
        report.extra["retried"] = 1.0
        report.extra["dispatch_bytes"] = float(descriptor.nbytes())
        return report

    def _record(
        self, level: int, descriptor: BlockDescriptor, report: BlockReport
    ) -> None:
        self._results[(level, descriptor.block_id)] = report
        self.trace.record(_timing_of(descriptor.block_id, report))


def _union_graph(blocks: list[Block]) -> Graph:
    """Union of the block subgraphs (fallback when no level graph given)."""
    union = Graph()
    for block in blocks:
        for node in block.graph.nodes():
            union.add_node(node)
        for u, v in block.graph.edges():
            union.add_edge(u, v)
    return union


def _timing_of(block_id: int, report: BlockReport) -> BlockTiming:
    """Translate a finished report into its trace record."""
    return BlockTiming(
        block_id=block_id,
        seconds=report.seconds,
        cliques=len(report.cliques),
        dispatch_bytes=int(report.extra.get("dispatch_bytes", 0.0)),
        peak_rss_kb=int(report.extra.get("peak_rss_kb", 0.0)),
        worker_pid=int(report.extra.get("worker_pid", 0.0)),
        retried=bool(report.extra.get("retried", 0.0)),
    )


def pickled_block_bytes(block: Block) -> int:
    """Bytes :class:`ProcessExecutor` ships for one block (benchmarking)."""
    return len(pickle.dumps(block, protocol=pickle.HIGHEST_PROTOCOL))


EXECUTOR_NAMES: tuple[str, ...] = ("serial", "process", "shared")


def build_executor(
    name: str, max_workers: int | None = None
) -> "SerialExecutor | ProcessExecutor | SharedMemoryExecutor":
    """Construct a local executor by CLI name.

    Raises
    ------
    ExecutorError
        On an unknown executor name.
    """
    if name == "serial":
        return SerialExecutor()
    if name == "process":
        return ProcessExecutor(max_workers=max_workers)
    if name == "shared":
        return SharedMemoryExecutor(max_workers=max_workers)
    raise ExecutorError(
        f"unknown executor {name!r}; known: {', '.join(EXECUTOR_NAMES)}"
    )


@dataclass
class SimulatedExecutor:
    """Serial execution instrumented with a simulated cluster schedule.

    After ``map_blocks`` the :attr:`last_run` attribute holds the
    :class:`SimulatedRun` for the most recent batch: the makespan the
    same work would have on :attr:`cluster` under :attr:`policy`.
    """

    cluster: ClusterSpec
    policy: str = "lpt"
    last_run: SimulatedRun | None = field(default=None, init=False)

    def map_blocks(
        self,
        blocks: list[Block],
        tree: DecisionTree | None = None,
        combo: Combo | None = None,
        graph: Graph | None = None,
    ) -> list[BlockReport]:
        """Return one :class:`BlockReport` per block, in block order."""
        reports = [
            analyze_block(block, tree=tree, combo=combo) for block in blocks
        ]
        self.last_run = simulate_level(
            blocks, reports, self.cluster, policy=self.policy
        )
        return reports

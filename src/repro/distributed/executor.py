"""Execution strategies for independent block analyses.

The decomposition's blocks are self-contained, so analysing them is an
embarrassingly parallel map.  Three executors share one interface
(``map_blocks``):

* :class:`SerialExecutor` — the deterministic reference; used by the
  driver and by every test;
* :class:`ProcessExecutor` — real parallelism on the local machine via
  ``concurrent.futures``; blocks and reports are pickled across the
  process boundary;
* :class:`SimulatedExecutor` — serial execution plus a replayed cluster
  schedule, reporting what the wall-clock *would be* on a cluster
  (the local stand-in for the paper's OpenMPI deployment).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.core.block_analysis import BlockReport, analyze_block
from repro.core.blocks import Block
from repro.decision.tree import DecisionTree
from repro.distributed.cluster import ClusterSpec
from repro.distributed.simulation import SimulatedRun, simulate_level
from repro.mce.registry import Combo


class SerialExecutor:
    """Analyse blocks one after another in the calling process."""

    def map_blocks(
        self,
        blocks: list[Block],
        tree: DecisionTree | None = None,
        combo: Combo | None = None,
    ) -> list[BlockReport]:
        """Return one :class:`BlockReport` per block, in block order."""
        return [analyze_block(block, tree=tree, combo=combo) for block in blocks]


def _analyze_one(args: tuple[Block, DecisionTree | None, Combo | None]) -> BlockReport:
    """Top-level worker function (must be picklable for process pools)."""
    block, tree, combo = args
    return analyze_block(block, tree=tree, combo=combo)


@dataclass
class ProcessExecutor:
    """Analyse blocks in a local process pool.

    ``max_workers=None`` lets the pool size default to the CPU count.
    Results are returned in block order regardless of completion order.
    """

    max_workers: int | None = None

    def map_blocks(
        self,
        blocks: list[Block],
        tree: DecisionTree | None = None,
        combo: Combo | None = None,
    ) -> list[BlockReport]:
        """Return one :class:`BlockReport` per block, in block order."""
        if not blocks:
            return []
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            return list(
                pool.map(_analyze_one, [(block, tree, combo) for block in blocks])
            )


@dataclass
class SimulatedExecutor:
    """Serial execution instrumented with a simulated cluster schedule.

    After ``map_blocks`` the :attr:`last_run` attribute holds the
    :class:`SimulatedRun` for the most recent batch: the makespan the
    same work would have on :attr:`cluster` under :attr:`policy`.
    """

    cluster: ClusterSpec
    policy: str = "lpt"
    last_run: SimulatedRun | None = field(default=None, init=False)

    def map_blocks(
        self,
        blocks: list[Block],
        tree: DecisionTree | None = None,
        combo: Combo | None = None,
    ) -> list[BlockReport]:
        """Return one :class:`BlockReport` per block, in block order."""
        reports = [
            analyze_block(block, tree=tree, combo=combo) for block in blocks
        ]
        self.last_run = simulate_level(
            blocks, reports, self.cluster, policy=self.policy
        )
        return reports

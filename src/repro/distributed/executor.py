"""Execution strategies for independent block analyses.

The decomposition's blocks are self-contained, so analysing them is an
embarrassingly parallel map.  Four executors share one interface
(``map_blocks``):

* :class:`SerialExecutor` — the deterministic reference; used by the
  driver and by every test;
* :class:`ProcessExecutor` — real parallelism on the local machine via
  ``concurrent.futures``; blocks and reports are pickled across the
  process boundary;
* :class:`SharedMemoryExecutor` — real parallelism with zero-copy
  dispatch: the level graph is published once as CSR arrays in POSIX
  shared memory, workers attach to it, and each block travels as a
  :class:`~repro.core.block_analysis.BlockDescriptor` of node-id arrays
  instead of a pickled subgraph.  Blocks are dispatched in
  decreasing-estimated-cost order (LPT) through the pool's shared queue
  so the expensive blocks start first and workers self-balance;
* :class:`SimulatedExecutor` — serial execution plus a replayed cluster
  schedule, reporting what the wall-clock *would be* on a cluster
  (the local stand-in for the paper's OpenMPI deployment).

Both process-based executors raise :class:`repro.errors.ExecutorError`
with the failing block id when a worker raises; the shared-memory
executor can additionally retry blocks in the parent when a worker
*dies* (SIGKILL, OOM), and always reaps its shared-memory segments.

For the fault-tolerance tests, workers honour the
``REPRO_FAULT_INJECT`` environment variable (``kill:<block_id>`` or
``raise:<block_id>``); it only ever triggers inside a pool worker, never
in the parent process.  The same variable carries the parent-side spill
targets (``kill:spill-pre:<level>.<block>`` etc.) interpreted by
:mod:`repro.runs.segments` — one hook, one grammar, two processes.

Every executor accepts an optional :class:`~repro.runs.runlog.RunLog`
(plus the recursion ``level`` the batch belongs to): blocks already
completed by a previous run are *skipped* and their stored reports
replayed, and every freshly finished block is durably recorded the
moment it completes — see ``docs/durability.md``.
"""

from __future__ import annotations

import os
import pickle
import resource
import signal
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import parent_process

from repro.core.block_analysis import (
    BlockBucket,
    BlockDescriptor,
    BlockReport,
    SplitResult,
    SubtaskDescriptor,
    analyze_block,
    analyze_block_csr,
    analyze_block_csr_splittable,
    analyze_bucket_csr,
    analyze_subtask_csr,
    build_subtasks,
    form_buckets,
    merge_fragment_reports,
    padded_size,
)
from repro.graph.csr import BitmapScratch
from repro.core.blocks import Block
from repro.decision.features import adaptive_batch_cutoff, adaptive_split_threshold
from repro.decision.tree import DecisionTree
from repro.distributed.cluster import ClusterSpec
from repro.distributed.scheduler import (
    BatchAccumulator,
    StealDeque,
    StreamingLPTBuffer,
    lpt_order,
)
from repro.distributed.simulation import SimulatedRun, simulate_level
from repro.errors import ExecutorError
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph, SharedCSR, SharedCSRHandle
from repro.mce.instrumentation import (
    BatchDispatch,
    BlockTiming,
    ExecutionTrace,
    LevelDecomposition,
    SplitDecision,
    SubtaskTiming,
)
from repro.mce.registry import Combo
from repro.runs.runlog import RunLog
from repro.runs.segments import FAULT_INJECT_ENV  # shared fault hook (one grammar)


def _maybe_inject_fault(block_id: int) -> None:
    """Test hook: crash or raise on a chosen block, in pool workers only."""
    _inject_if_target(str(block_id), f"block {block_id}")


def _maybe_inject_fault_subtask(block_id: int, subtask_id: int) -> None:
    """Like :func:`_maybe_inject_fault`, targeting ``<block>.<subtask>``.

    The spec ``kill:3.2`` (or ``raise:3.2``) fires only on subtask 2 of
    block 3, so the crash-safety tests can kill a worker mid-subtask and
    assert that *only that subtask* is re-executed — the whole-block
    fragments completed before the crash are kept.
    """
    _inject_if_target(f"{block_id}.{subtask_id}", f"subtask {block_id}.{subtask_id}")


def _inject_if_target(candidate: str, description: str) -> None:
    spec = os.environ.get(FAULT_INJECT_ENV)
    if not spec or parent_process() is None:
        return
    kind, _, target = spec.partition(":")
    if target != candidate:
        return
    if kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if kind == "raise":
        raise RuntimeError(f"injected failure on {description}")


def _segment_path_of(run_log: RunLog | None) -> str | None:
    """Spill-segment context for executor errors (None without spilling)."""
    return run_log.segment_path if run_log is not None else None


def _replayed_timing(block_id: int, report: BlockReport) -> BlockTiming:
    """Trace record of a block replayed from a spill segment (no work)."""
    return BlockTiming(
        block_id=block_id,
        seconds=0.0,
        cliques=len(report.cliques),
        replayed=True,
        combo=report.combo.name,
        features=report.features.vector(),
    )


@dataclass
class SerialExecutor:
    """Analyse blocks one after another in the calling process.

    ``batch_blocks`` (default off) fuses small same-padded-shape blocks
    into multi-block kernel buckets (``analyze_bucket_csr``) instead of
    analysing them one at a time — the serial twin of the shared-memory
    executor's batched dispatch, with identical per-block reports.
    ``batch_cutoff=None`` derives the size cutoff from the batch's own
    block-size distribution
    (:func:`repro.decision.features.adaptive_batch_cutoff`).
    """

    batch_blocks: bool = False
    batch_cutoff: int | None = None
    # Enumeration floor forwarded to block analysis (see the driver's
    # min_clique_size): anchors that cannot reach it are skipped.
    min_clique_size: int = 0
    last_trace: ExecutionTrace | None = field(default=None, init=False, repr=False)

    def map_blocks(
        self,
        blocks: list[Block],
        tree: DecisionTree | None = None,
        combo: Combo | None = None,
        graph: Graph | None = None,
        run_log: RunLog | None = None,
        level: int = 0,
    ) -> list[BlockReport]:
        """Return one :class:`BlockReport` per block, in block order."""
        if self.batch_blocks:
            return self._map_blocks_batched(
                blocks, tree, combo, graph, run_log, level
            )
        reports: list[BlockReport] = []
        for block_id, block in enumerate(blocks):
            if run_log is not None and run_log.is_completed(level, block_id):
                reports.append(run_log.replay_report(level, block_id))
                continue
            report = analyze_block(
                block,
                tree=tree,
                combo=combo,
                min_clique_size=self.min_clique_size,
            )
            if run_log is not None:
                run_log.record(level, block_id, report)
            reports.append(report)
        return reports

    def _map_blocks_batched(
        self,
        blocks: list[Block],
        tree: DecisionTree | None,
        combo: Combo | None,
        graph: Graph | None,
        run_log: RunLog | None,
        level: int,
    ) -> list[BlockReport]:
        """Bucketed analysis: small blocks fused, large ones per-block."""
        if not blocks:
            self.last_trace = ExecutionTrace()
            return []
        csr = CSRGraph(graph if graph is not None else _union_graph(blocks))
        index_of = {node: i for i, node in enumerate(csr.labels)}
        descriptors = [
            BlockDescriptor.from_block(i, block, index_of)
            for i, block in enumerate(blocks)
        ]
        trace = ExecutionTrace()
        self.last_trace = trace
        results: dict[int, BlockReport] = {}
        pending: list[BlockDescriptor] = []
        for block_id, descriptor in enumerate(descriptors):
            if run_log is not None and run_log.is_completed(level, block_id):
                report = run_log.replay_report(level, block_id)
                results[block_id] = report
                trace.record(_replayed_timing(block_id, report))
            else:
                pending.append(descriptor)
        cutoff = (
            self.batch_cutoff
            if self.batch_cutoff is not None
            else adaptive_batch_cutoff([d.size for d in pending])
        )
        buckets, singles = form_buckets(pending, cutoff)
        scratch = BitmapScratch()
        for bucket in buckets:
            stats: dict[str, float] = {}
            reports = analyze_bucket_csr(
                bucket, csr.indptr, csr.indices, csr.labels,
                tree=tree, combo=combo, scratch=scratch, batch_stats=stats,
                min_clique_size=self.min_clique_size,
            )
            trace.record_batch(_batch_dispatch_of(bucket, stats))
            for descriptor, report in zip(bucket.descriptors, reports):
                if run_log is not None:
                    trace.record_flush(
                        run_log.record(level, descriptor.block_id, report)
                    )
                results[descriptor.block_id] = report
                trace.record(_timing_of(descriptor.block_id, report))
        for descriptor in singles:
            report = analyze_block_csr(
                descriptor, csr.indptr, csr.indices, csr.labels,
                tree=tree, combo=combo, scratch=scratch,
                min_clique_size=self.min_clique_size,
            )
            if run_log is not None:
                trace.record_flush(
                    run_log.record(level, descriptor.block_id, report)
                )
            results[descriptor.block_id] = report
            trace.record(_timing_of(descriptor.block_id, report))
        return [results[i] for i in range(len(blocks))]


def _analyze_one(args: tuple[Block, DecisionTree | None, Combo | None]) -> BlockReport:
    """Top-level worker function (must be picklable for process pools)."""
    block, tree, combo = args
    return analyze_block(block, tree=tree, combo=combo)


def _analyze_indexed(
    args: tuple[int, Block, DecisionTree | None, Combo | None, int],
) -> BlockReport:
    """Worker wrapper that tags failures with the offending block id."""
    index, block, tree, combo, min_clique_size = args
    try:
        _maybe_inject_fault(index)
        return analyze_block(
            block, tree=tree, combo=combo, min_clique_size=min_clique_size
        )
    except Exception as exc:
        raise ExecutorError(
            f"block {index} failed in worker {os.getpid()}: "
            f"{type(exc).__name__}: {exc}",
            block_id=index,
        ) from exc


@dataclass
class ProcessExecutor:
    """Analyse blocks in a local process pool.

    ``max_workers=None`` lets the pool size default to the CPU count.
    Submissions are chunked (``chunksize``; by default ``len(blocks)``
    split four ways per worker) so small blocks amortise the per-task
    IPC round-trip.  Results are returned in block order regardless of
    completion order.

    Raises
    ------
    ExecutorError
        When a worker raises (the message names the failing block) or a
        worker process dies.
    """

    max_workers: int | None = None
    chunksize: int | None = None
    # Enumeration floor shipped with each block payload (see the
    # driver's min_clique_size).
    min_clique_size: int = 0

    def map_blocks(
        self,
        blocks: list[Block],
        tree: DecisionTree | None = None,
        combo: Combo | None = None,
        graph: Graph | None = None,
        run_log: RunLog | None = None,
        level: int = 0,
    ) -> list[BlockReport]:
        """Return one :class:`BlockReport` per block, in block order."""
        if not blocks:
            return []
        results: dict[int, BlockReport] = {}
        pending: list[int] = []
        for block_id in range(len(blocks)):
            if run_log is not None and run_log.is_completed(level, block_id):
                results[block_id] = run_log.replay_report(level, block_id)
            else:
                pending.append(block_id)
        if pending:
            workers = self.max_workers or os.cpu_count() or 1
            chunk = self.chunksize or max(1, len(pending) // (workers * 4))
            payloads = [
                (i, blocks[i], tree, combo, self.min_clique_size)
                for i in pending
            ]
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                try:
                    for block_id, report in zip(
                        pending,
                        pool.map(_analyze_indexed, payloads, chunksize=chunk),
                    ):
                        if run_log is not None:
                            run_log.record(level, block_id, report)
                        results[block_id] = report
                except BrokenProcessPool as exc:
                    raise ExecutorError(
                        "a worker process died while analysing blocks; "
                        "use SharedMemoryExecutor for in-parent retry",
                        segment_path=_segment_path_of(run_log),
                    ) from exc
        return [results[i] for i in range(len(blocks))]


# ----------------------------------------------------------------------
# Shared-memory executor
# ----------------------------------------------------------------------

# Populated by _shm_worker_init in each pool worker; the attached
# snapshot and the (tree, combo) selection travel once per worker, not
# once per block.
_WORKER_STATE: dict[str, object] = {}


def _shm_worker_init(
    handle: SharedCSRHandle,
    tree: DecisionTree | None,
    combo: Combo | None,
    split_budget: float | None = None,
    min_clique_size: int = 0,
) -> None:
    """Pool initializer: attach to the published CSR snapshot.

    ``split_budget`` (split mode only) is the per-block time budget
    after which a worker stops its kernel sweep and re-splits the rest
    of the block into subtasks; ``None`` disables the mid-run trigger.
    ``min_clique_size`` is the enumeration floor: anchors whose
    candidate neighbourhood cannot reach it are skipped in the workers.
    """
    shared = SharedCSR.attach(handle)
    _WORKER_STATE["shared"] = shared
    _WORKER_STATE["tree"] = tree
    _WORKER_STATE["combo"] = combo
    _WORKER_STATE["scratch"] = BitmapScratch()
    _WORKER_STATE["split_budget"] = split_budget
    _WORKER_STATE["floor"] = min_clique_size


def _worker_floor() -> int:
    """The enumeration floor installed by this worker's initializer."""
    return int(_WORKER_STATE.get("floor", 0) or 0)


def _shm_analyze(descriptor: BlockDescriptor) -> tuple[int, BlockReport]:
    """Analyse one block straight from the attached CSR views.

    The block's backend is materialized from a packed bitmap extracted
    directly out of the shared CSR rows (``analyze_block_csr``) — the
    worker never rebuilds a ``Graph`` or a dict-of-sets adjacency, which
    removes a silent O(edges) reconstruction per block.  The per-worker
    :class:`BitmapScratch` reuses extraction buffers across same-sized
    blocks.
    """
    shared: SharedCSR = _WORKER_STATE["shared"]  # type: ignore[assignment]
    try:
        _maybe_inject_fault(descriptor.block_id)
        report = analyze_block_csr(
            descriptor,
            shared.indptr,
            shared.indices,
            shared.labels,
            tree=_WORKER_STATE["tree"],  # type: ignore[arg-type]
            combo=_WORKER_STATE["combo"],  # type: ignore[arg-type]
            scratch=_WORKER_STATE["scratch"],  # type: ignore[arg-type]
            min_clique_size=_worker_floor(),
        )
    except Exception as exc:
        raise ExecutorError(
            f"block {descriptor.block_id} failed in worker {os.getpid()}: "
            f"{type(exc).__name__}: {exc}",
            block_id=descriptor.block_id,
        ) from exc
    report.extra["dispatch_bytes"] = float(descriptor.nbytes())
    report.extra["peak_rss_kb"] = float(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    )
    report.extra["worker_pid"] = float(os.getpid())
    return descriptor.block_id, report


def _stamp_report(report: BlockReport, dispatch_bytes: int) -> None:
    """Attach the per-task worker metrics every report variant carries."""
    report.extra["dispatch_bytes"] = float(dispatch_bytes)
    report.extra["peak_rss_kb"] = float(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    )
    report.extra["worker_pid"] = float(os.getpid())


def _batch_dispatch_of(bucket: BlockBucket, stats: dict) -> BatchDispatch:
    """Translate a bucket's kernel stats into its trace record."""
    return BatchDispatch(
        n_pad=bucket.n_pad,
        num_blocks=bucket.num_blocks,
        num_tasks=int(stats.get("num_tasks", 0)),
        padding_waste=float(stats.get("padding_waste", 0.0)),
        sweeps=int(stats.get("sweeps", 0)),
        seconds=float(stats.get("seconds", 0.0)),
        worker_pid=int(stats.get("worker_pid", 0)),
    )


def _shm_analyze_batch(
    bucket: BlockBucket,
) -> "tuple[list[tuple[int, BlockReport]], dict]":
    """Analyse one bucket of small blocks as a single fused kernel run.

    Returns the per-block ``(block_id, report)`` pairs in bucket order
    plus the kernel's batch stats; the parent demuxes the pairs into the
    results map exactly as if each block had been dispatched alone.
    """
    shared: SharedCSR = _WORKER_STATE["shared"]  # type: ignore[assignment]
    try:
        for descriptor in bucket.descriptors:
            _maybe_inject_fault(descriptor.block_id)
        stats: dict[str, float] = {}
        reports = analyze_bucket_csr(
            bucket,
            shared.indptr,
            shared.indices,
            shared.labels,
            tree=_WORKER_STATE["tree"],  # type: ignore[arg-type]
            combo=_WORKER_STATE["combo"],  # type: ignore[arg-type]
            scratch=_WORKER_STATE["scratch"],  # type: ignore[arg-type]
            batch_stats=stats,
            min_clique_size=_worker_floor(),
        )
    except Exception as exc:
        first = bucket.descriptors[0].block_id
        raise ExecutorError(
            f"bucket of {bucket.num_blocks} blocks (first block {first}) "
            f"failed in worker {os.getpid()}: {type(exc).__name__}: {exc}",
            block_id=first,
        ) from exc
    pairs = []
    for descriptor, report in zip(bucket.descriptors, reports):
        _stamp_report(report, descriptor.nbytes())
        pairs.append((descriptor.block_id, report))
    stats["worker_pid"] = float(os.getpid())
    return pairs, stats


def _shm_analyze_split(
    descriptor: BlockDescriptor, probe: bool
) -> "tuple[str, object, object]":
    """Split-mode block worker: returns a report or a split.

    ``("report", block_id, BlockReport)`` when the block ran to
    completion, ``("split", SplitResult, trigger)`` when the worker
    handed the (rest of the) kernel sweep back for subtask dispatch —
    ``trigger`` is ``"cost"`` for a parent-requested probe and
    ``"budget"`` for a mid-run overrun of the time budget.
    """
    shared: SharedCSR = _WORKER_STATE["shared"]  # type: ignore[assignment]
    try:
        _maybe_inject_fault(descriptor.block_id)
        outcome = analyze_block_csr_splittable(
            descriptor,
            shared.indptr,
            shared.indices,
            shared.labels,
            tree=_WORKER_STATE["tree"],  # type: ignore[arg-type]
            combo=_WORKER_STATE["combo"],  # type: ignore[arg-type]
            scratch=_WORKER_STATE["scratch"],  # type: ignore[arg-type]
            probe=probe,
            budget_seconds=_WORKER_STATE.get("split_budget"),  # type: ignore[arg-type]
            min_clique_size=_worker_floor(),
        )
    except Exception as exc:
        raise ExecutorError(
            f"block {descriptor.block_id} failed in worker {os.getpid()}: "
            f"{type(exc).__name__}: {exc}",
            block_id=descriptor.block_id,
        ) from exc
    if isinstance(outcome, SplitResult):
        _stamp_report(outcome.partial, descriptor.nbytes())
        return ("split", outcome, "cost" if probe else "budget")
    _stamp_report(outcome, descriptor.nbytes())
    return ("report", descriptor.block_id, outcome)


def _shm_analyze_subtask(
    subtask: SubtaskDescriptor,
) -> tuple[int, int, BlockReport]:
    """Split-mode subtask worker: one anchor range of a split block."""
    shared: SharedCSR = _WORKER_STATE["shared"]  # type: ignore[assignment]
    try:
        _maybe_inject_fault_subtask(subtask.block_id, subtask.subtask_id)
        report = analyze_subtask_csr(
            subtask,
            shared.indptr,
            shared.indices,
            shared.labels,
            tree=_WORKER_STATE["tree"],  # type: ignore[arg-type]
            combo=_WORKER_STATE["combo"],  # type: ignore[arg-type]
            scratch=_WORKER_STATE["scratch"],  # type: ignore[arg-type]
            min_clique_size=_worker_floor(),
        )
    except Exception as exc:
        raise ExecutorError(
            f"subtask {subtask.block_id}.{subtask.subtask_id} failed in "
            f"worker {os.getpid()}: {type(exc).__name__}: {exc}",
            block_id=subtask.block_id,
        ) from exc
    _stamp_report(report, subtask.nbytes())
    return (subtask.block_id, subtask.subtask_id, report)


def _item_name(item: tuple) -> str:
    """Human-readable name of a steal-deque work item (for errors)."""
    if item[0] == "block":
        return f"block {item[1].block_id}"
    if item[0] == "bucket":
        return f"bucket of {item[1].num_blocks} blocks"
    return f"subtask {item[1].block_id}.{item[1].subtask_id}"


def _item_block_id(item: tuple) -> int:
    if item[0] == "bucket":
        return int(item[1].descriptors[0].block_id)
    return int(item[1].block_id)


@dataclass
class _SplitState:
    """Parent-side accumulator for one split block's fragments."""

    descriptor: BlockDescriptor
    total_positions: int
    pending: set[int]
    fragments: list[tuple[int, int, BlockReport]]
    splitter_pid: int

    def complete(self) -> bool:
        return not self.pending

    def merge(self) -> BlockReport:
        return merge_fragment_reports(
            self.descriptor.block_id,
            len(self.descriptor.kernel_ids),
            self.total_positions,
            self.fragments,
        )


@dataclass
class SharedMemoryExecutor:
    """Zero-copy parallel block analysis over a shared CSR snapshot.

    ``map_blocks`` publishes the level graph once (shared memory),
    derives one :class:`BlockDescriptor` per block, and submits the
    descriptors in decreasing estimated-cost order, one task each, so
    idle workers always pull the largest remaining block (dynamic LPT).
    Reports stream back as they complete; per-block wall-clock, worker
    peak RSS and dispatched bytes are collected on :attr:`last_trace`.

    ``retry_failed`` (default on) re-runs a block serially in the parent
    when its worker dies mid-batch — block analyses are pure functions,
    so plain re-execution is exactly correct — and raises
    :class:`ExecutorError` only if the retry fails too.  The shared
    segments are always unlinked, including on the failure paths.

    ``split`` (default off) enables anchor-level splitting: blocks whose
    estimated cost exceeds the split threshold are expanded into
    per-anchor-range subtasks dispatched through a work-stealing deque
    alongside whole blocks, so one straggler block no longer pins the
    batch makespan to a single worker (see ``docs/scheduling.md``).
    ``split_threshold=None`` derives the threshold adaptively from the
    batch's cost distribution
    (:func:`repro.decision.features.adaptive_split_threshold`); a float
    forces it (``0.0`` splits every splittable block, ``inf`` none).
    ``split_subtasks`` caps how many subtasks one block expands into
    (default ``4 × workers``); ``resplit_after_seconds`` is the mid-run
    budget after which a worker re-splits the unfinished tail of a block
    the threshold *missed* (``None`` disables the trigger).

    ``batch_blocks`` (default off) is the opposite lever for the
    *small*-block regime: blocks at or below ``batch_cutoff`` nodes are
    grouped by padded shape into :class:`BlockBucket`\\ s and each bucket
    ships to a worker as one task driving a fused multi-block kernel
    (``analyze_bucket_csr``), amortizing dispatch and numpy call
    overhead over the whole bucket.  ``batch_cutoff=None`` adapts the
    cutoff to the batch's block-size distribution; ``batch_bucket_size``
    caps blocks per bucket so one popular shape still spreads over the
    pool.  Combines with ``split``: buckets ride the steal deque next to
    the probe-eligible large blocks (see ``docs/batching.md``).
    """

    max_workers: int | None = None
    retry_failed: bool = True
    # Reorder-buffer depth for pipeline mode; None = max(4, workers).
    pipeline_lookahead: int | None = None
    split: bool = False
    split_threshold: float | None = None
    split_subtasks: int | None = None
    resplit_after_seconds: float | None = 1.0
    batch_blocks: bool = False
    batch_cutoff: int | None = None
    batch_bucket_size: int = 256
    # Enumeration floor installed in every pool worker (see the driver's
    # min_clique_size): anchors that cannot reach it are skipped.
    min_clique_size: int = 0
    last_trace: ExecutionTrace | None = field(default=None, init=False, repr=False)

    def open_pipeline(
        self,
        tree: DecisionTree | None = None,
        combo: Combo | None = None,
        run_log: RunLog | None = None,
    ) -> "PipelineSession":
        """Start a streaming decompose→dispatch session (pipeline mode).

        The returned :class:`PipelineSession` owns one worker pool for
        the whole multi-level run; the pipeline driver publishes each
        level's CSR and streams descriptors into it while later levels
        are still being decomposed.  The session's trace is installed as
        :attr:`last_trace` immediately, so callers can inspect per-level
        decomposition timing as soon as the run ends.  With a
        ``run_log``, already-completed blocks are replayed at submit
        time and every finished block is spilled the moment its report
        lands in the parent.
        """
        session = PipelineSession(
            self.max_workers,
            tree,
            combo,
            retry_failed=self.retry_failed,
            lookahead=self.pipeline_lookahead,
            split=self.split,
            split_threshold=self.split_threshold,
            split_subtasks=self.split_subtasks,
            resplit_after_seconds=self.resplit_after_seconds,
            batch_blocks=self.batch_blocks,
            batch_cutoff=self.batch_cutoff,
            batch_bucket_size=self.batch_bucket_size,
            min_clique_size=self.min_clique_size,
            run_log=run_log,
        )
        self.last_trace = session.trace
        return session

    def map_blocks(
        self,
        blocks: list[Block],
        tree: DecisionTree | None = None,
        combo: Combo | None = None,
        graph: Graph | None = None,
        run_log: RunLog | None = None,
        level: int = 0,
    ) -> list[BlockReport]:
        """Return one :class:`BlockReport` per block, in block order.

        ``graph`` should be the level graph the blocks were cut from;
        when omitted, the union of the block subgraphs is used (the
        union contains every induced edge of every block, so the
        reconstruction is still exact).
        """
        if not blocks:
            self.last_trace = ExecutionTrace()
            return []
        publish_start = time.perf_counter()
        csr = CSRGraph(graph if graph is not None else _union_graph(blocks))
        index_of = {node: i for i, node in enumerate(csr.labels)}
        descriptors = [
            BlockDescriptor.from_block(i, block, index_of)
            for i, block in enumerate(blocks)
        ]
        shared = SharedCSR.publish(csr)
        trace = ExecutionTrace(
            publish_bytes=shared.nbytes(),
            publish_seconds=time.perf_counter() - publish_start,
        )
        self.last_trace = trace
        results: dict[int, BlockReport] = {}
        pending_ids = []
        for block_id in range(len(blocks)):
            if run_log is not None and run_log.is_completed(level, block_id):
                report = run_log.replay_report(level, block_id)
                results[block_id] = report
                trace.record(_replayed_timing(block_id, report))
            else:
                pending_ids.append(block_id)
        try:
            if pending_ids:
                if self.split:
                    self._map_blocks_split(
                        blocks, descriptors, pending_ids, shared, tree, combo,
                        trace, results, run_log, level,
                    )
                elif self.batch_blocks:
                    self._map_blocks_batched(
                        descriptors, pending_ids, shared, tree, combo,
                        trace, results, run_log, level,
                    )
                else:
                    self._map_blocks_whole(
                        blocks, descriptors, pending_ids, shared, tree, combo,
                        trace, results, run_log, level,
                    )
        finally:
            shared.close()
            shared.unlink()
        return [results[i] for i in range(len(blocks))]

    def _map_blocks_whole(
        self,
        blocks: list[Block],
        descriptors: list[BlockDescriptor],
        pending_ids: list[int],
        shared: SharedCSR,
        tree: DecisionTree | None,
        combo: Combo | None,
        trace: ExecutionTrace,
        results: dict[int, BlockReport],
        run_log: RunLog | None,
        level: int,
    ) -> None:
        """The original whole-block dispatch loop (``split=False``)."""
        costs = {i: descriptors[i].estimated_cost for i in pending_ids}
        order = [
            pending_ids[rank]
            for rank in lpt_order([costs[i] for i in pending_ids])
        ]
        with ProcessPoolExecutor(
            max_workers=self.max_workers,
            initializer=_shm_worker_init,
            initargs=(shared.handle, tree, combo, None, self.min_clique_size),
        ) as pool:
            pending = {
                pool.submit(_shm_analyze, descriptors[i]): i for i in order
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    block_id = pending.pop(future)
                    try:
                        _, report = future.result()
                    except BrokenProcessPool:
                        report = self._retry(
                            blocks[block_id], block_id, tree, combo, run_log
                        )
                    except ExecutorError as exc:
                        exc.segment_path = _segment_path_of(run_log)
                        raise
                    if run_log is not None:
                        trace.record_flush(
                            run_log.record(level, block_id, report)
                        )
                    results[block_id] = report
                    trace.record(_timing_of(block_id, report))

    def _effective_cutoff(self, pending: "list[BlockDescriptor]") -> int:
        """The batch size cutoff: explicit, or adapted to this batch."""
        if self.batch_cutoff is not None:
            return self.batch_cutoff
        return adaptive_batch_cutoff([d.size for d in pending])

    def _map_blocks_batched(
        self,
        descriptors: list[BlockDescriptor],
        pending_ids: list[int],
        shared: SharedCSR,
        tree: DecisionTree | None,
        combo: Combo | None,
        trace: ExecutionTrace,
        results: dict[int, BlockReport],
        run_log: RunLog | None,
        level: int,
    ) -> None:
        """Bucketed dispatch loop (``batch_blocks=True``, ``split=False``).

        Small blocks travel as whole same-shape buckets — one future per
        bucket, one fused kernel run per future — while blocks above the
        cutoff keep the per-block path.  Work units are submitted in
        decreasing estimated-cost order (a bucket's cost is the sum of
        its members'), so dynamic LPT balancing is preserved at the
        work-unit level.  When the pool breaks, the failed unit is
        re-run in the parent from the still-mapped segments: the whole
        bucket for a bucket unit, the single block otherwise.
        """
        pending = [descriptors[i] for i in pending_ids]
        cutoff = self._effective_cutoff(pending)
        buckets, singles = form_buckets(
            pending, cutoff, max_bucket=self.batch_bucket_size
        )
        units: list[tuple] = [("bucket", bucket) for bucket in buckets]
        units.extend(("block", descriptor) for descriptor in singles)
        # Both payload kinds expose estimated_cost (a bucket's is the sum
        # of its members'), so one LPT ordering covers the mixed units.
        costs = [unit[1].estimated_cost for unit in units]
        scratch = BitmapScratch()

        def finish_block(block_id: int, report: BlockReport) -> None:
            if run_log is not None:
                trace.record_flush(run_log.record(level, block_id, report))
            results[block_id] = report
            trace.record(_timing_of(block_id, report))

        def finish_bucket(
            bucket: BlockBucket,
            pairs: "list[tuple[int, BlockReport]]",
            stats: dict,
        ) -> None:
            trace.record_batch(_batch_dispatch_of(bucket, stats))
            for block_id, report in pairs:
                finish_block(block_id, report)

        def run_in_parent(item: tuple) -> None:
            if not self.retry_failed:
                raise ExecutorError(
                    f"worker process died while analysing {_item_name(item)}",
                    block_id=_item_block_id(item),
                    segment_path=_segment_path_of(run_log),
                )
            if item[0] == "bucket":
                bucket = item[1]
                reports, stats = self._analyze_bucket_in_parent(
                    bucket, shared, tree, combo, scratch, retried=True
                )
                finish_bucket(
                    bucket,
                    [
                        (descriptor.block_id, report)
                        for descriptor, report in zip(bucket.descriptors, reports)
                    ],
                    stats,
                )
            else:
                descriptor = item[1]
                report = self._analyze_in_parent(
                    descriptor, shared, tree, combo, scratch, retried=True
                )
                finish_block(descriptor.block_id, report)

        with ProcessPoolExecutor(
            max_workers=self.max_workers,
            initializer=_shm_worker_init,
            initargs=(shared.handle, tree, combo, None, self.min_clique_size),
        ) as pool:
            futures: dict[object, tuple] = {}
            for rank in lpt_order(costs):
                kind, payload = units[rank]
                fn = _shm_analyze_batch if kind == "bucket" else _shm_analyze
                futures[pool.submit(fn, payload)] = units[rank]
            while futures:
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    item = futures.pop(future)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        run_in_parent(item)
                        continue
                    except ExecutorError as exc:
                        exc.segment_path = _segment_path_of(run_log)
                        raise
                    if item[0] == "bucket":
                        pairs, stats = outcome
                        finish_bucket(item[1], pairs, stats)
                    else:
                        block_id, report = outcome
                        finish_block(block_id, report)

    def _analyze_bucket_in_parent(
        self,
        bucket: BlockBucket,
        shared: SharedCSR,
        tree: DecisionTree | None,
        combo: Combo | None,
        scratch: BitmapScratch,
        retried: bool,
    ) -> "tuple[list[BlockReport], dict]":
        """Run one whole bucket in the parent from the mapped segments."""
        try:
            stats: dict[str, float] = {}
            reports = analyze_bucket_csr(
                bucket,
                shared.indptr,
                shared.indices,
                shared.labels,
                tree=tree,
                combo=combo,
                scratch=scratch,
                batch_stats=stats,
                min_clique_size=self.min_clique_size,
            )
        except Exception as exc:
            first = bucket.descriptors[0].block_id
            raise ExecutorError(
                f"bucket of {bucket.num_blocks} blocks (first block {first}) "
                f"failed again on in-parent retry: "
                f"{type(exc).__name__}: {exc}",
                block_id=first,
            ) from exc
        for descriptor, report in zip(bucket.descriptors, reports):
            if retried:
                report.extra["retried"] = 1.0
            report.extra["dispatch_bytes"] = float(descriptor.nbytes())
        return reports, stats

    def _map_blocks_split(
        self,
        blocks: list[Block],
        descriptors: list[BlockDescriptor],
        pending_ids: list[int],
        shared: SharedCSR,
        tree: DecisionTree | None,
        combo: Combo | None,
        trace: ExecutionTrace,
        results: dict[int, BlockReport],
        run_log: RunLog | None,
        level: int,
    ) -> None:
        """Work-stealing dispatch loop with anchor-level splitting.

        Tasks live on a parent-side :class:`StealDeque`: whole blocks
        enter at the cold end in LPT order, subtasks spawned by splits
        enter at the hot end and dispatch first.  At most
        ``workers + 2`` futures are in flight, so a freshly split
        straggler's subtasks reach idle workers ahead of the queued
        whole-block tail — the parent-mediated equivalent of idle
        workers stealing from the busy worker's deque.  When the pool
        breaks (a worker died), the failed task — and only it — is
        re-executed in the parent, at subtask granularity for split
        blocks, and the remaining queue drains in the parent.

        A split block is spilled to the run log only when its merged
        report is assembled — fragments are an execution detail; the
        durable unit is the whole block, recorded exactly once.
        """
        workers = self.max_workers or os.cpu_count() or 1
        costs = [descriptors[i].estimated_cost for i in pending_ids]
        threshold = (
            self.split_threshold
            if self.split_threshold is not None
            else adaptive_split_threshold(costs, workers)
        )
        target = self.split_subtasks or max(2, 4 * workers)
        pending = [descriptors[i] for i in pending_ids]
        if self.batch_blocks:
            # Buckets and large blocks share the deque: the cutoff decides
            # which regime a block belongs to, the split threshold (always
            # above the cutoff in practice) which large blocks probe.
            buckets, loose = form_buckets(
                pending,
                self._effective_cutoff(pending),
                max_bucket=self.batch_bucket_size,
            )
        else:
            buckets, loose = [], pending
        units: list[tuple] = [("bucket", bucket) for bucket in buckets]
        for descriptor in loose:
            probe = (
                descriptor.estimated_cost > threshold
                and len(descriptor.kernel_ids) >= 2
            )
            units.append(("block", descriptor, probe))
        queue = StealDeque()
        for rank in lpt_order([unit[1].estimated_cost for unit in units]):
            queue.push_initial(units[rank])
        states: dict[int, _SplitState] = {}
        scratch = BitmapScratch()
        futures: dict[object, tuple] = {}
        in_flight_cap = workers + 2
        pool_broken = False

        def finish_block(block_id: int, report: BlockReport) -> None:
            if run_log is not None:
                trace.record_flush(run_log.record(level, block_id, report))
            results[block_id] = report
            trace.record(_timing_of(block_id, report))

        def finish_bucket(
            bucket: BlockBucket,
            pairs: "list[tuple[int, BlockReport]]",
            stats: dict,
        ) -> None:
            trace.record_batch(_batch_dispatch_of(bucket, stats))
            for block_id, report in pairs:
                finish_block(block_id, report)

        def finish_subtask(
            subtask: SubtaskDescriptor,
            report: BlockReport,
            splitter_pid: int,
            retried: bool,
        ) -> None:
            state = states[subtask.block_id]
            state.fragments.append((subtask.start, subtask.stop, report))
            worker_pid = int(report.extra.get("worker_pid", 0.0))
            trace.record_subtask(
                SubtaskTiming(
                    block_id=subtask.block_id,
                    subtask_id=subtask.subtask_id,
                    start=subtask.start,
                    stop=subtask.stop,
                    seconds=report.seconds,
                    cliques=len(report.cliques),
                    worker_pid=worker_pid,
                    stolen=worker_pid != 0 and worker_pid != splitter_pid,
                    retried=retried,
                )
            )
            state.pending.discard(subtask.subtask_id)
            if state.complete():
                finish_block(subtask.block_id, state.merge())

        def handle_split(
            descriptor: BlockDescriptor, split: SplitResult, trigger: str
        ) -> None:
            splitter_pid = int(split.partial.extra.get("worker_pid", 0.0))
            subtasks = build_subtasks(
                descriptor, split.kernel_order, split.anchor_costs,
                split.done, target,
            )
            state = _SplitState(
                descriptor=descriptor,
                total_positions=len(split.kernel_order),
                pending={subtask.subtask_id for subtask in subtasks},
                fragments=[(0, split.done, split.partial)],
                splitter_pid=splitter_pid,
            )
            states[descriptor.block_id] = state
            trace.record_split(
                SplitDecision(
                    block_id=descriptor.block_id,
                    estimated_cost=descriptor.estimated_cost,
                    threshold=threshold,
                    num_subtasks=len(subtasks),
                    splitter_pid=splitter_pid,
                    trigger=trigger,
                )
            )
            trace.record_subtask(
                SubtaskTiming(
                    block_id=descriptor.block_id,
                    subtask_id=-1,
                    start=0,
                    stop=split.done,
                    seconds=split.partial.seconds,
                    cliques=len(split.partial.cliques),
                    worker_pid=splitter_pid,
                )
            )
            queue.push_spawned(
                ("subtask", subtask, splitter_pid) for subtask in subtasks
            )
            if not subtasks and state.complete():
                finish_block(descriptor.block_id, state.merge())

        def run_in_parent(item: tuple, retried: bool) -> None:
            if retried and not self.retry_failed:
                raise ExecutorError(
                    f"worker process died while analysing "
                    f"{_item_name(item)}",
                    block_id=_item_block_id(item),
                    segment_path=_segment_path_of(run_log),
                )
            if item[0] == "block":
                descriptor = item[1]
                report = self._analyze_in_parent(
                    descriptor, shared, tree, combo, scratch, retried
                )
                finish_block(descriptor.block_id, report)
            elif item[0] == "bucket":
                bucket = item[1]
                reports, stats = self._analyze_bucket_in_parent(
                    bucket, shared, tree, combo, scratch, retried
                )
                finish_bucket(
                    bucket,
                    [
                        (descriptor.block_id, report)
                        for descriptor, report in zip(bucket.descriptors, reports)
                    ],
                    stats,
                )
            else:
                _, subtask, splitter_pid = item
                report = self._analyze_subtask_in_parent(
                    subtask, shared, tree, combo, scratch, retried
                )
                finish_subtask(subtask, report, splitter_pid, retried)

        def dispatch(pool: ProcessPoolExecutor) -> None:
            nonlocal pool_broken
            while queue and (pool_broken or len(futures) < in_flight_cap):
                item = queue.take()
                if pool_broken:
                    run_in_parent(item, retried=True)
                    continue
                try:
                    if item[0] == "block":
                        future = pool.submit(_shm_analyze_split, item[1], item[2])
                    elif item[0] == "bucket":
                        future = pool.submit(_shm_analyze_batch, item[1])
                    else:
                        future = pool.submit(_shm_analyze_subtask, item[1])
                except BrokenProcessPool:
                    pool_broken = True
                    run_in_parent(item, retried=True)
                    continue
                futures[future] = item

        with ProcessPoolExecutor(
            max_workers=self.max_workers,
            initializer=_shm_worker_init,
            initargs=(
                shared.handle,
                tree,
                combo,
                self.resplit_after_seconds,
                self.min_clique_size,
            ),
        ) as pool:
            dispatch(pool)
            while futures or queue:
                if not futures:
                    dispatch(pool)
                    continue
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    item = futures.pop(future)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        pool_broken = True
                        run_in_parent(item, retried=True)
                        continue
                    except ExecutorError as exc:
                        exc.segment_path = _segment_path_of(run_log)
                        raise
                    if item[0] == "block":
                        kind = outcome[0]
                        if kind == "split":
                            handle_split(item[1], outcome[1], outcome[2])
                        else:
                            finish_block(outcome[1], outcome[2])
                    elif item[0] == "bucket":
                        pairs, stats = outcome
                        finish_bucket(item[1], pairs, stats)
                    else:
                        _, _, report = outcome
                        finish_subtask(item[1], report, item[2], retried=False)
                dispatch(pool)
        missing = [
            block_id for block_id, state in states.items() if not state.complete()
        ]
        if missing:
            raise ExecutorError(
                f"split blocks {missing} ended with unprocessed subtasks",
                block_id=missing[0],
                segment_path=_segment_path_of(run_log),
            )

    def _analyze_in_parent(
        self,
        descriptor: BlockDescriptor,
        shared: SharedCSR,
        tree: DecisionTree | None,
        combo: Combo | None,
        scratch: BitmapScratch,
        retried: bool,
    ) -> BlockReport:
        """Run one whole block in the parent from the mapped segments."""
        try:
            report = analyze_block_csr(
                descriptor,
                shared.indptr,
                shared.indices,
                shared.labels,
                tree=tree,
                combo=combo,
                scratch=scratch,
                min_clique_size=self.min_clique_size,
            )
        except Exception as exc:
            raise ExecutorError(
                f"block {descriptor.block_id} failed again on in-parent "
                f"retry: {type(exc).__name__}: {exc}",
                block_id=descriptor.block_id,
            ) from exc
        if retried:
            report.extra["retried"] = 1.0
        report.extra["dispatch_bytes"] = float(descriptor.nbytes())
        return report

    def _analyze_subtask_in_parent(
        self,
        subtask: SubtaskDescriptor,
        shared: SharedCSR,
        tree: DecisionTree | None,
        combo: Combo | None,
        scratch: BitmapScratch,
        retried: bool,
    ) -> BlockReport:
        """Run one subtask in the parent from the mapped segments."""
        try:
            report = analyze_subtask_csr(
                subtask,
                shared.indptr,
                shared.indices,
                shared.labels,
                tree=tree,
                combo=combo,
                scratch=scratch,
                min_clique_size=self.min_clique_size,
            )
        except Exception as exc:
            raise ExecutorError(
                f"subtask {subtask.block_id}.{subtask.subtask_id} failed "
                f"again on in-parent retry: {type(exc).__name__}: {exc}",
                block_id=subtask.block_id,
            ) from exc
        if retried:
            report.extra["retried"] = 1.0
        report.extra["dispatch_bytes"] = float(subtask.nbytes())
        return report

    def _retry(
        self,
        block: Block,
        block_id: int,
        tree: DecisionTree | None,
        combo: Combo | None,
        run_log: RunLog | None = None,
    ) -> BlockReport:
        """Re-run a block whose worker died; in the parent, serially."""
        if not self.retry_failed:
            raise ExecutorError(
                f"worker process died while analysing block {block_id}",
                block_id=block_id,
                segment_path=_segment_path_of(run_log),
            )
        try:
            report = analyze_block(
                block,
                tree=tree,
                combo=combo,
                min_clique_size=self.min_clique_size,
            )
        except Exception as exc:
            raise ExecutorError(
                f"block {block_id} failed again on in-parent retry: "
                f"{type(exc).__name__}: {exc}",
                block_id=block_id,
            ) from exc
        report.extra["retried"] = 1.0
        return report


def _pipeline_worker_init(
    tree: DecisionTree | None,
    combo: Combo | None,
    split_budget: float | None = None,
    min_clique_size: int = 0,
) -> None:
    """Pool initializer for pipeline mode: no snapshot yet, just state.

    Unlike :func:`_shm_worker_init`, the worker does not attach to one
    fixed snapshot — the pipeline publishes one CSR per recursion level
    and each task names its level's handle, so workers attach lazily and
    cache the attachment per segment name.
    """
    _WORKER_STATE["tree"] = tree
    _WORKER_STATE["combo"] = combo
    _WORKER_STATE["scratch"] = BitmapScratch()
    _WORKER_STATE["attached"] = {}
    _WORKER_STATE["split_budget"] = split_budget
    _WORKER_STATE["floor"] = min_clique_size


def _pipeline_attach(handle: SharedCSRHandle) -> SharedCSR:
    """Attach (or reuse) this worker's mapping of one level's snapshot."""
    attached: dict[str, SharedCSR] = _WORKER_STATE["attached"]  # type: ignore[assignment]
    shared = attached.get(handle.indptr_name)
    if shared is None:
        shared = SharedCSR.attach(handle)
        attached[handle.indptr_name] = shared
    return shared


def _pipeline_analyze(
    handle: SharedCSRHandle, descriptor: BlockDescriptor
) -> tuple[int, BlockReport]:
    """Analyse one streamed block against its level's shared snapshot."""
    shared = _pipeline_attach(handle)
    try:
        _maybe_inject_fault(descriptor.block_id)
        report = analyze_block_csr(
            descriptor,
            shared.indptr,
            shared.indices,
            shared.labels,
            tree=_WORKER_STATE["tree"],  # type: ignore[arg-type]
            combo=_WORKER_STATE["combo"],  # type: ignore[arg-type]
            scratch=_WORKER_STATE["scratch"],  # type: ignore[arg-type]
            min_clique_size=_worker_floor(),
        )
    except Exception as exc:
        raise ExecutorError(
            f"block {descriptor.block_id} failed in worker {os.getpid()}: "
            f"{type(exc).__name__}: {exc}",
            block_id=descriptor.block_id,
        ) from exc
    _stamp_report(report, descriptor.nbytes())
    return descriptor.block_id, report


def _pipeline_analyze_split(
    handle: SharedCSRHandle, descriptor: BlockDescriptor, probe: bool
) -> "tuple[str, object, object]":
    """Split-mode pipeline block worker; see :func:`_shm_analyze_split`."""
    shared = _pipeline_attach(handle)
    try:
        _maybe_inject_fault(descriptor.block_id)
        outcome = analyze_block_csr_splittable(
            descriptor,
            shared.indptr,
            shared.indices,
            shared.labels,
            tree=_WORKER_STATE["tree"],  # type: ignore[arg-type]
            combo=_WORKER_STATE["combo"],  # type: ignore[arg-type]
            scratch=_WORKER_STATE["scratch"],  # type: ignore[arg-type]
            probe=probe,
            budget_seconds=_WORKER_STATE.get("split_budget"),  # type: ignore[arg-type]
            min_clique_size=_worker_floor(),
        )
    except Exception as exc:
        raise ExecutorError(
            f"block {descriptor.block_id} failed in worker {os.getpid()}: "
            f"{type(exc).__name__}: {exc}",
            block_id=descriptor.block_id,
        ) from exc
    if isinstance(outcome, SplitResult):
        _stamp_report(outcome.partial, descriptor.nbytes())
        return ("split", outcome, "cost" if probe else "budget")
    _stamp_report(outcome, descriptor.nbytes())
    return ("report", descriptor.block_id, outcome)


def _pipeline_analyze_subtask(
    handle: SharedCSRHandle, subtask: SubtaskDescriptor
) -> tuple[int, int, BlockReport]:
    """Split-mode pipeline subtask worker; see :func:`_shm_analyze_subtask`."""
    shared = _pipeline_attach(handle)
    try:
        _maybe_inject_fault_subtask(subtask.block_id, subtask.subtask_id)
        report = analyze_subtask_csr(
            subtask,
            shared.indptr,
            shared.indices,
            shared.labels,
            tree=_WORKER_STATE["tree"],  # type: ignore[arg-type]
            combo=_WORKER_STATE["combo"],  # type: ignore[arg-type]
            scratch=_WORKER_STATE["scratch"],  # type: ignore[arg-type]
            min_clique_size=_worker_floor(),
        )
    except Exception as exc:
        raise ExecutorError(
            f"subtask {subtask.block_id}.{subtask.subtask_id} failed in "
            f"worker {os.getpid()}: {type(exc).__name__}: {exc}",
            block_id=subtask.block_id,
        ) from exc
    _stamp_report(report, subtask.nbytes())
    return (subtask.block_id, subtask.subtask_id, report)


def _pipeline_analyze_batch(
    handle: SharedCSRHandle, bucket: BlockBucket
) -> "tuple[list[tuple[int, BlockReport]], dict]":
    """Batched pipeline bucket worker; see :func:`_shm_analyze_batch`."""
    shared = _pipeline_attach(handle)
    try:
        for descriptor in bucket.descriptors:
            _maybe_inject_fault(descriptor.block_id)
        stats: dict[str, float] = {}
        reports = analyze_bucket_csr(
            bucket,
            shared.indptr,
            shared.indices,
            shared.labels,
            tree=_WORKER_STATE["tree"],  # type: ignore[arg-type]
            combo=_WORKER_STATE["combo"],  # type: ignore[arg-type]
            scratch=_WORKER_STATE["scratch"],  # type: ignore[arg-type]
            batch_stats=stats,
            min_clique_size=_worker_floor(),
        )
    except Exception as exc:
        first = bucket.descriptors[0].block_id
        raise ExecutorError(
            f"bucket of {bucket.num_blocks} blocks (first block {first}) "
            f"failed in worker {os.getpid()}: {type(exc).__name__}: {exc}",
            block_id=first,
        ) from exc
    pairs = []
    for descriptor, report in zip(bucket.descriptors, reports):
        _stamp_report(report, descriptor.nbytes())
        pairs.append((descriptor.block_id, report))
    stats["worker_pid"] = float(os.getpid())
    return pairs, stats


class PipelineSession:
    """One streaming decompose→dispatch run over a shared worker pool.

    The producer (the pipeline driver) interleaves three calls per
    recursion level — :meth:`publish_level` (export the level CSR to
    shared memory once), :meth:`submit` (hand over each
    :class:`BlockDescriptor` the moment ``blocks_csr`` yields it), and
    :meth:`end_level` (flush the reorder buffer and record the level's
    decomposition timing) — then a single :meth:`finish` that waits for
    every in-flight block and returns the reports grouped by level.
    Workers start consuming level-0 blocks while later levels are still
    being decomposed; a :class:`~repro.distributed.scheduler.StreamingLPTBuffer`
    gives the dispatch order a bounded-lookahead LPT shape.

    Lifetime rules: every published segment stays mapped in the parent
    (retries read it) and alive for attached workers until
    :meth:`close`, which shuts the pool down *before* unlinking — call
    it from a ``finally`` block, as the pipeline driver does.  When a
    worker dies mid-run the affected blocks are re-analysed in the
    parent from the still-mapped segments (pure function, so plain
    re-execution is exactly correct), matching ``map_blocks`` semantics.
    """

    def __init__(
        self,
        max_workers: int | None,
        tree: DecisionTree | None,
        combo: Combo | None,
        retry_failed: bool = True,
        lookahead: int | None = None,
        split: bool = False,
        split_threshold: float | None = None,
        split_subtasks: int | None = None,
        resplit_after_seconds: float | None = 1.0,
        batch_blocks: bool = False,
        batch_cutoff: int | None = None,
        batch_bucket_size: int = 256,
        min_clique_size: int = 0,
        run_log: RunLog | None = None,
    ) -> None:
        workers = max_workers or os.cpu_count() or 1
        self._workers = workers
        self._tree = tree
        self._combo = combo
        self._retry_failed = retry_failed
        self._run_log = run_log
        self._min_clique_size = min_clique_size
        self._split = split
        self._split_threshold = split_threshold
        self._split_target = split_subtasks or max(2, 4 * workers)
        self._batch = batch_blocks
        # The stream never sees the whole batch, so an adaptive cutoff
        # has nothing to adapt to: default to the one-word floor.
        self._accumulator = BatchAccumulator(
            cutoff=batch_cutoff if batch_cutoff is not None else 64,
            bucket_target=batch_bucket_size,
        )
        self._batch_level: int | None = None
        self._pool = ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_pipeline_worker_init,
            initargs=(
                tree,
                combo,
                resplit_after_seconds if split else None,
                min_clique_size,
            ),
        )
        self._buffer = StreamingLPTBuffer(
            lookahead if lookahead is not None else max(4, workers)
        )
        self._published: dict[int, SharedCSR] = {}
        self._publish_stats: dict[int, tuple[float, int]] = {}
        # future -> (level, descriptor, subtask-or-None, splitter_pid)
        self._futures: dict[object, tuple] = {}
        self._results: dict[tuple[int, int], BlockReport] = {}
        self._split_states: dict[tuple[int, int], _SplitState] = {}
        self._costs_seen: list[float] = []
        self._parent_scratch = BitmapScratch()
        self._closed = False
        self.trace = ExecutionTrace()

    # -- producer side -----------------------------------------------------
    def publish_level(self, level: int, csr: CSRGraph) -> None:
        """Export one level's CSR snapshot to shared memory (once)."""
        start = time.perf_counter()
        shared = SharedCSR.publish(csr)
        self._published[level] = shared
        self._publish_stats[level] = (time.perf_counter() - start, shared.nbytes())
        self.trace.publish_bytes += shared.nbytes()
        self.trace.publish_seconds += self._publish_stats[level][0]

    def submit(self, level: int, descriptor: BlockDescriptor) -> None:
        """Queue one streamed block; may dispatch buffered blocks.

        A block already completed by a previous run never enters the
        dispatch buffer: its stored report is replayed immediately, so a
        resumed run spends zero worker time on it.
        """
        if self._run_log is not None and self._run_log.is_completed(
            level, descriptor.block_id
        ):
            report = self._run_log.replay_report(level, descriptor.block_id)
            self._results[(level, descriptor.block_id)] = report
            self.trace.record(_replayed_timing(descriptor.block_id, report))
            return
        self._costs_seen.append(descriptor.estimated_cost)
        if self._batch and self._accumulator.is_small(descriptor.size):
            # A level's buckets are flushed at end_level, but guard the
            # transition anyway: a bucket must never mix levels (each
            # bucket runs against a single published snapshot).
            if self._batch_level is not None and self._batch_level != level:
                self._flush_buckets(self._batch_level)
            self._batch_level = level
            group = self._accumulator.push(
                descriptor, descriptor.size, padded_size(descriptor.size)
            )
            if group is not None:
                self._dispatch_bucket(
                    level,
                    BlockBucket(
                        n_pad=padded_size(group[0].size),
                        descriptors=tuple(group),
                    ),
                )
            return
        for released in self._buffer.push(
            descriptor.estimated_cost, (level, descriptor)
        ):
            self._dispatch(*released)  # type: ignore[misc]

    def end_level(
        self,
        level: int,
        decompose_seconds: float,
        num_blocks: int,
        num_feasible: int,
        num_hubs: int,
    ) -> None:
        """Flush this level's buffered blocks and record its timing."""
        if self._batch and self._batch_level is not None:
            self._flush_buckets(self._batch_level)
        for released in self._buffer.drain():
            self._dispatch(*released)  # type: ignore[misc]
        publish_seconds, publish_bytes = self._publish_stats.get(level, (0.0, 0))
        self.trace.record_level(
            LevelDecomposition(
                level=level,
                decompose_seconds=decompose_seconds,
                publish_seconds=publish_seconds,
                publish_bytes=publish_bytes,
                num_blocks=num_blocks,
                num_feasible=num_feasible,
                num_hubs=num_hubs,
            )
        )

    # -- consumer side -----------------------------------------------------
    def finish(self) -> dict[int, dict[int, BlockReport]]:
        """Wait for every in-flight block; reports by ``[level][block_id]``.

        Raises
        ------
        ExecutorError
            When a worker raised while analysing a block, or a died
            worker's block failed again on the in-parent retry.
        """
        if self._batch and self._batch_level is not None:
            self._flush_buckets(self._batch_level)
        for released in self._buffer.drain():
            self._dispatch(*released)  # type: ignore[misc]
        while self._futures:
            done, _ = wait(self._futures, return_when=FIRST_COMPLETED)
            for future in done:
                level, descriptor, subtask, splitter_pid = self._futures.pop(
                    future
                )
                try:
                    outcome = future.result()
                except BrokenProcessPool:
                    if subtask == "bucket":
                        pairs, stats = self._parent_retry_bucket(
                            level, descriptor
                        )
                        self._record_bucket(level, descriptor, pairs, stats)
                    elif subtask is not None:
                        report = self._parent_retry_subtask(level, subtask)
                        self._finish_subtask(
                            level, descriptor, subtask, report,
                            splitter_pid, retried=True,
                        )
                    else:
                        report = self._parent_retry(level, descriptor)
                        self._record(level, descriptor, report)
                    continue
                except ExecutorError as exc:
                    exc.segment_path = _segment_path_of(self._run_log)
                    raise
                if subtask == "bucket":
                    pairs, stats = outcome
                    self._record_bucket(level, descriptor, pairs, stats)
                elif subtask is not None:
                    _, _, report = outcome
                    self._finish_subtask(
                        level, descriptor, subtask, report,
                        splitter_pid, retried=False,
                    )
                elif self._split:
                    if outcome[0] == "split":
                        self._handle_split(
                            level, descriptor, outcome[1], outcome[2]
                        )
                    else:
                        self._record(level, descriptor, outcome[2])
                else:
                    _, report = outcome
                    self._record(level, descriptor, report)
        incomplete = [
            key
            for key, state in self._split_states.items()
            if not state.complete()
        ]
        if incomplete:
            raise ExecutorError(
                f"split blocks {incomplete} ended with unprocessed subtasks",
                block_id=incomplete[0][1],
                segment_path=_segment_path_of(self._run_log),
            )
        grouped: dict[int, dict[int, BlockReport]] = {}
        for (level, block_id), report in self._results.items():
            grouped.setdefault(level, {})[block_id] = report
        return grouped

    def close(self) -> None:
        """Shut the pool down, then unlink every published segment."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True, cancel_futures=True)
        for shared in self._published.values():
            shared.close()
            shared.unlink()

    def __enter__(self) -> "PipelineSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals ---------------------------------------------------------
    def _current_threshold(self) -> float:
        """Split threshold from the cost stream observed so far.

        An explicit ``split_threshold`` wins; otherwise the adaptive
        heuristic is recomputed at each dispatch from every cost the
        producer has submitted up to now — the streaming analogue of the
        barrier executor's whole-batch distribution.
        """
        if self._split_threshold is not None:
            return self._split_threshold
        return adaptive_split_threshold(self._costs_seen, self._workers)

    def _dispatch(self, level: int, descriptor: BlockDescriptor) -> None:
        handle = self._published[level].handle
        if self._split:
            probe = (
                descriptor.estimated_cost > self._current_threshold()
                and len(descriptor.kernel_ids) >= 2
            )
            try:
                future = self._pool.submit(
                    _pipeline_analyze_split, handle, descriptor, probe
                )
            except BrokenProcessPool:
                report = self._parent_retry(level, descriptor)
                self._record(level, descriptor, report)
                return
            self._futures[future] = (level, descriptor, None, 0)
            return
        try:
            future = self._pool.submit(_pipeline_analyze, handle, descriptor)
        except BrokenProcessPool:
            # The pool died earlier in the run; analyse in the parent so
            # the stream keeps flowing and no block is lost.
            report = self._parent_retry(level, descriptor)
            self._record(level, descriptor, report)
            return
        self._futures[future] = (level, descriptor, None, 0)

    def _flush_buckets(self, level: int) -> None:
        """Dispatch every partially filled shape group of ``level``."""
        for group in self._accumulator.drain():
            self._dispatch_bucket(
                level,
                BlockBucket(
                    n_pad=padded_size(group[0].size),
                    descriptors=tuple(group),
                ),
            )
        self._batch_level = None

    def _dispatch_bucket(self, level: int, bucket: BlockBucket) -> None:
        handle = self._published[level].handle
        try:
            future = self._pool.submit(_pipeline_analyze_batch, handle, bucket)
        except BrokenProcessPool:
            pairs, stats = self._parent_retry_bucket(level, bucket)
            self._record_bucket(level, bucket, pairs, stats)
            return
        # The "bucket" sentinel in the subtask slot routes the future's
        # outcome to _record_bucket in finish().
        self._futures[future] = (level, bucket, "bucket", 0)

    def _parent_retry_bucket(
        self, level: int, bucket: BlockBucket
    ) -> "tuple[list[tuple[int, BlockReport]], dict]":
        """Re-run one whole bucket in the parent after its worker died."""
        first = bucket.descriptors[0].block_id
        if not self._retry_failed:
            raise ExecutorError(
                f"worker process died while analysing a bucket of "
                f"{bucket.num_blocks} blocks (first block {first}) of "
                f"level {level}",
                block_id=first,
                segment_path=_segment_path_of(self._run_log),
            )
        shared = self._published[level]
        try:
            stats: dict[str, float] = {}
            reports = analyze_bucket_csr(
                bucket,
                shared.indptr,
                shared.indices,
                shared.labels,
                tree=self._tree,
                combo=self._combo,
                scratch=self._parent_scratch,
                batch_stats=stats,
                min_clique_size=self._min_clique_size,
            )
        except Exception as exc:
            raise ExecutorError(
                f"bucket of {bucket.num_blocks} blocks (first block {first}) "
                f"of level {level} failed again on in-parent retry: "
                f"{type(exc).__name__}: {exc}",
                block_id=first,
            ) from exc
        pairs = []
        for descriptor, report in zip(bucket.descriptors, reports):
            report.extra["retried"] = 1.0
            report.extra["dispatch_bytes"] = float(descriptor.nbytes())
            pairs.append((descriptor.block_id, report))
        return pairs, stats

    def _record_bucket(
        self,
        level: int,
        bucket: BlockBucket,
        pairs: "list[tuple[int, BlockReport]]",
        stats: dict,
    ) -> None:
        self.trace.record_batch(_batch_dispatch_of(bucket, stats))
        for block_id, report in pairs:
            if self._run_log is not None:
                self.trace.record_flush(
                    self._run_log.record(level, block_id, report)
                )
            self._results[(level, block_id)] = report
            self.trace.record(_timing_of(block_id, report))

    def _handle_split(
        self,
        level: int,
        descriptor: BlockDescriptor,
        split: SplitResult,
        trigger: str,
    ) -> None:
        """Expand a split response into subtask submissions.

        In pipeline mode the pool's shared task queue *is* the steal
        target: every idle worker pulls from it, so subtasks submitted
        here are picked up by whichever workers free up first — ahead of
        blocks still buffered in the :class:`StreamingLPTBuffer`, which
        only release on later ``submit``/``drain`` calls.
        """
        splitter_pid = int(split.partial.extra.get("worker_pid", 0.0))
        subtasks = build_subtasks(
            descriptor,
            split.kernel_order,
            split.anchor_costs,
            split.done,
            self._split_target,
        )
        state = _SplitState(
            descriptor=descriptor,
            total_positions=len(split.kernel_order),
            pending={subtask.subtask_id for subtask in subtasks},
            fragments=[(0, split.done, split.partial)],
            splitter_pid=splitter_pid,
        )
        self._split_states[(level, descriptor.block_id)] = state
        self.trace.record_split(
            SplitDecision(
                block_id=descriptor.block_id,
                estimated_cost=descriptor.estimated_cost,
                threshold=self._current_threshold(),
                num_subtasks=len(subtasks),
                splitter_pid=splitter_pid,
                trigger=trigger,
            )
        )
        self.trace.record_subtask(
            SubtaskTiming(
                block_id=descriptor.block_id,
                subtask_id=-1,
                start=0,
                stop=split.done,
                seconds=split.partial.seconds,
                cliques=len(split.partial.cliques),
                worker_pid=splitter_pid,
            )
        )
        handle = self._published[level].handle
        for subtask in subtasks:
            try:
                future = self._pool.submit(
                    _pipeline_analyze_subtask, handle, subtask
                )
            except BrokenProcessPool:
                report = self._parent_retry_subtask(level, subtask)
                self._finish_subtask(
                    level, descriptor, subtask, report,
                    splitter_pid, retried=True,
                )
                continue
            self._futures[future] = (level, descriptor, subtask, splitter_pid)
        if state.complete():
            self._record(level, descriptor, state.merge())

    def _finish_subtask(
        self,
        level: int,
        descriptor: BlockDescriptor,
        subtask: SubtaskDescriptor,
        report: BlockReport,
        splitter_pid: int,
        retried: bool,
    ) -> None:
        state = self._split_states[(level, descriptor.block_id)]
        state.fragments.append((subtask.start, subtask.stop, report))
        worker_pid = int(report.extra.get("worker_pid", 0.0))
        self.trace.record_subtask(
            SubtaskTiming(
                block_id=subtask.block_id,
                subtask_id=subtask.subtask_id,
                start=subtask.start,
                stop=subtask.stop,
                seconds=report.seconds,
                cliques=len(report.cliques),
                worker_pid=worker_pid,
                stolen=worker_pid != 0 and worker_pid != splitter_pid,
                retried=retried,
            )
        )
        state.pending.discard(subtask.subtask_id)
        if state.complete():
            self._record(level, descriptor, state.merge())

    def _parent_retry(
        self, level: int, descriptor: BlockDescriptor
    ) -> BlockReport:
        if not self._retry_failed:
            raise ExecutorError(
                f"worker process died while analysing block "
                f"{descriptor.block_id} of level {level}",
                block_id=descriptor.block_id,
                segment_path=_segment_path_of(self._run_log),
            )
        shared = self._published[level]
        try:
            report = analyze_block_csr(
                descriptor,
                shared.indptr,
                shared.indices,
                shared.labels,
                tree=self._tree,
                combo=self._combo,
                scratch=self._parent_scratch,
                min_clique_size=self._min_clique_size,
            )
        except Exception as exc:
            raise ExecutorError(
                f"block {descriptor.block_id} of level {level} failed again "
                f"on in-parent retry: {type(exc).__name__}: {exc}",
                block_id=descriptor.block_id,
            ) from exc
        report.extra["retried"] = 1.0
        report.extra["dispatch_bytes"] = float(descriptor.nbytes())
        return report

    def _parent_retry_subtask(
        self, level: int, subtask: SubtaskDescriptor
    ) -> BlockReport:
        """Re-run one subtask of a split block in the parent.

        Only the failed anchor range is re-executed; the split block's
        other fragments — completed before the worker died — are kept.
        """
        if not self._retry_failed:
            raise ExecutorError(
                f"worker process died while analysing subtask "
                f"{subtask.block_id}.{subtask.subtask_id} of level {level}",
                block_id=subtask.block_id,
                segment_path=_segment_path_of(self._run_log),
            )
        shared = self._published[level]
        try:
            report = analyze_subtask_csr(
                subtask,
                shared.indptr,
                shared.indices,
                shared.labels,
                tree=self._tree,
                combo=self._combo,
                scratch=self._parent_scratch,
                min_clique_size=self._min_clique_size,
            )
        except Exception as exc:
            raise ExecutorError(
                f"subtask {subtask.block_id}.{subtask.subtask_id} of level "
                f"{level} failed again on in-parent retry: "
                f"{type(exc).__name__}: {exc}",
                block_id=subtask.block_id,
            ) from exc
        report.extra["retried"] = 1.0
        report.extra["dispatch_bytes"] = float(subtask.nbytes())
        return report

    def _record(
        self, level: int, descriptor: BlockDescriptor, report: BlockReport
    ) -> None:
        if self._run_log is not None:
            self.trace.record_flush(
                self._run_log.record(level, descriptor.block_id, report)
            )
        self._results[(level, descriptor.block_id)] = report
        self.trace.record(_timing_of(descriptor.block_id, report))


def _union_graph(blocks: list[Block]) -> Graph:
    """Union of the block subgraphs (fallback when no level graph given)."""
    union = Graph()
    for block in blocks:
        for node in block.graph.nodes():
            union.add_node(node)
        for u, v in block.graph.edges():
            union.add_edge(u, v)
    return union


def _timing_of(block_id: int, report: BlockReport) -> BlockTiming:
    """Translate a finished report into its trace record."""
    return BlockTiming(
        block_id=block_id,
        seconds=report.seconds,
        cliques=len(report.cliques),
        dispatch_bytes=int(report.extra.get("dispatch_bytes", 0.0)),
        peak_rss_kb=int(report.extra.get("peak_rss_kb", 0.0)),
        worker_pid=int(report.extra.get("worker_pid", 0.0)),
        retried=bool(report.extra.get("retried", 0.0)),
        combo=report.combo.name,
        features=report.features.vector(),
    )


def pickled_block_bytes(block: Block) -> int:
    """Bytes :class:`ProcessExecutor` ships for one block (benchmarking)."""
    return len(pickle.dumps(block, protocol=pickle.HIGHEST_PROTOCOL))


# ----------------------------------------------------------------------
# Parallel maximum clique (branch-and-bound with a shared incumbent)
# ----------------------------------------------------------------------

# Populated by _max_clique_worker_init in each pool worker: the packed
# adjacency matrix, the degeneracy root order, and the shared incumbent.
_MAXCLIQUE_STATE: dict[str, object] = {}


def _max_clique_worker_init(matrix, order, shared_bound) -> None:
    """Pool initializer for :func:`parallel_maximum_clique` workers.

    ``shared_bound`` is a ``multiprocessing.Value('q')`` holding the best
    clique size found by *any* worker so far.  It must travel through the
    pool's ``initargs`` (the ``Process`` constructor path) — synchronized
    values cannot cross the task queue.
    """
    _MAXCLIQUE_STATE["matrix"] = matrix
    _MAXCLIQUE_STATE["order"] = order
    _MAXCLIQUE_STATE["bound"] = shared_bound


def _max_clique_worker(root_ranks: "list[int]") -> "tuple[int, list[int]]":
    """Solve the subproblems rooted at ``root_ranks`` of the shared order."""
    from repro.mce.maximum import maximum_clique_packed

    shared_bound = _MAXCLIQUE_STATE["bound"]
    return maximum_clique_packed(
        _MAXCLIQUE_STATE["matrix"],  # type: ignore[arg-type]
        initial_bound=int(shared_bound.value),  # type: ignore[union-attr]
        order=_MAXCLIQUE_STATE["order"],  # type: ignore[arg-type]
        root_ranks=set(root_ranks),
        shared_bound=shared_bound,
    )


def parallel_maximum_clique(
    graph: Graph,
    max_workers: int | None = None,
    lower_bound: int = 0,
) -> frozenset:
    """Find one maximum clique using every core (Rossi-style PMC).

    The parent packs the graph once (:class:`BitMatrixBackend`), computes
    the degeneracy root order, and fans the per-root subproblems of
    :func:`repro.mce.maximum.maximum_clique_packed` across a process
    pool in strided chunks (root ``i`` goes to worker ``i mod w``, so
    the early, expensive roots spread over the pool).  Workers share the
    incumbent size through a ``multiprocessing.Value``: each branch
    reads it before expanding and every improvement publishes under the
    lock, so a clique found by one worker immediately tightens the
    colour-bound pruning in all others.  Stale reads only delay pruning
    — they never affect which clique is optimal — so the result is
    deterministic in *size*; the returned witness is the
    lexicographically-first best over the deterministic per-worker
    results.

    Small graphs (or ``max_workers=1``) solve serially in-process — the
    pool costs more than the search below a few thousand nodes.

    Raises
    ------
    BoundNotMetError
        When ``lower_bound > 0`` and no clique that large exists.
    ValueError
        On a negative ``lower_bound``.
    """
    from multiprocessing import Value

    from repro.errors import BoundNotMetError
    from repro.mce.bitmatrix import BitMatrixBackend, degeneracy_order_packed
    from repro.mce.maximum import maximum_clique_packed

    if lower_bound < 0:
        raise ValueError("lower_bound must be non-negative")
    n = graph.num_nodes
    if n == 0:
        if lower_bound > 0:
            raise BoundNotMetError(lower_bound, 0)
        return frozenset()
    workers = max_workers or os.cpu_count() or 1
    backend = BitMatrixBackend(graph)
    matrix = backend._matrix
    initial = max(0, lower_bound - 1)
    if workers <= 1 or n < 256:
        size, members = maximum_clique_packed(matrix, initial_bound=initial)
    else:
        order = degeneracy_order_packed(matrix)
        shared_bound = Value("q", initial)
        chunks = [list(range(start, n, workers)) for start in range(workers)]
        chunks = [chunk for chunk in chunks if chunk]
        size, members = initial, []
        with ProcessPoolExecutor(
            max_workers=len(chunks),
            initializer=_max_clique_worker_init,
            initargs=(matrix, order, shared_bound),
        ) as pool:
            for found_size, found in pool.map(_max_clique_worker, chunks):
                if found and (
                    found_size > size or (found_size == size and not members)
                ):
                    size, members = found_size, found
    if size < lower_bound or not members:
        raise BoundNotMetError(lower_bound, size)
    return frozenset(backend.label(int(i)) for i in members)


EXECUTOR_NAMES: tuple[str, ...] = ("serial", "process", "shared")


def build_executor(
    name: str, max_workers: int | None = None
) -> "SerialExecutor | ProcessExecutor | SharedMemoryExecutor":
    """Construct a local executor by CLI name.

    Raises
    ------
    ExecutorError
        On an unknown executor name.
    """
    if name == "serial":
        return SerialExecutor()
    if name == "process":
        return ProcessExecutor(max_workers=max_workers)
    if name == "shared":
        return SharedMemoryExecutor(max_workers=max_workers)
    raise ExecutorError(
        f"unknown executor {name!r}; known: {', '.join(EXECUTOR_NAMES)}"
    )


@dataclass
class SimulatedExecutor:
    """Serial execution instrumented with a simulated cluster schedule.

    After ``map_blocks`` the :attr:`last_run` attribute holds the
    :class:`SimulatedRun` for the most recent batch: the makespan the
    same work would have on :attr:`cluster` under :attr:`policy`.
    """

    cluster: ClusterSpec
    policy: str = "lpt"
    last_run: SimulatedRun | None = field(default=None, init=False)

    def map_blocks(
        self,
        blocks: list[Block],
        tree: DecisionTree | None = None,
        combo: Combo | None = None,
        graph: Graph | None = None,
        run_log: RunLog | None = None,
        level: int = 0,
    ) -> list[BlockReport]:
        """Return one :class:`BlockReport` per block, in block order."""
        reports = SerialExecutor().map_blocks(
            blocks, tree=tree, combo=combo, run_log=run_log, level=level
        )
        self.last_run = simulate_level(
            blocks, reports, self.cluster, policy=self.policy
        )
        return reports

"""Distributed data loading (the Section 6.2 ingest path).

"We distributed the input data set among the ten machines of our
cluster: each data set is locally split into files whose records
contain triples in the format ⟨n1, e, n2⟩."  This module performs that
split locally — one triple shard per machine, deterministic hash
placement of edges — and reassembles a shard directory into a graph,
with a loading-time estimate from the cluster's network model.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.distributed.cluster import ClusterSpec
from repro.errors import FormatError
from repro.graph.adjacency import Graph
from repro.graph.io import hash_label, read_triples, write_triples

_SHARD_PREFIX = "shard"


@dataclass(frozen=True)
class ShardedDataset:
    """A triple data set split across per-machine shard files."""

    directory: Path
    machines: int
    records: int

    def shard_paths(self) -> list[Path]:
        """The shard files in machine order."""
        return [
            self.directory / f"{_SHARD_PREFIX}-{machine:03d}.triples"
            for machine in range(self.machines)
        ]


def shard_graph(
    graph: Graph, directory: str | Path, machines: int
) -> ShardedDataset:
    """Split ``graph`` into one triple file per machine.

    Edges are placed by a stable hash of their endpoint pair, so the
    same graph always shards identically.  Isolated nodes are recorded
    in the shard their own hash selects.

    Raises
    ------
    ValueError
        If ``machines < 1``.
    """
    if machines < 1:
        raise ValueError("machines must be at least 1")
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    shards = [Graph() for _ in range(machines)]
    for node in graph.nodes():
        if graph.degree(node) == 0:
            shards[hash_label(node) % machines].add_node(node)
    records = 0
    for u, v in graph.edges():
        key = hash_label(str(sorted((str(u), str(v)))))
        shards[key % machines].add_edge(u, v)
        records += 1
    dataset = ShardedDataset(directory=base, machines=machines, records=records)
    for shard, path in zip(shards, dataset.shard_paths()):
        write_triples(shard, path)
    return dataset


def load_shards(dataset: ShardedDataset) -> Graph:
    """Reassemble a sharded data set into one graph.

    Raises
    ------
    FormatError
        If a shard file is missing or malformed.
    """
    merged = Graph()
    for path in dataset.shard_paths():
        if not path.exists():
            raise FormatError(f"missing shard file {path}")
        shard = read_triples(path)
        for node in shard.nodes():
            merged.add_node(node)
        for u, v in shard.edges():
            merged.add_edge(u, v)
    return merged


def estimated_load_seconds(
    dataset: ShardedDataset, cluster: ClusterSpec
) -> float:
    """Estimate parallel load time of the shards on ``cluster``.

    Machines read their shard concurrently, so the estimate is the
    largest single-shard transfer under the cluster's network model.
    """
    worst = 0.0
    for path in dataset.shard_paths():
        size = path.stat().st_size if path.exists() else 0
        worst = max(worst, cluster.transfer_seconds(size))
    return worst

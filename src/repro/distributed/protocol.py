"""Coordinator/worker message protocol — the OpenMPI stand-in.

The paper's system runs over OpenMPI: a coordinator ships serialized
blocks to workers, workers return their clique sets, and wall-clock is
dominated by the slowest worker plus transfer overhead.  This module
executes that protocol *faithfully at the message level* while keeping
time simulated: every block analysis actually runs (real cliques come
back), but message timestamps advance a simulated clock under the
cluster's network model, so the recorded timeline is what the wire
would have seen.

Compared to the other distributed layers:

* :mod:`repro.distributed.simulation` replays *pre-measured* costs —
  no computation, pure scheduling arithmetic;
* :mod:`repro.distributed.events` adds failures and retries — still
  replay-based;
* this module runs the *actual* analyses and records the message
  exchange, which is what an integration test of the wire protocol
  needs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Literal

from repro.core.block_analysis import analyze_block
from repro.core.blocks import Block
from repro.core.cliquestore import CliqueStore
from repro.decision.tree import DecisionTree
from repro.distributed.cluster import ClusterSpec
from repro.distributed.simulation import block_bytes
from repro.graph.adjacency import Node
from repro.mce.registry import Combo

MessageKind = Literal["assign", "result"]

# Result payload model: one 8-byte id per clique member shipped back.
_BYTES_PER_MEMBER = 8


@dataclass(frozen=True)
class Message:
    """One protocol message with simulated send/receive timestamps."""

    kind: MessageKind
    task_id: int
    worker: int
    sent_at: float
    received_at: float
    payload_bytes: int


@dataclass
class ProtocolTrace:
    """The full message log plus timing aggregates of one level."""

    messages: list[Message] = field(default_factory=list)
    worker_busy_seconds: dict[int, float] = field(default_factory=dict)
    makespan: float = 0.0

    @property
    def assignments(self) -> list[Message]:
        """Coordinator → worker block shipments."""
        return [m for m in self.messages if m.kind == "assign"]

    @property
    def results(self) -> list[Message]:
        """Worker → coordinator clique returns."""
        return [m for m in self.messages if m.kind == "result"]

    def total_bytes(self) -> int:
        """All payload bytes that crossed the wire."""
        return sum(message.payload_bytes for message in self.messages)


def run_protocol_level(
    blocks: list[Block],
    cluster: ClusterSpec,
    tree: DecisionTree | None = None,
    combo: Combo | None = None,
) -> tuple[list[frozenset[Node]], ProtocolTrace]:
    """Execute one level's blocks through the message protocol.

    Blocks are assigned pull-style (largest first, earliest-free
    worker); each assignment and each result is logged as a
    :class:`Message` whose timestamps follow the cluster's network
    model, with the *measured* analysis time as the compute component.

    Returns the concatenated cliques (identical to
    :func:`repro.core.block_analysis.analyze_blocks` output as a set —
    tested) and the protocol trace.
    """
    trace = ProtocolTrace()
    if not blocks:
        return [], trace
    # Largest blocks first approximates LPT without pre-measured costs.
    order = sorted(
        range(len(blocks)), key=lambda i: (-blocks[i].size, i)
    )
    workers: list[tuple[float, int]] = [
        (0.0, worker) for worker in range(cluster.total_workers)
    ]
    heapq.heapify(workers)
    busy: dict[int, float] = {}
    cliques: list[frozenset[Node]] = []
    finish_times: dict[int, list[frozenset[Node]]] = {}
    completion: list[tuple[float, int]] = []

    for task_id in order:
        block = blocks[task_id]
        free_at, worker = heapq.heappop(workers)

        assign_bytes = block_bytes(block)
        assign_arrives = free_at + cluster.transfer_seconds(assign_bytes)
        trace.messages.append(
            Message(
                kind="assign",
                task_id=task_id,
                worker=worker,
                sent_at=free_at,
                received_at=assign_arrives,
                payload_bytes=assign_bytes,
            )
        )

        report = analyze_block(block, tree=tree, combo=combo)
        finished = assign_arrives + report.seconds

        result_bytes = _BYTES_PER_MEMBER * (
            len(report.cliques.vertices)
            if isinstance(report.cliques, CliqueStore)
            else sum(len(clique) for clique in report.cliques)
        )
        result_arrives = finished + cluster.transfer_seconds(result_bytes)
        trace.messages.append(
            Message(
                kind="result",
                task_id=task_id,
                worker=worker,
                sent_at=finished,
                received_at=result_arrives,
                payload_bytes=result_bytes,
            )
        )
        busy[worker] = busy.get(worker, 0.0) + (finished - free_at)
        finish_times[task_id] = report.cliques
        completion.append((result_arrives, task_id))
        heapq.heappush(workers, (finished, worker))

    # Results are collected in simulated arrival order, which keeps the
    # output deterministic for a fixed cluster.
    for _arrived, task_id in sorted(completion):
        cliques.extend(finish_times[task_id])
    trace.worker_busy_seconds = busy
    trace.makespan = max(arrived for arrived, _ in completion)
    return cliques, trace

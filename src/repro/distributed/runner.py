"""End-to-end distributed ``FIND-MAX-CLIQUES``.

:func:`run_distributed` performs the same recursion as
:func:`repro.core.driver.find_max_cliques` but dispatches each level's
blocks through an executor (serial, process pool, or cluster-simulating)
and aggregates the per-level :class:`SimulatedRun` records, so the
benchmarks can report both the exact clique output and the simulated
cluster wall-clock for the paper's Section 6 experiments.
"""

from __future__ import annotations

import time
import warnings
from collections import Counter

from repro.core.blocks import build_blocks
from repro.core.driver import _exact_core, _merge_levels
from repro.core.feasibility import cut
from repro.core.result import CliqueResult, LevelStats
from repro.decision.paper_tree import paper_tree
from repro.decision.tree import DecisionTree
from repro.distributed.cluster import ClusterSpec
from repro.distributed.executor import SerialExecutor, SimulatedExecutor
from repro.distributed.simulation import SimulatedRun
from repro.errors import ConvergenceError
from repro.graph.adjacency import Graph, Node
from repro.graph.views import induced_subgraph
from repro.mce.registry import Combo


class DistributedResult(CliqueResult):
    """A :class:`CliqueResult` extended with per-level simulated runs."""

    def __init__(self, base: CliqueResult, runs: list[SimulatedRun]) -> None:
        super().__init__(
            cliques=base.cliques,
            provenance=base.provenance,
            levels=base.levels,
            m=base.m,
            fallback_used=base.fallback_used,
            block_combos=base.block_combos,
            block_reports=base.block_reports,
        )
        self.runs = runs

    def simulated_makespan(self) -> float:
        """Total simulated cluster seconds across all recursion levels."""
        return sum(run.makespan_seconds for run in self.runs)

    def simulated_speedup(self) -> float:
        """Serial seconds over simulated seconds across all levels."""
        serial = sum(run.serial_seconds for run in self.runs)
        makespan = self.simulated_makespan()
        if makespan == 0.0:
            return 1.0
        return serial / makespan


def run_distributed(
    graph: Graph,
    m: int,
    cluster: ClusterSpec | None = None,
    executor: SerialExecutor | SimulatedExecutor | None = None,
    tree: DecisionTree | None = None,
    combo: Combo | None = None,
    fallback: str = "exact",
    min_adjacency: int = 1,
    policy: str = "lpt",
) -> DistributedResult:
    """Run the two-level decomposition with distributed block analysis.

    Either pass a ``cluster`` (a :class:`SimulatedExecutor` is built for
    it) or an explicit ``executor``.  With neither, the paper's
    10-machine testbed is simulated.  All other arguments match
    :func:`repro.core.driver.find_max_cliques`, and the clique output is
    identical to the serial driver's (tested property).

    Raises
    ------
    ConvergenceError
        With ``fallback="raise"`` when ``m`` does not exceed the
        degeneracy of some residual level.
    """
    if m < 1:
        raise ValueError("block size m must be at least 1")
    if executor is None:
        from repro.distributed.cluster import paper_cluster

        executor = SimulatedExecutor(
            cluster=cluster if cluster is not None else paper_cluster(),
            policy=policy,
        )
    selection_tree = tree if tree is not None else paper_tree()

    level_cliques: list[list[frozenset[Node]]] = []
    level_stats: list[LevelStats] = []
    runs: list[SimulatedRun] = []
    combo_counter: Counter[str] = Counter()
    fallback_used = False

    current = graph
    level = 0
    while current.num_nodes > 0:
        decomposition_start = time.perf_counter()
        feasible, hubs = cut(current, m)
        if not feasible:
            if fallback == "raise":
                raise ConvergenceError(
                    f"no feasible node at recursion level {level}",
                    core_size=current.num_nodes,
                )
            warnings.warn(
                f"distributed FIND-MAX-CLIQUES fell back to exact "
                f"enumeration on a residual core of {current.num_nodes} "
                f"nodes at level {level} (m={m})",
                RuntimeWarning,
                stacklevel=2,
            )
            decomposition_seconds = time.perf_counter() - decomposition_start
            cliques, analysis_seconds, used = _exact_core(
                current, selection_tree, combo
            )
            combo_counter[used.name] += 1
            level_cliques.append(cliques)
            level_stats.append(
                LevelStats(
                    level=level,
                    num_nodes=current.num_nodes,
                    num_edges=current.num_edges,
                    num_feasible=0,
                    num_hubs=current.num_nodes,
                    num_blocks=0,
                    decomposition_seconds=decomposition_seconds,
                    analysis_seconds=analysis_seconds,
                    cliques_found=len(cliques),
                    fallback_used=True,
                )
            )
            fallback_used = True
            break

        blocks = build_blocks(current, feasible, m, min_adjacency=min_adjacency)
        decomposition_seconds = time.perf_counter() - decomposition_start

        analysis_start = time.perf_counter()
        reports = executor.map_blocks(
            blocks, tree=selection_tree, combo=combo, graph=current
        )
        analysis_seconds = time.perf_counter() - analysis_start
        if isinstance(executor, SimulatedExecutor) and executor.last_run:
            runs.append(executor.last_run)

        cliques: list[frozenset[Node]] = []
        for report in reports:
            cliques.extend(report.cliques)
            combo_counter[report.combo.name] += 1
        level_cliques.append(cliques)
        level_stats.append(
            LevelStats(
                level=level,
                num_nodes=current.num_nodes,
                num_edges=current.num_edges,
                num_feasible=len(feasible),
                num_hubs=len(hubs),
                num_blocks=len(blocks),
                decomposition_seconds=decomposition_seconds,
                analysis_seconds=analysis_seconds,
                cliques_found=len(cliques),
            )
        )
        if not hubs:
            break
        current = induced_subgraph(current, hubs)
        level += 1

    merged, provenance = _merge_levels(level_cliques)
    base = CliqueResult(
        cliques=merged,
        provenance=provenance,
        levels=level_stats,
        m=m,
        fallback_used=fallback_used,
        block_combos=dict(combo_counter),
    )
    return DistributedResult(base, runs)

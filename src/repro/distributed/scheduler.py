"""Block-to-worker scheduling policies.

Blocks are independent tasks of wildly different cost — reference [38]
of the paper observes that "the analysis of few blocks takes far more
time than the rest" — so placement policy decides how much of the
cluster's parallelism is realised.  Three policies are provided:

* :func:`schedule_lpt` — longest-processing-time-first onto the least
  loaded worker, the classic greedy 4/3-approximation of minimum
  makespan; the default and the stand-in for the paper's TORQUE queue;
* :func:`schedule_round_robin` — oblivious striping;
* :func:`schedule_hash` — random/hash placement, which the paper's
  related-work section calls out as "the worst possible partitioning
  for scale-free networks"; kept as the contrast baseline.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.errors import SchedulingError
from repro.distributed.cluster import ClusterSpec


@dataclass(frozen=True)
class Task:
    """One schedulable unit: a block analysis with known replay cost."""

    task_id: int
    cost_seconds: float
    data_bytes: int = 0

    def __post_init__(self) -> None:
        if self.cost_seconds < 0:
            raise ValueError("cost_seconds must be non-negative")
        if self.data_bytes < 0:
            raise ValueError("data_bytes must be non-negative")


@dataclass
class Schedule:
    """A complete assignment of tasks to worker slots."""

    cluster: ClusterSpec
    assignment: dict[int, int]  # task_id -> worker slot
    worker_loads: list[float]  # seconds of work per worker slot

    @property
    def makespan(self) -> float:
        """Completion time: the heaviest worker's total load."""
        return max(self.worker_loads, default=0.0)

    @property
    def total_work(self) -> float:
        """Sum of all per-worker loads (serial-equivalent seconds)."""
        return sum(self.worker_loads)

    @property
    def skew(self) -> float:
        """Max/mean load ratio; 1.0 is perfectly balanced, 0.0 if idle."""
        busy = [load for load in self.worker_loads if load > 0.0]
        if not busy:
            return 0.0
        return max(busy) * len(busy) / sum(busy)

    def speedup(self) -> float:
        """Serial time over makespan; the parallelism actually realised."""
        if self.makespan == 0.0:
            return 1.0
        return self.total_work / self.makespan


def _task_cost(task: Task, cluster: ClusterSpec) -> float:
    """Replay cost of a task on a worker: compute plus data transfer."""
    return task.cost_seconds + cluster.transfer_seconds(task.data_bytes)


def schedule_lpt(tasks: list[Task], cluster: ClusterSpec) -> Schedule:
    """Greedy longest-processing-time-first scheduling.

    Tasks are sorted by decreasing cost and each is placed on the worker
    with the smallest current load (a heap keeps this ``O(n log w)``).

    Raises
    ------
    SchedulingError
        If two tasks share an id (the assignment map would silently drop
        one).
    """
    _check_unique_ids(tasks)
    loads = [0.0] * cluster.total_workers
    heap: list[tuple[float, int]] = [(0.0, w) for w in range(len(loads))]
    heapq.heapify(heap)
    assignment: dict[int, int] = {}
    for task in sorted(tasks, key=lambda t: (-t.cost_seconds, t.task_id)):
        load, worker = heapq.heappop(heap)
        cost = _task_cost(task, cluster)
        assignment[task.task_id] = worker
        loads[worker] = load + cost
        heapq.heappush(heap, (loads[worker], worker))
    return Schedule(cluster=cluster, assignment=assignment, worker_loads=loads)


def schedule_round_robin(tasks: list[Task], cluster: ClusterSpec) -> Schedule:
    """Stripe tasks over workers in submission order."""
    _check_unique_ids(tasks)
    loads = [0.0] * cluster.total_workers
    assignment: dict[int, int] = {}
    for index, task in enumerate(tasks):
        worker = index % cluster.total_workers
        assignment[task.task_id] = worker
        loads[worker] += _task_cost(task, cluster)
    return Schedule(cluster=cluster, assignment=assignment, worker_loads=loads)


def schedule_hash(tasks: list[Task], cluster: ClusterSpec) -> Schedule:
    """Place each task on ``hash(task_id) mod workers`` (oblivious).

    Deterministic (uses a multiplicative integer hash, not Python's
    salted ``hash``) so experiments are repeatable.
    """
    _check_unique_ids(tasks)
    loads = [0.0] * cluster.total_workers
    assignment: dict[int, int] = {}
    for task in tasks:
        worker = (task.task_id * 2654435761 % 2**32) % cluster.total_workers
        assignment[task.task_id] = worker
        loads[worker] += _task_cost(task, cluster)
    return Schedule(cluster=cluster, assignment=assignment, worker_loads=loads)


def lpt_order(costs: list[float]) -> list[int]:
    """Return task indices in longest-processing-time-first order.

    This is the dispatch side of LPT for *dynamic* executors: when
    workers pull tasks from a shared queue, feeding the queue in
    decreasing-cost order is equivalent to the greedy least-loaded
    placement of :func:`schedule_lpt` — each idle worker takes the next
    (largest remaining) task, so the big blocks start first and the
    small ones fill the tail.

    Equal-cost tasks are ordered by submission index (Python's ``sorted``
    is stable, and the explicit ``(cost, index)`` key pins it even if the
    sort ever changes): split and unsplit runs of the same batch must
    dispatch identically or their traces are not comparable.  The
    tie-break is covered by a regression test in
    ``tests/test_distributed_scheduler.py``.
    """
    return sorted(range(len(costs)), key=lambda index: (-float(costs[index]), index))


class StreamingLPTBuffer:
    """Bounded-lookahead LPT reordering for *streamed* task dispatch.

    :func:`lpt_order` needs the whole batch up front; a pipeline
    producer only has the descriptors generated so far.  This buffer is
    the compromise: hold up to ``lookahead`` tasks, and whenever the
    buffer overflows release the costliest one — so the pool's queue is
    continuously fed in locally-LPT order while growth of the remaining
    blocks is still running.  ``drain()`` releases the tail (costliest
    first) when the producer finishes.  Ties break by arrival order,
    keeping dispatch deterministic.
    """

    def __init__(self, lookahead: int) -> None:
        if lookahead < 0:
            raise SchedulingError("lookahead must be non-negative")
        self.lookahead = lookahead
        self._heap: list[tuple[float, int, object]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, cost: float, item: object) -> list[object]:
        """Buffer one task; return any tasks released by the overflow."""
        heapq.heappush(self._heap, (-cost, self._seq, item))
        self._seq += 1
        released: list[object] = []
        while len(self._heap) > self.lookahead:
            released.append(heapq.heappop(self._heap)[2])
        return released

    def drain(self) -> list[object]:
        """Release every buffered task, costliest first."""
        released = [heapq.heappop(self._heap)[2] for _ in range(len(self._heap))]
        return released


class StealDeque:
    """Double-ended work queue for anchor-level splitting (parent side).

    The shared-memory executor drains this deque to keep its pool fed:
    whole blocks enter at the *cold* end in LPT order
    (:meth:`push_initial`), while subtasks spawned when a straggler
    block splits mid-run enter at the *hot* end (:meth:`push_spawned`)
    and are taken first.  That is the work-first half of classic work
    stealing: the splitter keeps one chunk and publishes the rest where
    idle workers grab them before any queued whole block — the freshly
    split work is by construction the batch's critical path.

    The deque lives in the parent (``multiprocessing`` queues cannot
    cross a ``ProcessPoolExecutor``'s pickling boundary); workers
    "steal" by completing their current task, which hands the parent a
    free slot to fill from the hot end.  All ordering is deterministic:
    spawned groups keep their given order, and successive spawns stack
    LIFO so the most recently split block's subtasks run first.
    """

    def __init__(self) -> None:
        self._items: deque = deque()

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def push_initial(self, item: object) -> None:
        """Append one task at the cold end (drained last)."""
        self._items.append(item)

    def push_spawned(self, items: Iterable[object]) -> None:
        """Push a group of spawned subtasks at the hot end (drained next).

        The group keeps its internal order: after
        ``push_spawned([a, b])`` the next two :meth:`take` calls return
        ``a`` then ``b``.
        """
        self._items.extendleft(reversed(list(items)))

    def take(self) -> object:
        """Remove and return the hottest task.

        Raises
        ------
        SchedulingError
            When the deque is empty.
        """
        if not self._items:
            raise SchedulingError("take() from an empty StealDeque")
        return self._items.popleft()


class BatchAccumulator:
    """Group streamed small-block descriptors into same-shape buckets.

    The pipeline producer hands descriptors one at a time; this
    accumulator buffers the ones below the batch cutoff by padded shape
    and releases a full bucket's worth as soon as ``bucket_target``
    blocks of one shape have arrived (descriptors above the cutoff pass
    straight through).  ``drain()`` flushes the partially filled shapes
    when the level's decomposition finishes.  Grouping preserves arrival
    order within each shape, so dispatch stays deterministic.
    """

    def __init__(self, cutoff: int, bucket_target: int = 256) -> None:
        if cutoff < 0:
            raise SchedulingError("batch cutoff must be non-negative")
        if bucket_target < 1:
            raise SchedulingError("bucket target must be positive")
        self.cutoff = cutoff
        self.bucket_target = bucket_target
        self._pending: dict[int, list] = {}

    def push(self, descriptor, size: int, n_pad: int):
        """Buffer one descriptor; return a full shape group or ``None``.

        ``size`` is the block's node count and ``n_pad`` its padded
        shape key.  Returns ``None`` while the descriptor is either
        buffered or too large to batch; callers must treat a ``None``
        for an over-cutoff descriptor as "dispatch it individually"
        (signalled by :meth:`is_small` being false).
        """
        group = self._pending.setdefault(n_pad, [])
        group.append(descriptor)
        if len(group) >= self.bucket_target:
            del self._pending[n_pad]
            return group
        return None

    def is_small(self, size: int) -> bool:
        """Whether a block of ``size`` nodes belongs in a bucket."""
        return size <= self.cutoff

    def drain(self) -> "list[list]":
        """Release every partially filled shape group, smallest first."""
        groups = [group for _, group in sorted(self._pending.items())]
        self._pending.clear()
        return groups

    def __len__(self) -> int:
        return sum(len(group) for group in self._pending.values())


SCHEDULERS = {
    "lpt": schedule_lpt,
    "round_robin": schedule_round_robin,
    "hash": schedule_hash,
}


def _check_unique_ids(tasks: list[Task]) -> None:
    """Raise :class:`SchedulingError` when task ids collide."""
    seen: set[int] = set()
    for task in tasks:
        if task.task_id in seen:
            raise SchedulingError(f"duplicate task id {task.task_id}")
        seen.add(task.task_id)

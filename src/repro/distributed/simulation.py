"""Replay-based cluster simulation.

The paper's wall-clock numbers come from OpenMPI on a physical cluster;
here the same question — *how long would this decomposition take on N
machines?* — is answered by replaying each block's **measured**
single-worker analysis time under a scheduling policy and the cluster's
network-cost model (DESIGN.md §2).  Because block analyses are mutually
independent (that is the whole point of the decomposition), makespan
under a schedule is an exact model of the parallel runtime, up to the
scheduler's own quality.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.block_analysis import BlockReport
from repro.core.blocks import Block
from repro.distributed.cluster import ClusterSpec
from repro.distributed.scheduler import SCHEDULERS, Schedule, Task
from repro.errors import SchedulingError

# Serialised size model: one 8-byte id per node plus two per edge, which
# matches the ⟨n1, e, n2⟩ triple encoding with hashed labels.
_BYTES_PER_ID = 8


def block_bytes(block: Block) -> int:
    """Estimated serialised size of a block shipped to a worker."""
    return _BYTES_PER_ID * (block.graph.num_nodes + 2 * block.graph.num_edges)


@dataclass(frozen=True)
class SimulatedRun:
    """Outcome of replaying one level's block analyses on a cluster."""

    schedule: Schedule
    serial_seconds: float
    makespan_seconds: float
    communication_seconds: float

    @property
    def speedup(self) -> float:
        """Serial time divided by simulated parallel time."""
        if self.makespan_seconds == 0.0:
            return 1.0
        return self.serial_seconds / self.makespan_seconds

    @property
    def skew(self) -> float:
        """Load imbalance of the underlying schedule."""
        return self.schedule.skew


def simulate_level(
    blocks: list[Block],
    reports: list[BlockReport],
    cluster: ClusterSpec,
    policy: str = "lpt",
) -> SimulatedRun:
    """Replay one recursion level's measured block costs on ``cluster``.

    Parameters
    ----------
    blocks, reports:
        Parallel lists from the decomposition and its analysis; report
        ``i`` must describe block ``i``.
    cluster:
        The target cluster description.
    policy:
        One of ``"lpt"``, ``"round_robin"``, ``"hash"``.

    Raises
    ------
    SchedulingError
        On mismatched inputs or an unknown policy.
    """
    if len(blocks) != len(reports):
        raise SchedulingError(
            f"{len(blocks)} blocks but {len(reports)} reports"
        )
    try:
        scheduler = SCHEDULERS[policy]
    except KeyError:
        raise SchedulingError(
            f"unknown policy {policy!r}; known: {', '.join(SCHEDULERS)}"
        ) from None
    tasks = [
        Task(
            task_id=index,
            cost_seconds=report.seconds,
            data_bytes=block_bytes(block),
        )
        for index, (block, report) in enumerate(zip(blocks, reports))
    ]
    schedule = scheduler(tasks, cluster)
    serial = sum(report.seconds for report in reports)
    communication = sum(
        cluster.transfer_seconds(task.data_bytes) for task in tasks
    )
    return SimulatedRun(
        schedule=schedule,
        serial_seconds=serial,
        makespan_seconds=schedule.makespan,
        communication_seconds=communication,
    )


def simulate_reports(
    reports: list[BlockReport],
    cluster: ClusterSpec,
    policy: str = "lpt",
) -> SimulatedRun:
    """Replay measured block costs when block bodies are unavailable.

    Data-transfer cost is estimated from each report's feature record
    (node and edge counts) instead of the block graph itself, so results
    collected with ``collect_reports=True`` can be simulated without
    keeping the blocks alive.
    """
    try:
        scheduler = SCHEDULERS[policy]
    except KeyError:
        raise SchedulingError(
            f"unknown policy {policy!r}; known: {', '.join(SCHEDULERS)}"
        ) from None
    tasks = [
        Task(
            task_id=index,
            cost_seconds=report.seconds,
            data_bytes=_BYTES_PER_ID
            * (report.features.num_nodes + 2 * report.features.num_edges),
        )
        for index, report in enumerate(reports)
    ]
    schedule = scheduler(tasks, cluster)
    serial = sum(report.seconds for report in reports)
    communication = sum(
        cluster.transfer_seconds(task.data_bytes) for task in tasks
    )
    return SimulatedRun(
        schedule=schedule,
        serial_seconds=serial,
        makespan_seconds=schedule.makespan,
        communication_seconds=communication,
    )


def scaling_curve(
    reports: list[BlockReport],
    machine_counts: list[int],
    workers_per_machine: int = 16,
    policy: str = "lpt",
) -> list[tuple[int, float, float]]:
    """Simulated makespan and speed-up as the cluster grows.

    Returns one ``(machines, makespan_seconds, speedup)`` row per entry
    of ``machine_counts`` — the scalability experiment of Section 6.
    """
    rows: list[tuple[int, float, float]] = []
    for machines in machine_counts:
        cluster = ClusterSpec(
            machines=machines, workers_per_machine=workers_per_machine
        )
        run = simulate_reports(reports, cluster, policy=policy)
        rows.append((machines, run.makespan_seconds, run.speedup))
    return rows

"""Streaming graph partitioning, after Stanton and Kliot [31].

Reference [31] of the paper (SIGKDD 2012) partitions a graph *as it
streams in*, one node at a time, deciding each node's machine before
seeing the rest of the graph.  Section 7 contrasts such partitioners
with the hash placement of Pregel/GraphLab, "proven to be the worst
possible partitioning for scale-free networks".

Two streaming heuristics are provided:

* :func:`partition_hash` — stateless hash placement (the known-bad
  baseline);
* :func:`partition_ldg` — linear deterministic greedy: place each node
  on the machine holding most of its already-placed neighbours,
  weighted by a linear capacity penalty, the strongest simple heuristic
  of the Stanton–Kliot study.

Quality is measured by the **edge cut** (fraction of edges crossing
machines): lower cut means less communication when neighbourhood data
must be gathered per machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.adjacency import Graph, Node
from repro.graph.io import hash_label


@dataclass(frozen=True)
class Partition:
    """An assignment of every node to one of ``parts`` machines."""

    assignment: dict[Node, int]
    parts: int

    def part_sizes(self) -> list[int]:
        """Number of nodes per machine."""
        sizes = [0] * self.parts
        for part in self.assignment.values():
            sizes[part] += 1
        return sizes

    def balance(self) -> float:
        """Max/mean machine load; 1.0 is perfectly balanced, 0.0 empty."""
        sizes = self.part_sizes()
        total = sum(sizes)
        if total == 0:
            return 0.0
        return max(sizes) * self.parts / total

    def edge_cut(self, graph: Graph) -> float:
        """Fraction of edges whose endpoints sit on different machines."""
        if graph.num_edges == 0:
            return 0.0
        crossing = sum(
            1
            for u, v in graph.edges()
            if self.assignment[u] != self.assignment[v]
        )
        return crossing / graph.num_edges


def partition_hash(graph: Graph, parts: int) -> Partition:
    """Place every node by a stable hash (the oblivious baseline).

    Raises
    ------
    ValueError
        If ``parts < 1``.
    """
    if parts < 1:
        raise ValueError("parts must be at least 1")
    assignment = {
        node: hash_label(node) % parts for node in graph.nodes()
    }
    return Partition(assignment=assignment, parts=parts)


def partition_ldg(
    graph: Graph, parts: int, slack: float = 1.1
) -> Partition:
    """Linear deterministic greedy streaming partitioning.

    Nodes arrive in the graph's insertion order.  Each node ``v`` is
    placed on the machine ``p`` maximising
    ``|N(v) ∩ placed(p)| * (1 - size(p) / capacity)`` — neighbours
    attract, fullness repels — with capacity ``slack * n / parts``.
    Ties break toward the least-loaded machine, then the lowest index,
    so the result is deterministic.

    Raises
    ------
    ValueError
        If ``parts < 1`` or ``slack < 1``.
    """
    if parts < 1:
        raise ValueError("parts must be at least 1")
    if slack < 1.0:
        raise ValueError("slack must be at least 1.0")
    n = graph.num_nodes
    capacity = max(1.0, slack * n / parts)
    assignment: dict[Node, int] = {}
    sizes = [0] * parts
    for node in graph.nodes():
        best_part = 0
        best_score = float("-inf")
        neighbor_parts = [0] * parts
        for neighbor in graph.neighbors(node):
            placed = assignment.get(neighbor)
            if placed is not None:
                neighbor_parts[placed] += 1
        for part in range(parts):
            if sizes[part] >= capacity:
                continue
            score = neighbor_parts[part] * (1.0 - sizes[part] / capacity)
            if score > best_score or (
                score == best_score and sizes[part] < sizes[best_part]
            ):
                best_score = score
                best_part = part
        assignment[node] = best_part
        sizes[best_part] += 1
    return Partition(assignment=assignment, parts=parts)

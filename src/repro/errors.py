"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at an API boundary while tests and
internal code can assert on the precise subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """A structural problem with a graph (unknown node, self-loop, ...)."""


class NodeNotFoundError(GraphError, KeyError):
    """An operation referenced a node that is not in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(node)
        self.node = node

    def __str__(self) -> str:  # KeyError.__str__ would repr() the args tuple
        return f"node {self.node!r} is not in the graph"


class SelfLoopError(GraphError):
    """A self-loop edge was supplied where simple graphs are required.

    Maximal clique enumeration is defined on simple undirected graphs; a
    self-loop has no meaning for cliques, so the library rejects them
    eagerly rather than silently producing wrong answers.
    """

    def __init__(self, node: object) -> None:
        super().__init__(f"self-loop on node {node!r} is not allowed")
        self.node = node


class FormatError(ReproError, ValueError):
    """A serialised graph/block/clique payload could not be parsed."""


class ConvergenceError(ReproError):
    """The first-level decomposition cannot terminate.

    Raised when a recursion level finds no feasible node at all, i.e. the
    block-size limit ``m`` does not exceed the degeneracy of the residual
    graph (Theorem 1 of the paper).  The attached :attr:`core_size` reports
    how many nodes remain in the irreducible core, which is useful when
    choosing a larger ``m``.
    """

    def __init__(self, message: str, core_size: int) -> None:
        super().__init__(message)
        self.core_size = core_size


class DecompositionError(ReproError):
    """A block decomposition violated one of its structural invariants."""


class AlgorithmNotFoundError(ReproError, KeyError):
    """An unknown MCE algorithm or backend name was requested."""

    def __init__(self, name: str, known: tuple[str, ...]) -> None:
        super().__init__(name)
        self.name = name
        self.known = known

    def __str__(self) -> str:
        options = ", ".join(sorted(self.known))
        return f"unknown name {self.name!r}; known options: {options}"


class BoundNotMetError(ReproError, ValueError):
    """``maximum_clique(lower_bound=k)`` found no clique of size ``k``.

    The caller asserted a clique size the graph does not contain, so
    the search has no witness to return.  :attr:`lower_bound` is the
    requested floor and :attr:`best_found` the largest clique size the
    pruned search certified (which may undershoot the true maximum —
    branches below the floor are cut, not explored).
    """

    def __init__(self, lower_bound: int, best_found: int) -> None:
        super().__init__(
            f"no clique of size >= {lower_bound} exists (pruned search "
            f"certified {best_found}); pass only certified lower bounds"
        )
        self.lower_bound = lower_bound
        self.best_found = best_found


class TrainingError(ReproError):
    """The decision-tree learner was given an unusable training set."""


class SchedulingError(ReproError):
    """A task could not be placed on the simulated cluster."""


class ExecutorError(ReproError):
    """A parallel executor failed to analyse a block.

    Raised by the process-based executors when a worker raises or dies.
    :attr:`block_id` identifies the failing block (the index into the
    submitted block list), or is ``None`` when the failure could not be
    attributed to a single block.  When the run was spilling to disk,
    :attr:`segment_path` names the segment file the failed block's report
    would have been appended to, so an operator inspecting a crashed run
    knows exactly which segment to audit before resuming.
    """

    def __init__(
        self,
        message: str,
        block_id: int | None = None,
        segment_path: str | None = None,
    ) -> None:
        super().__init__(message)
        self.block_id = block_id
        self.segment_path = segment_path

    def __reduce__(self):  # preserve context across process boundaries
        return (type(self), (str(self), self.block_id, self.segment_path))


class RunLogError(ReproError):
    """A durable spill-to-disk run could not be written or resumed."""


class CorruptSegmentError(RunLogError):
    """A spill segment failed its integrity checks.

    Raised when a record's CRC does not match its payload, a length
    prefix is inconsistent with the file, or the segment magic is wrong.
    A torn *tail* (the final record cut short by a crash) is recoverable
    and handled by :func:`repro.runs.segments.recover_segment`; anything
    invalid *before* the tail means real corruption, and the library
    refuses to replay the segment rather than risk returning wrong
    cliques.  :attr:`path` names the offending file and :attr:`offset`
    the byte position of the first invalid record.
    """

    def __init__(
        self, message: str, path: str | None = None, offset: int | None = None
    ) -> None:
        super().__init__(message)
        self.path = path
        self.offset = offset


class ResumeMismatchError(RunLogError):
    """A resume was requested against an incompatible run directory.

    Raised when the manifest's fingerprint (graph hash, block size,
    decomposition mode, ...) does not match the resuming call, when no
    manifest exists to resume from, or when a fresh run targets a
    directory that already holds one.
    """

"""Graph substrate: containers, properties, generators, serialisation."""

from repro.graph.adjacency import Graph, Node
from repro.graph.csr import CSRGraph, SharedCSR, SharedCSRHandle, induced_csr
from repro.graph.cores import (
    core_numbers,
    core_numbers_csr,
    degeneracy,
    degeneracy_csr,
    degeneracy_ordering,
    k_core,
    peel_iterations,
)
from repro.graph.datasets import DATASET_NAMES, DATASETS, load_all, load_dataset
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    disjoint_union,
    erdos_renyi,
    h_n,
    social_network,
    star_graph,
    stochastic_block_model,
    watts_strogatz,
)
from repro.graph.io import read_cliques, read_triples, write_cliques, write_triples
from repro.graph.streams import EdgeEvent, apply_stream, edge_stream
from repro.graph.properties import (
    GraphSummary,
    d_star,
    degree_histogram,
    hub_fraction,
    power_law_exponent,
    summarize,
)
from repro.graph.views import connected_components, induced_subgraph, relabel

__all__ = [
    "Graph",
    "Node",
    "CSRGraph",
    "SharedCSR",
    "SharedCSRHandle",
    "induced_csr",
    "core_numbers",
    "core_numbers_csr",
    "degeneracy",
    "degeneracy_csr",
    "degeneracy_ordering",
    "k_core",
    "peel_iterations",
    "DATASET_NAMES",
    "DATASETS",
    "load_all",
    "load_dataset",
    "barabasi_albert",
    "complete_graph",
    "cycle_graph",
    "disjoint_union",
    "erdos_renyi",
    "h_n",
    "social_network",
    "star_graph",
    "stochastic_block_model",
    "watts_strogatz",
    "read_cliques",
    "read_triples",
    "write_cliques",
    "write_triples",
    "GraphSummary",
    "d_star",
    "degree_histogram",
    "hub_fraction",
    "power_law_exponent",
    "summarize",
    "connected_components",
    "induced_subgraph",
    "relabel",
    "EdgeEvent",
    "apply_stream",
    "edge_stream",
]

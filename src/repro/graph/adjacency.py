"""The core graph container used throughout the library.

:class:`Graph` is a simple undirected graph stored as adjacency sets.  It is
deliberately small: nodes are arbitrary hashable labels, edges are unordered
pairs, self-loops are rejected (cliques are only defined on simple graphs)
and parallel edges collapse.  Everything else in the library — MCE backends,
decomposition, generators — is built on top of this container or on the
immutable snapshots it hands out.

Iteration order is insertion order (Python ``dict`` semantics), which the
decomposition code relies on for deterministic tie-breaking; tests assert
this property, so it is part of the class contract.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

from repro.errors import NodeNotFoundError, SelfLoopError

Node = Hashable
Edge = tuple[Node, Node]


class Graph:
    """A mutable simple undirected graph backed by adjacency sets.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` pairs inserted via :meth:`add_edge`.
    nodes:
        Optional iterable of isolated nodes inserted via :meth:`add_node`
        (before the edges, so edge insertion order still dominates).

    Examples
    --------
    >>> g = Graph(edges=[("a", "b"), ("b", "c")])
    >>> g.num_nodes, g.num_edges
    (3, 2)
    >>> sorted(g.neighbors("b"))
    ['a', 'c']
    """

    __slots__ = ("_adj", "_num_edges")

    def __init__(
        self,
        edges: Iterable[Edge] | None = None,
        nodes: Iterable[Node] | None = None,
    ) -> None:
        self._adj: dict[Node, set[Node]] = {}
        self._num_edges = 0
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Insert ``node`` if absent; a no-op when it already exists."""
        if node not in self._adj:
            self._adj[node] = set()

    def add_edge(self, u: Node, v: Node) -> None:
        """Insert the undirected edge ``{u, v}``, creating endpoints.

        Raises
        ------
        SelfLoopError
            If ``u == v``; simple graphs carry no self-loops.
        """
        if u == v:
            raise SelfLoopError(u)
        self.add_node(u)
        self.add_node(v)
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._num_edges += 1

    def add_edges(self, edges: Iterable[Edge]) -> None:
        """Insert every edge in ``edges`` via :meth:`add_edge`."""
        for u, v in edges:
            self.add_edge(u, v)

    def add_clique(self, nodes: Iterable[Node]) -> None:
        """Insert all pairwise edges among ``nodes`` (a planted clique)."""
        members = list(dict.fromkeys(nodes))
        for i, u in enumerate(members):
            self.add_node(u)
            for v in members[i + 1 :]:
                self.add_edge(u, v)

    def remove_node(self, node: Node) -> None:
        """Delete ``node`` and every incident edge.

        Raises
        ------
        NodeNotFoundError
            If ``node`` is not present.
        """
        try:
            neighbors = self._adj.pop(node)
        except KeyError:
            raise NodeNotFoundError(node) from None
        for other in neighbors:
            self._adj[other].discard(node)
        self._num_edges -= len(neighbors)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Delete the edge ``{u, v}``.

        Raises
        ------
        NodeNotFoundError
            If either endpoint is absent.
        GraphError
            Never raised for a missing edge: removal is idempotent, matching
            the insert-idempotence of :meth:`add_edge`.
        """
        if u not in self._adj:
            raise NodeNotFoundError(u)
        if v not in self._adj:
            raise NodeNotFoundError(v)
        if v in self._adj[u]:
            self._adj[u].discard(v)
            self._adj[v].discard(u)
            self._num_edges -= 1

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes currently in the graph."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges currently in the graph."""
        return self._num_edges

    def nodes(self) -> Iterator[Node]:
        """Iterate over nodes in insertion order."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge exactly once.

        The first endpoint of each yielded pair is the endpoint that was
        inserted earlier, so the sequence is deterministic.
        """
        seen: set[Node] = set()
        for u, neighbors in self._adj.items():
            for v in neighbors:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def neighbors(self, node: Node) -> frozenset[Node]:
        """Return the neighbour set of ``node`` as an immutable snapshot.

        Raises
        ------
        NodeNotFoundError
            If ``node`` is not present.
        """
        try:
            return frozenset(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def degree(self, node: Node) -> int:
        """Return the number of neighbours of ``node``."""
        try:
            return len(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def has_node(self, node: Node) -> bool:
        """Return whether ``node`` is in the graph."""
        return node in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return whether the undirected edge ``{u, v}`` is present."""
        return u in self._adj and v in self._adj[u]

    def adjacency(self) -> Mapping[Node, frozenset[Node]]:
        """Return an immutable snapshot of the whole adjacency structure."""
        return {node: frozenset(nbrs) for node, nbrs in self._adj.items()}

    def closed_neighborhood(self, node: Node) -> frozenset[Node]:
        """Return ``{node} ∪ N(node)``, the closed neighbourhood."""
        try:
            return frozenset(self._adj[node]) | {node}
        except KeyError:
            raise NodeNotFoundError(node) from None

    def neighborhood_of_set(self, nodes: Iterable[Node]) -> frozenset[Node]:
        """Return ``S ∪ N(S)`` for the node set ``S = nodes``.

        This is the quantity bounded by the block size in the paper's
        ``isfeasible`` predicate (Section 3.1).
        """
        closed: set[Node] = set()
        for node in nodes:
            if node not in self._adj:
                raise NodeNotFoundError(node)
            closed.add(node)
            closed.update(self._adj[node])
        return frozenset(closed)

    def max_degree(self) -> int:
        """Return the maximum degree, or 0 for an empty graph."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def density(self) -> float:
        """Return ``2·|E| / (|N|·(|N|−1))``; 0.0 for fewer than two nodes."""
        n = len(self._adj)
        if n < 2:
            return 0.0
        return 2.0 * self._num_edges / (n * (n - 1))

    def is_clique(self, nodes: Iterable[Node]) -> bool:
        """Return whether ``nodes`` induce a complete subgraph.

        The empty set and singletons count as cliques, matching the usual
        convention in the MCE literature.
        """
        members = list(dict.fromkeys(nodes))
        for node in members:
            if node not in self._adj:
                raise NodeNotFoundError(node)
        for i, u in enumerate(members):
            adjacency = self._adj[u]
            for v in members[i + 1 :]:
                if v not in adjacency:
                    return False
        return True

    def copy(self) -> "Graph":
        """Return an independent deep copy of the graph."""
        clone = Graph()
        clone._adj = {node: set(nbrs) for node, nbrs in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone

    # ------------------------------------------------------------------
    # Dunders
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if self._adj.keys() != other._adj.keys():
            return False
        return all(self._adj[node] == other._adj[node] for node in self._adj)

    def __repr__(self) -> str:
        return f"Graph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"

"""Core decomposition, degeneracy, and degeneracy orderings.

Sparsity is the property the paper's convergence guarantee rests on
(Section 5): the first-level decomposition terminates iff the block-size
limit ``m`` exceeds the graph's degeneracy.  This module implements the
linear-time core-decomposition algorithm of Batagelj and Zaversnik
(reference [4] of the paper) with a bucket queue, plus the derived
quantities the rest of the library needs:

* :func:`core_numbers` — the core number of every node;
* :func:`degeneracy` — the maximum core number (a.k.a. coreness);
* :func:`degeneracy_ordering` — the peeling order used by the
  Eppstein–Strash MCE algorithm;
* :func:`k_core` — the node set of the ``k``-core, used by the convergence
  guard and by Theorem 1 experiments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.graph.adjacency import Graph, Node

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (csr imports Graph)
    from repro.graph.csr import CSRGraph


def core_numbers(graph: Graph) -> dict[Node, int]:
    """Return the core number of every node of ``graph``.

    The core number of ``v`` is the largest ``k`` such that ``v`` belongs to
    the ``k``-core (the maximal subgraph whose minimum degree is ``k``).
    Runs in ``O(|N| + |E|)`` using the bucket-queue peeling of Batagelj and
    Zaversnik.
    """
    degrees = {node: graph.degree(node) for node in graph.nodes()}
    if not degrees:
        return {}
    max_degree = max(degrees.values())
    # Bucket i holds the not-yet-peeled nodes of current degree i.
    buckets: list[list[Node]] = [[] for _ in range(max_degree + 1)]
    for node, degree in degrees.items():
        buckets[degree].append(node)

    core: dict[Node, int] = {}
    remaining_degree = dict(degrees)
    peeled: set[Node] = set()
    current = 0
    processed = 0
    total = len(degrees)
    while processed < total:
        while current <= max_degree and not buckets[current]:
            current += 1
        node = buckets[current].pop()
        if node in peeled or remaining_degree[node] != current:
            # Stale bucket entry: the node moved to a lower bucket when a
            # neighbour was peeled.  Skip it; the fresh entry is elsewhere.
            continue
        core[node] = current
        peeled.add(node)
        processed += 1
        for other in graph.neighbors(node):
            if other in peeled:
                continue
            degree = remaining_degree[other]
            if degree > current:
                remaining_degree[other] = degree - 1
                buckets[degree - 1].append(other)
    return core


def degeneracy(graph: Graph) -> int:
    """Return the degeneracy (maximum core number) of ``graph``; 0 if empty.

    A graph is ``d``-degenerate when every subgraph has a node of degree at
    most ``d``.  Real-world social networks have low degeneracy relative to
    their maximum degree, which is exactly what makes the paper's two-level
    decomposition converge quickly on them.
    """
    numbers = core_numbers(graph)
    if not numbers:
        return 0
    return max(numbers.values())


def core_numbers_csr(csr: "CSRGraph") -> np.ndarray:
    """Core numbers of a :class:`~repro.graph.csr.CSRGraph`, by dense index.

    The same Batagelj–Zaversnik bucket peeling as :func:`core_numbers`,
    but operating on the CSR arrays directly — degrees come from one
    ``indptr`` difference and neighbour scans are array slices — so the
    CSR-native planner never expands a snapshot back into a dict
    ``Graph`` just to size its blocks.
    """
    n = csr.num_nodes
    core = np.zeros(n, dtype=np.int64)
    if n == 0:
        return core
    indptr, indices = csr.indptr, csr.indices
    remaining = csr.degree_array().copy()
    max_degree = int(remaining.max())
    buckets: list[list[int]] = [[] for _ in range(max_degree + 1)]
    for node, degree in enumerate(remaining.tolist()):
        buckets[degree].append(node)
    peeled = np.zeros(n, dtype=bool)
    current = 0
    processed = 0
    while processed < n:
        while current <= max_degree and not buckets[current]:
            current += 1
        node = buckets[current].pop()
        if peeled[node] or remaining[node] != current:
            continue  # stale entry; the fresh one sits in a lower bucket
        core[node] = current
        peeled[node] = True
        processed += 1
        for other in indices[indptr[node] : indptr[node + 1]].tolist():
            if peeled[other]:
                continue
            degree = int(remaining[other])
            if degree > current:
                remaining[other] = degree - 1
                buckets[degree - 1].append(other)
    return core


def degeneracy_csr(csr: "CSRGraph") -> int:
    """Degeneracy of a CSR snapshot (maximum core number; 0 if empty)."""
    numbers = core_numbers_csr(csr)
    if not len(numbers):
        return 0
    return int(numbers.max())


def degeneracy_ordering(graph: Graph) -> list[Node]:
    """Return a degeneracy ordering of the nodes of ``graph``.

    The ordering repeatedly removes a minimum-degree node; every node has at
    most ``degeneracy(graph)`` neighbours *later* in the order.  This is the
    outer-loop order of the Eppstein–Strash algorithm (reference [17] of the
    paper) and is computed with the same bucket queue as
    :func:`core_numbers`, so it also runs in linear time.

    Ties are broken by insertion order, making the ordering deterministic.
    """
    degrees = {node: graph.degree(node) for node in graph.nodes()}
    if not degrees:
        return []
    max_degree = max(degrees.values())
    buckets: list[dict[Node, None]] = [dict() for _ in range(max_degree + 1)]
    for node, degree in degrees.items():
        buckets[degree][node] = None

    order: list[Node] = []
    remaining_degree = dict(degrees)
    removed: set[Node] = set()
    current = 0
    while len(order) < len(degrees):
        while current <= max_degree and not buckets[current]:
            current += 1
        node = next(iter(buckets[current]))
        del buckets[current][node]
        order.append(node)
        removed.add(node)
        for other in graph.neighbors(node):
            if other in removed:
                continue
            degree = remaining_degree[other]
            if other in buckets[degree]:
                del buckets[degree][other]
            remaining_degree[other] = degree - 1
            buckets[degree - 1][other] = None
            if degree - 1 < current:
                current = degree - 1
    return order


def k_core(graph: Graph, k: int) -> frozenset[Node]:
    """Return the node set of the ``k``-core of ``graph`` (possibly empty).

    The ``k``-core is obtained by recursively deleting nodes of degree less
    than ``k``.  The paper's Theorem 1 states that the first-level recursion
    converges exactly when the ``m``-core is empty, which callers check via
    ``not k_core(graph, m)``.
    """
    if k <= 0:
        return frozenset(graph.nodes())
    numbers = core_numbers(graph)
    return frozenset(node for node, core in numbers.items() if core >= k)


def peel_iterations(graph: Graph, threshold: int) -> int:
    """Count rounds of simultaneous low-degree removal until a fixpoint.

    Each round removes, *simultaneously*, every node whose degree in the
    current residual graph is below ``threshold``.  This mirrors the paper's
    first-level recursion (each ``CUT`` call removes all feasible nodes at
    once) without building blocks, so experiments can measure the recursion
    depth cheaply.  Returns the number of rounds executed until either the
    graph is empty (convergence) or a round removes nothing (the residual is
    the ``threshold``-core and the recursion would never terminate).
    """
    remaining: set[Node] = set(graph.nodes())
    degree = {node: graph.degree(node) for node in remaining}
    rounds = 0
    while remaining:
        doomed = [node for node in remaining if degree[node] < threshold]
        if not doomed:
            break
        rounds += 1
        doomed_set = set(doomed)
        for node in doomed:
            for other in graph.neighbors(node):
                if other in remaining and other not in doomed_set:
                    degree[other] -= 1
        remaining -= doomed_set
    return rounds

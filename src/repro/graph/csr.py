"""Compressed sparse row (CSR) graph snapshots.

Blocks are shipped between machines and held in worker memory; the
paper sizes blocks against available RAM, which makes a compact
immutable representation worth having.  :class:`CSRGraph` stores the
adjacency structure in two numpy arrays (``indptr``/``indices``), the
standard CSR layout, with an explicit byte-count so the distributed
layer can reason about memory footprints precisely instead of through
the coarse triple-format estimate.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import NodeNotFoundError
from repro.graph.adjacency import Graph, Node


class CSRGraph:
    """An immutable CSR snapshot of a :class:`repro.graph.Graph`.

    Node labels are preserved; internally nodes are the dense indices
    ``0..n-1`` in the source graph's insertion order.  Neighbour lists
    are sorted, enabling binary-search edge queries in ``O(log deg)``.
    """

    def __init__(self, graph: Graph) -> None:
        self._labels: list[Node] = list(graph.nodes())
        index = {node: i for i, node in enumerate(self._labels)}
        n = len(self._labels)
        degrees = np.zeros(n + 1, dtype=np.int64)
        for node in self._labels:
            degrees[index[node] + 1] = graph.degree(node)
        self._indptr = np.cumsum(degrees)
        self._indices = np.empty(int(self._indptr[-1]), dtype=np.int64)
        cursor = self._indptr[:-1].copy()
        for node in self._labels:
            i = index[node]
            neighbors = sorted(index[other] for other in graph.neighbors(node))
            for other in neighbors:
                self._indices[cursor[i]] = other
                cursor[i] += 1
        self._index = index

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return int(self._indptr[-1]) // 2

    def label(self, index: int) -> Node:
        """Original label of dense index ``index``."""
        return self._labels[index]

    def index_of(self, node: Node) -> int:
        """Dense index of ``node``.

        Raises
        ------
        NodeNotFoundError
            If ``node`` is not in the snapshot.
        """
        try:
            return self._index[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def degree(self, node: Node) -> int:
        """Degree of ``node``."""
        i = self.index_of(node)
        return int(self._indptr[i + 1] - self._indptr[i])

    def neighbor_indices(self, index: int) -> Sequence[int]:
        """Sorted dense neighbour indices of dense index ``index``."""
        return self._indices[self._indptr[index] : self._indptr[index + 1]]

    def neighbors(self, node: Node) -> Iterator[Node]:
        """Iterate over the neighbours of ``node`` in label form."""
        for other in self.neighbor_indices(self.index_of(node)):
            yield self._labels[int(other)]

    def has_edge(self, u: Node, v: Node) -> bool:
        """Edge query via binary search on the sorted neighbour row."""
        i, j = self.index_of(u), self.index_of(v)
        row = self.neighbor_indices(i)
        position = int(np.searchsorted(row, j))
        return position < len(row) and int(row[position]) == j

    def memory_bytes(self) -> int:
        """Bytes held by the two CSR arrays (labels excluded)."""
        return int(self._indptr.nbytes + self._indices.nbytes)

    def to_graph(self) -> Graph:
        """Expand back to a mutable :class:`Graph` (exact round-trip)."""
        graph = Graph(nodes=self._labels)
        for i, node in enumerate(self._labels):
            for other in self.neighbor_indices(i):
                if int(other) > i:
                    graph.add_edge(node, self._labels[int(other)])
        return graph

    def __repr__(self) -> str:
        return (
            f"CSRGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges}, "
            f"memory_bytes={self.memory_bytes()})"
        )

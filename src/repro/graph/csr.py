"""Compressed sparse row (CSR) graph snapshots.

Blocks are shipped between machines and held in worker memory; the
paper sizes blocks against available RAM, which makes a compact
immutable representation worth having.  :class:`CSRGraph` stores the
adjacency structure in two numpy arrays (``indptr``/``indices``), the
standard CSR layout, with an explicit byte-count so the distributed
layer can reason about memory footprints precisely instead of through
the coarse triple-format estimate.

:class:`SharedCSR` publishes one CSR snapshot into POSIX shared memory
(:mod:`multiprocessing.shared_memory`) so worker processes on the same
machine can attach to the adjacency arrays zero-copy instead of
receiving a pickled subgraph per block.  Lifetime rules: exactly one
process — the publisher — owns the segments and must call
:meth:`SharedCSR.unlink` (or use the instance as a context manager);
every attached process only maps the existing segments and calls
:meth:`SharedCSR.close` when done.

:func:`extract_block_bitmap` turns a CSR slice (any member-id array over
the snapshot) into the packed ``n × ceil(n/64)`` adjacency bitmap the
``bitmatrix`` kernel and the ``from_packed`` backend constructors
consume — the per-block materialization step of the zero-copy worker
path, with a :class:`BitmapScratch` cache so repeated blocks of the
same size reuse one buffer instead of allocating per block.
"""

from __future__ import annotations

import pickle
import uuid
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Iterator, Sequence

import numpy as np

from repro.errors import NodeNotFoundError
from repro.graph.adjacency import Graph, Node

SHARED_SEGMENT_PREFIX = "repro-csr-"

_ONE = np.uint64(1)


class BitmapScratch:
    """A per-process cache of packed-bitmap buffers, keyed by block size.

    Block analyses are strictly sequential within one worker, so a
    single buffer per distinct block size suffices: ``get(n)`` returns a
    zeroed ``n × ceil(n/64)`` ``uint64`` view that stays valid until the
    next ``get`` call with the same size.  Callers must finish with the
    bitmap (or copy it) before requesting the next same-sized one; the
    backends built via ``from_packed`` either copy out of it (lists /
    bitsets / matrix) or are discarded before the next block
    (bitmatrix), so the reuse is safe by construction.
    """

    def __init__(self) -> None:
        self._buffers: dict[int, np.ndarray] = {}

    def get(self, n: int) -> np.ndarray:
        """Return a zeroed ``n × ceil(n/64)`` bitmap buffer for reuse."""
        words = (n + 63) // 64
        buffer = self._buffers.get(n)
        if buffer is None:
            buffer = np.zeros((n, words), dtype=np.uint64)
            self._buffers[n] = buffer
        else:
            buffer[:] = 0
        return buffer

    def nbytes(self) -> int:
        """Total bytes currently held across all cached buffers."""
        return sum(int(buffer.nbytes) for buffer in self._buffers.values())


def extract_block_bitmap(
    indptr: np.ndarray,
    indices: np.ndarray,
    member_ids: np.ndarray,
    scratch: BitmapScratch | None = None,
) -> np.ndarray:
    """Pack the subgraph induced by ``member_ids`` into an adjacency bitmap.

    ``member_ids`` lists the block's members by their dense indices in
    the CSR snapshot; the result is an ``n × ceil(n/64)`` ``uint64``
    array where row ``i`` has bit ``j`` set iff members ``i`` and ``j``
    (in ``member_ids`` order) are adjacent.  Each member's CSR row is
    intersected with the member set via one vectorized ``searchsorted``
    — no ``Graph``, no per-edge Python objects — so this is the direct
    CSR → kernel-input path of the shared-memory executor.

    With a ``scratch`` cache the bitmap is written into a reused buffer
    (see :class:`BitmapScratch` for the lifetime contract); without one
    a fresh array is allocated.
    """
    member_ids = np.asarray(member_ids, dtype=np.int64)
    n = len(member_ids)
    bitmap = scratch.get(n) if scratch is not None else np.zeros(
        (n, (n + 63) // 64), dtype=np.uint64
    )
    if n == 0:
        return bitmap
    order = np.argsort(member_ids, kind="stable")
    sorted_ids = member_ids[order]
    for i in range(n):
        u = int(member_ids[i])
        row = indices[indptr[u] : indptr[u + 1]]
        if not len(row):
            continue
        positions = np.searchsorted(sorted_ids, row)
        positions[positions == n] = 0  # out-of-range probes; masked below
        hits = sorted_ids[positions] == row
        local = order[positions[hits]]
        np.bitwise_or.at(
            bitmap[i], local >> 6, _ONE << (local.astype(np.uint64) & np.uint64(63))
        )
    return bitmap


class CSRGraph:
    """An immutable CSR snapshot of a :class:`repro.graph.Graph`.

    Node labels are preserved; internally nodes are the dense indices
    ``0..n-1`` in the source graph's insertion order.  Neighbour lists
    are sorted, enabling binary-search edge queries in ``O(log deg)``.
    """

    def __init__(self, graph: Graph) -> None:
        self._labels: list[Node] = list(graph.nodes())
        index = {node: i for i, node in enumerate(self._labels)}
        n = len(self._labels)
        counts = np.zeros(n + 1, dtype=np.int64)
        flat: list[int] = []
        for i, node in enumerate(self._labels):
            row = sorted(index[other] for other in graph.neighbors(node))
            counts[i + 1] = len(row)
            flat.extend(row)
        self._indptr = np.cumsum(counts)
        self._indices = np.asarray(flat, dtype=np.int64)
        self._index = index

    @classmethod
    def from_arrays(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        labels: Sequence[Node],
    ) -> "CSRGraph":
        """Wrap pre-built CSR arrays without round-tripping through ``Graph``.

        ``indptr``/``indices`` must already be valid int64 CSR arrays with
        sorted neighbour rows (the invariant every other method relies on);
        :func:`induced_csr` and the CSR-native decomposition construct their
        level graphs this way.

        Raises
        ------
        ValueError
            If the array shapes are inconsistent with ``labels``.
        """
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        labels = list(labels)
        if len(indptr) != len(labels) + 1:
            raise ValueError(
                f"indptr length {len(indptr)} does not match "
                f"{len(labels)} labels"
            )
        if len(indptr) and int(indptr[-1]) != len(indices):
            raise ValueError(
                f"indptr tail {int(indptr[-1])} does not match "
                f"{len(indices)} indices"
            )
        snapshot = cls.__new__(cls)
        snapshot._labels = labels
        snapshot._indptr = indptr
        snapshot._indices = indices
        snapshot._index = {node: i for i, node in enumerate(labels)}
        return snapshot

    def degree_array(self) -> np.ndarray:
        """Per-node degrees as one vectorized ``indptr`` difference."""
        return np.diff(self._indptr)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return int(self._indptr[-1]) // 2

    @property
    def indptr(self) -> np.ndarray:
        """The CSR row-pointer array (length ``num_nodes + 1``)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """The CSR column-index array (length ``2 * num_edges``)."""
        return self._indices

    @property
    def labels(self) -> list[Node]:
        """Original node labels in dense-index order."""
        return self._labels

    def label(self, index: int) -> Node:
        """Original label of dense index ``index``."""
        return self._labels[index]

    def index_of(self, node: Node) -> int:
        """Dense index of ``node``.

        Raises
        ------
        NodeNotFoundError
            If ``node`` is not in the snapshot.
        """
        try:
            return self._index[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def degree(self, node: Node) -> int:
        """Degree of ``node``."""
        i = self.index_of(node)
        return int(self._indptr[i + 1] - self._indptr[i])

    def neighbor_indices(self, index: int) -> Sequence[int]:
        """Sorted dense neighbour indices of dense index ``index``."""
        return self._indices[self._indptr[index] : self._indptr[index + 1]]

    def neighbors(self, node: Node) -> Iterator[Node]:
        """Iterate over the neighbours of ``node`` in label form."""
        for other in self.neighbor_indices(self.index_of(node)):
            yield self._labels[int(other)]

    def has_edge(self, u: Node, v: Node) -> bool:
        """Edge query via binary search on the sorted neighbour row."""
        i, j = self.index_of(u), self.index_of(v)
        row = self.neighbor_indices(i)
        position = int(np.searchsorted(row, j))
        return position < len(row) and int(row[position]) == j

    def memory_bytes(self) -> int:
        """Bytes held by the two CSR arrays (labels excluded)."""
        return int(self._indptr.nbytes + self._indices.nbytes)

    def to_graph(self) -> Graph:
        """Expand back to a mutable :class:`Graph` (exact round-trip)."""
        graph = Graph(nodes=self._labels)
        for i, node in enumerate(self._labels):
            for other in self.neighbor_indices(i):
                if int(other) > i:
                    graph.add_edge(node, self._labels[int(other)])
        return graph

    def __repr__(self) -> str:
        return (
            f"CSRGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges}, "
            f"memory_bytes={self.memory_bytes()})"
        )


def induced_csr(csr: CSRGraph, keep_ids: np.ndarray) -> CSRGraph:
    """Materialize the subgraph induced by ``keep_ids`` as a new CSR.

    ``keep_ids`` are dense indices into ``csr`` and must be strictly
    increasing (the order :func:`repro.core.feasibility.cut_csr` emits),
    which keeps the filtered neighbour rows sorted without a re-sort.
    The whole extraction is flat numpy — one gather of the kept rows,
    one membership mask, one ``bincount`` — so the hub recursion never
    constructs a dict ``Graph`` between levels.

    Raises
    ------
    ValueError
        If ``keep_ids`` is not strictly increasing or out of range.
    """
    keep_ids = np.asarray(keep_ids, dtype=np.int64)
    n = csr.num_nodes
    if len(keep_ids):
        if np.any(np.diff(keep_ids) <= 0):
            raise ValueError("keep_ids must be strictly increasing")
        if int(keep_ids[0]) < 0 or int(keep_ids[-1]) >= n:
            raise ValueError("keep_ids out of range for this snapshot")
    indptr, indices = csr.indptr, csr.indices
    counts = indptr[keep_ids + 1] - indptr[keep_ids]
    total = int(counts.sum())
    # Gather every neighbour entry of the kept rows in one flat array.
    row_starts = np.cumsum(counts) - counts
    flat = (
        np.arange(total, dtype=np.int64)
        - np.repeat(row_starts, counts)
        + np.repeat(indptr[keep_ids], counts)
    )
    neighbors = indices[flat]
    keep_mask = np.zeros(n, dtype=bool)
    keep_mask[keep_ids] = True
    new_id = np.full(n, -1, dtype=np.int64)
    new_id[keep_ids] = np.arange(len(keep_ids), dtype=np.int64)
    inside = keep_mask[neighbors]
    source_row = np.repeat(np.arange(len(keep_ids), dtype=np.int64), counts)
    new_indices = new_id[neighbors[inside]]
    new_counts = np.bincount(source_row[inside], minlength=len(keep_ids))
    new_indptr = np.zeros(len(keep_ids) + 1, dtype=np.int64)
    np.cumsum(new_counts, out=new_indptr[1:])
    labels = csr.labels
    return CSRGraph.from_arrays(
        new_indptr, new_indices, [labels[int(i)] for i in keep_ids]
    )


@dataclass(frozen=True)
class SharedCSRHandle:
    """Everything a worker needs to attach to a published snapshot.

    The handle is tiny and picklable; it travels to workers once (via a
    pool initializer), after which block dispatch carries only node-id
    arrays.
    """

    indptr_name: str
    indices_name: str
    labels_name: str
    num_nodes: int
    num_indices: int
    labels_bytes: int


def _open_existing(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment by name.

    Pool workers inherit the publisher's resource tracker (its fd is
    passed to children under both fork and spawn), and the tracker's
    per-type cache is a set, so the worker-side registration collapses
    into the publisher's — the segment is unregistered exactly once,
    when the publisher unlinks it.  Attaching from an *unrelated*
    process would start a second tracker that unlinks the segment at
    its own exit; only attach from processes spawned by the publisher.
    """
    return shared_memory.SharedMemory(name=name)


class SharedCSR:
    """A CSR snapshot living in named POSIX shared-memory segments.

    Three segments hold the row pointers, the column indices, and the
    pickled label list.  :meth:`publish` creates them (the calling
    process becomes the owner); :meth:`attach` maps existing segments
    zero-copy in a worker.  The numpy views returned by :attr:`indptr`
    and :attr:`indices` are read-only and borrow the segment buffers,
    so the instance must stay alive while they are in use.
    """

    def __init__(
        self,
        handle: SharedCSRHandle,
        segments: tuple[shared_memory.SharedMemory, ...],
        owner: bool,
    ) -> None:
        self.handle = handle
        self._segments = segments
        self._owner = owner
        indptr_shm, indices_shm, labels_shm = segments
        self._indptr = np.ndarray(
            (handle.num_nodes + 1,), dtype=np.int64, buffer=indptr_shm.buf
        )
        self._indptr.flags.writeable = False
        self._indices = np.ndarray(
            (handle.num_indices,), dtype=np.int64, buffer=indices_shm.buf
        )
        self._indices.flags.writeable = False
        self._labels_shm = labels_shm
        self._labels: list[Node] | None = None

    # ------------------------------------------------------------------
    @classmethod
    def publish(cls, csr: CSRGraph) -> "SharedCSR":
        """Copy ``csr`` into fresh shared-memory segments and own them."""
        token = uuid.uuid4().hex[:12]
        labels_blob = pickle.dumps(csr.labels, protocol=pickle.HIGHEST_PROTOCOL)
        names = tuple(
            f"{SHARED_SEGMENT_PREFIX}{token}-{part}"
            for part in ("indptr", "indices", "labels")
        )
        sizes = (csr.indptr.nbytes, max(1, csr.indices.nbytes), len(labels_blob))
        segments: list[shared_memory.SharedMemory] = []
        try:
            for name, size in zip(names, sizes):
                segments.append(
                    shared_memory.SharedMemory(name=name, create=True, size=size)
                )
            handle = SharedCSRHandle(
                indptr_name=names[0],
                indices_name=names[1],
                labels_name=names[2],
                num_nodes=csr.num_nodes,
                num_indices=len(csr.indices),
                labels_bytes=len(labels_blob),
            )
            shared = cls(handle, tuple(segments), owner=True)
            np.copyto(
                np.ndarray(csr.indptr.shape, np.int64, buffer=segments[0].buf),
                csr.indptr,
            )
            if len(csr.indices):
                np.copyto(
                    np.ndarray(csr.indices.shape, np.int64, buffer=segments[1].buf),
                    csr.indices,
                )
            segments[2].buf[: len(labels_blob)] = labels_blob
            return shared
        except Exception:
            for segment in segments:
                segment.close()
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
            raise

    @classmethod
    def attach(cls, handle: SharedCSRHandle) -> "SharedCSR":
        """Map the published segments in this process (non-owning)."""
        segments: list[shared_memory.SharedMemory] = []
        try:
            for name in (handle.indptr_name, handle.indices_name, handle.labels_name):
                segments.append(_open_existing(name))
            return cls(handle, tuple(segments), owner=False)
        except Exception:
            for segment in segments:
                segment.close()
            raise

    # ------------------------------------------------------------------
    @property
    def indptr(self) -> np.ndarray:
        """Read-only row-pointer view into shared memory."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Read-only column-index view into shared memory."""
        return self._indices

    @property
    def labels(self) -> list[Node]:
        """The label list (unpickled once per process, then cached)."""
        if self._labels is None:
            blob = bytes(self._labels_shm.buf[: self.handle.labels_bytes])
            self._labels = pickle.loads(blob)
        return self._labels

    def neighbor_indices(self, index: int) -> np.ndarray:
        """Sorted dense neighbour indices of dense index ``index``."""
        return self._indices[self._indptr[index] : self._indptr[index + 1]]

    def nbytes(self) -> int:
        """Total bytes published across the three segments."""
        return int(self._indptr.nbytes + self._indices.nbytes) + int(
            self.handle.labels_bytes
        )

    # -- lifetime ----------------------------------------------------------
    def close(self) -> None:
        """Unmap the segments from this process (safe to call twice)."""
        self._indptr = None  # type: ignore[assignment] - drop buffer views first
        self._indices = None  # type: ignore[assignment]
        for segment in self._segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - a view still alive
                pass

    def unlink(self) -> None:
        """Destroy the segments; only the publisher may call this."""
        if not self._owner:
            return
        for segment in self._segments:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already reaped
                pass

    def __enter__(self) -> "SharedCSR":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
        self.unlink()

    def __repr__(self) -> str:
        role = "owner" if self._owner else "attached"
        return (
            f"SharedCSR(num_nodes={self.handle.num_nodes}, "
            f"num_indices={self.handle.num_indices}, {role})"
        )

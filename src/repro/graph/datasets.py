"""Calibrated stand-ins for the paper's five evaluation data sets.

The paper evaluates on five SNAP/Konect social networks (Table 3):

=========  ===========  ============  ==============  ================
name       # of nodes   # of edges    max degree      max clique size
=========  ===========  ============  ==============  ================
twitter1     2,919,613    12,887,063        39,753            27
twitter2     6,072,441   117,185,083       338,313            31
twitter3    17,069,982   476,553,560     2,081,112            33
facebook     4,601,952    87,610,993     2,621,960            21
google+      6,308,731    81,700,035     1,098,000            18
=========  ===========  ============  ==============  ================

Those graphs are not redistributable here and are far beyond pure-Python
MCE scale, so each is replaced by a *calibrated synthetic stand-in*
(DESIGN.md §2): a preferential-attachment + triadic-closure network
(:func:`repro.graph.generators.social_network`) scaled down by roughly
three orders of magnitude, with planted cliques whose maximum size matches
the paper's reported maximum clique size.  The stand-ins preserve the
properties the paper's experiments depend on — a power-law degree tail
with pronounced hubs, ~90% of nodes at degree ≤ 20 (Figure 6), hub-only
cliques among the largest in the graph (Figures 9–11).

Use :func:`load_dataset` for a single network or :func:`load_all` for the
whole suite; :data:`DATASETS` exposes the calibration and the paper's
original statistics for reporting (Table 3 benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.adjacency import Graph
from repro.graph.generators import social_network


@dataclass(frozen=True)
class DatasetSpec:
    """Calibration of one stand-in plus the paper's original statistics."""

    name: str
    paper_nodes: int
    paper_edges: int
    paper_max_degree: int
    paper_max_clique: int
    nodes: int
    attachment: int
    closure_probability: float
    planted_cliques: tuple[int, ...]
    seed: int = 0
    description: str = ""

    def build(self, seed: int | None = None) -> Graph:
        """Generate the stand-in graph (deterministic for a given seed)."""
        return social_network(
            self.nodes,
            attachment=self.attachment,
            closure_probability=self.closure_probability,
            planted_cliques=self.planted_cliques,
            seed=self.seed if seed is None else seed,
        )

    @property
    def scale(self) -> float:
        """Node-count ratio of the stand-in to the paper's data set."""
        return self.nodes / self.paper_nodes


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            name="twitter1",
            paper_nodes=2_919_613,
            paper_edges=12_887_063,
            paper_max_degree=39_753,
            paper_max_clique=27,
            nodes=2900,
            attachment=3,
            closure_probability=0.45,
            planted_cliques=(27, 20, 15, 12, 10, 8),
            seed=101,
            description="portion 1 of the Twitter follower network",
        ),
        DatasetSpec(
            name="twitter2",
            paper_nodes=6_072_441,
            paper_edges=117_185_083,
            paper_max_degree=338_313,
            paper_max_clique=31,
            nodes=2800,
            attachment=4,
            closure_probability=0.45,
            planted_cliques=(31, 24, 18, 14, 10),
            seed=102,
            description="portion 2 of the Twitter follower network",
        ),
        DatasetSpec(
            name="twitter3",
            paper_nodes=17_069_982,
            paper_edges=476_553_560,
            paper_max_degree=2_081_112,
            paper_max_clique=33,
            nodes=3200,
            attachment=5,
            closure_probability=0.42,
            planted_cliques=(33, 26, 20, 15, 12),
            seed=103,
            description="portion 3 of the Twitter follower network",
        ),
        DatasetSpec(
            name="facebook",
            paper_nodes=4_601_952,
            paper_edges=87_610_993,
            paper_max_degree=2_621_960,
            paper_max_clique=21,
            nodes=2300,
            attachment=5,
            closure_probability=0.40,
            planted_cliques=(21, 16, 12, 10),
            seed=104,
            description="Facebook friendship network with wall posts",
        ),
        DatasetSpec(
            name="google+",
            paper_nodes=6_308_731,
            paper_edges=81_700_035,
            paper_max_degree=1_098_000,
            paper_max_clique=18,
            nodes=2100,
            attachment=4,
            closure_probability=0.35,
            planted_cliques=(18, 14, 11, 9),
            seed=105,
            description="circles data from Google+",
        ),
    )
}

DATASET_NAMES: tuple[str, ...] = tuple(DATASETS)


def load_dataset(name: str, seed: int | None = None) -> Graph:
    """Build the stand-in for the data set called ``name``.

    Raises
    ------
    KeyError
        If ``name`` is not one of :data:`DATASET_NAMES`.
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        known = ", ".join(DATASET_NAMES)
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None
    return spec.build(seed=seed)


def load_all(seed: int | None = None) -> dict[str, Graph]:
    """Build all five stand-ins, keyed by data-set name."""
    return {name: spec.build(seed=seed) for name, spec in DATASETS.items()}

"""Seeded random-graph generators.

The paper trains its decision tree on "a collection of 50 graphs, both
synthetic (generated according to the models of Erdős–Rényi,
Barabási–Albert and Watts–Strogatz) and real-world (taken from the SNAP
project)" (Section 4) and evaluates on five very large social networks
(Section 6).  This module provides the three synthetic families, a
social-network generator combining preferential attachment with triadic
closure and planted cliques (the local stand-in for the SNAP/Konect data,
see DESIGN.md §2), and the pathological graph ``H_n`` from the proof of
Theorem 1.

Every generator takes an explicit ``seed``; identical seeds give identical
graphs across runs and platforms.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Sequence

from repro.graph.adjacency import Graph


def complete_graph(n: int) -> Graph:
    """Return the complete graph ``K_n`` on nodes ``0..n-1``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v)
    return graph


def cycle_graph(n: int) -> Graph:
    """Return the cycle ``C_n`` on nodes ``0..n-1`` (empty for ``n < 3``)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    graph = Graph(nodes=range(n))
    if n >= 3:
        for u in range(n):
            graph.add_edge(u, (u + 1) % n)
    elif n == 2:
        graph.add_edge(0, 1)
    return graph


def star_graph(n_leaves: int) -> Graph:
    """Return a star: hub node ``0`` joined to leaves ``1..n_leaves``."""
    if n_leaves < 0:
        raise ValueError("n_leaves must be non-negative")
    graph = Graph(nodes=range(n_leaves + 1))
    for leaf in range(1, n_leaves + 1):
        graph.add_edge(0, leaf)
    return graph


def erdos_renyi(n: int, p: float, seed: int = 0) -> Graph:
    """Return a ``G(n, p)`` Erdős–Rényi random graph.

    Each of the ``n·(n−1)/2`` possible edges is present independently with
    probability ``p``.  Uses the geometric skipping technique, so sparse
    graphs cost ``O(n + |E|)`` rather than ``O(n²)``.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    graph = Graph(nodes=range(n))
    if p == 0.0 or n < 2:
        return graph
    rng = random.Random(seed)
    if p == 1.0:
        return complete_graph(n)
    # Iterate over edge ranks, skipping geometrically between successes.
    log_q = math.log(1.0 - p)
    v, w = 1, -1
    while v < n:
        w += 1 + int(math.log(1.0 - rng.random()) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            graph.add_edge(v, w)
    return graph


def barabasi_albert(n: int, m: int, seed: int = 0) -> Graph:
    """Return a Barabási–Albert preferential-attachment graph.

    Starts from a star on ``m + 1`` nodes; each subsequent node attaches to
    ``m`` distinct existing nodes chosen with probability proportional to
    their degree (implemented with the standard repeated-endpoint trick).
    Produces the scale-free, hub-heavy degree distribution that motivates
    the paper (Section 1).
    """
    if m < 1:
        raise ValueError("m must be at least 1")
    if n < m + 1:
        raise ValueError("n must be at least m + 1")
    rng = random.Random(seed)
    graph = Graph(nodes=range(n))
    # repeated_nodes holds each node once per incident edge endpoint, so a
    # uniform draw from it is a degree-proportional draw.
    repeated_nodes: list[int] = []
    for leaf in range(1, m + 1):
        graph.add_edge(0, leaf)
        repeated_nodes.extend((0, leaf))
    for source in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated_nodes))
        for target in targets:
            graph.add_edge(source, target)
            repeated_nodes.extend((source, target))
    return graph


def watts_strogatz(n: int, k: int, beta: float, seed: int = 0) -> Graph:
    """Return a Watts–Strogatz small-world graph.

    Starts from a ring lattice where each node is joined to its ``k``
    nearest neighbours (``k`` even), then rewires each lattice edge with
    probability ``beta`` to a uniform random endpoint, skipping rewirings
    that would create self-loops or duplicate edges.
    """
    if k < 2 or k % 2 != 0:
        raise ValueError("k must be an even integer >= 2")
    if n <= k:
        raise ValueError("n must exceed k")
    if not 0.0 <= beta <= 1.0:
        raise ValueError("beta must be in [0, 1]")
    rng = random.Random(seed)
    graph = Graph(nodes=range(n))
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            graph.add_edge(u, (u + offset) % n)
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            if rng.random() < beta and graph.has_edge(u, v):
                candidates = [
                    w for w in range(n) if w != u and not graph.has_edge(u, w)
                ]
                if candidates:
                    graph.remove_edge(u, v)
                    graph.add_edge(u, rng.choice(candidates))
    return graph


def social_network(
    n: int,
    attachment: int = 3,
    closure_probability: float = 0.5,
    planted_cliques: Sequence[int] = (),
    seed: int = 0,
) -> Graph:
    """Return a synthetic social network with hubs and dense communities.

    The generator is the stand-in for the paper's SNAP/Konect data sets
    (DESIGN.md §2).  It combines:

    * **preferential attachment** (``attachment`` edges per new node) —
      yields the power-law degree distribution and the hub nodes that are
      the whole point of the paper's first-level decomposition;
    * **triadic closure** — after each new node settles, each pair of its
      targets is joined with probability ``closure_probability``, raising
      clustering so that non-trivial maximal cliques form around hubs,
      as in real friendship graphs;
    * **planted cliques** — for each size ``s`` in ``planted_cliques`` a
      clique on ``s`` nodes biased toward high-degree nodes is inserted,
      reproducing the paper's observation that the largest cliques tend to
      involve hub nodes (Figures 9–11).

    Node labels are ``0..n-1``.
    """
    if attachment < 1:
        raise ValueError("attachment must be at least 1")
    if n < attachment + 1:
        raise ValueError("n must be at least attachment + 1")
    if not 0.0 <= closure_probability <= 1.0:
        raise ValueError("closure_probability must be in [0, 1]")
    rng = random.Random(seed)
    graph = Graph(nodes=range(n))
    repeated_nodes: list[int] = []
    for leaf in range(1, attachment + 1):
        graph.add_edge(0, leaf)
        repeated_nodes.extend((0, leaf))
    for source in range(attachment + 1, n):
        targets: set[int] = set()
        while len(targets) < attachment:
            targets.add(rng.choice(repeated_nodes))
        chosen = sorted(targets)
        for target in chosen:
            graph.add_edge(source, target)
            repeated_nodes.extend((source, target))
        for i, u in enumerate(chosen):
            for v in chosen[i + 1 :]:
                if rng.random() < closure_probability and not graph.has_edge(u, v):
                    graph.add_edge(u, v)
                    repeated_nodes.extend((u, v))
    for size in planted_cliques:
        if size < 2:
            raise ValueError("planted clique sizes must be at least 2")
        if size > n:
            raise ValueError("planted clique larger than the graph")
        members = _degree_biased_sample(graph, size, rng)
        graph.add_clique(members)
    return graph


def h_n(n: int, m: int) -> Graph:
    """Return the pathological graph ``H_n`` from the proof of Theorem 1.

    Construction (Section 5): start from the single node ``v1``; node
    ``v_j`` with ``j ≤ m + 1`` connects to all previous nodes (so the first
    ``m + 1`` nodes form a complete graph); node ``v_j`` with ``j > m + 1``
    connects to the ``m`` previously inserted nodes of *lowest degree*.

    ``H_n`` has degeneracy at most ``m`` yet forces the paper's first-level
    recursion to run ``Ω(n)`` rounds, because each round only peels the
    single most-recent node.  Nodes are labelled ``1..n`` after the paper's
    ``v_1..v_n``.
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    if m < 1:
        raise ValueError("m must be at least 1")
    graph = Graph(nodes=[1])
    for j in range(2, n + 1):
        graph.add_node(j)
        if j <= m + 1:
            for previous in range(1, j):
                graph.add_edge(j, previous)
            continue
        # Attach to the m previous nodes with the lowest degree; ties break
        # toward the most recently inserted node, which by induction keeps
        # the "peel one node per round" structure of the proof.
        previous_nodes = sorted(
            range(1, j), key=lambda node: (graph.degree(node), -node)
        )
        for target in previous_nodes[:m]:
            graph.add_edge(j, target)
    return graph


def stochastic_block_model(
    sizes: Sequence[int],
    p_in: float,
    p_out: float,
    seed: int = 0,
) -> Graph:
    """Return a planted-partition (stochastic block model) graph.

    Nodes are grouped into communities of the given ``sizes``; each
    intra-community pair is joined with probability ``p_in`` and each
    inter-community pair with probability ``p_out``.  With
    ``p_in >> p_out`` this is the classic community-detection benchmark
    workload: maximal cliques concentrate inside the planted groups,
    which the percolation extension then recovers.

    Nodes are labelled ``(community_index, member_index)``.

    Raises
    ------
    ValueError
        On empty/negative sizes or probabilities outside ``[0, 1]``.
    """
    if not sizes or any(size < 1 for size in sizes):
        raise ValueError("sizes must be a non-empty list of positive ints")
    for probability in (p_in, p_out):
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probabilities must be in [0, 1]")
    rng = random.Random(seed)
    nodes = [
        (community, member)
        for community, size in enumerate(sizes)
        for member in range(size)
    ]
    graph = Graph(nodes=nodes)
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            probability = p_in if u[0] == v[0] else p_out
            if probability > 0.0 and rng.random() < probability:
                graph.add_edge(u, v)
    return graph


def planted_straggler(
    dense_nodes: int = 40,
    dense_p: float = 0.5,
    tiny_blocks: int = 30,
    tiny_size: int = 6,
    tiny_p: float = 0.4,
    seed: int = 0,
) -> Graph:
    """One dense community plus many tiny sparse ones (disjoint).

    The worst case for block-level parallelism: with a block size cap
    above ``dense_nodes`` the decomposition packs the dense community
    into a single block whose Bron–Kerbosch cost dwarfs every other
    block's, so one worker grinds the straggler while the rest drain the
    tiny blocks and idle.  Used by the anchor-level splitting
    differential tests and ``benchmarks/bench_straggler.py``.
    """
    parts = [erdos_renyi(dense_nodes, dense_p, seed=seed)]
    for index in range(tiny_blocks):
        parts.append(erdos_renyi(tiny_size, tiny_p, seed=seed + index + 1))
    return disjoint_union(parts)


def disjoint_union(graphs: Iterable[Graph]) -> Graph:
    """Return the disjoint union, relabeling nodes as ``(index, node)``."""
    union = Graph()
    for index, graph in enumerate(graphs):
        for node in graph.nodes():
            union.add_node((index, node))
        for u, v in graph.edges():
            union.add_edge((index, u), (index, v))
    return union


def _degree_biased_sample(graph: Graph, size: int, rng: random.Random) -> list[int]:
    """Sample ``size`` distinct nodes with probability ∝ degree + 1."""
    nodes = list(graph.nodes())
    weights = [graph.degree(node) + 1 for node in nodes]
    chosen: list[int] = []
    chosen_set: set[int] = set()
    total = sum(weights)
    while len(chosen) < size:
        pick = rng.uniform(0.0, total)
        acc = 0.0
        for node, weight in zip(nodes, weights):
            acc += weight
            if pick <= acc:
                if node not in chosen_set:
                    chosen.append(node)
                    chosen_set.add(node)
                break
    return chosen

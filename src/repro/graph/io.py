"""Serialisation of graphs in the paper's triple format.

Section 6.2: "each data set is locally split into files whose records
contain triples in the format ⟨n1, e, n2⟩, where n1 and n2 are the labels
of the nodes and e is the label of the edge between them.  To speed-up the
process we encoded node and edge labels with hashes."

This module reads and writes that record format (one whitespace-separated
triple per line, ``#`` comments allowed), provides the stable label-hash
encoding the paper mentions, and round-trips clique sets for the
distributed runner.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.errors import FormatError
from repro.graph.adjacency import Graph, Node

_COMMENT = "#"


def write_triples(graph: Graph, destination: str | Path | IO[str]) -> int:
    """Write ``graph`` as ⟨n1, e, n2⟩ triples; return the number of records.

    The edge label is a deterministic sequential identifier ``e<k>`` in edge
    iteration order.  Isolated nodes are preserved with a dedicated
    ``<node> isolated <node>``-style marker line starting with ``#node``,
    so a round-trip reproduces the exact node set.
    """
    own_handle = isinstance(destination, (str, Path))
    handle: IO[str] = open(destination, "w") if own_handle else destination  # type: ignore[arg-type]
    try:
        records = 0
        for node in graph.nodes():
            if graph.degree(node) == 0:
                handle.write(f"#node {_encode(node)}\n")
        for index, (u, v) in enumerate(graph.edges()):
            handle.write(f"{_encode(u)} e{index} {_encode(v)}\n")
            records += 1
        return records
    finally:
        if own_handle:
            handle.close()


def read_triples(source: str | Path | IO[str]) -> Graph:
    """Parse a triple file written by :func:`write_triples` into a graph.

    Raises
    ------
    FormatError
        On records that are not ``#``-comments, ``#node`` markers, or
        three-field triples, and on self-loop triples.
    """
    own_handle = isinstance(source, (str, Path))
    handle: IO[str] = open(source, "r") if own_handle else source  # type: ignore[arg-type]
    try:
        graph = Graph()
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#node "):
                graph.add_node(_decode(line[len("#node ") :].strip()))
                continue
            if line.startswith(_COMMENT):
                continue
            fields = _split_fields(line, line_number)
            if len(fields) != 3:
                raise FormatError(
                    f"line {line_number}: expected 3 fields, got {len(fields)}: {line!r}"
                )
            u, _edge_label, v = fields
            if u == v:
                raise FormatError(f"line {line_number}: self-loop on {u!r}")
            graph.add_edge(_decode(u), _decode(v))
        return graph
    finally:
        if own_handle:
            handle.close()


def hash_label(label: object, digest_bits: int = 64) -> int:
    """Return a stable integer hash of ``label``.

    Python's built-in ``hash`` is salted per process, so it cannot serve as
    the paper's persistent label encoding; this uses BLAKE2b over the
    string form instead, truncated to ``digest_bits`` bits.  Collisions are
    possible in principle; :func:`hash_labels` detects and rejects them.
    """
    if digest_bits % 8 != 0 or not 8 <= digest_bits <= 512:
        raise ValueError("digest_bits must be a multiple of 8 in [8, 512]")
    digest = hashlib.blake2b(str(label).encode("utf-8"), digest_size=digest_bits // 8)
    return int.from_bytes(digest.digest(), "big")


def hash_labels(graph: Graph, digest_bits: int = 64) -> tuple[Graph, dict[int, Node]]:
    """Return ``graph`` with hashed node labels plus the inverse mapping.

    Raises
    ------
    FormatError
        If two distinct labels collide under the hash (raise rather than
        silently merging nodes).
    """
    inverse: dict[int, Node] = {}
    for node in graph.nodes():
        code = hash_label(node, digest_bits)
        if code in inverse and inverse[code] != node:
            raise FormatError(
                f"hash collision between labels {inverse[code]!r} and {node!r}"
            )
        inverse[code] = node
    hashed = Graph(nodes=(hash_label(n, digest_bits) for n in graph.nodes()))
    for u, v in graph.edges():
        hashed.add_edge(hash_label(u, digest_bits), hash_label(v, digest_bits))
    return hashed, inverse


def write_cliques(cliques: Iterable[frozenset[Node]], destination: str | Path) -> int:
    """Write cliques as JSON lines (sorted members per line); return count.

    Members are sorted by string form so output is deterministic regardless
    of set iteration order.
    """
    path = Path(destination)
    count = 0
    with path.open("w") as handle:
        for clique in cliques:
            members = sorted(clique, key=str)
            handle.write(json.dumps(members) + "\n")
            count += 1
    return count


def read_cliques(source: str | Path) -> list[frozenset[Node]]:
    """Read cliques written by :func:`write_cliques`.

    Raises
    ------
    FormatError
        On lines that are not JSON arrays.
    """
    path = Path(source)
    cliques: list[frozenset[Node]] = []
    with path.open("r") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            try:
                members = json.loads(line)
            except json.JSONDecodeError as exc:
                raise FormatError(f"line {line_number}: invalid JSON: {exc}") from exc
            if not isinstance(members, list):
                raise FormatError(f"line {line_number}: expected a JSON array")
            cliques.append(frozenset(members))
    return cliques


def iter_edge_chunks(
    graph: Graph, chunk_size: int
) -> Iterator[list[tuple[Node, Node]]]:
    """Yield the edge list in chunks of at most ``chunk_size`` edges.

    The distributed loader streams a data set to worker machines in
    fixed-size chunks; this is the local stand-in for that split.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    chunk: list[tuple[Node, Node]] = []
    for edge in graph.edges():
        chunk.append(edge)
        if len(chunk) == chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _split_fields(line: str, line_number: int) -> list[str]:
    """Split a triple record on whitespace, honouring JSON-quoted labels."""
    fields: list[str] = []
    i, n = 0, len(line)
    while i < n:
        while i < n and line[i].isspace():
            i += 1
        if i >= n:
            break
        if line[i] == '"':
            j = i + 1
            while j < n and line[j] != '"':
                j += 2 if line[j] == "\\" else 1
            if j >= n:
                raise FormatError(f"line {line_number}: unterminated quoted label")
            fields.append(line[i : j + 1])
            i = j + 1
        else:
            j = i
            while j < n and not line[j].isspace():
                j += 1
            fields.append(line[i:j])
            i = j
    return fields


def _looks_numeric(text: str) -> bool:
    """Whether a bare token would decode as an int instead of a string."""
    try:
        int(text)
    except ValueError:
        return False
    return True


def _encode(label: Node) -> str:
    """Encode a node label for the whitespace-separated triple format.

    Integer labels stay bare; string labels are JSON-quoted whenever a
    bare form would be ambiguous (whitespace, leading ``#`` or ``"``, or
    an all-digits string that would decode as an integer).
    """
    if isinstance(label, int) and not isinstance(label, bool):
        return str(label)
    text = str(label)
    needs_quoting = (
        not text
        or any(ch.isspace() for ch in text)
        or text.startswith(_COMMENT)
        or text.startswith('"')
        or _looks_numeric(text)
    )
    return json.dumps(text) if needs_quoting else text


def _decode(token: str) -> Node:
    """Invert :func:`_encode`; integer-looking tokens come back as ints."""
    if token.startswith('"'):
        try:
            return json.loads(token)
        except json.JSONDecodeError as exc:
            raise FormatError(f"bad quoted label {token!r}: {exc}") from exc
    try:
        return int(token)
    except ValueError:
        return token

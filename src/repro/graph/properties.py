"""Scalar graph properties used for block classification and reporting.

Section 4 of the paper classifies each block by five easy-to-compute
parameters: number of nodes, number of edges, density, degeneracy, and
``d*`` — "the maximum value d* for which the graph has at least d* nodes
with degree greater or equal than d*" (an h-index of the degree sequence,
estimating the size of the densest region).  This module computes those
parameters plus the degree-distribution statistics behind Figure 6.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.graph.adjacency import Graph
from repro.graph.cores import degeneracy


def d_star(graph: Graph) -> int:
    """Return the degree h-index ``d*`` of ``graph``.

    ``d*`` is the largest value such that at least ``d*`` nodes have degree
    at least ``d*``.  Computed in linear time with a counting pass over the
    degree sequence, as the paper requires.
    """
    n = graph.num_nodes
    if n == 0:
        return 0
    # count[d] = number of nodes with degree exactly min(d, n).
    count = [0] * (n + 1)
    for node in graph.nodes():
        count[min(graph.degree(node), n)] += 1
    at_least = 0
    for d in range(n, -1, -1):
        at_least += count[d]
        if at_least >= d:
            return d
    return 0


def degree_histogram(graph: Graph, max_degree: int | None = None) -> list[int]:
    """Return ``hist[d] = #nodes of degree d`` for ``d`` in ``0..max_degree``.

    With ``max_degree=None`` the histogram spans the full degree range; a
    truncated histogram (the paper's Figure 6 truncates at degree 20) is
    obtained by passing the cut-off, and degrees beyond it are *dropped*,
    matching the figure.
    """
    counts = Counter(graph.degree(node) for node in graph.nodes())
    if not counts:
        return []
    top = max(counts) if max_degree is None else max_degree
    return [counts.get(d, 0) for d in range(top + 1)]


def hub_fraction(graph: Graph, m: int) -> float:
    """Return the fraction of nodes that are hubs for block size ``m``.

    A node is a hub when its closed neighbourhood does not fit in a block,
    i.e. ``degree >= m`` (Section 2).  Returns 0.0 for the empty graph.
    """
    n = graph.num_nodes
    if n == 0:
        return 0.0
    hubs = sum(1 for node in graph.nodes() if graph.degree(node) >= m)
    return hubs / n


def fraction_with_degree_at_most(graph: Graph, cutoff: int) -> float:
    """Return the fraction of nodes whose degree is in ``[0, cutoff]``.

    The paper reports that on average 91% of nodes have degree in
    ``[1, 20]`` across its datasets; this helper backs that statistic.
    """
    n = graph.num_nodes
    if n == 0:
        return 0.0
    low = sum(1 for node in graph.nodes() if graph.degree(node) <= cutoff)
    return low / n


def power_law_exponent(graph: Graph, d_min: int = 2) -> float:
    """Estimate the power-law exponent of the degree distribution.

    Uses the discrete maximum-likelihood estimator
    ``alpha = 1 + n / sum(ln(d / (d_min - 0.5)))`` over nodes with degree at
    least ``d_min`` (Clauset–Shalizi–Newman).  Scale-free networks — the
    paper's setting — have exponents typically in ``[2, 3]``.  Returns
    ``nan`` when fewer than two nodes qualify.
    """
    if d_min < 1:
        raise ValueError("d_min must be at least 1")
    tail = [graph.degree(node) for node in graph.nodes() if graph.degree(node) >= d_min]
    if len(tail) < 2:
        return math.nan
    log_sum = sum(math.log(d / (d_min - 0.5)) for d in tail)
    if log_sum == 0.0:
        return math.inf
    return 1.0 + len(tail) / log_sum


@dataclass(frozen=True)
class GraphSummary:
    """The five block-classification parameters of Section 4, bundled.

    This is also the row format of Table 2 (parameter ranges of the
    training corpus).
    """

    num_nodes: int
    num_edges: int
    density: float
    degeneracy: int
    d_star: int

    @classmethod
    def of(cls, graph: Graph) -> "GraphSummary":
        """Compute the summary of ``graph``."""
        return cls(
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            density=graph.density(),
            degeneracy=degeneracy(graph),
            d_star=d_star(graph),
        )

    def as_tuple(self) -> tuple[float, ...]:
        """Return the parameters as a feature vector (fixed order)."""
        return (
            float(self.num_nodes),
            float(self.num_edges),
            self.density,
            float(self.degeneracy),
            float(self.d_star),
        )


def summarize(graph: Graph) -> GraphSummary:
    """Return :class:`GraphSummary.of(graph)`; a readable free function."""
    return GraphSummary.of(graph)

"""Evolving-network streams for the incremental extension.

Social networks change continuously; the incremental maintainer
(Section 8 future work) is exercised against seeded streams of edge
events.  The generator models the two dominant dynamics of the paper's
domain: **growth by preferential attachment** (new friendships attach
to well-connected users) and **churn** (existing ties dissolve).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Literal

from repro.graph.adjacency import Graph, Node

Operation = Literal["insert", "delete"]


@dataclass(frozen=True)
class EdgeEvent:
    """One timestamped edge change."""

    step: int
    operation: Operation
    u: Node
    v: Node


def edge_stream(
    graph: Graph,
    length: int,
    churn: float = 0.2,
    preferential: bool = True,
    seed: int = 0,
) -> Iterator[EdgeEvent]:
    """Yield ``length`` edge events applicable in order to ``graph``.

    The stream is *consistent*: an ``insert`` never duplicates a live
    edge and a ``delete`` always removes a live edge, so it can be
    applied directly to an :class:`repro.incremental.IncrementalMCE`.
    The input graph is not modified; the generator tracks the evolving
    edge set internally.

    Parameters
    ----------
    graph:
        The starting network (copied logically, not physically).
    length:
        Number of events to produce.
    churn:
        Probability that an event is a deletion (when any edge exists).
    preferential:
        Insert endpoints biased by current degree (scale-free growth)
        instead of uniformly.
    seed:
        Event-stream seed; identical seeds give identical streams.

    Raises
    ------
    ValueError
        On a negative ``length``, a ``churn`` outside ``[0, 1]`` or a
        graph with fewer than two nodes (no edge events possible).
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if not 0.0 <= churn <= 1.0:
        raise ValueError("churn must be in [0, 1]")
    nodes = list(graph.nodes())
    if len(nodes) < 2:
        raise ValueError("need at least two nodes to produce edge events")
    rng = random.Random(seed)
    live: set[frozenset[Node]] = {frozenset(edge) for edge in graph.edges()}
    degree: dict[Node, int] = {node: graph.degree(node) for node in nodes}
    # Degree-proportional sampling pool (each node once per endpoint),
    # refreshed lazily; +1 smoothing keeps isolated nodes reachable.
    for step in range(length):
        do_delete = live and rng.random() < churn
        if do_delete:
            edge = rng.choice(sorted(live, key=lambda e: sorted(map(str, e))))
            u, v = sorted(edge, key=str)
            live.discard(edge)
            degree[u] -= 1
            degree[v] -= 1
            yield EdgeEvent(step=step, operation="delete", u=u, v=v)
            continue
        event = _draw_insert(nodes, live, degree, rng, preferential)
        if event is None:
            # The graph is complete: fall back to a deletion.
            edge = rng.choice(sorted(live, key=lambda e: sorted(map(str, e))))
            u, v = sorted(edge, key=str)
            live.discard(edge)
            degree[u] -= 1
            degree[v] -= 1
            yield EdgeEvent(step=step, operation="delete", u=u, v=v)
            continue
        u, v = event
        live.add(frozenset((u, v)))
        degree[u] += 1
        degree[v] += 1
        yield EdgeEvent(step=step, operation="insert", u=u, v=v)


def _draw_insert(
    nodes: list[Node],
    live: set[frozenset[Node]],
    degree: dict[Node, int],
    rng: random.Random,
    preferential: bool,
) -> tuple[Node, Node] | None:
    """Draw a non-live endpoint pair, or None when the graph is complete."""
    n = len(nodes)
    if len(live) >= n * (n - 1) // 2:
        return None
    for _attempt in range(200):
        if preferential:
            u = _degree_biased(nodes, degree, rng)
            v = _degree_biased(nodes, degree, rng)
        else:
            u, v = rng.choice(nodes), rng.choice(nodes)
        if u != v and frozenset((u, v)) not in live:
            return (u, v)
    # Dense graph: fall back to an exhaustive scan for determinism.
    for u in nodes:
        for v in nodes:
            if u != v and frozenset((u, v)) not in live:
                return (u, v)
    return None


def _degree_biased(
    nodes: list[Node], degree: dict[Node, int], rng: random.Random
) -> Node:
    """Draw one node with probability proportional to ``degree + 1``."""
    total = sum(degree[node] + 1 for node in nodes)
    pick = rng.uniform(0.0, total)
    acc = 0.0
    for node in nodes:
        acc += degree[node] + 1
        if pick <= acc:
            return node
    return nodes[-1]


def apply_stream(graph: Graph, events: Iterator[EdgeEvent]) -> Graph:
    """Return a copy of ``graph`` with ``events`` applied in order."""
    out = graph.copy()
    for event in events:
        if event.operation == "insert":
            out.add_edge(event.u, event.v)
        else:
            out.remove_edge(event.u, event.v)
    return out

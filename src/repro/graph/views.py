"""Subgraph extraction and node relabeling.

The decomposition pipeline repeatedly takes induced subgraphs: the hub
subgraph ``G_h`` at every recursion level (Algorithm 1, line 6) and each
block's node set closed under neighbourhoods (Algorithm 3, line 12).  These
helpers centralise that logic so the induced-subgraph semantics — restrict
to the node set, keep exactly the edges with both endpoints inside — are
implemented once.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Mapping

from repro.errors import NodeNotFoundError
from repro.graph.adjacency import Graph, Node


def induced_subgraph(graph: Graph, nodes: Iterable[Node]) -> Graph:
    """Return the subgraph of ``graph`` induced by ``nodes``.

    The result contains each node in ``nodes`` (including isolated ones) and
    every edge of ``graph`` whose endpoints are both in ``nodes``.  Node
    insertion order follows the order of ``nodes``, so deterministic inputs
    give deterministic outputs.

    Raises
    ------
    NodeNotFoundError
        If any element of ``nodes`` is not a node of ``graph``.
    """
    keep = list(dict.fromkeys(nodes))
    keep_set = set(keep)
    sub = Graph()
    for node in keep:
        if not graph.has_node(node):
            raise NodeNotFoundError(node)
        sub.add_node(node)
    for node in keep:
        for other in graph.neighbors(node):
            if other in keep_set and not sub.has_edge(node, other):
                sub.add_edge(node, other)
    return sub


def relabel(graph: Graph, mapping: Mapping[Node, Node]) -> Graph:
    """Return a copy of ``graph`` with nodes renamed through ``mapping``.

    Nodes absent from ``mapping`` keep their label.  The mapping must be
    injective over the graph's nodes; a collision would silently merge nodes
    and change clique structure, so it raises ``ValueError`` instead.
    """
    new_names: dict[Node, Node] = {}
    used: set[Node] = set()
    for node in graph.nodes():
        target = mapping.get(node, node)
        if target in used:
            raise ValueError(f"relabeling collides on target label {target!r}")
        used.add(target)
        new_names[node] = target
    out = Graph()
    for node in graph.nodes():
        out.add_node(new_names[node])
    for u, v in graph.edges():
        out.add_edge(new_names[u], new_names[v])
    return out


def to_integer_labels(graph: Graph) -> tuple[Graph, dict[int, Node]]:
    """Relabel nodes to ``0..n-1`` in insertion order.

    Returns the relabeled graph together with the inverse mapping (integer
    label back to the original node), which callers use to translate cliques
    found on the compact graph back to original labels.  Matrix and bitset
    MCE backends require contiguous integer labels.
    """
    forward: dict[Node, int] = {node: i for i, node in enumerate(graph.nodes())}
    inverse: dict[int, Node] = {i: node for node, i in forward.items()}
    compact = Graph(nodes=range(len(forward)))
    for u, v in graph.edges():
        compact.add_edge(forward[u], forward[v])
    return compact, inverse


def map_cliques(
    cliques: Iterable[frozenset[Node]], inverse: Mapping[Node, Node]
) -> list[frozenset[Node]]:
    """Translate cliques through the ``inverse`` mapping of labels."""
    return [frozenset(inverse[v] for v in clique) for clique in cliques]


def filter_nodes(graph: Graph, predicate: Callable[[Node], bool]) -> Graph:
    """Return the subgraph induced by the nodes satisfying ``predicate``."""
    return induced_subgraph(graph, (n for n in graph.nodes() if predicate(n)))


def connected_components(graph: Graph) -> list[frozenset[Node]]:
    """Return the connected components of ``graph`` as node sets.

    Components are listed in order of their earliest-inserted node, and each
    component set is immutable.  Used by generators (to guarantee connected
    synthetic networks) and by the block scheduler (components are natural
    distribution units).
    """
    seen: set[Node] = set()
    components: list[frozenset[Node]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        frontier = [start]
        component: set[Node] = {start}
        seen.add(start)
        while frontier:
            node = frontier.pop()
            for other in graph.neighbors(node):
                if other not in component:
                    component.add(other)
                    seen.add(other)
                    frontier.append(other)
        components.append(frozenset(component))
    return components

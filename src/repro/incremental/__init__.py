"""Incremental clique maintenance under edge updates (Section 8)."""

from repro.incremental.maintainer import IncrementalMCE, replay

__all__ = ["IncrementalMCE", "replay"]

"""Incremental maintenance of the maximal clique set under edge updates.

Section 8: "We are also interested in studying an incremental version
of our approach that takes into account the evolution of the social
network."  Reference [38] maintains cliques under updates; this module
implements that capability on top of the library's MCE portfolio.

The update rules are local:

* **edge insertion (u, v)** — every *new* maximal clique contains both
  endpoints, and equals ``{u, v} ∪ C`` for ``C`` a maximal clique of
  the subgraph induced by the common neighbourhood of ``u`` and ``v``
  (possibly empty).  Existing cliques can only *die* by being absorbed
  into one of the new cliques.
* **edge deletion (u, v)** — every clique containing both endpoints
  splits into its two halves ``K − {u}`` and ``K − {v}``; a half
  survives iff it is still maximal and not a duplicate of another
  surviving clique.

Each operation touches only cliques adjacent to the changed edge,
indexed per node, so the cost is proportional to the local clique
structure rather than the graph size.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import GraphError
from repro.graph.adjacency import Graph, Node
from repro.graph.views import induced_subgraph
from repro.mce.tomita import tomita
from repro.mce.verify import find_extension


class IncrementalMCE:
    """A graph plus its continuously-maintained set of maximal cliques.

    Construct from an initial graph (the clique set is computed once
    with the exact portfolio), then call :meth:`insert_edge` /
    :meth:`delete_edge`; :attr:`cliques` is correct after every update.

    Examples
    --------
    >>> from repro.graph.adjacency import Graph
    >>> tracker = IncrementalMCE(Graph(edges=[(1, 2), (2, 3)]))
    >>> sorted(len(c) for c in tracker.cliques)
    [2, 2]
    >>> tracker.insert_edge(1, 3)
    >>> sorted(len(c) for c in tracker.cliques)
    [3]
    """

    def __init__(
        self, graph: Graph, cliques: Iterable[frozenset[Node]] | None = None
    ) -> None:
        self._graph = graph.copy()
        if cliques is None:
            self._cliques: set[frozenset[Node]] = set(tomita(self._graph))
        else:
            # Trusted pre-computed cliques (e.g. a two-level decomposition
            # result) — skips the up-front enumeration.
            self._cliques = set(cliques)
        self._by_node: dict[Node, set[frozenset[Node]]] = {}
        for clique in self._cliques:
            for node in clique:
                self._by_node.setdefault(node, set()).add(clique)

    @classmethod
    def from_result(cls, graph: Graph, result) -> "IncrementalMCE":
        """Seed the maintainer from a completed driver run.

        ``result`` is a :class:`repro.core.result.CliqueResult` computed
        on ``graph``; its clique set is adopted without re-enumeration,
        so large networks pay the exact enumeration only once.
        """
        return cls(graph, cliques=result.cliques)

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """A copy of the tracked graph (mutating it does not desync us)."""
        return self._graph.copy()

    @property
    def cliques(self) -> frozenset[frozenset[Node]]:
        """The current set of maximal cliques."""
        return frozenset(self._cliques)

    @property
    def num_cliques(self) -> int:
        """Number of maximal cliques currently tracked."""
        return len(self._cliques)

    def cliques_of(self, node: Node) -> frozenset[frozenset[Node]]:
        """The maximal cliques containing ``node`` (empty if untracked)."""
        return frozenset(self._by_node.get(node, set()))

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_node(self, node: Node) -> None:
        """Add an isolated node; it forms a singleton maximal clique."""
        if self._graph.has_node(node):
            return
        self._graph.add_node(node)
        self._add_clique(frozenset({node}))

    def insert_edge(self, u: Node, v: Node) -> None:
        """Add the edge ``{u, v}`` and repair the clique set.

        Raises
        ------
        SelfLoopError
            If ``u == v``.
        """
        if self._graph.has_edge(u, v):
            return
        for endpoint in (u, v):
            if not self._graph.has_node(endpoint):
                self.insert_node(endpoint)
        self._graph.add_edge(u, v)

        common = self._graph.neighbors(u) & self._graph.neighbors(v)
        new_cliques: list[frozenset[Node]] = []
        if common:
            shared = induced_subgraph(self._graph, sorted(common, key=str))
            for core in tomita(shared):
                new_cliques.append(core | {u, v})
        else:
            new_cliques.append(frozenset({u, v}))

        # Existing cliques die iff absorbed by a new clique.  Only
        # cliques living inside {u} ∪ N(u) or {v} ∪ N(v) are at risk.
        at_risk = set(self._by_node.get(u, set())) | set(
            self._by_node.get(v, set())
        )
        for clique in at_risk:
            if any(clique < fresh for fresh in new_cliques):
                self._drop_clique(clique)
        for fresh in new_cliques:
            self._add_clique(fresh)

    def delete_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``{u, v}`` and repair the clique set.

        Raises
        ------
        GraphError
            If the edge is not present (deleting a phantom edge would
            silently desynchronise the index, so it is rejected).
        """
        if not self._graph.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) is not in the graph")
        self._graph.remove_edge(u, v)
        doomed = list(self._by_node.get(u, set()) & self._by_node.get(v, set()))
        for clique in doomed:
            self._drop_clique(clique)
        for clique in doomed:
            for survivor in (clique - {u}, clique - {v}):
                if not survivor:
                    continue
                if survivor in self._cliques:
                    continue
                if find_extension(self._graph, survivor) is None:
                    self._add_clique(survivor)

    def delete_node(self, node: Node) -> None:
        """Remove ``node`` with all incident edges and repair the set.

        Raises
        ------
        NodeNotFoundError
            If ``node`` is absent.
        """
        for neighbor in self._graph.neighbors(node):
            self.delete_edge(node, neighbor)
        # Now the node is isolated: its only clique is the singleton.
        singleton = frozenset({node})
        if singleton in self._cliques:
            self._drop_clique(singleton)
        self._graph.remove_node(node)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _add_clique(self, clique: frozenset[Node]) -> None:
        if clique in self._cliques:
            return
        self._cliques.add(clique)
        for node in clique:
            self._by_node.setdefault(node, set()).add(clique)

    def _drop_clique(self, clique: frozenset[Node]) -> None:
        self._cliques.discard(clique)
        for node in clique:
            bucket = self._by_node.get(node)
            if bucket is not None:
                bucket.discard(clique)


def replay(graph: Graph, operations: Iterable[tuple[str, Node, Node]]) -> IncrementalMCE:
    """Apply a stream of ``("insert"|"delete", u, v)`` operations.

    Convenience for tests and benchmarks that replay an evolving
    network trace.

    Raises
    ------
    ValueError
        On an unknown operation name.
    """
    tracker = IncrementalMCE(graph)
    for op, u, v in operations:
        if op == "insert":
            tracker.insert_edge(u, v)
        elif op == "delete":
            tracker.delete_edge(u, v)
        else:
            raise ValueError(f"unknown operation {op!r}")
    return tracker

"""Maximal clique enumeration portfolio (Section 4 of the paper)."""

from repro.mce.backends import (
    BACKEND_NAMES,
    Backend,
    backend_from_bitmap,
    build_backend,
)
from repro.mce.bitmatrix import (
    BitMatrixBackend,
    enumerate_anchored_packed,
    expand_stack,
)
from repro.mce.bron_kerbosch import bk_pivot, bron_kerbosch
from repro.mce.eppstein import eppstein
from repro.mce.maximum import maximum_clique, maximum_clique_size
from repro.mce.instrumentation import (
    BlockTiming,
    CountingRule,
    ExecutionTrace,
    RecursionProfile,
    collect_cliques_with_profile,
    profile_rule,
)
from repro.mce.registry import (
    ALGORITHM_NAMES,
    ALL_COMBOS,
    PAPER_COMBOS,
    Combo,
    get_algorithm,
    get_pivot_rule,
    run_combo,
    time_combo,
)
from repro.mce.tomita import tomita
from repro.mce.verify import (
    check_mce_output,
    find_extension,
    is_clique,
    is_maximal_clique,
    missing_cliques,
    spurious_cliques,
)
from repro.mce.xpivot import xpivot

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "BitMatrixBackend",
    "backend_from_bitmap",
    "build_backend",
    "enumerate_anchored_packed",
    "expand_stack",
    "bk_pivot",
    "bron_kerbosch",
    "eppstein",
    "maximum_clique",
    "maximum_clique_size",
    "BlockTiming",
    "CountingRule",
    "ExecutionTrace",
    "RecursionProfile",
    "collect_cliques_with_profile",
    "profile_rule",
    "ALGORITHM_NAMES",
    "ALL_COMBOS",
    "PAPER_COMBOS",
    "Combo",
    "get_algorithm",
    "get_pivot_rule",
    "run_combo",
    "time_combo",
    "tomita",
    "check_mce_output",
    "find_extension",
    "is_clique",
    "is_maximal_clique",
    "missing_cliques",
    "spurious_cliques",
    "xpivot",
]

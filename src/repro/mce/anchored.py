"""Anchored clique enumeration — the ``MCE(k, P, V)`` primitive of Alg. 4.

``BLOCK-ANALYSIS`` (Algorithm 4 of the paper) does not run a whole-graph
MCE per block: for each kernel node ``k`` it "enumerates all maximal
cliques that contain k and no node in V̄", where the candidate set shrinks
and the exclusion set grows as kernels are processed.  This module
provides that anchored primitive on top of the shared recursion, for any
(pivot rule × backend) combination chosen by the decision tree.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.graph.adjacency import Node
from repro.mce.backends import Backend, NodeSet
from repro.mce.recursion import PivotRule, expand


def enumerate_anchored_native(
    backend: Backend,
    anchor: int,
    candidates: NodeSet,
    excluded: NodeSet,
    pivot_rule: PivotRule,
) -> Iterator[tuple[int, ...]]:
    """:func:`enumerate_anchored` on backend-native candidate sets.

    Avoids rebuilding native sets when the caller (``BLOCK-ANALYSIS``)
    already maintains ``P`` and ``X`` in the backend's representation.
    """
    restricted_p = backend.intersect_neighbors(candidates, anchor)
    restricted_x = backend.intersect_neighbors(excluded, anchor)
    yield from expand(backend, [anchor], restricted_p, restricted_x, pivot_rule)


def enumerate_anchored(
    backend: Backend,
    anchor: int,
    candidates: Iterable[int],
    excluded: Iterable[int],
    pivot_rule: PivotRule,
) -> Iterator[tuple[int, ...]]:
    """Yield all maximal cliques containing ``anchor`` as index tuples.

    ``candidates`` and ``excluded`` are internal indices; both are
    intersected with ``N(anchor)`` here, so callers may pass the block-wide
    ``P`` and ``X`` sets directly (Algorithm 4 lines 5–6 perform the same
    restriction).  A clique is reported iff it is maximal with respect to
    ``{anchor} ∪ candidates ∪ excluded`` and contains no excluded node.
    """
    restricted_p = backend.intersect_neighbors(backend.make(candidates), anchor)
    restricted_x = backend.intersect_neighbors(backend.make(excluded), anchor)
    yield from expand(backend, [anchor], restricted_p, restricted_x, pivot_rule)


def enumerate_anchored_labels(
    backend: Backend,
    anchor: Node,
    candidates: Iterable[Node],
    excluded: Iterable[Node],
    pivot_rule: PivotRule,
) -> Iterator[frozenset[Node]]:
    """Label-level convenience wrapper around :func:`enumerate_anchored`."""
    anchor_index = backend.index_of(anchor)
    candidate_indices = [backend.index_of(node) for node in candidates]
    excluded_indices = [backend.index_of(node) for node in excluded]
    for clique in enumerate_anchored(
        backend, anchor_index, candidate_indices, excluded_indices, pivot_rule
    ):
        yield frozenset(backend.label(i) for i in clique)

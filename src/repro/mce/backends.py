"""Graph-representation backends shared by all MCE algorithms.

Section 4 of the paper evaluates each clique algorithm on three supporting
data structures — adjacency **matrices**, **bitsets**, and adjacency
**lists** — and lets a decision tree pick the (algorithm × structure)
combination per block.  To avoid implementing every algorithm three times,
the algorithms in :mod:`repro.mce` are written once against the small
:class:`Backend` interface below, and each data structure provides the set
operations in its native representation:

* :class:`SetBackend` ("lists") — node sets are ``frozenset`` of indices;
* :class:`BitsetBackend` ("bitsets") — node sets are Python integers used
  as bitmasks, so intersection is a single ``&``;
* :class:`MatrixBackend` ("matrix") — node sets are numpy boolean masks
  over a dense adjacency matrix;
* :class:`repro.mce.bitmatrix.BitMatrixBackend` ("bitmatrix") — node sets
  are packed ``uint64`` word vectors over an ``n × ceil(n/64)`` adjacency
  bitmap with word-parallel set algebra and vectorized pivot scoring.

All backends index nodes ``0..n-1`` internally and translate back to the
original labels when cliques are reported.

Besides construction from a :class:`~repro.graph.adjacency.Graph`, every
backend can be materialized from a packed adjacency bitmap via
:func:`backend_from_bitmap` — the zero-copy worker path that skips the
``Graph`` round-trip entirely (see :mod:`repro.graph.csr`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable, Iterator

import numpy as np

from repro.errors import AlgorithmNotFoundError
from repro.graph.adjacency import Graph, Node

# A backend-native node set; the concrete type depends on the backend.
NodeSet = Any

BACKEND_NAMES: tuple[str, ...] = ("lists", "bitsets", "matrix", "bitmatrix")


class Backend(ABC):
    """Set algebra over one graph in a backend-native representation.

    The interface is deliberately immutable-style: every operation returns
    a new native set, so recursive MCE code can hold references across
    recursive calls without defensive copying.
    """

    def __init__(self, graph: Graph) -> None:
        self._labels: list[Node] = list(graph.nodes())
        self._index: dict[Node, int] = {
            node: i for i, node in enumerate(self._labels)
        }
        self.n = len(self._labels)

    @classmethod
    def from_packed(cls, labels: list[Node], bitmap: np.ndarray) -> "Backend":
        """Materialize a backend from a packed adjacency bitmap.

        ``bitmap`` is an ``n × ceil(n/64)`` ``uint64`` array whose row
        ``i`` has bit ``j`` set iff nodes ``i`` and ``j`` are adjacent
        (see :func:`repro.graph.csr.extract_block_bitmap`).  This skips
        the ``Graph`` constructor entirely, which is what lets
        shared-memory workers build their per-block backend straight
        from the attached CSR segment.
        """
        backend = cls.__new__(cls)
        backend._labels = list(labels)
        backend._index = {node: i for i, node in enumerate(backend._labels)}
        backend.n = len(backend._labels)
        backend._load_packed(bitmap)
        return backend

    @abstractmethod
    def _load_packed(self, bitmap: np.ndarray) -> None:
        """Populate the adjacency structure from a packed bitmap."""

    # -- label translation ------------------------------------------------
    def label(self, index: int) -> Node:
        """Return the original node label at internal ``index``."""
        return self._labels[index]

    def index_of(self, node: Node) -> int:
        """Return the internal index of ``node``."""
        return self._index[node]

    def to_labels(self, members: NodeSet) -> frozenset[Node]:
        """Translate a native set back to original node labels."""
        return frozenset(self._labels[i] for i in self.iterate(members))

    # -- set construction --------------------------------------------------
    @abstractmethod
    def empty(self) -> NodeSet:
        """Return the empty native set."""

    @abstractmethod
    def full(self) -> NodeSet:
        """Return the native set of all node indices."""

    @abstractmethod
    def make(self, indices: Iterable[int]) -> NodeSet:
        """Build a native set from internal indices."""

    def make_from_labels(self, nodes: Iterable[Node]) -> NodeSet:
        """Build a native set from original node labels."""
        return self.make(self._index[node] for node in nodes)

    # -- set algebra ---------------------------------------------------------
    @abstractmethod
    def intersect_neighbors(self, members: NodeSet, index: int) -> NodeSet:
        """Return ``members ∩ N(index)``."""

    @abstractmethod
    def minus_neighbors(self, members: NodeSet, index: int) -> NodeSet:
        """Return ``members − N(index)`` (``index`` itself is kept)."""

    @abstractmethod
    def remove(self, members: NodeSet, index: int) -> NodeSet:
        """Return ``members − {index}``."""

    @abstractmethod
    def add(self, members: NodeSet, index: int) -> NodeSet:
        """Return ``members ∪ {index}``."""

    @abstractmethod
    def count(self, members: NodeSet) -> int:
        """Return ``|members|``."""

    @abstractmethod
    def is_empty(self, members: NodeSet) -> bool:
        """Return whether ``members`` is empty."""

    @abstractmethod
    def iterate(self, members: NodeSet) -> Iterator[int]:
        """Iterate over the indices in ``members`` in increasing order."""

    @abstractmethod
    def common_count(self, index: int, members: NodeSet) -> int:
        """Return ``|N(index) ∩ members|`` (pivot scoring)."""

    @abstractmethod
    def degree(self, index: int) -> int:
        """Return the degree of ``index`` in the backend's graph."""

    def contains(self, members: NodeSet, index: int) -> bool:
        """Return whether ``index`` is in ``members``."""
        return any(i == index for i in self.iterate(members))


def _unpack_bitmap(bitmap: np.ndarray, n: int) -> np.ndarray:
    """Expand an ``n × ceil(n/64)`` packed bitmap to an ``n × n`` bool matrix."""
    if n == 0:
        return np.zeros((0, 0), dtype=bool)
    bitmap = np.ascontiguousarray(bitmap, dtype=np.uint64)
    bits = np.unpackbits(bitmap.view(np.uint8), bitorder="little")
    return bits.reshape(n, -1)[:, :n].astype(bool)


class SetBackend(Backend):
    """Adjacency-list backend: native sets are ``frozenset[int]``."""

    name = "lists"

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph)
        self._neighbors: list[frozenset[int]] = [
            frozenset(self._index[v] for v in graph.neighbors(node))
            for node in self._labels
        ]

    def _load_packed(self, bitmap: np.ndarray) -> None:
        rows = _unpack_bitmap(bitmap, self.n)
        self._neighbors = [
            frozenset(np.flatnonzero(rows[i]).tolist()) for i in range(self.n)
        ]

    def empty(self) -> frozenset[int]:
        return frozenset()

    def full(self) -> frozenset[int]:
        return frozenset(range(self.n))

    def make(self, indices: Iterable[int]) -> frozenset[int]:
        return frozenset(indices)

    def intersect_neighbors(self, members: frozenset[int], index: int) -> frozenset[int]:
        return members & self._neighbors[index]

    def minus_neighbors(self, members: frozenset[int], index: int) -> frozenset[int]:
        return members - self._neighbors[index]

    def remove(self, members: frozenset[int], index: int) -> frozenset[int]:
        return members - {index}

    def add(self, members: frozenset[int], index: int) -> frozenset[int]:
        return members | {index}

    def count(self, members: frozenset[int]) -> int:
        return len(members)

    def is_empty(self, members: frozenset[int]) -> bool:
        return not members

    def iterate(self, members: frozenset[int]) -> Iterator[int]:
        return iter(sorted(members))

    def common_count(self, index: int, members: frozenset[int]) -> int:
        return len(self._neighbors[index] & members)

    def degree(self, index: int) -> int:
        return len(self._neighbors[index])

    def contains(self, members: frozenset[int], index: int) -> bool:
        return index in members


class BitsetBackend(Backend):
    """Bitset backend: native sets are Python ints used as bitmasks."""

    name = "bitsets"

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph)
        masks = [0] * self.n
        for node in self._labels:
            i = self._index[node]
            mask = 0
            for other in graph.neighbors(node):
                mask |= 1 << self._index[other]
            masks[i] = mask
        self._masks = masks
        self._full = (1 << self.n) - 1 if self.n else 0

    def _load_packed(self, bitmap: np.ndarray) -> None:
        words = np.ascontiguousarray(bitmap, dtype="<u8")
        self._masks = [
            int.from_bytes(words[i].tobytes(), "little") for i in range(self.n)
        ]
        self._full = (1 << self.n) - 1 if self.n else 0

    def empty(self) -> int:
        return 0

    def full(self) -> int:
        return self._full

    def make(self, indices: Iterable[int]) -> int:
        mask = 0
        for index in indices:
            mask |= 1 << index
        return mask

    def intersect_neighbors(self, members: int, index: int) -> int:
        return members & self._masks[index]

    def minus_neighbors(self, members: int, index: int) -> int:
        return members & ~self._masks[index]

    def remove(self, members: int, index: int) -> int:
        return members & ~(1 << index)

    def add(self, members: int, index: int) -> int:
        return members | (1 << index)

    def count(self, members: int) -> int:
        return members.bit_count()

    def is_empty(self, members: int) -> bool:
        return members == 0

    def iterate(self, members: int) -> Iterator[int]:
        while members:
            low = members & -members
            yield low.bit_length() - 1
            members ^= low

    def common_count(self, index: int, members: int) -> int:
        return (self._masks[index] & members).bit_count()

    def degree(self, index: int) -> int:
        return self._masks[index].bit_count()

    def contains(self, members: int, index: int) -> bool:
        return bool(members >> index & 1)


class MatrixBackend(Backend):
    """Dense-matrix backend: native sets are numpy boolean masks."""

    name = "matrix"

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph)
        matrix = np.zeros((self.n, self.n), dtype=bool)
        for u, v in graph.edges():
            i, j = self._index[u], self._index[v]
            matrix[i, j] = True
            matrix[j, i] = True
        self._matrix = matrix
        self._degrees = matrix.sum(axis=1) if self.n else np.zeros(0, dtype=int)

    def _load_packed(self, bitmap: np.ndarray) -> None:
        matrix = _unpack_bitmap(bitmap, self.n)
        self._matrix = matrix
        self._degrees = matrix.sum(axis=1) if self.n else np.zeros(0, dtype=int)

    def empty(self) -> np.ndarray:
        return np.zeros(self.n, dtype=bool)

    def full(self) -> np.ndarray:
        return np.ones(self.n, dtype=bool)

    def make(self, indices: Iterable[int]) -> np.ndarray:
        mask = np.zeros(self.n, dtype=bool)
        for index in indices:
            mask[index] = True
        return mask

    def intersect_neighbors(self, members: np.ndarray, index: int) -> np.ndarray:
        return members & self._matrix[index]

    def minus_neighbors(self, members: np.ndarray, index: int) -> np.ndarray:
        return members & ~self._matrix[index]

    def remove(self, members: np.ndarray, index: int) -> np.ndarray:
        out = members.copy()
        out[index] = False
        return out

    def add(self, members: np.ndarray, index: int) -> np.ndarray:
        out = members.copy()
        out[index] = True
        return out

    def count(self, members: np.ndarray) -> int:
        return int(np.count_nonzero(members))

    def is_empty(self, members: np.ndarray) -> bool:
        return not members.any()

    def iterate(self, members: np.ndarray) -> Iterator[int]:
        return iter(np.flatnonzero(members).tolist())

    def common_count(self, index: int, members: np.ndarray) -> int:
        return int(np.count_nonzero(self._matrix[index] & members))

    def degree(self, index: int) -> int:
        return int(self._degrees[index])

    def contains(self, members: np.ndarray, index: int) -> bool:
        return bool(members[index])


_BACKENDS: dict[str, type[Backend]] = {
    SetBackend.name: SetBackend,
    BitsetBackend.name: BitsetBackend,
    MatrixBackend.name: MatrixBackend,
}


def register_backend(backend_class: type[Backend]) -> None:
    """Add a backend class to the registry under its ``name`` attribute."""
    _BACKENDS[backend_class.name] = backend_class


def _resolve(name: str) -> type[Backend]:
    """Look up a backend class, importing late-registered modules once."""
    if name not in _BACKENDS and name in BACKEND_NAMES:
        # BitMatrixBackend lives in its own module (it needs numpy bit
        # tricks this module doesn't); importing it registers it.
        import repro.mce.bitmatrix  # noqa: F401  (registration side effect)
    try:
        return _BACKENDS[name]
    except KeyError:
        raise AlgorithmNotFoundError(name, BACKEND_NAMES) from None


def build_backend(graph: Graph, name: str) -> Backend:
    """Construct the backend called ``name`` over ``graph``.

    Known names are listed in :data:`BACKEND_NAMES`
    ("lists"/"bitsets"/"matrix"/"bitmatrix").

    Raises
    ------
    AlgorithmNotFoundError
        If ``name`` is not a known backend.
    """
    return _resolve(name)(graph)


def backend_from_bitmap(
    name: str, labels: list[Node], bitmap: np.ndarray
) -> Backend:
    """Construct the backend called ``name`` from a packed adjacency bitmap.

    The bitmap-direct twin of :func:`build_backend`: ``labels`` supplies
    the internal-index → label translation and ``bitmap`` the adjacency
    (row ``i``, bit ``j`` set iff ``i ~ j``).  Used by shared-memory
    workers to materialize per-block backends from the attached CSR
    segment without reconstructing a :class:`~repro.graph.adjacency.Graph`.

    Raises
    ------
    AlgorithmNotFoundError
        If ``name`` is not a known backend.
    """
    return _resolve(name).from_packed(labels, bitmap)

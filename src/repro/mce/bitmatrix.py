"""Packed-bitmap graph backend and word-parallel MCE kernel.

The fourth entry of the representation portfolio (alongside lists,
bitsets and matrix): each block's adjacency is an ``n × ceil(n/64)``
numpy ``uint64`` bitmap, one packed row per node, so every set
operation the Bron–Kerbosch family performs — intersection, difference,
membership, cardinality — is a handful of word-parallel instructions
instead of a Python-object traversal.  Three things distinguish it from
:class:`~repro.mce.backends.BitsetBackend` (arbitrary-precision ints):

* **vectorized pivot selection** — Tomita's ``max |N(u) ∩ P|`` score is
  one fancy-indexed gather + ``bit_count`` + ``argmax`` over all of
  ``P ∪ X`` rather than a Python loop calling ``common_count`` per
  candidate (the dominant cost on dense blocks);
* **an explicit-stack anchored enumerator** (:func:`expand_stack`) so
  deep blocks neither hit Python's recursion limit nor pay per-frame
  call/generator overhead;
* **CSR-direct construction** — a worker can materialize the bitmap
  straight from shared-memory CSR rows
  (:func:`repro.graph.csr.extract_block_bitmap`) with no intermediate
  ``Graph`` or dict-of-sets rebuild.

The representation is word-endianness-aware only through
``numpy.unpackbits(..., bitorder="little")`` on the ``uint8`` view of
the native ``uint64`` words, which matches bit ``i`` of the mask to
node ``i`` on little-endian hosts (every platform this project targets).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.mce.backends import Backend, register_backend
from repro.mce.recursion import (
    max_degree_pivot,
    no_pivot,
    tomita_pivot,
    x_pivot,
)

WORD_BITS = 64

_ONE = np.uint64(1)
_WORD_MASK = np.uint64(63)
_FULL_WORD = np.uint64(0xFFFFFFFFFFFFFFFF)

# The batched kernel must know which *rule* a pivot function encodes to
# vectorize it per state; unrecognized (e.g. instrumented) rules fall
# back to the per-frame kernels, which call the function as given.
_PIVOT_KINDS = {
    tomita_pivot: "tomita",
    max_degree_pivot: "degree",
    x_pivot: "x",
    no_pivot: "none",
}

def pivot_kind_of(pivot_rule) -> "str | None":
    """The vectorizable pivot *kind* of a rule, or ``None`` if unknown.

    The batched kernels take a kind string rather than a callable;
    callers (e.g. the bucket dispatcher) use this to decide whether a
    combo's pivot rule can run on the vectorized path at all.
    """
    return _PIVOT_KINDS.get(pivot_rule)


# numpy >= 2.0 exposes a native popcount ufunc; fall back to a byte
# lookup table (vectorized either way) on older builds.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")
_BYTE_POPCOUNT = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def words_for(n: int) -> int:
    """Number of 64-bit words needed to hold ``n`` bits."""
    return (n + WORD_BITS - 1) // WORD_BITS


def popcount(words: np.ndarray) -> int:
    """Total number of set bits across a flat or 2-D word array."""
    if _HAS_BITWISE_COUNT:
        return int(np.bitwise_count(words).sum())
    return int(_BYTE_POPCOUNT[words.view(np.uint8)].sum())


def popcount_rows(matrix: np.ndarray) -> np.ndarray:
    """Per-row set-bit counts of a 2-D word array (``int64`` vector)."""
    if matrix.size == 0:
        return np.zeros(matrix.shape[0], dtype=np.int64)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(matrix).sum(axis=1, dtype=np.int64)
    bytes_view = matrix.view(np.uint8).reshape(matrix.shape[0], -1)
    return _BYTE_POPCOUNT[bytes_view].sum(axis=1, dtype=np.int64)


def bits_to_indices(words: np.ndarray) -> np.ndarray:
    """Indices of the set bits of a packed word vector, increasing."""
    if not words.any():
        return np.empty(0, dtype=np.int64)
    unpacked = np.unpackbits(words.view(np.uint8), bitorder="little")
    return np.flatnonzero(unpacked).astype(np.int64)


def pack_indices(indices: Iterable[int], words: int) -> np.ndarray:
    """Build a packed word vector with the given bit indices set."""
    mask = np.zeros(words, dtype=np.uint64)
    idx = np.fromiter(indices, dtype=np.int64)
    if len(idx):
        np.bitwise_or.at(mask, idx >> 6, _ONE << (idx.astype(np.uint64) & _WORD_MASK))
    return mask


def below_table(n: int, words: int) -> np.ndarray:
    """``(n, words)`` table where row ``v`` has exactly bits ``0..v-1`` set.

    The batched kernels gather a row per frontier vertex to compute the
    earlier-sibling set the recursive Bron–Kerbosch form moves from
    ``P`` to ``X``.
    """
    below = np.zeros((n, words), dtype=np.uint64)
    if n:
        ids = np.arange(n, dtype=np.int64)
        high = ids >> 6
        word_ids = np.arange(words, dtype=np.int64)
        below[word_ids[None, :] < high[:, None]] = _FULL_WORD
        below[ids, high] = (_ONE << (ids.astype(np.uint64) & _WORD_MASK)) - _ONE
    return below


class BitMatrixBackend(Backend):
    """Packed-bitmap backend: native sets are ``uint64`` word vectors.

    ``_matrix[i]`` is the packed neighbourhood of node ``i``; a native
    set is one row-shaped vector of ``ceil(n/64)`` words.  All set
    algebra returns fresh vectors (the immutable style the shared
    recursion relies on); the explicit-stack kernel below mutates only
    vectors it owns.
    """

    name = "bitmatrix"

    def __init__(self, graph) -> None:
        super().__init__(graph)
        words = words_for(self.n)
        matrix = np.zeros((self.n, words), dtype=np.uint64)
        for node in self._labels:
            i = self._index[node]
            row = matrix[i]
            for other in graph.neighbors(node):
                j = self._index[other]
                row[j >> 6] |= _ONE << np.uint64(j & 63)
        self._finish_init(matrix)

    def _load_packed(self, bitmap: np.ndarray) -> None:
        """Adopt an ``n × ceil(n/64)`` packed adjacency bitmap.

        The bitmap is *borrowed*, not copied — callers handing over a
        scratch buffer (the CSR-direct worker path) must keep it intact
        until the backend is discarded.
        """
        self._finish_init(np.ascontiguousarray(bitmap, dtype=np.uint64))

    def _finish_init(self, matrix: np.ndarray) -> None:
        self._matrix = matrix
        self._words = matrix.shape[1] if matrix.ndim == 2 else words_for(self.n)
        self._degrees = popcount_rows(matrix)
        full = np.zeros(self._words, dtype=np.uint64)
        if self.n:
            full[: self.n >> 6] = np.uint64(0xFFFFFFFFFFFFFFFF)
            tail = self.n & 63
            if tail:
                full[self.n >> 6] = (_ONE << np.uint64(tail)) - _ONE
        self._full = full
        # below[v] has exactly bits 0..v-1 set: the batched kernel's
        # sibling-prefix masks are one gather from this table.
        below = below_table(self.n, self._words)
        self._below = below
        # Row-adjacent [neighbourhood | below] pairs: the batched kernel
        # fetches both per frontier vertex with a single fancy-index
        # gather instead of two.
        self._mat_below = np.hstack([matrix, below]) if self.n else below

    # -- set construction --------------------------------------------------
    def empty(self) -> np.ndarray:
        return np.zeros(self._words, dtype=np.uint64)

    def full(self) -> np.ndarray:
        return self._full.copy()

    def make(self, indices: Iterable[int]) -> np.ndarray:
        return pack_indices(indices, self._words)

    # -- set algebra -------------------------------------------------------
    def intersect_neighbors(self, members: np.ndarray, index: int) -> np.ndarray:
        return members & self._matrix[index]

    def minus_neighbors(self, members: np.ndarray, index: int) -> np.ndarray:
        return members & ~self._matrix[index]

    def remove(self, members: np.ndarray, index: int) -> np.ndarray:
        out = members.copy()
        out[index >> 6] &= ~(_ONE << np.uint64(index & 63))
        return out

    def add(self, members: np.ndarray, index: int) -> np.ndarray:
        out = members.copy()
        out[index >> 6] |= _ONE << np.uint64(index & 63)
        return out

    def count(self, members: np.ndarray) -> int:
        return popcount(members)

    def is_empty(self, members: np.ndarray) -> bool:
        return not members.any()

    def iterate(self, members: np.ndarray) -> Iterator[int]:
        return iter(bits_to_indices(members).tolist())

    def common_count(self, index: int, members: np.ndarray) -> int:
        return popcount(self._matrix[index] & members)

    def degree(self, index: int) -> int:
        return int(self._degrees[index])

    def contains(self, members: np.ndarray, index: int) -> bool:
        return bool((members[index >> 6] >> np.uint64(index & 63)) & _ONE)

    # -- vectorized pivot fast paths ---------------------------------------
    # The generic rules in repro.mce.recursion dispatch to these when the
    # backend provides them; each replaces a Python scoring loop with one
    # gather + popcount + argmax.  Tie-breaking matches the generic rules:
    # smallest index wins, candidates before excluded.
    def pivot_tomita(self, candidates: np.ndarray, excluded: np.ndarray) -> int:
        pool = np.concatenate(
            [bits_to_indices(candidates), bits_to_indices(excluded)]
        )
        if not len(pool):
            return -1
        counts = popcount_rows(self._matrix[pool] & candidates)
        return int(pool[int(np.argmax(counts))])

    def pivot_max_degree(self, candidates: np.ndarray) -> int:
        pool = bits_to_indices(candidates)
        if not len(pool):
            return -1
        return int(pool[int(np.argmax(self._degrees[pool]))])

    def pivot_x(self, candidates: np.ndarray, excluded: np.ndarray) -> int:
        pool = bits_to_indices(excluded)
        if not len(pool):
            return self.pivot_tomita(candidates, excluded)
        counts = popcount_rows(self._matrix[pool] & candidates)
        return int(pool[int(np.argmax(counts))])

    # -- whole-enumeration fast path ---------------------------------------
    def expand_native(
        self,
        clique: list[int],
        candidates: np.ndarray,
        excluded: np.ndarray,
        pivot_rule,
    ):
        """Batched replacement for the shared recursion, or ``None``.

        :func:`repro.mce.recursion.expand` calls this before recursing;
        a non-``None`` return is an iterator over the same clique *set*
        (emission order differs — level order, not depth-first).  Rules
        the batched kernel cannot vectorize (e.g. instrumented wrappers)
        return ``None`` and take the generic recursion.
        """
        kind = _PIVOT_KINDS.get(pivot_rule)
        if kind is None:
            return None
        return expand_batched(self, tuple(clique), candidates, excluded, kind)


register_backend(BitMatrixBackend)


def _materialize_columns(
    spines: list[list], spine: int, idx: np.ndarray, leaves: np.ndarray
) -> "list[np.ndarray]":
    """Gather one emit record's member columns by walking the spines.

    ``columns[d][j]`` is member ``d`` (root-first) of emitted clique
    ``j`` — one ancestor column gathered per spine level.  Called
    eagerly — while the whole chain from ``spine`` to the root is still
    retained — so spine entries can be released as soon as no live
    batch references them.  The packed result plane consumes the
    columns directly (:meth:`repro.core.cliquestore.CliqueBuffer.append_columns`);
    :func:`_materialize_rows` zips them into tuples for callers that
    still want per-clique sequences.
    """
    columns = [leaves]
    while spine >= 0:
        entry = spines[spine]
        columns.append(entry[0][idx])
        idx = entry[1][idx]
        spine = entry[2]
    columns.reverse()
    return columns


def _materialize_rows(
    spines: list[list], spine: int, idx: np.ndarray, leaves: np.ndarray
):
    """Rebuild clique tuples for one emit record by walking the spines."""
    columns = _materialize_columns(spines, spine, idx, leaves)
    return zip(*[column.tolist() for column in columns])


def _release_spine(spines: list[list], spine: int) -> int:
    """Drop one reference from ``spine``; free exhausted chain prefixes.

    Each spine entry is ``[added, parents, parent_spine, refs]`` where
    ``refs`` counts the stack chunks addressing the entry directly plus
    the child spine entries whose materialization walks through it.
    When an entry's count reaches zero its arrays are dropped and the
    release cascades to its parent.  Returns the number of entries
    freed (for the live-memory statistics).
    """
    freed = 0
    while spine >= 0:
        entry = spines[spine]
        entry[3] -= 1
        if entry[3] > 0:
            break
        entry[0] = entry[1] = None
        freed += 1
        spine = entry[2]
    return freed


def expand_batched(
    backend: BitMatrixBackend,
    prefix: tuple[int, ...],
    candidates: np.ndarray,
    excluded: np.ndarray,
    pivot_kind: str,
    batch_cap: int = 8192,
    stats: dict | None = None,
    sink=None,
) -> list[tuple[int, ...]]:
    """Level-synchronous Bron–Kerbosch over batches of packed states.

    The throughput kernel: where :func:`expand_stack` walks the recursion
    tree one frame at a time (a dozen numpy dispatches per tree node,
    each on a ``ceil(n/64)``-word vector), this kernel keeps a *batch* of
    states — all ``(P, X)`` pairs at one depth of a subtree — as two
    ``(S, words)`` matrices and advances every state one level per
    iteration.  Pivot scoring, frontier extraction, sibling-prefix masks
    and child ``P``/``X`` construction are each one vectorized operation
    over the whole batch, so the per-tree-node interpreter overhead that
    dominates Python clique kernels is amortized across ``S`` states.

    Enumeration is depth-first over batches and level-order within a
    batch, so the returned list is deterministic but ordered differently
    from :func:`repro.mce.recursion.expand`; the clique *set* is
    identical for any pivot kind, which is the invariant every caller
    relies on.  A list (not a generator) is returned so emission costs
    no per-clique frame switch.

    Cliques are materialized *eagerly* per emit record and spine entries
    are reference-counted (released once no pending batch or descendant
    spine can reach them), so live memory really is bounded by tree
    depth × ``batch_cap`` states — not by the total number of
    generations the run produces.  Pass a ``stats`` dict to observe the
    bound: it receives ``total_spines``, ``max_live_spines``, and
    ``sweeps``.

    ``pivot_kind`` is one of ``"tomita"`` (max ``|N(u) ∩ P|`` over
    ``P ∪ X``), ``"degree"`` (max degree over ``P``), ``"x"`` (max
    ``|N(u) ∩ P|`` over ``X``, Tomita fallback when ``X`` is empty) or
    ``"none"`` (no pivot: expand every candidate).

    With ``sink`` (a :class:`repro.core.cliquestore.CliqueBuffer`-shaped
    emitter) cliques land *array-natively*: each emit record's spine
    columns go straight into the sink's growing packed buffers via
    ``append_columns`` — no tuples, no zip, no per-clique object — and
    the returned list stays empty.  Emission order is identical either
    way.
    """
    matrix = backend._matrix  # noqa: SLF001 - kernel-internal fast path
    degrees = backend._degrees  # noqa: SLF001
    mat_below = backend._mat_below  # noqa: SLF001
    n = backend.n
    out: list[tuple[int, ...]] = []
    if not candidates.any():
        if not excluded.any():
            if sink is not None:
                sink.append(prefix)
            else:
                out.append(prefix)
        return out
    # A batch is (P, X, spine, offset): two (S, words) uint64 matrices
    # plus provenance — state ``j`` of the batch is row ``offset + j``
    # of spine entry ``spine`` (-1 for the root prefix).  Each spine
    # entry is [added vertices, parent rows, parent spine, refcount];
    # cliques are never carried during traversal, they are rebuilt by
    # walking the spine chain when a leaf generation emits.
    spines: list[list] = []
    live_spines = 0
    max_live_spines = 0
    sweeps = 0
    stack: list[tuple[np.ndarray, np.ndarray, int, int]] = [
        (
            candidates.reshape(1, -1).copy(),
            excluded.reshape(1, -1).copy(),
            -1,
            0,
        )
    ]
    while stack:
        p, x, spine, offset = stack.pop()
        sweeps += 1
        num_states = p.shape[0]
        if pivot_kind == "none":
            frontier = p
        else:
            if pivot_kind == "degree":
                pool_mask = p
            elif pivot_kind == "x":
                has_x = x.any(axis=1)
                pool_mask = np.where(has_x[:, None], x, p | x)
            else:
                pool_mask = p | x
            pool_bits = np.unpackbits(
                pool_mask.view(np.uint8), axis=1, count=n, bitorder="little"
            )
            flat = np.flatnonzero(pool_bits.reshape(-1).view(bool))
            state_ids = flat // n
            node_ids = flat - state_ids * n
            if pivot_kind == "degree":
                scores = degrees[node_ids]
            else:
                scores = popcount_rows(matrix[node_ids] & p[state_ids])
            # Segmented argmax (every state's pool is nonempty, so the
            # segment starts are exactly the first entry per state);
            # ties break toward the smallest node index.
            starts = np.zeros(num_states, dtype=np.int64)
            np.cumsum(popcount_rows(pool_mask)[:-1], out=starts[1:])
            best = np.maximum.reduceat(scores, starts)
            entries = np.where(
                scores == best[state_ids], np.arange(len(scores)), len(scores)
            )
            pivots = node_ids[np.minimum.reduceat(entries, starts)]
            frontier = p & ~matrix[pivots]
        frontier_bits = np.unpackbits(
            frontier.view(np.uint8), axis=1, count=n, bitorder="little"
        )
        flat = np.flatnonzero(frontier_bits.reshape(-1).view(bool))
        if not len(flat):
            live_spines -= _release_spine(spines, spine)
            continue
        rep = flat // n
        v = flat - rep * n
        # One gather per side: [P | X | frontier] rows per parent state,
        # [neighbourhood | below] rows per frontier vertex.  below[v]
        # has bits 0..v-1 set, so ``frontier & below[v]`` is exactly the
        # earlier-sibling set the recursive form moves from P to X.
        words = p.shape[1]
        parent_rows = np.hstack([p, x, frontier])[rep]
        vertex_rows = mat_below[v]
        rows = vertex_rows[:, :words]
        moved = parent_rows[:, 2 * words :] & vertex_rows[:, words:]
        child_p = rows & parent_rows[:, :words] & ~moved
        child_x = rows & (parent_rows[:, words : 2 * words] | moved)
        has_p = child_p.any(axis=1)
        has_x = child_x.any(axis=1)
        emit = np.flatnonzero(~has_p & ~has_x)
        if len(emit):
            if sink is not None:
                columns = _materialize_columns(
                    spines, spine, offset + rep[emit], v[emit]
                )
                sink.append_columns(prefix, columns)
            else:
                emitted = _materialize_rows(
                    spines, spine, offset + rep[emit], v[emit]
                )
                if prefix:
                    out.extend(prefix + row for row in emitted)
                else:
                    out.extend(emitted)
        live = np.flatnonzero(has_p)
        if len(live):
            chunks = (len(live) + batch_cap - 1) // batch_cap
            new_spine = len(spines)
            spines.append([v[live], offset + rep[live], spine, chunks])
            live_spines += 1
            max_live_spines = max(max_live_spines, live_spines)
            if spine >= 0:
                spines[spine][3] += 1  # materialization walks through it
            live_p = child_p[live]
            live_x = child_x[live]
            if chunks == 1:
                stack.append((live_p, live_x, new_spine, 0))
            else:
                # Split oversized generations; push chunks in reverse so
                # the first chunk is processed next (depth-first over
                # batches).
                for lo in range(
                    (len(live) - 1) // batch_cap * batch_cap, -1, -batch_cap
                ):
                    hi = lo + batch_cap
                    stack.append((live_p[lo:hi], live_x[lo:hi], new_spine, lo))
        live_spines -= _release_spine(spines, spine)
    if stats is not None:
        stats["total_spines"] = len(spines)
        stats["max_live_spines"] = max_live_spines
        stats["sweeps"] = sweeps
    return out


def expand_batched_many(
    adj: np.ndarray,
    task_blocks: np.ndarray,
    roots_p: np.ndarray,
    roots_x: np.ndarray,
    n_pad: int,
    pivot_kind: str,
    batch_cap: int = 8192,
    stats: dict | None = None,
) -> list[list[tuple[int, ...]]]:
    """Batched Bron–Kerbosch over root states drawn from *many* blocks.

    The multi-block generalization of :func:`expand_batched`: instead of
    one block's adjacency matrix, ``adj`` is the row-concatenation of a
    whole bucket of same-shape blocks, each padded to ``n_pad`` rows of
    ``adj.shape[1]`` words (padding rows all-zero, padding bits never
    set).  Each *task* is one anchored root ``(P, X)`` state belonging
    to block ``task_blocks[t]``; every state carries its task id through
    the traversal, and adjacency gathers offset node indices by the
    owning block's base row — so a single sequence of numpy dispatches
    advances the frontiers of hundreds of independent blocks at once.
    This is what makes thousands-of-tiny-blocks workloads cheap: the
    per-sweep interpreter cost is paid once per *bucket generation*, not
    once per block level.

    Returns one list of clique tuples per task (local node indices
    within the task's block; the caller prepends the anchor / prefix).
    Per-task clique *sets* are identical to running
    :func:`expand_batched` on each root alone.  Spine entries are
    reference-counted and cliques materialize eagerly, exactly as in the
    single-block kernel, so live memory is bounded by tree depth ×
    ``batch_cap`` states regardless of bucket size.  ``stats`` (optional
    dict) receives ``sweeps``, ``total_spines``, ``max_live_spines``,
    and ``max_batch_states``.
    """
    num_tasks = len(task_blocks)
    out: list[list[tuple[int, ...]]] = [[] for _ in range(num_tasks)]
    if num_tasks == 0:
        return out
    words = adj.shape[1]
    num_blocks = adj.shape[0] // n_pad if n_pad else 0
    task_rows = np.asarray(task_blocks, dtype=np.int64) * n_pad
    degrees_flat = popcount_rows(adj) if pivot_kind == "degree" else None
    below = below_table(n_pad, words)
    # [neighbourhood | below] per flat row: one gather per frontier
    # vertex fetches both, exactly as the single-block kernel does.
    adj_below = (
        np.hstack([adj, np.tile(below, (num_blocks, 1))]) if num_blocks else below
    )
    # Roots with an empty candidate set never enter the batch: they emit
    # the bare prefix iff X is empty too (the maximality test), and the
    # segmented-argmax pivot below relies on every pooled state having a
    # nonempty pool.
    root_has_p = roots_p.any(axis=1)
    for t in np.flatnonzero(~root_has_p).tolist():
        if not roots_x[t].any():
            out[t].append(())
    live_roots = np.flatnonzero(root_has_p).astype(np.int64)
    if not len(live_roots):
        return out
    spines: list[list] = []
    live_spines = 0
    max_live_spines = 0
    max_batch_states = 0
    sweeps = 0
    # A batch is (P, X, tids, spine, offset); tids maps each state to
    # its owning task, which both addresses the adjacency gathers and
    # routes emitted cliques to the right output list.
    stack: list[tuple[np.ndarray, np.ndarray, np.ndarray, int, int]] = []
    for lo in range((len(live_roots) - 1) // batch_cap * batch_cap, -1, -batch_cap):
        chunk = live_roots[lo : lo + batch_cap]
        stack.append(
            (
                np.ascontiguousarray(roots_p[chunk]),
                np.ascontiguousarray(roots_x[chunk]),
                chunk,
                -1,
                0,
            )
        )
    while stack:
        p, x, tid, spine, offset = stack.pop()
        sweeps += 1
        num_states = p.shape[0]
        max_batch_states = max(max_batch_states, num_states)
        base = task_rows[tid]
        if pivot_kind == "none":
            frontier = p
        else:
            if pivot_kind == "degree":
                pool_mask = p
            elif pivot_kind == "x":
                has_x = x.any(axis=1)
                pool_mask = np.where(has_x[:, None], x, p | x)
            else:
                pool_mask = p | x
            pool_bits = np.unpackbits(
                pool_mask.view(np.uint8), axis=1, count=n_pad, bitorder="little"
            )
            flat = np.flatnonzero(pool_bits.reshape(-1).view(bool))
            state_ids = flat // n_pad
            node_ids = flat - state_ids * n_pad
            node_rows = base[state_ids] + node_ids
            if pivot_kind == "degree":
                scores = degrees_flat[node_rows]
            else:
                scores = popcount_rows(adj[node_rows] & p[state_ids])
            starts = np.zeros(num_states, dtype=np.int64)
            np.cumsum(popcount_rows(pool_mask)[:-1], out=starts[1:])
            best = np.maximum.reduceat(scores, starts)
            entries = np.where(
                scores == best[state_ids], np.arange(len(scores)), len(scores)
            )
            pivots = node_ids[np.minimum.reduceat(entries, starts)]
            frontier = p & ~adj[base + pivots]
        frontier_bits = np.unpackbits(
            frontier.view(np.uint8), axis=1, count=n_pad, bitorder="little"
        )
        flat = np.flatnonzero(frontier_bits.reshape(-1).view(bool))
        if not len(flat):
            live_spines -= _release_spine(spines, spine)
            continue
        rep = flat // n_pad
        v = flat - rep * n_pad
        parent_rows = np.hstack([p, x, frontier])[rep]
        vertex_rows = adj_below[base[rep] + v]
        rows = vertex_rows[:, :words]
        moved = parent_rows[:, 2 * words :] & vertex_rows[:, words:]
        child_p = rows & parent_rows[:, :words] & ~moved
        child_x = rows & (parent_rows[:, words : 2 * words] | moved)
        has_p = child_p.any(axis=1)
        has_x = child_x.any(axis=1)
        emit = np.flatnonzero(~has_p & ~has_x)
        if len(emit):
            emit_tids = tid[rep[emit]].tolist()
            emitted = _materialize_rows(spines, spine, offset + rep[emit], v[emit])
            for task, row in zip(emit_tids, emitted):
                out[task].append(row)
        live = np.flatnonzero(has_p)
        if len(live):
            chunks = (len(live) + batch_cap - 1) // batch_cap
            new_spine = len(spines)
            spines.append([v[live], offset + rep[live], spine, chunks])
            live_spines += 1
            max_live_spines = max(max_live_spines, live_spines)
            if spine >= 0:
                spines[spine][3] += 1
            live_p = child_p[live]
            live_x = child_x[live]
            live_tid = tid[rep[live]]
            if chunks == 1:
                stack.append((live_p, live_x, live_tid, new_spine, 0))
            else:
                for lo in range(
                    (len(live) - 1) // batch_cap * batch_cap, -1, -batch_cap
                ):
                    hi = lo + batch_cap
                    stack.append(
                        (
                            live_p[lo:hi],
                            live_x[lo:hi],
                            live_tid[lo:hi],
                            new_spine,
                            lo,
                        )
                    )
        live_spines -= _release_spine(spines, spine)
    if stats is not None:
        stats["sweeps"] = sweeps
        stats["total_spines"] = len(spines)
        stats["max_live_spines"] = max_live_spines
        stats["max_batch_states"] = max_batch_states
    return out


def degeneracy_orders_many(
    bitmaps: np.ndarray, sizes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Lockstep degeneracy peel over a stack of padded adjacency bitmaps.

    ``bitmaps`` is ``(B, n_pad, words)`` with block ``b`` occupying rows
    ``0..sizes[b]-1`` (padding rows all-zero); the peel removes one
    minimum-residual-degree node per block per step, ties toward the
    smallest index — exactly :func:`degeneracy_order_packed` run on
    every block, but with the per-step argmin/decrement vectorized
    across the whole bucket, so ``B`` tiny blocks cost one ``O(n_pad)``
    loop instead of ``B`` of them.

    Returns ``(orders, degeneracies)``: ``orders`` is ``(B, n_pad)``
    int64 with row ``b``'s first ``sizes[b]`` entries the block's
    peeling order (the rest undefined), and ``degeneracies`` is ``(B,)``
    — the maximum residual degree seen at removal time per block.
    """
    num_blocks, n_pad, _ = bitmaps.shape
    orders = np.zeros((num_blocks, n_pad), dtype=np.int64)
    degeneracies = np.zeros(num_blocks, dtype=np.int64)
    if num_blocks == 0 or n_pad == 0:
        return orders, degeneracies
    sizes = np.asarray(sizes, dtype=np.int64)
    degrees = popcount_rows(bitmaps.reshape(-1, bitmaps.shape[2])).reshape(
        num_blocks, n_pad
    )
    # Padding rows are dead from the start so they never win the argmin
    # while a real node survives (real residual degrees are < n_pad).
    alive = np.arange(n_pad, dtype=np.int64)[None, :] < sizes[:, None]
    dead_value = np.int64(n_pad + 1)
    block_ids = np.arange(num_blocks, dtype=np.int64)
    for step in range(int(sizes.max()) if len(sizes) else 0):
        active = step < sizes
        masked = np.where(alive, degrees, dead_value)
        chosen = np.argmin(masked, axis=1)
        orders[:, step] = np.where(active, chosen, 0)
        peeled = degrees[block_ids, chosen]
        degeneracies = np.where(
            active, np.maximum(degeneracies, peeled), degeneracies
        )
        alive[block_ids[active], chosen[active]] = False
        removed_rows = bitmaps[block_ids[active], chosen[active]]
        removed_bits = np.unpackbits(
            removed_rows.view(np.uint8), axis=1, count=n_pad, bitorder="little"
        ).astype(bool)
        decrement = removed_bits & alive[active]
        degrees[active] -= decrement.astype(np.int64)
    return orders, degeneracies


def expand_stack(
    backend: BitMatrixBackend,
    clique: list[int],
    candidates: np.ndarray,
    excluded: np.ndarray,
    pivot_rule,
) -> Iterator[tuple[int, ...]]:
    """Explicit-stack Bron–Kerbosch over packed word vectors.

    Semantically identical to :func:`repro.mce.recursion.expand` — same
    pivot rule, same frontier order, same maximality test — but driven
    by a frame stack instead of recursion, so a block whose recursion
    tree is thousands of levels deep neither overflows Python's
    recursion limit nor pays per-frame generator overhead.  Each frame
    owns its ``P``/``X`` vectors and mutates them in place as its
    frontier is consumed.
    """
    matrix = backend._matrix  # noqa: SLF001 - kernel-internal fast path
    prefix = len(clique)
    root_p = candidates.copy()
    root_x = excluded.copy()

    def frontier_of(p: np.ndarray, x: np.ndarray) -> list[int]:
        pivot = pivot_rule(backend, p, x)
        if pivot is None:
            return bits_to_indices(p).tolist()
        return bits_to_indices(p & ~matrix[pivot]).tolist()

    if not root_p.any():
        if not root_x.any():
            yield tuple(clique)
        return
    # Frame: [P, X, frontier, cursor, added_node].
    stack: list[list] = [[root_p, root_x, frontier_of(root_p, root_x), 0, -1]]
    while stack:
        frame = stack[-1]
        p, x, frontier, cursor = frame[0], frame[1], frame[2], frame[3]
        if cursor >= len(frontier):
            stack.pop()
            if frame[4] >= 0:
                clique.pop()
            continue
        frame[3] = cursor + 1
        v = frontier[cursor]
        row = matrix[v]
        child_p = p & row
        child_x = x & row
        # The recursive form moves v from P to X after the child returns;
        # doing it before the push is equivalent (v is never its own
        # neighbour) and lets the frame mutate vectors it owns.
        p[v >> 6] &= ~(_ONE << np.uint64(v & 63))
        x[v >> 6] |= _ONE << np.uint64(v & 63)
        clique.append(v)
        if child_p.any():
            stack.append(
                [child_p, child_x, frontier_of(child_p, child_x), 0, v]
            )
        else:
            if not child_x.any():
                yield tuple(clique)
            clique.pop()
    del clique[prefix:]


def enumerate_anchored_packed(
    backend: BitMatrixBackend,
    anchor: int,
    candidates: np.ndarray,
    excluded: np.ndarray,
    pivot_rule,
    sink=None,
) -> "Iterator[tuple[int, ...]] | None":
    """Anchored ``MCE(k, P, X)`` on the packed kernels.

    The packed replacement for
    :func:`repro.mce.anchored.enumerate_anchored_native`: restrict both
    sets to ``N(anchor)`` and expand with ``anchor`` pinned in the
    clique.  Recognized pivot rules run on the batched kernel
    (:func:`expand_batched`); anything else falls back to the
    explicit-stack kernel.

    With ``sink`` the sweep emits straight into the packed clique
    buffers (array-native on the batched kernel, a bulk ``extend`` of
    the stack kernel's tuples) and returns ``None`` instead of an
    iterator.
    """
    restricted_p = backend.intersect_neighbors(candidates, anchor)
    restricted_x = backend.intersect_neighbors(excluded, anchor)
    kind = _PIVOT_KINDS.get(pivot_rule)
    if sink is not None:
        if kind is not None:
            expand_batched(
                backend, (anchor,), restricted_p, restricted_x, kind, sink=sink
            )
        else:
            sink.extend(
                expand_stack(
                    backend, [anchor], restricted_p, restricted_x, pivot_rule
                )
            )
        return None
    if kind is not None:
        return iter(
            expand_batched(backend, (anchor,), restricted_p, restricted_x, kind)
        )
    return expand_stack(
        backend, [anchor], restricted_p, restricted_x, pivot_rule
    )


def degeneracy_order_packed(bitmap: np.ndarray) -> list[int]:
    """Peeling order (min-degree first) of a packed adjacency bitmap.

    Word-parallel analogue of
    :func:`repro.graph.cores.degeneracy_ordering`: repeatedly remove a
    minimum-residual-degree node (ties toward the smallest index) and
    decrement its surviving neighbours.  The maximum degree seen at
    removal time is the graph's degeneracy, returned by
    :func:`degeneracy_packed`.
    """
    n = bitmap.shape[0]
    if n == 0:
        return []
    degrees = popcount_rows(bitmap).astype(np.int64)
    alive = np.ones(n, dtype=bool)
    order: list[int] = []
    for _ in range(n):
        masked = np.where(alive, degrees, np.int64(n + 1))
        v = int(np.argmin(masked))
        order.append(v)
        alive[v] = False
        neighbors = bits_to_indices(bitmap[v])
        survivors = neighbors[alive[neighbors]]
        degrees[survivors] -= 1
    return order


def degeneracy_packed(bitmap: np.ndarray) -> int:
    """Degeneracy (maximum core number) of a packed adjacency bitmap."""
    n = bitmap.shape[0]
    if n == 0:
        return 0
    degrees = popcount_rows(bitmap).astype(np.int64)
    alive = np.ones(n, dtype=bool)
    best = 0
    for _ in range(n):
        masked = np.where(alive, degrees, np.int64(n + 1))
        v = int(np.argmin(masked))
        best = max(best, int(degrees[v]))
        alive[v] = False
        neighbors = bits_to_indices(bitmap[v])
        survivors = neighbors[alive[neighbors]]
        degrees[survivors] -= 1
    return best

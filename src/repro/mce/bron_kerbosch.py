"""Bron–Kerbosch maximal clique enumeration (plain and BKPivot).

Reference [6] of the paper: C. Bron and J. Kerbosch, *Finding all cliques
of an undirected graph (algorithm 457)*, Commun. ACM 16(9), 1973.  The
plain variant expands every candidate; **BKPivot** — one of the original
Bron–Kerbosch refinements and the first entry of the paper's portfolio —
picks the highest-degree candidate as pivot and only expands candidates
outside the pivot's neighbourhood.
"""

from __future__ import annotations

from typing import Iterator

from repro.graph.adjacency import Graph, Node
from repro.mce.backends import Backend, build_backend
from repro.mce.recursion import enumerate_all, max_degree_pivot, no_pivot


def bron_kerbosch(graph: Graph, backend: str = "lists") -> Iterator[frozenset[Node]]:
    """Yield every maximal clique of ``graph`` without pivoting.

    Exponentially more recursive calls than the pivoted variants on dense
    graphs; kept as the simplest correct reference implementation.
    """
    native = build_backend(graph, backend)
    for clique in enumerate_all(native, no_pivot):
        yield frozenset(native.label(i) for i in clique)


def bk_pivot(graph: Graph, backend: str = "lists") -> Iterator[frozenset[Node]]:
    """Yield every maximal clique of ``graph`` using BKPivot.

    The pivot is the highest-degree node of the candidate set; candidates
    inside the pivot's neighbourhood are deferred, which prunes the
    recursion tree while preserving completeness.
    """
    native = build_backend(graph, backend)
    yield from bk_pivot_native(native)


def bk_pivot_native(native: Backend) -> Iterator[frozenset[Node]]:
    """Run BKPivot on an already-built backend (label output)."""
    for clique in enumerate_all(native, max_degree_pivot):
        yield frozenset(native.label(i) for i in clique)

"""The Eppstein–Strash degeneracy-ordering maximal clique algorithm.

Reference [17] of the paper: D. Eppstein and D. Strash, *Listing all
maximal cliques in large sparse real-world graphs*, SEA 2011.  The outer
loop processes nodes in a degeneracy ordering; each node ``v`` is handled
with candidates restricted to its *later* neighbours and exclusions to
its *earlier* neighbours, then the Tomita-pivot recursion finishes the
neighbourhood.  On a ``d``-degenerate graph every inner subproblem has at
most ``d`` candidates, giving the near-optimal ``O(d·n·3^(d/3))`` bound
that makes this the portfolio's best fit for sparse blocks.
"""

from __future__ import annotations

from typing import Iterator

from repro.graph.adjacency import Graph, Node
from repro.graph.cores import degeneracy_ordering
from repro.mce.backends import Backend, build_backend
from repro.mce.recursion import expand, tomita_pivot


def eppstein(graph: Graph, backend: str = "lists") -> Iterator[frozenset[Node]]:
    """Yield every maximal clique of ``graph`` in degeneracy order.

    Each maximal clique is reported exactly once, rooted at its earliest
    member in the degeneracy ordering.
    """
    if graph.num_nodes == 0:
        return
    native = build_backend(graph, backend)
    order = [native.index_of(node) for node in degeneracy_ordering(graph)]
    yield from eppstein_native(native, order)


def eppstein_native(native: Backend, order: list[int]) -> Iterator[frozenset[Node]]:
    """Run Eppstein–Strash on a backend given a degeneracy ``order``.

    ``order`` lists internal indices; each index must appear exactly once.
    """
    position = {index: rank for rank, index in enumerate(order)}
    for index in order:
        rank = position[index]
        neighbors = native.intersect_neighbors(native.full(), index)
        later = native.make(
            i for i in native.iterate(neighbors) if position[i] > rank
        )
        earlier = native.make(
            i for i in native.iterate(neighbors) if position[i] < rank
        )
        for clique in expand(native, [index], later, earlier, tomita_pivot):
            yield frozenset(native.label(i) for i in clique)

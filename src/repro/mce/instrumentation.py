"""Instrumentation for the MCE recursion and the parallel executors.

The pivot-rule ablation needs the size of the recursion tree (how many
internal expansion nodes a rule leaves after pruning).  Rather than
each caller hand-rolling a counting closure, :class:`CountingRule`
wraps any pivot rule and tallies its invocations — exactly one per
internal recursion node, since :func:`repro.mce.recursion.expand`
consults the rule once per non-leaf call.

The parallel executors record one :class:`BlockTiming` per analysed
block (wall-clock, worker peak RSS, dispatched payload bytes) into an
:class:`ExecutionTrace`, so benchmarks can attribute time to
serialization versus Bron–Kerbosch work instead of guessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.adjacency import Graph, Node
from repro.mce.backends import Backend, NodeSet, build_backend
from repro.mce.recursion import PivotRule, enumerate_all


@dataclass
class CountingRule:
    """A pivot rule that counts how often it is consulted."""

    rule: PivotRule
    calls: int = field(default=0, init=False)

    def __call__(
        self, backend: Backend, candidates: NodeSet, excluded: NodeSet
    ):
        self.calls += 1
        return self.rule(backend, candidates, excluded)

    def reset(self) -> None:
        """Zero the counter (reuse across runs)."""
        self.calls = 0


@dataclass(frozen=True)
class RecursionProfile:
    """Outcome of one instrumented whole-graph enumeration."""

    internal_nodes: int
    cliques: int

    @property
    def nodes_per_clique(self) -> float:
        """Recursion overhead per reported clique (1.0 is optimal-ish)."""
        if self.cliques == 0:
            return float(self.internal_nodes)
        return self.internal_nodes / self.cliques


def profile_rule(
    graph: Graph, rule: PivotRule, backend: str = "bitsets"
) -> RecursionProfile:
    """Enumerate ``graph`` with ``rule`` and return the recursion profile."""
    counting = CountingRule(rule)
    native = build_backend(graph, backend)
    cliques = sum(1 for _ in enumerate_all(native, counting))
    return RecursionProfile(internal_nodes=counting.calls, cliques=cliques)


@dataclass(frozen=True)
class BlockTiming:
    """Measured execution record of one block analysis.

    ``replayed`` marks a block that was *not* analysed in this run at
    all: its report was recovered from a spill segment of an earlier
    (crashed or completed) run and replayed during a resume.  The
    crash-resume tests assert that a resumed run re-analyses zero
    already-completed blocks by checking this flag.

    ``combo`` is the display name of the (algorithm × backend)
    combination that analysed the block and ``features`` its
    five-feature vector in :data:`repro.decision.features.FEATURE_NAMES`
    order — together they make every trace a training corpus for the
    selector autotuner (:mod:`repro.decision.harvest`), no matter which
    dispatch path (whole/split/batched/pipeline) produced the record.
    Both are empty for records predating this field or synthesized
    without a report.
    """

    block_id: int
    seconds: float
    cliques: int
    dispatch_bytes: int = 0
    peak_rss_kb: int = 0
    worker_pid: int = 0
    retried: bool = False
    replayed: bool = False
    combo: str = ""
    features: tuple[float, ...] = ()


@dataclass(frozen=True)
class SegmentFlush:
    """Measured durability cost of spilling one finished block.

    ``seconds`` covers encoding the record, the ``write``/``fsync`` into
    the segment file, and the atomic manifest update — the full price of
    making the block's cliques crash-proof.  ``segment_bytes`` is the
    record size on disk (header included).
    """

    level: int
    block_id: int
    segment_bytes: int
    seconds: float


@dataclass(frozen=True)
class SubtaskTiming:
    """Measured execution record of one anchor-range subtask.

    When a straggler block splits, each fragment of its kernel sweep is
    timed separately: ``start``/``stop`` delimit the half-open range of
    degeneracy-order anchor positions the fragment covered
    (``subtask_id == -1`` marks the splitter's own inline fragment,
    including the probe that computed the split).  ``stolen`` is true
    when the fragment ran on a different worker than the one that split
    the block — the steal actually happened rather than the splitter
    draining its own spawn.
    """

    block_id: int
    subtask_id: int
    start: int
    stop: int
    seconds: float
    cliques: int
    worker_pid: int = 0
    stolen: bool = False
    retried: bool = False


@dataclass(frozen=True)
class SplitDecision:
    """Record of one block being expanded into anchor subtasks.

    ``trigger`` is ``"cost"`` when the parent's adaptive threshold
    flagged the block before dispatch, or ``"budget"`` when the worker
    re-split its own block mid-run after overrunning the time budget.
    """

    block_id: int
    estimated_cost: float
    threshold: float
    num_subtasks: int
    splitter_pid: int = 0
    trigger: str = "cost"


@dataclass(frozen=True)
class BatchDispatch:
    """Record of one bucket of small blocks dispatched as a single unit.

    Batched dispatch packs same-padded-shape blocks into one multi-block
    kernel run (:func:`repro.mce.bitmatrix.expand_batched_many`);
    ``num_blocks``/``num_tasks`` count the blocks and anchored root
    states fused, ``padding_waste`` is the fraction of padded adjacency
    rows holding no real node, and ``sweeps`` the number of batch
    generations the kernel advanced — the quantity the fusion amortizes
    (one sweep serves every block in the bucket).
    """

    n_pad: int
    num_blocks: int
    num_tasks: int
    padding_waste: float
    sweeps: int
    seconds: float
    worker_pid: int = 0


@dataclass(frozen=True)
class BlockBound:
    """Clique upper bound of one block, priced before dispatch.

    ``bound`` is :func:`repro.mce.maximum.clique_upper_bound_packed`
    over the block's candidate nodes (kernel ∪ border) — the largest
    clique the block can possibly emit.  ``floor`` is the driver's
    ``min_clique_size`` at the time, and ``skipped`` records whether the
    bound fell below it, in which case the block was never analysed.
    """

    level: int
    block_id: int
    bound: int
    floor: int
    skipped: bool


@dataclass(frozen=True)
class LevelDecomposition:
    """Measured decomposition of one recursion level (pipeline mode).

    ``decompose_seconds`` covers ``cut_csr`` plus the streamed
    ``blocks_csr`` growth (including the time spent handing descriptors
    to the executor); ``publish_seconds``/``publish_bytes`` cover the
    one-time shared-memory export of the level's CSR snapshot.
    """

    level: int
    decompose_seconds: float
    publish_seconds: float
    publish_bytes: int
    num_blocks: int
    num_feasible: int
    num_hubs: int


@dataclass
class ExecutionTrace:
    """Per-batch instrumentation collected by a parallel executor.

    ``publish_bytes``/``publish_seconds`` cover the one-time cost of
    exporting the level graph (zero for executors that pickle blocks);
    ``timings`` holds one record per block in completion order.  In
    pipeline mode one trace spans the whole run and ``levels`` holds one
    :class:`LevelDecomposition` per recursion level, so benchmarks can
    attribute wall-clock to decomposition versus enumeration per level.
    """

    timings: list[BlockTiming] = field(default_factory=list)
    publish_bytes: int = 0
    publish_seconds: float = 0.0
    levels: list[LevelDecomposition] = field(default_factory=list)
    subtasks: list[SubtaskTiming] = field(default_factory=list)
    splits: list[SplitDecision] = field(default_factory=list)
    flushes: list[SegmentFlush] = field(default_factory=list)
    batches: list[BatchDispatch] = field(default_factory=list)
    bounds: list[BlockBound] = field(default_factory=list)

    def record(self, timing: BlockTiming) -> None:
        """Append one per-block record."""
        self.timings.append(timing)

    def record_bound(self, bound: BlockBound) -> None:
        """Append one per-block clique-bound record (pruned runs)."""
        self.bounds.append(bound)

    def record_batch(self, batch: BatchDispatch) -> None:
        """Append one per-bucket record (batched dispatch mode)."""
        self.batches.append(batch)

    def record_flush(self, flush: SegmentFlush) -> None:
        """Append one per-block spill record (durable runs only)."""
        self.flushes.append(flush)

    def record_level(self, level: LevelDecomposition) -> None:
        """Append one per-level decomposition record (pipeline mode)."""
        self.levels.append(level)

    def record_subtask(self, timing: SubtaskTiming) -> None:
        """Append one per-subtask record (split mode)."""
        self.subtasks.append(timing)

    def record_split(self, decision: SplitDecision) -> None:
        """Append one split decision (split mode)."""
        self.splits.append(decision)

    @property
    def total_decompose_seconds(self) -> float:
        """Decomposition wall-clock across all recorded levels."""
        return sum(level.decompose_seconds for level in self.levels)

    @property
    def total_dispatch_bytes(self) -> int:
        """Bytes shipped to workers across all blocks (publish excluded)."""
        return sum(timing.dispatch_bytes for timing in self.timings)

    @property
    def total_block_seconds(self) -> float:
        """Serial-equivalent seconds of block analysis in this batch."""
        return sum(timing.seconds for timing in self.timings)

    @property
    def max_peak_rss_kb(self) -> int:
        """Largest worker peak RSS observed (kilobytes; 0 if unmeasured)."""
        return max((timing.peak_rss_kb for timing in self.timings), default=0)

    @property
    def retried_blocks(self) -> list[int]:
        """Ids of blocks that were re-executed after a worker failure."""
        return [timing.block_id for timing in self.timings if timing.retried]

    @property
    def replayed_blocks(self) -> list[int]:
        """Ids of blocks replayed from spill segments instead of analysed."""
        return [timing.block_id for timing in self.timings if timing.replayed]

    @property
    def analyzed_blocks(self) -> list[int]:
        """Ids of blocks actually analysed in this run (replays excluded)."""
        return [
            timing.block_id for timing in self.timings if not timing.replayed
        ]

    @property
    def batched_block_count(self) -> int:
        """Blocks analysed through bucket dispatch across all batches."""
        return sum(batch.num_blocks for batch in self.batches)

    @property
    def skipped_block_count(self) -> int:
        """Blocks skipped because their clique bound missed the floor."""
        return sum(1 for bound in self.bounds if bound.skipped)

    @property
    def skipped_block_ids(self) -> list[tuple[int, int]]:
        """``(level, block_id)`` of every bound-skipped block."""
        return [(b.level, b.block_id) for b in self.bounds if b.skipped]

    @property
    def total_flush_seconds(self) -> float:
        """Wall-clock spent making finished blocks durable (spill runs)."""
        return sum(flush.seconds for flush in self.flushes)

    @property
    def total_flush_bytes(self) -> int:
        """Record bytes appended to spill segments (spill runs)."""
        return sum(flush.segment_bytes for flush in self.flushes)

    def slowest(self, count: int = 5) -> list[BlockTiming]:
        """The ``count`` most expensive blocks, costliest first."""
        return sorted(self.timings, key=lambda t: -t.seconds)[:count]

    @property
    def split_block_ids(self) -> list[int]:
        """Ids of blocks that were expanded into anchor subtasks."""
        return [decision.block_id for decision in self.splits]

    @property
    def steal_count(self) -> int:
        """Subtask fragments that ran away from their splitter's worker."""
        return sum(1 for timing in self.subtasks if timing.stolen)

    @property
    def retried_subtasks(self) -> list[tuple[int, int]]:
        """``(block_id, subtask_id)`` of subtasks re-run after a failure."""
        return [
            (timing.block_id, timing.subtask_id)
            for timing in self.subtasks
            if timing.retried
        ]

    def worker_busy_seconds(self) -> dict[int, float]:
        """Seconds of analysis each worker pid actually executed.

        Split blocks are accounted through their fragments (the merged
        :class:`BlockTiming` of a split block sums its fragments' time,
        so counting both would double-book the splitter); unsplit blocks
        are accounted through their block timing.  Benchmarks derive the
        worker-idle fraction as
        ``1 - sum(busy) / (workers * makespan)``.
        """
        split_ids = set(self.split_block_ids)
        busy: dict[int, float] = {}
        for timing in self.timings:
            if timing.block_id not in split_ids:
                busy[timing.worker_pid] = (
                    busy.get(timing.worker_pid, 0.0) + timing.seconds
                )
        for subtask in self.subtasks:
            busy[subtask.worker_pid] = (
                busy.get(subtask.worker_pid, 0.0) + subtask.seconds
            )
        return busy


def collect_cliques_with_profile(
    graph: Graph, rule: PivotRule, backend: str = "bitsets"
) -> tuple[list[frozenset[Node]], RecursionProfile]:
    """Like :func:`profile_rule` but also returning the cliques found."""
    counting = CountingRule(rule)
    native = build_backend(graph, backend)
    cliques = [
        frozenset(native.label(i) for i in clique)
        for clique in enumerate_all(native, counting)
    ]
    profile = RecursionProfile(
        internal_nodes=counting.calls, cliques=len(cliques)
    )
    return cliques, profile

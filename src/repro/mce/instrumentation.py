"""Instrumentation for the MCE recursion.

The pivot-rule ablation needs the size of the recursion tree (how many
internal expansion nodes a rule leaves after pruning).  Rather than
each caller hand-rolling a counting closure, :class:`CountingRule`
wraps any pivot rule and tallies its invocations — exactly one per
internal recursion node, since :func:`repro.mce.recursion.expand`
consults the rule once per non-leaf call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.adjacency import Graph, Node
from repro.mce.backends import Backend, NodeSet, build_backend
from repro.mce.recursion import PivotRule, enumerate_all


@dataclass
class CountingRule:
    """A pivot rule that counts how often it is consulted."""

    rule: PivotRule
    calls: int = field(default=0, init=False)

    def __call__(
        self, backend: Backend, candidates: NodeSet, excluded: NodeSet
    ):
        self.calls += 1
        return self.rule(backend, candidates, excluded)

    def reset(self) -> None:
        """Zero the counter (reuse across runs)."""
        self.calls = 0


@dataclass(frozen=True)
class RecursionProfile:
    """Outcome of one instrumented whole-graph enumeration."""

    internal_nodes: int
    cliques: int

    @property
    def nodes_per_clique(self) -> float:
        """Recursion overhead per reported clique (1.0 is optimal-ish)."""
        if self.cliques == 0:
            return float(self.internal_nodes)
        return self.internal_nodes / self.cliques


def profile_rule(
    graph: Graph, rule: PivotRule, backend: str = "bitsets"
) -> RecursionProfile:
    """Enumerate ``graph`` with ``rule`` and return the recursion profile."""
    counting = CountingRule(rule)
    native = build_backend(graph, backend)
    cliques = sum(1 for _ in enumerate_all(native, counting))
    return RecursionProfile(internal_nodes=counting.calls, cliques=cliques)


def collect_cliques_with_profile(
    graph: Graph, rule: PivotRule, backend: str = "bitsets"
) -> tuple[list[frozenset[Node]], RecursionProfile]:
    """Like :func:`profile_rule` but also returning the cliques found."""
    counting = CountingRule(rule)
    native = build_backend(graph, backend)
    cliques = [
        frozenset(native.label(i) for i in clique)
        for clique in enumerate_all(native, counting)
    ]
    profile = RecursionProfile(
        internal_nodes=counting.calls, cliques=len(cliques)
    )
    return cliques, profile

"""Branch-and-bound maximum clique search over packed bitmaps.

The related work (Section 7) cites two classic exact maximum-clique
solvers — Östergård's ``cliquer`` [27] and Tomita–Kameda's MCQ-style
branch and bound [33] — as the pruning-based tradition the MCE systems
grew out of, plus Rossi et al. [30] for large graphs.  This module
implements the standard modern scheme from that family, natively on the
``bitmatrix`` backend's packed ``uint64`` rows:

* root vertices are examined in a **degeneracy order** with their later
  neighbours only (the [30] trick for sparse graphs: candidate sets
  start at most degeneracy big);
* at every branch a **greedy colouring** of the candidate set bounds
  the largest clique it can still contain (the Tomita–Kameda bound): a
  candidate set colourable with ``c`` colours holds no clique larger
  than ``c``.  Colour classes are peeled word-parallel — removing a
  coloured vertex's neighbourhood is one ``&= ~row``;
* branches whose bound cannot beat the incumbent are pruned.

The kernel is a hybrid: the root loop and per-block pricing run on the
packed numpy rows (one vectorized AND prices a whole candidate set),
while inside a branch — where sets are small and per-op dispatch cost
dominates arithmetic — rows are converted lazily to arbitrary-precision
ints, whose bitwise ops are word-parallel in C with no numpy overhead.

Finding one maximum clique this way is typically orders of magnitude
cheaper than enumerating all maximal cliques and taking the largest
(``benchmarks/bench_maximum.py`` demonstrates the gap), and the same
bound machinery prices whole decomposition blocks:
:func:`clique_upper_bound_packed` is the per-block skip test behind the
driver's ``min_clique_size`` floor (see ``docs/maximum.md``).

The previous pure-``int`` bitset solver survives as
:func:`maximum_clique_bitset` — it needs no numpy and is the benchmark
baseline the packed kernel is measured against.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BoundNotMetError
from repro.graph.adjacency import Graph, Node
from repro.graph.cores import degeneracy_ordering
from repro.mce.backends import BitsetBackend
from repro.mce.bitmatrix import (
    BitMatrixBackend,
    bits_to_indices,
    degeneracy_order_packed,
    degeneracy_packed,
    popcount,
)

_ONE = np.uint64(1)


def maximum_clique(graph: Graph, lower_bound: int = 0) -> frozenset[Node]:
    """Return one maximum clique of ``graph`` (empty for the empty graph).

    Parameters
    ----------
    graph:
        The network; not modified.
    lower_bound:
        Optional required clique size.  Branches that cannot reach it
        are pruned from the start, so a tight bound speeds up the
        search.  A clique of size exactly ``lower_bound`` is still
        found and returned as a witness — the bound is inclusive.

    Raises
    ------
    ValueError
        If ``lower_bound`` is negative.
    BoundNotMetError
        If ``lower_bound`` is positive and the graph holds no clique of
        at least that size (the bound was not certified).
    """
    if lower_bound < 0:
        raise ValueError("lower_bound must be non-negative")
    if graph.num_nodes == 0:
        if lower_bound > 0:
            raise BoundNotMetError(lower_bound, 0)
        return frozenset()
    backend = BitMatrixBackend(graph)
    size, members = maximum_clique_packed(
        backend._matrix, initial_bound=max(0, lower_bound - 1)
    )
    if size < lower_bound:
        raise BoundNotMetError(lower_bound, size)
    return frozenset(backend.label(int(i)) for i in members)


def maximum_clique_size(graph: Graph) -> int:
    """Return the clique number ω(G); 0 for the empty graph."""
    return len(maximum_clique(graph))


def maximum_clique_packed(
    matrix: np.ndarray,
    initial_bound: int = 0,
    order: "list[int] | None" = None,
    root_ranks: "set[int] | None" = None,
    shared_bound=None,
) -> "tuple[int, list[int]]":
    """Branch and bound over a packed ``n × ceil(n/64)`` adjacency bitmap.

    Returns ``(best_size, best_members)`` with ``best_size ==
    len(best_members)`` whenever a clique was recorded.  When no clique
    larger than ``initial_bound`` (or the shared incumbent, if one is
    cooperating) was found among the searched roots the result is
    ``(initial_bound, [])`` — the incumbent starts as a *size only*, so
    a witness is returned exactly when *this* search beat the bound.

    Parameters
    ----------
    matrix:
        Packed adjacency rows (``BitMatrixBackend._matrix`` layout).
    initial_bound:
        Exclusive pruning floor: only cliques strictly larger count.
    order:
        Vertex order for the root loop (defaults to a degeneracy
        order); each root sees its later-in-order neighbours only.
    root_ranks:
        When given, only roots at these ranks of ``order`` are
        expanded — the unit of work the parallel driver fans out.
        Every rank still participates in later-neighbour masking, so a
        subset search is exactly a restriction of the full search.
    shared_bound:
        Optional ``multiprocessing.Value`` carrying the best size found
        by *any* cooperating worker.  It is read at every expansion to
        tighten pruning and updated (under its lock) on improvement;
        races only cost pruning opportunities, never correctness.
    """
    n = len(matrix)
    if n == 0:
        return initial_bound, []
    if order is None:
        order = [int(v) for v in degeneracy_order_packed(matrix)]
    words = matrix.shape[1]

    best: list[int] = []
    # The pruning bound and the recorded witness are tracked separately:
    # ``bound`` may adopt *other* workers' incumbent sizes (shared_bound),
    # for which this searcher holds no witness, so the return pair is
    # always ``(len(best), best)`` when a clique was recorded here.
    bound = initial_bound

    # Inside a branch the candidate sets are small and the work is
    # dominated by *call overhead*, not arithmetic — so the inner loop
    # runs on arbitrary-precision ints (word-parallel in C, no per-op
    # numpy dispatch), with packed rows converted lazily the first time
    # a vertex is actually branched on.  The root loop below stays on
    # the numpy side where one vectorized AND prices a whole row.
    rows: dict[int, int] = {}

    def row_of(v: int) -> int:
        row = rows.get(v)
        if row is None:
            row = int.from_bytes(matrix[v].tobytes(), "little")
            rows[v] = row
        return row

    def record(clique: "list[int]") -> None:
        nonlocal best, bound
        best = list(clique)
        bound = len(clique)
        if shared_bound is not None:
            with shared_bound.get_lock():
                if bound > shared_bound.value:
                    shared_bound.value = bound

    def expand(clique: "list[int]", candidates: int) -> None:
        nonlocal bound
        if shared_bound is not None and shared_bound.value > bound:
            # Another worker's incumbent; adopt the size (not the
            # witness — each worker reports only cliques it found).
            bound = shared_bound.value
        depth = len(clique)
        if depth + candidates.bit_count() <= bound:
            return
        colored = _coloring_int(row_of, candidates)
        # Walk the coloured candidates highest colour first: vertex
        # colours bound every clique through the not-yet-branched
        # prefix, so one failed check prunes the whole remainder.
        for v, color in reversed(colored):
            if depth + color <= bound:
                return
            clique.append(v)
            rest = candidates & row_of(v)
            if rest:
                expand(clique, rest)
            elif depth + 1 > bound:
                record(clique)
            clique.pop()
            candidates &= ~(1 << v)

    # Root loop in degeneracy order: ``later`` shrinks as roots are
    # consumed, so root v's candidate set is N(v) ∩ {later vertices}.
    later = np.zeros(words, dtype=np.uint64)
    idx = np.arange(n, dtype=np.int64)
    np.bitwise_or.at(later, idx >> 6, _ONE << (idx.astype(np.uint64) & np.uint64(63)))
    for rank, v in enumerate(order):
        later[v >> 6] &= ~(_ONE << np.uint64(v & 63))
        if root_ranks is not None and rank not in root_ranks:
            continue
        candidates = matrix[v] & later
        if 1 + popcount(candidates) <= bound:
            continue
        if candidates.any():
            expand([v], int.from_bytes(candidates.tobytes(), "little"))
        elif bound < 1:
            record([v])
    return (len(best), best) if best else (initial_bound, [])


def _coloring_int(row_of, candidates: int) -> "list[tuple[int, int]]":
    """Greedy colouring of an int-packed candidate set.

    Same colour-class peeling as :func:`_coloring_packed`, but over
    arbitrary-precision ints: admitting a vertex removes its whole
    neighbourhood from the class in one bigint ``&= ~row``.  Returns
    ``(vertex, colour)`` sorted by colour ascending (colours start at 1).
    """
    colored: list[tuple[int, int]] = []
    remaining = candidates
    color = 0
    while remaining:
        color += 1
        available = remaining
        while available:
            low = available & -available
            v = low.bit_length() - 1
            colored.append((v, color))
            available &= ~row_of(v)
            available &= ~low
            remaining &= ~low
    return colored


def coloring_bound_packed(matrix: np.ndarray) -> int:
    """Greedy chromatic bound of a packed bitmap: ω(G) ≤ #colours.

    One word-parallel colouring pass over all vertices; linear in
    ``colours × n × words``.  Cheap enough to price every block of a
    decomposition before dispatch.
    """
    n = len(matrix)
    if n == 0:
        return 0
    members = np.zeros(matrix.shape[1], dtype=np.uint64)
    idx = np.arange(n, dtype=np.int64)
    np.bitwise_or.at(members, idx >> 6, _ONE << (idx.astype(np.uint64) & np.uint64(63)))
    colors, _ = _coloring_packed(matrix, members)
    return colors


def clique_upper_bound_packed(matrix: np.ndarray) -> int:
    """Cheap upper bound on the largest clique inside a packed bitmap.

    The minimum of three classical bounds: the vertex count, degeneracy
    plus one (a k-clique needs k vertices of degree ≥ k−1 within it),
    and the greedy colouring bound.  Exact search never beats this
    number, so a block whose bound falls below an enumeration floor can
    be skipped wholesale (see ``core/driver.py``'s ``min_clique_size``).
    """
    n = len(matrix)
    if n == 0:
        return 0
    return min(n, degeneracy_packed(matrix) + 1, coloring_bound_packed(matrix))


def _coloring_packed(
    matrix: np.ndarray, candidates: np.ndarray
) -> "tuple[int, list[tuple[int, int]]]":
    """Colour ``candidates`` greedily; return ``(#colours, ordered list)``.

    The returned list holds ``(vertex, colour)`` sorted by colour
    ascending (colours start at 1).  Each colour class is peeled with
    word-parallel ops: admitting a vertex removes its whole packed
    neighbourhood row from the class in one vectorized ``&= ~row``.
    """
    colored: list[tuple[int, int]] = []
    remaining = candidates.copy()
    color = 0
    while True:
        members = bits_to_indices(remaining)
        if members.size == 0:
            break
        color += 1
        available = remaining.copy()
        for v in members:
            v = int(v)
            word, bit = v >> 6, _ONE << np.uint64(v & 63)
            if not available[word] & bit:
                continue  # a same-class neighbour already claimed v
            colored.append((v, color))
            available &= ~matrix[v]
            remaining[word] &= ~bit
    return color, colored


def maximum_clique_bitset(graph: Graph, lower_bound: int = 0) -> frozenset[Node]:
    """Pure-``int`` bitset branch and bound (the pre-bitmatrix solver).

    Same contract as :func:`maximum_clique` — identical answers, no
    numpy dependency.  Kept as the baseline arm of
    ``benchmarks/bench_maximum.py`` and as the parity oracle for the
    packed kernel.
    """
    if lower_bound < 0:
        raise ValueError("lower_bound must be non-negative")
    if graph.num_nodes == 0:
        if lower_bound > 0:
            raise BoundNotMetError(lower_bound, 0)
        return frozenset()
    backend = BitsetBackend(graph)
    order = [backend.index_of(node) for node in degeneracy_ordering(graph)]
    position = {index: rank for rank, index in enumerate(order)}

    best: list[int] = []
    best_size = max(0, lower_bound - 1)

    def expand(clique: list[int], candidates: int) -> None:
        nonlocal best, best_size
        while candidates:
            if len(clique) + candidates.bit_count() <= best_size:
                return  # even taking everything cannot beat the incumbent
            _color_count, colored_order = _greedy_coloring(backend, candidates)
            # Branch on the highest-coloured candidate: its colour is
            # the tightest available bound, so pruning fires earliest.
            v, bound = colored_order[-1]
            if len(clique) + bound <= best_size:
                return
            clique.append(v)
            rest = candidates & backend._masks[v]  # noqa: SLF001 - hot path
            if rest:
                expand(clique, rest)
            elif len(clique) > best_size:
                best = list(clique)
                best_size = len(clique)
            clique.pop()
            candidates &= ~(1 << v)

    # Outer loop in reverse degeneracy order: each vertex with its
    # later neighbours only, so candidate sets start at most degeneracy
    # big on sparse graphs.
    for rank in range(len(order) - 1, -1, -1):
        v = order[rank]
        later_candidates = 0
        for u in backend.iterate(backend._masks[v]):  # noqa: SLF001
            if position[u] > rank:
                later_candidates |= 1 << u
        if 1 + later_candidates.bit_count() > best_size:
            if later_candidates:
                expand([v], later_candidates)
            elif 1 > best_size:
                best = [v]
                best_size = 1
    if len(best) < lower_bound:
        raise BoundNotMetError(lower_bound, len(best))
    return frozenset(backend.label(i) for i in best)


def _greedy_coloring(
    backend: BitsetBackend, candidates: int
) -> tuple[int, list[tuple[int, int]]]:
    """Colour ``candidates`` greedily; return (#colors, ordered list).

    The returned list holds ``(vertex, color_number)`` sorted by colour
    (ascending), so its tail carries the largest bound.  Colour numbers
    start at 1; a set coloured with ``c`` colours contains no clique
    larger than ``c``.
    """
    color_of: list[tuple[int, int]] = []
    remaining = candidates
    color = 0
    while remaining:
        color += 1
        available = remaining
        while available:
            low = available & -available
            v = low.bit_length() - 1
            color_of.append((v, color))
            available &= ~backend._masks[v]  # noqa: SLF001
            available &= ~low
            remaining &= ~low
    return color, color_of

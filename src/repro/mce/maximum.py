"""Branch-and-bound maximum clique search.

The related work (Section 7) cites two classic exact maximum-clique
solvers — Östergård's ``cliquer`` [27] and Tomita–Kameda's MCQ-style
branch and bound [33] — as the pruning-based tradition the MCE systems
grew out of, plus Rossi et al. [30] for large graphs.  This module
implements the standard modern scheme from that family:

* vertices are examined in a **degeneracy order** (small candidate
  neighbourhoods first, the [30] trick for sparse graphs);
* at every branch a **greedy colouring** of the candidate set bounds
  the largest clique it can still contain (the Tomita–Kameda bound):
  a candidate set colourable with ``c`` colours holds no clique larger
  than ``c``;
* branches whose bound cannot beat the incumbent are pruned.

Finding one maximum clique this way is typically orders of magnitude
cheaper than enumerating all maximal cliques and taking the largest,
which the benchmark demonstrates.
"""

from __future__ import annotations

from repro.graph.adjacency import Graph, Node
from repro.graph.cores import degeneracy_ordering
from repro.mce.backends import BitsetBackend


def maximum_clique(graph: Graph, lower_bound: int = 0) -> frozenset[Node]:
    """Return one maximum clique of ``graph`` (empty for the empty graph).

    Parameters
    ----------
    graph:
        The network; not modified.
    lower_bound:
        Optional known clique size; branches that cannot exceed it are
        pruned from the start (the incumbent itself starts empty, so a
        wrong ``lower_bound`` larger than the true maximum yields an
        empty result — pass only certified bounds).

    Raises
    ------
    ValueError
        If ``lower_bound`` is negative.
    """
    if lower_bound < 0:
        raise ValueError("lower_bound must be non-negative")
    if graph.num_nodes == 0:
        return frozenset()
    backend = BitsetBackend(graph)
    order = [backend.index_of(node) for node in degeneracy_ordering(graph)]
    position = {index: rank for rank, index in enumerate(order)}

    best: list[int] = []
    best_size = lower_bound

    def expand(clique: list[int], candidates: int) -> None:
        nonlocal best, best_size
        while candidates:
            if len(clique) + candidates.bit_count() <= best_size:
                return  # even taking everything cannot beat the incumbent
            _color_count, colored_order = _greedy_coloring(backend, candidates)
            # Branch on the highest-coloured candidate: its colour is
            # the tightest available bound, so pruning fires earliest.
            v, bound = colored_order[-1]
            if len(clique) + bound <= best_size:
                return
            clique.append(v)
            rest = candidates & backend._masks[v]  # noqa: SLF001 - hot path
            if rest:
                expand(clique, rest)
            elif len(clique) > best_size:
                best = list(clique)
                best_size = len(clique)
            clique.pop()
            candidates &= ~(1 << v)

    # Outer loop in reverse degeneracy order: each vertex with its
    # later neighbours only, so candidate sets start at most degeneracy
    # big on sparse graphs.
    for rank in range(len(order) - 1, -1, -1):
        v = order[rank]
        later_candidates = 0
        for u in backend.iterate(backend._masks[v]):  # noqa: SLF001
            if position[u] > rank:
                later_candidates |= 1 << u
        if 1 + later_candidates.bit_count() > best_size:
            if later_candidates:
                expand([v], later_candidates)
            elif 1 > best_size:
                best = [v]
                best_size = 1
    # With a caller-supplied lower_bound at or above the true clique
    # number, every branch prunes and the result is empty, as documented.
    return frozenset(backend.label(i) for i in best)


def maximum_clique_size(graph: Graph) -> int:
    """Return the clique number ω(G); 0 for the empty graph."""
    return len(maximum_clique(graph))


def _greedy_coloring(
    backend: BitsetBackend, candidates: int
) -> tuple[int, list[tuple[int, int]]]:
    """Colour ``candidates`` greedily; return (#colors, ordered list).

    The returned list holds ``(vertex, color_number)`` sorted by colour
    (ascending), so its tail carries the largest bound.  Colour numbers
    start at 1; a set coloured with ``c`` colours contains no clique
    larger than ``c``.
    """
    color_of: list[tuple[int, int]] = []
    remaining = candidates
    color = 0
    while remaining:
        color += 1
        available = remaining
        while available:
            low = available & -available
            v = low.bit_length() - 1
            color_of.append((v, color))
            available &= ~backend._masks[v]  # noqa: SLF001
            available &= ~low
            remaining &= ~low
    return color, color_of

"""Memory accounting for the graph-representation backends.

The paper's data-structure dimension (Table 1) trades speed against
memory: a dense adjacency matrix is cache-friendly but quadratic, a
bitset is quadratic-but-packed, adjacency lists are linear in edges.
Block sizing against worker RAM (Section 2: "m is bounded by the
dimension of the memory") needs those footprints, so this module
provides both a closed-form **model** per backend and an exact
**measurement** of a built backend via ``sys.getsizeof`` recursion.
"""

from __future__ import annotations

import sys

from repro.errors import AlgorithmNotFoundError
from repro.graph.adjacency import Graph
from repro.mce.backends import (
    BACKEND_NAMES,
    Backend,
    BitsetBackend,
    MatrixBackend,
    SetBackend,
    build_backend,
)

_POINTER = 8  # CPython object pointer size on 64-bit builds
_SET_SLOT = 55  # empirical bytes per frozenset endpoint (slots + slack)


def estimate_backend_bytes(graph: Graph, name: str) -> int:
    """Model the adjacency-storage bytes of backend ``name`` for ``graph``.

    The models count the dominant adjacency structure only (label maps,
    shared by all backends, are excluded):

    * ``matrix`` — ``n²`` bytes (numpy bool is one byte per cell);
    * ``bitsets`` — ``n`` Python ints of ``n`` bits each:
      ``n · (28 + 4·ceil(n/30))`` (CPython 30-bit digit layout);
    * ``bitmatrix`` — ``n`` packed rows of ``ceil(n/64)`` 64-bit words:
      ``n · 8·ceil(n/64)`` (the densest quadratic layout, 8× smaller
      than ``matrix``);
    * ``lists`` — one frozenset per node: ``n · 216`` base (the empty
      frozenset) plus ~55 bytes per stored endpoint (hash-table slot,
      power-of-two resizing slack, and the entry reference, calibrated
      against CPython 3.11 measurements), each edge stored at both
      endpoints.

    Raises
    ------
    AlgorithmNotFoundError
        On an unknown backend name.
    """
    n = graph.num_nodes
    if name == "matrix":
        return n * n
    if name == "bitsets":
        digits = (n + 29) // 30
        return n * (28 + 4 * digits)
    if name == "bitmatrix":
        return n * 8 * ((n + 63) // 64)
    if name == "lists":
        return n * 216 + 2 * graph.num_edges * _SET_SLOT
    raise AlgorithmNotFoundError(name, BACKEND_NAMES)


def measured_backend_bytes(backend: Backend) -> int:
    """Measure the adjacency-storage bytes of a built backend exactly.

    Walks the backend's concrete adjacency structure with
    ``sys.getsizeof``; container overheads are included, shared label
    maps are not (they are identical across backends).
    """
    from repro.mce.bitmatrix import BitMatrixBackend

    if isinstance(backend, BitMatrixBackend):
        return int(backend._matrix.nbytes)  # noqa: SLF001 - deliberate introspection
    if isinstance(backend, MatrixBackend):
        return int(backend._matrix.nbytes)  # noqa: SLF001 - deliberate introspection
    if isinstance(backend, BitsetBackend):
        return sum(sys.getsizeof(mask) for mask in backend._masks)  # noqa: SLF001
    if isinstance(backend, SetBackend):
        total = 0
        for neighbors in backend._neighbors:  # noqa: SLF001
            total += sys.getsizeof(neighbors)
            total += len(neighbors) * _POINTER
        return total
    raise AlgorithmNotFoundError(type(backend).__name__, BACKEND_NAMES)


def backend_memory_table(graph: Graph) -> list[tuple[str, int, int]]:
    """Return ``(backend, modelled bytes, measured bytes)`` per backend."""
    rows: list[tuple[str, int, int]] = []
    for name in BACKEND_NAMES:
        backend = build_backend(graph, name)
        rows.append(
            (name, estimate_backend_bytes(graph, name), measured_backend_bytes(backend))
        )
    return rows


def max_block_nodes_for_memory(memory_bytes: int, backend: str) -> int:
    """Largest block size whose backend fits in ``memory_bytes``.

    Inverts the :func:`estimate_backend_bytes` model for the quadratic
    backends (for ``lists`` the bound depends on edges, so the dense
    worst case ``n·216 + 8·n·(n-1)`` is inverted).  This is the "m is
    bounded by the dimension of the memory" calculation of Section 1.

    Raises
    ------
    ValueError
        If ``memory_bytes`` is not positive.
    AlgorithmNotFoundError
        On an unknown backend name.
    """
    if memory_bytes < 1:
        raise ValueError("memory_bytes must be positive")
    if backend not in BACKEND_NAMES:
        raise AlgorithmNotFoundError(backend, BACKEND_NAMES)
    low, high = 1, 1 << 32
    while low < high:
        mid = (low + high + 1) // 2
        if backend == "lists":
            # Dense worst case: every pair is an edge.
            cost = mid * 216 + _SET_SLOT * mid * (mid - 1)
        else:
            cost = estimate_backend_bytes(_SizeOnly(mid), backend)  # type: ignore[arg-type]
        if cost <= memory_bytes:
            low = mid
        else:
            high = mid - 1
    return low


class _SizeOnly:
    """A stand-in exposing only the counts the byte models read."""

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        self.num_edges = num_nodes * (num_nodes - 1) // 2

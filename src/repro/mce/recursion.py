"""The shared Bron–Kerbosch recursion skeleton.

All four algorithms of Section 4 (BKPivot, Tomita, Eppstein, XPivot) are
variations of the Bron–Kerbosch scheme: maintain a current clique ``R``, a
candidate set ``P`` (nodes adjacent to everything in ``R`` that may still
extend it) and an exclusion set ``X`` (nodes adjacent to everything in
``R`` whose cliques were already reported).  They differ only in how the
*pivot* is chosen, so the recursion lives here once and each algorithm
module contributes a pivot rule.

A pivot rule receives ``(backend, P, X)`` and returns the pivot's internal
index, or ``None`` to expand every candidate (plain Bron–Kerbosch).
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.mce.backends import Backend, NodeSet

PivotRule = Callable[[Backend, NodeSet, NodeSet], Optional[int]]


def expand(
    backend: Backend,
    clique: list[int],
    candidates: NodeSet,
    excluded: NodeSet,
    pivot_rule: PivotRule,
) -> Iterator[tuple[int, ...]]:
    """Yield every maximal clique extending ``clique``, as index tuples.

    ``candidates`` must contain exactly the common neighbours of ``clique``
    not yet processed, and ``excluded`` the common neighbours already
    processed; the yielded tuples include the nodes of ``clique`` itself.
    The caller's ``clique`` list is used as a mutable stack and restored on
    return.

    Backends may supply an ``expand_native`` whole-enumeration kernel
    (the packed-bitmap backend's batched kernel); when it accepts the
    pivot rule the recursion is bypassed entirely.  The clique *set* is
    identical either way; emission order may differ.
    """
    native = getattr(backend, "expand_native", None)
    if native is not None:
        fast = native(clique, candidates, excluded, pivot_rule)
        if fast is not None:
            yield from fast
            return
    if backend.is_empty(candidates):
        if backend.is_empty(excluded):
            yield tuple(clique)
        return
    pivot = pivot_rule(backend, candidates, excluded)
    if pivot is None:
        frontier = candidates
    else:
        frontier = backend.minus_neighbors(candidates, pivot)
    for v in list(backend.iterate(frontier)):
        clique.append(v)
        yield from expand(
            backend,
            clique,
            backend.intersect_neighbors(candidates, v),
            backend.intersect_neighbors(excluded, v),
            pivot_rule,
        )
        clique.pop()
        candidates = backend.remove(candidates, v)
        excluded = backend.add(excluded, v)


def enumerate_all(backend: Backend, pivot_rule: PivotRule) -> Iterator[tuple[int, ...]]:
    """Yield every maximal clique of the backend's graph as index tuples.

    The empty graph yields nothing (matching the convention of networkx and
    of the MCE literature, where the trivial empty clique is not reported).
    """
    if backend.n == 0:
        return
    yield from expand(backend, [], backend.full(), backend.empty(), pivot_rule)


def no_pivot(_backend: Backend, _candidates: NodeSet, _excluded: NodeSet) -> None:
    """The pivotless rule: expand every candidate (plain Bron–Kerbosch)."""
    return None


def max_degree_pivot(backend: Backend, candidates: NodeSet, _excluded: NodeSet) -> int:
    """BKPivot's rule: the highest-degree node of the candidate set ``P``.

    "It uses a pivot to avoid redundant recursive calls.  The node of
    highest degree in the candidate set P is chosen as the pivot"
    (Section 4).  Degree is taken in the whole (block) graph.  Ties break
    toward the smallest internal index for determinism.

    Backends that can score all candidates at once (the packed-bitmap
    backend vectorizes the scan) expose a ``pivot_max_degree`` method the
    rule defers to; the selected pivot is identical either way.
    """
    fast = getattr(backend, "pivot_max_degree", None)
    if fast is not None:
        return fast(candidates)
    best = -1
    best_degree = -1
    for v in backend.iterate(candidates):
        degree = backend.degree(v)
        if degree > best_degree:
            best = v
            best_degree = degree
    return best


def tomita_pivot(backend: Backend, candidates: NodeSet, excluded: NodeSet) -> int:
    """Tomita's rule: the node of ``P ∪ X`` maximising ``|N(u) ∩ P|``.

    This is the pivot choice proved worst-case optimal by Tomita, Tanaka
    and Takahashi (reference [34] of the paper).  Ties break toward the
    smallest internal index, candidates before excluded, for determinism.

    Defers to a backend-native ``pivot_tomita`` when one exists — the
    packed-bitmap backend replaces this Python scoring loop with one
    gather + popcount + argmax, same pivot returned.
    """
    fast = getattr(backend, "pivot_tomita", None)
    if fast is not None:
        return fast(candidates, excluded)
    best = -1
    best_common = -1
    for v in backend.iterate(candidates):
        common = backend.common_count(v, candidates)
        if common > best_common:
            best = v
            best_common = common
    for v in backend.iterate(excluded):
        common = backend.common_count(v, candidates)
        if common > best_common:
            best = v
            best_common = common
    return best


def x_pivot(backend: Backend, candidates: NodeSet, excluded: NodeSet) -> int:
    """XPivot's rule: Tomita's score, but the pivot comes from ``X``.

    "Like Tomita, it chooses the node that maximizes the size of
    N(u) ∩ P, but the node u is chosen from the set of already visited
    nodes" (Section 4, the paper's own variation).  When ``X`` is empty —
    e.g. at the root of the recursion — it falls back to Tomita's rule over
    ``P`` so a pivot always exists.  Defers to a backend-native
    ``pivot_x`` when one exists (vectorized scoring, same pivot).
    """
    fast = getattr(backend, "pivot_x", None)
    if fast is not None:
        return fast(candidates, excluded)
    best = -1
    best_common = -1
    for v in backend.iterate(excluded):
        common = backend.common_count(v, candidates)
        if common > best_common:
            best = v
            best_common = common
    if best >= 0:
        return best
    return tomita_pivot(backend, candidates, excluded)

"""The (algorithm × data structure) portfolio registry.

Section 4 evaluates four MCE algorithms on three supporting data
structures and drives the choice per block with a decision tree.  This
module names the algorithms and the twelve combinations, runs any of them
by name, and exposes the pivot rules so :mod:`repro.core.block_analysis`
can execute the chosen combination in anchored mode.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import AlgorithmNotFoundError
from repro.graph.adjacency import Graph, Node
from repro.graph.cores import degeneracy_ordering
from repro.mce.backends import BACKEND_NAMES, Backend, build_backend
from repro.mce.bron_kerbosch import bk_pivot
from repro.mce.eppstein import eppstein
from repro.mce.recursion import PivotRule, max_degree_pivot, tomita_pivot, x_pivot
from repro.mce.tomita import tomita
from repro.mce.xpivot import xpivot

ALGORITHM_NAMES: tuple[str, ...] = ("bkpivot", "tomita", "eppstein", "xpivot")

_ALGORITHMS: dict[str, Callable[[Graph, str], Iterator[frozenset[Node]]]] = {
    "bkpivot": bk_pivot,
    "tomita": tomita,
    "eppstein": eppstein,
    "xpivot": xpivot,
}

_PIVOT_RULES: dict[str, PivotRule] = {
    "bkpivot": max_degree_pivot,
    "tomita": tomita_pivot,
    "xpivot": x_pivot,
    # Eppstein's inner recursion uses Tomita's rule; its outer degeneracy
    # ordering is handled separately where whole-graph runs are needed.
    "eppstein": tomita_pivot,
}


@dataclass(frozen=True)
class Combo:
    """One (algorithm, backend) cell of the paper's Table 1."""

    algorithm: str
    backend: str

    def __post_init__(self) -> None:
        if self.algorithm not in _ALGORITHMS:
            raise AlgorithmNotFoundError(self.algorithm, ALGORITHM_NAMES)
        if self.backend not in BACKEND_NAMES:
            raise AlgorithmNotFoundError(self.backend, BACKEND_NAMES)

    @property
    def name(self) -> str:
        """Display name in the paper's ``[Structure/Algorithm]`` style."""
        structure = {
            "lists": "Lists",
            "bitsets": "BitSets",
            "matrix": "Matrix",
            "bitmatrix": "BitMatrix",
        }
        algorithm = {
            "bkpivot": "BKPivot",
            "tomita": "Tomita",
            "eppstein": "Eppstein",
            "xpivot": "XPivot",
        }
        return f"[{structure[self.backend]}/{algorithm[self.algorithm]}]"

    def run(self, graph: Graph) -> Iterator[frozenset[Node]]:
        """Yield the maximal cliques of ``graph`` with this combination."""
        return _ALGORITHMS[self.algorithm](graph, self.backend)


ALL_COMBOS: tuple[Combo, ...] = tuple(
    Combo(algorithm, backend)
    for algorithm in ALGORITHM_NAMES
    for backend in BACKEND_NAMES
)

# The twelve cells of the paper's Table 1 (its three structures only);
# ALL_COMBOS additionally includes the packed-bitmap representation this
# reproduction contributes.
PAPER_COMBOS: tuple[Combo, ...] = tuple(
    combo for combo in ALL_COMBOS if combo.backend != "bitmatrix"
)


def get_algorithm(name: str) -> Callable[[Graph, str], Iterator[frozenset[Node]]]:
    """Return the whole-graph enumerator registered under ``name``."""
    try:
        return _ALGORITHMS[name]
    except KeyError:
        raise AlgorithmNotFoundError(name, ALGORITHM_NAMES) from None


def get_pivot_rule(name: str) -> PivotRule:
    """Return the pivot rule an algorithm uses inside its recursion."""
    try:
        return _PIVOT_RULES[name]
    except KeyError:
        raise AlgorithmNotFoundError(name, ALGORITHM_NAMES) from None


def run_combo(graph: Graph, combo: Combo) -> list[frozenset[Node]]:
    """Run one combination to completion and return its clique list."""
    return list(combo.run(graph))


def time_combo(graph: Graph, combo: Combo, repeats: int = 1) -> float:
    """Return the best-of-``repeats`` wall-clock seconds for one combo.

    Used by the decision-tree trainer (Section 4) to label each training
    graph with its best-performing combination.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        count = 0
        for _clique in combo.run(graph):
            count += 1
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best


def prepare_backend_for_block(graph: Graph, backend: str) -> Backend:
    """Build the named backend over a block graph (decision-tree output)."""
    return build_backend(graph, backend)


def eppstein_outer_order(graph: Graph, backend: Backend) -> list[int]:
    """Return the Eppstein–Strash degeneracy ordering as internal indices."""
    return [backend.index_of(node) for node in degeneracy_ordering(graph)]

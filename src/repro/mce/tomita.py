"""The Tomita–Tanaka–Takahashi maximal clique algorithm.

Reference [34] of the paper: *The worst-case time complexity for
generating all maximal cliques and computational experiments*, Theor.
Comput. Sci. 363(1), 2006.  Bron–Kerbosch with the pivot chosen from
``P ∪ X`` to maximise ``|N(u) ∩ P|`` — worst-case optimal
``O(3^(n/3))`` and, per the paper, the strongest portfolio member on
dense blocks.
"""

from __future__ import annotations

from typing import Iterator

from repro.graph.adjacency import Graph, Node
from repro.mce.backends import Backend, build_backend
from repro.mce.recursion import enumerate_all, tomita_pivot


def tomita(graph: Graph, backend: str = "bitsets") -> Iterator[frozenset[Node]]:
    """Yield every maximal clique of ``graph`` using Tomita's pivot rule.

    The default backend is bitsets, the combination the paper's Table 1
    reports winning most often for this algorithm.
    """
    native = build_backend(graph, backend)
    yield from tomita_native(native)


def tomita_native(native: Backend) -> Iterator[frozenset[Node]]:
    """Run Tomita on an already-built backend (label output)."""
    for clique in enumerate_all(native, tomita_pivot):
        yield frozenset(native.label(i) for i in clique)

"""Validation helpers for clique sets.

Used by the test suite, by the completeness benchmarks (to demonstrate
that the naive fixed-block baseline emits non-maximal cliques and misses
real ones), and available to library users who want to audit an output.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.graph.adjacency import Graph, Node


def is_clique(graph: Graph, nodes: Iterable[Node]) -> bool:
    """Return whether ``nodes`` induce a complete subgraph of ``graph``."""
    return graph.is_clique(nodes)


def is_maximal_clique(graph: Graph, nodes: Iterable[Node]) -> bool:
    """Return whether ``nodes`` form a clique no node of ``graph`` extends.

    The empty set is never maximal in a non-empty graph (any node extends
    it) and vacuously not a clique of interest in an empty graph.
    """
    members = set(nodes)
    if not members:
        return False
    if not graph.is_clique(members):
        return False
    # A clique member is never its own neighbour, so the intersection of
    # all members' neighbourhoods contains exactly the possible extensions.
    common: set[Node] | None = None
    for node in members:
        neighbors = set(graph.neighbors(node))
        common = neighbors if common is None else common & neighbors
        if not common:
            return True
    assert common is not None
    return not common


def find_extension(graph: Graph, nodes: Iterable[Node]) -> Node | None:
    """Return a node adjacent to every member of ``nodes``, or ``None``.

    A non-``None`` result is a witness that the clique is not maximal.
    """
    members = set(nodes)
    if not members:
        for node in graph.nodes():
            return node
        return None
    common: set[Node] | None = None
    for node in members:
        neighbors = set(graph.neighbors(node))
        common = neighbors if common is None else common & neighbors
    assert common is not None
    extensions = common - members
    return next(iter(extensions)) if extensions else None


def check_mce_output(
    graph: Graph, cliques: Sequence[frozenset[Node]]
) -> list[str]:
    """Audit an MCE output; return a list of problem descriptions.

    Checks, in order: every reported set is a clique; every reported set is
    maximal; no duplicates.  An empty return value means the output is
    internally consistent (it does *not* check completeness — use
    :func:`missing_cliques` with a reference output for that).
    """
    problems: list[str] = []
    seen: set[frozenset[Node]] = set()
    for clique in cliques:
        if clique in seen:
            problems.append(f"duplicate clique {sorted(clique, key=str)}")
            continue
        seen.add(clique)
        if not graph.is_clique(clique):
            problems.append(f"not a clique: {sorted(clique, key=str)}")
            continue
        witness = find_extension(graph, clique)
        if witness is not None:
            problems.append(
                f"not maximal: {sorted(clique, key=str)} extendable by {witness!r}"
            )
    return problems


def missing_cliques(
    reference: Iterable[frozenset[Node]], candidate: Iterable[frozenset[Node]]
) -> set[frozenset[Node]]:
    """Return the cliques present in ``reference`` but not in ``candidate``."""
    return set(reference) - set(candidate)


def spurious_cliques(
    graph: Graph, candidate: Iterable[frozenset[Node]]
) -> set[frozenset[Node]]:
    """Return reported sets that are not maximal cliques of ``graph``."""
    return {
        clique for clique in candidate if not is_maximal_clique(graph, clique)
    }

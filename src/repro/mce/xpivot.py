"""XPivot — the pivot variation contributed by the paper itself.

Section 4: "a variation of BKPivot proposed by us.  Like Tomita, it
chooses the node that maximizes the size of N(u) ∩ P, but the node u is
chosen from the set of already visited nodes."  Restricting the pivot to
the exclusion set ``X`` makes the pivot computation cheaper (``X`` is
typically much smaller than ``P ∪ X``) while keeping most of the pruning
power; Table 1 shows it winning most often with adjacency lists.

When ``X`` is empty the rule falls back to Tomita's choice over ``P`` so
the recursion always has a pivot.
"""

from __future__ import annotations

from typing import Iterator

from repro.graph.adjacency import Graph, Node
from repro.mce.backends import Backend, build_backend
from repro.mce.recursion import enumerate_all, x_pivot


def xpivot(graph: Graph, backend: str = "lists") -> Iterator[frozenset[Node]]:
    """Yield every maximal clique of ``graph`` using the XPivot rule.

    The default backend is adjacency lists, the combination the paper's
    Table 1 reports winning most often for this algorithm.
    """
    native = build_backend(graph, backend)
    yield from xpivot_native(native)


def xpivot_native(native: Backend) -> Iterator[frozenset[Node]]:
    """Run XPivot on an already-built backend (label output)."""
    for clique in enumerate_all(native, x_pivot):
        yield frozenset(native.label(i) for i in clique)

"""Relaxed community models (the paper's Section 8 future work)."""

from repro.relaxed.distance import (
    bfs_distances,
    diameter,
    graph_power,
    induced_diameter_at_most,
    is_kclub,
    k_clans,
    k_cliques,
    kclubs_from_kclans,
)
from repro.relaxed.kplex import (
    is_kplex,
    kplex_deficiencies,
    maximal_kplexes,
    minimum_k,
)
from repro.relaxed.kplex_split import KplexSplitResult, degree_split_kplexes
from repro.relaxed.percolation import community_membership, k_clique_communities

__all__ = [
    "bfs_distances",
    "diameter",
    "graph_power",
    "induced_diameter_at_most",
    "is_kclub",
    "k_clans",
    "k_cliques",
    "kclubs_from_kclans",
    "is_kplex",
    "kplex_deficiencies",
    "maximal_kplexes",
    "minimum_k",
    "KplexSplitResult",
    "degree_split_kplexes",
    "community_membership",
    "k_clique_communities",
]

"""Distance-based relaxed communities: k-cliques, k-clans, k-clubs.

Section 8 lists the classical distance relaxations among the future
work: "k-cliques, k-clubs, k-clans".  In the social-network literature
(Luce; Mokken) these are *distance* notions, not size notions:

* a **k-clique** is a maximal set of nodes with pairwise distance at
  most ``k`` *in the whole graph*;
* a **k-clan** is a k-clique whose *induced* subgraph has diameter at
  most ``k`` (the paths must stay inside the group);
* a **k-club** is a maximal set whose induced subgraph has diameter at
  most ``k``.

The implementations lean on a clean reduction: the k-cliques of ``G``
are exactly the maximal cliques of the ``k``-th **power graph**
``G^k`` (nodes adjacent iff their distance in ``G`` is ≤ k), so the
existing MCE portfolio does the heavy lifting.  k-clans are the
diameter-filtered k-cliques.  Maximal k-club enumeration is NP-hard
even to verify maximality incrementally (the property is not
hereditary); the module provides the standard practical route —
:func:`is_kclub` checking plus :func:`kclubs_from_kclans` (every
k-clan is a k-club; Mokken's containment chain) — rather than a
pretend-exact enumerator.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from repro.graph.adjacency import Graph, Node
from repro.graph.views import induced_subgraph
from repro.mce.tomita import tomita


def bfs_distances(graph: Graph, source: Node, limit: int | None = None) -> dict[Node, int]:
    """Return shortest-path distances from ``source`` (hop counts).

    With ``limit`` set, exploration stops beyond that distance (only
    nodes within ``limit`` hops appear in the result).

    Raises
    ------
    NodeNotFoundError
        If ``source`` is not in the graph.
    """
    distances: dict[Node, int] = {source: 0}
    graph.neighbors(source)  # raises NodeNotFoundError on a bad source
    queue: deque[Node] = deque([source])
    while queue:
        node = queue.popleft()
        depth = distances[node]
        if limit is not None and depth >= limit:
            continue
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                queue.append(neighbor)
    return distances


def diameter(graph: Graph) -> int:
    """Return the diameter of ``graph`` (longest shortest path).

    Raises
    ------
    ValueError
        If the graph is empty or disconnected (the diameter would be
        infinite).
    """
    nodes = list(graph.nodes())
    if not nodes:
        raise ValueError("diameter of the empty graph is undefined")
    worst = 0
    for node in nodes:
        distances = bfs_distances(graph, node)
        if len(distances) != len(nodes):
            raise ValueError("diameter of a disconnected graph is infinite")
        worst = max(worst, max(distances.values()))
    return worst


def graph_power(graph: Graph, k: int) -> Graph:
    """Return ``G^k``: nodes adjacent iff their distance in ``G`` is ≤ k.

    Raises
    ------
    ValueError
        If ``k < 1``.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    power = Graph(nodes=graph.nodes())
    for node in graph.nodes():
        for other, distance in bfs_distances(graph, node, limit=k).items():
            if other != node and distance <= k:
                power.add_edge(node, other)
    return power


def k_cliques(graph: Graph, k: int) -> Iterator[frozenset[Node]]:
    """Yield all maximal k-cliques (Luce): pairwise distance ≤ k in ``G``.

    Implemented as the maximal cliques of the power graph ``G^k``.
    ``k = 1`` reduces to ordinary maximal clique enumeration.
    """
    yield from tomita(graph_power(graph, k))


def induced_diameter_at_most(graph: Graph, nodes: Iterable[Node], k: int) -> bool:
    """Whether the subgraph induced by ``nodes`` has diameter ≤ k.

    Singletons qualify (diameter 0); the empty set qualifies vacuously.
    Disconnected induced subgraphs do not.
    """
    members = list(dict.fromkeys(nodes))
    if len(members) <= 1:
        return True
    sub = induced_subgraph(graph, members)
    for node in members:
        distances = bfs_distances(sub, node, limit=k)
        if len(distances) != len(members):
            return False
    return True


def k_clans(graph: Graph, k: int) -> Iterator[frozenset[Node]]:
    """Yield all k-clans: k-cliques with induced diameter at most ``k``.

    The classical Mokken definition; a strict subset of the k-cliques
    whenever some k-clique relies on outside nodes for its short paths.
    """
    for clique in k_cliques(graph, k):
        if induced_diameter_at_most(graph, clique, k):
            yield clique


def is_kclub(graph: Graph, nodes: Iterable[Node], k: int) -> bool:
    """Whether ``nodes`` form a k-club candidate (induced diameter ≤ k).

    Note the property is *not hereditary* — subsets of a k-club need
    not be k-clubs — which is why exact maximal enumeration is not
    offered; use :func:`kclubs_from_kclans` for the standard practical
    construction.

    Raises
    ------
    ValueError
        If ``k < 1``.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    return induced_diameter_at_most(graph, nodes, k)


def kclubs_from_kclans(graph: Graph, k: int) -> list[frozenset[Node]]:
    """Return k-clubs derived from the k-clans (deduplicated).

    Every k-clan is a k-club (its induced diameter is ≤ k by
    definition); these are the standard certified starting points for
    k-club analysis.  The returned sets are guaranteed k-clubs but not
    guaranteed *maximal* k-clubs.
    """
    seen: set[frozenset[Node]] = set()
    out: list[frozenset[Node]] = []
    for clan in k_clans(graph, k):
        if clan not in seen:
            seen.add(clan)
            out.append(clan)
    return out

"""Maximal k-plex enumeration — the paper's first future-work item.

Section 8: "we plan to explore the possibility of extending our
approach to relaxed definitions of communities, such as k-cliques,
k-clubs, k-clans, and k-plexes."  A **k-plex** (reference [5, 26] of
the paper) relaxes the clique constraint: a node set ``S`` is a k-plex
when every member is adjacent to at least ``|S| - k`` of the others —
a clique is exactly a 1-plex.

The enumeration is a set-enumeration tree with an exclusion set, the
direct generalisation of Bron–Kerbosch.  Two properties make it
correct:

* *heredity* — every subset of a k-plex is a k-plex, so any maximal
  k-plex can be built one node at a time through valid intermediate
  states;
* *anti-monotone addability* — once a node cannot extend the current
  set, it can never extend any superset (both the degree constraint on
  the candidate and the saturation constraints on current members only
  tighten as the set grows), so pruning candidates and exclusions is
  safe and each maximal k-plex is emitted exactly once.

Pivoting does not carry over from the clique case, so the recursion is
exponential without the pivot cut; practical use targets the same
small blocks the rest of the library works on.
"""

from __future__ import annotations

from typing import Iterator

from repro.graph.adjacency import Graph, Node


def is_kplex(graph: Graph, nodes: set[Node] | frozenset[Node], k: int) -> bool:
    """Return whether ``nodes`` induce a k-plex of ``graph``.

    The empty set and singletons are (vacuously) k-plexes for every
    ``k >= 1``.

    Raises
    ------
    ValueError
        If ``k < 1``.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    members = set(nodes)
    size = len(members)
    for node in members:
        inside = sum(1 for nb in graph.neighbors(node) if nb in members)
        if inside < size - k:
            return False
    return True


def maximal_kplexes(
    graph: Graph, k: int, min_size: int = 1
) -> Iterator[frozenset[Node]]:
    """Yield every maximal k-plex of ``graph`` with at least ``min_size`` nodes.

    ``k = 1`` yields exactly the maximal cliques (tested against the
    MCE portfolio).  Note that maximality is global: a k-plex is
    reported iff *no* node of the graph extends it, regardless of
    ``min_size`` — the threshold only filters which maximal k-plexes
    are reported (and prunes branches that cannot reach it).

    Raises
    ------
    ValueError
        If ``k < 1`` or ``min_size < 1``.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if min_size < 1:
        raise ValueError("min_size must be at least 1")
    if graph.num_nodes == 0:
        return
    adjacency = {node: graph.neighbors(node) for node in graph.nodes()}
    order = {node: i for i, node in enumerate(graph.nodes())}
    candidates = list(graph.nodes())
    yield from _expand(adjacency, order, k, min_size, [], candidates, [])


def _addable(
    adjacency: dict[Node, frozenset[Node]],
    members: list[Node],
    candidate: Node,
    k: int,
) -> bool:
    """Whether ``members + [candidate]`` is still a k-plex."""
    new_size = len(members) + 1
    adjacent_to = adjacency[candidate]
    inside = 0
    for node in members:
        if node in adjacent_to:
            inside += 1
    if inside < new_size - k:
        return False
    # Existing members must stay within their deficiency budget: a
    # member not adjacent to the candidate keeps its degree while the
    # size grows.
    for node in members:
        if node in adjacent_to:
            continue
        degree_inside = sum(1 for other in members if other in adjacency[node])
        if degree_inside < new_size - k:
            return False
    return True


def _expand(
    adjacency: dict[Node, frozenset[Node]],
    order: dict[Node, int],
    k: int,
    min_size: int,
    members: list[Node],
    candidates: list[Node],
    excluded: list[Node],
) -> Iterator[frozenset[Node]]:
    """Set-enumeration recursion with exclusion-based dedup."""
    if not candidates:
        if not excluded and len(members) >= min_size:
            yield frozenset(members)
        return
    if len(members) + len(candidates) < min_size:
        return
    remaining = list(candidates)
    blocked = list(excluded)
    for candidate in candidates:
        remaining.remove(candidate)
        members.append(candidate)
        next_candidates = [
            node for node in remaining if _addable(adjacency, members, node, k)
        ]
        next_excluded = [
            node for node in blocked if _addable(adjacency, members, node, k)
        ]
        yield from _expand(
            adjacency, order, k, min_size, members, next_candidates, next_excluded
        )
        members.pop()
        blocked.append(candidate)


def kplex_deficiencies(
    graph: Graph, nodes: frozenset[Node]
) -> dict[Node, int]:
    """Return, per member, how many co-members it is *not* adjacent to.

    The maximum deficiency over members is the smallest ``k`` for which
    ``nodes`` is a k-plex (1 + that for non-cliques...); useful when
    characterising how "clique-like" a community is.
    """
    members = set(nodes)
    out: dict[Node, int] = {}
    for node in members:
        inside = sum(1 for nb in graph.neighbors(node) if nb in members)
        out[node] = len(members) - 1 - inside
    return out


def minimum_k(graph: Graph, nodes: frozenset[Node]) -> int:
    """Return the smallest ``k`` such that ``nodes`` is a k-plex.

    A clique returns 1; the empty set returns 1 by convention.
    """
    if not nodes:
        return 1
    worst = max(kplex_deficiencies(graph, nodes).values())
    return max(1, worst + 1)

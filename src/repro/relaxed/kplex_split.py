"""The paper's decomposition approach, extended to k-plexes (Section 8).

Section 8's first future-work item is "extending our approach to
relaxed definitions of communities".  This module carries the paper's
two core mechanisms over to maximal k-plex enumeration:

* **Lemma 1 generalises to any hereditary property.**  Its proof uses
  only maximality and closure under subsets; k-plexes are hereditary,
  so for any bipartition ``(N1, N2)``: the maximal k-plexes of ``G``
  are those touching ``N1``, plus the maximal k-plexes of ``G[N2]``
  filtered by containment.
* **The first-level recursion** (peel low-degree nodes, recurse on the
  high-degree core) therefore applies verbatim, with anchored
  enumeration playing the role of ``BLOCK-ANALYSIS``.

What does *not* carry over is the second level: a k-plex containing a
node ``v`` may include up to ``k - 1`` non-neighbours of ``v`` per
member, so blocks closed under 1-hop neighbourhoods cannot contain it
— the reason the paper calls this an extension rather than a corollary.
Anchored sweeps therefore run over the whole residual graph (the
degree-split form, as in :mod:`repro.baselines.degree_split`), which
preserves the recursion's benefit — shrinking residual cores — without
the memory-bounded blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.filtering import filter_contained
from repro.graph.adjacency import Graph, Node
from repro.graph.views import induced_subgraph
from repro.relaxed.kplex import _addable


@dataclass(frozen=True)
class KplexSplitResult:
    """Output of the degree-split k-plex enumeration."""

    plexes: list[frozenset[Node]]
    rounds: int

    @property
    def count(self) -> int:
        """Number of maximal k-plexes found."""
        return len(self.plexes)


def degree_split_kplexes(
    graph: Graph, k: int, threshold: int, min_size: int = 1
) -> KplexSplitResult:
    """Enumerate all maximal k-plexes via the paper's recursion.

    Each round anchors enumerations at the nodes of degree below
    ``threshold`` (finding every maximal k-plex touching them exactly
    once, via the exclusion mechanism), then recurses on the induced
    high-degree core; rounds merge bottom-up through the hereditary
    Lemma 1 filter.

    ``min_size`` is applied to the *final* merged output (a maximal
    k-plex smaller than ``min_size`` is simply not reported).

    Raises
    ------
    ValueError
        If ``k < 1``, ``threshold < 1`` or ``min_size < 1``.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if threshold < 1:
        raise ValueError("threshold must be at least 1")
    if min_size < 1:
        raise ValueError("min_size must be at least 1")
    level_plexes: list[list[frozenset[Node]]] = []
    current = graph
    rounds = 0
    while current.num_nodes > 0:
        low = [n for n in current.nodes() if current.degree(n) < threshold]
        high = [n for n in current.nodes() if current.degree(n) >= threshold]
        if not low:
            # Residual core: finish with the direct enumerator.
            from repro.relaxed.kplex import maximal_kplexes

            level_plexes.append(list(maximal_kplexes(current, k)))
            rounds += 1
            break
        level_plexes.append(list(_plexes_touching(current, low, k)))
        rounds += 1
        if not high:
            break
        current = induced_subgraph(current, high)

    merged: list[frozenset[Node]] = []
    for plexes in reversed(level_plexes):
        merged = list(plexes) + filter_contained(merged, plexes)
    kept = [plex for plex in merged if len(plex) >= min_size]
    return KplexSplitResult(plexes=kept, rounds=rounds)


def _plexes_touching(
    graph: Graph, low: list[Node], k: int
) -> Iterator[frozenset[Node]]:
    """All maximal k-plexes of ``graph`` containing a node of ``low``.

    One anchored set-enumeration per low node; processed anchors move
    to the exclusion side so each k-plex is emitted exactly once at its
    earliest anchor (the anti-monotone addability of k-plex extension
    makes the exclusion pruning safe, as in
    :mod:`repro.relaxed.kplex`).
    """
    adjacency = {node: graph.neighbors(node) for node in graph.nodes()}
    candidates = [n for n in graph.nodes()]
    excluded: list[Node] = []
    for anchor in low:
        candidates = [n for n in candidates if n != anchor]
        members = [anchor]
        anchored_candidates = [
            n for n in candidates if _addable(adjacency, members, n, k)
        ]
        anchored_excluded = [
            n for n in excluded if _addable(adjacency, members, n, k)
        ]
        yield from _expand_anchored(
            adjacency, k, members, anchored_candidates, anchored_excluded
        )
        excluded.append(anchor)


def _expand_anchored(
    adjacency: dict[Node, frozenset[Node]],
    k: int,
    members: list[Node],
    candidates: list[Node],
    excluded: list[Node],
) -> Iterator[frozenset[Node]]:
    """Set-enumeration recursion (the kplex module's, anchored form)."""
    if not candidates:
        if not excluded:
            yield frozenset(members)
        return
    remaining = list(candidates)
    blocked = list(excluded)
    for candidate in candidates:
        remaining.remove(candidate)
        members.append(candidate)
        next_candidates = [
            node for node in remaining if _addable(adjacency, members, node, k)
        ]
        next_excluded = [
            node for node in blocked if _addable(adjacency, members, node, k)
        ]
        yield from _expand_anchored(
            adjacency, k, members, next_candidates, next_excluded
        )
        members.pop()
        blocked.append(candidate)

"""k-clique communities (clique percolation) on top of the MCE output.

Section 8 names "k-cliques" among the relaxed community definitions the
approach should extend to; the classical realisation is the Palla et
al. clique-percolation method: two k-cliques are adjacent when they
share ``k - 1`` nodes, and a **k-clique community** is the union of a
connected component of that adjacency relation.

The standard efficient implementation works directly on *maximal*
cliques — precisely what :func:`repro.core.driver.find_max_cliques`
produces — because two maximal cliques of sizes ``>= k`` overlap in
``>= k - 1`` nodes iff their k-clique sets percolate into each other.
This module therefore composes with any clique source: pass the clique
list from the two-level decomposition and get overlapping communities
back.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.graph.adjacency import Node


class _UnionFind:
    """Path-compressed union-find over dense integer ids."""

    def __init__(self, size: int) -> None:
        self._parent = list(range(size))

    def find(self, item: int) -> int:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a


def k_clique_communities(
    cliques: Iterable[frozenset[Node]], k: int
) -> list[frozenset[Node]]:
    """Merge maximal cliques into k-clique communities.

    Parameters
    ----------
    cliques:
        Maximal cliques of the network (any complete MCE output).
    k:
        Percolation parameter; communities are unions of maximal
        cliques of size at least ``k`` chained by overlaps of at least
        ``k - 1`` nodes.

    Returns
    -------
    list[frozenset]
        The communities, sorted largest-first (ties broken by member
        labels for determinism).  Communities may overlap, which is the
        point of the method.

    Raises
    ------
    ValueError
        If ``k < 2`` (a 1-clique community would be a connected
        component, not a community).
    """
    if k < 2:
        raise ValueError("k must be at least 2")
    eligible: list[frozenset[Node]] = [c for c in cliques if len(c) >= k]
    if not eligible:
        return []
    components = _UnionFind(len(eligible))
    # Index cliques by each (k-1)-subset witness node to avoid the full
    # quadratic pair scan where possible; the pairwise overlap test is
    # still needed, but only within buckets sharing a node.
    by_node: dict[Node, list[int]] = {}
    for index, clique in enumerate(eligible):
        for node in clique:
            by_node.setdefault(node, []).append(index)
    for bucket in by_node.values():
        for position, first in enumerate(bucket):
            for second in bucket[position + 1 :]:
                if components.find(first) == components.find(second):
                    continue
                if len(eligible[first] & eligible[second]) >= k - 1:
                    components.union(first, second)
    merged: dict[int, set[Node]] = {}
    for index, clique in enumerate(eligible):
        merged.setdefault(components.find(index), set()).update(clique)
    communities = [frozenset(nodes) for nodes in merged.values()]
    communities.sort(key=lambda c: (-len(c), sorted(map(str, c))))
    return communities


def community_membership(
    communities: Sequence[frozenset[Node]],
) -> dict[Node, list[int]]:
    """Return, per node, the indices of the communities containing it.

    Nodes in no community (too loosely connected for the chosen ``k``)
    are absent from the mapping.  Overlapping membership — one node in
    several communities — is preserved, which partition-based
    clustering cannot express (Section 7 of the paper).
    """
    membership: dict[Node, list[int]] = {}
    for index, community in enumerate(communities):
        for node in community:
            membership.setdefault(node, []).append(index)
    return membership

"""Durable spill-to-disk runs: segment files, manifests, and the run log.

Long enumerations used to hold every clique in parent memory and die
with the process.  This package makes runs *durable*: as blocks finish,
their :class:`~repro.core.block_analysis.BlockReport` cliques are
appended to CRC-checked, length-prefixed segment files, and the parent
records completed block ids (plus the run's config fingerprint) in an
atomically-updated JSON manifest.  A crashed or killed run restarted
with ``find_max_cliques(spill_dir=..., resume=True)`` validates the
manifest, skips every finished block, replays the spilled reports into
the final clique set, and truncates a torn final record left by a crash
mid-write.  See ``docs/durability.md`` for the formats and semantics.
"""

from repro.runs.manifest import RunManifest, fingerprint_run, load_manifest
from repro.runs.runlog import RunLog
from repro.runs.segments import (
    SEGMENT_MAGIC,
    SegmentWriter,
    decode_block_record,
    encode_block_record,
    read_segment,
    recover_segment,
)

__all__ = [
    "RunLog",
    "RunManifest",
    "SEGMENT_MAGIC",
    "SegmentWriter",
    "decode_block_record",
    "encode_block_record",
    "fingerprint_run",
    "load_manifest",
    "read_segment",
    "recover_segment",
]

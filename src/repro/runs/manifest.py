"""The run manifest: what a durable run is, and how far it got.

One JSON file (``manifest.json``) per spill directory records

* the run's **fingerprint** — a digest of everything that determines
  the block decomposition (graph content hash, block size ``m``,
  ``min_adjacency``, and the decomposition mode, barrier or pipeline).
  Two runs with equal fingerprints produce identical block ids, which
  is what makes "skip block 3 of level 1" meaningful across a restart;
* the **completed** block ids per recursion level;
* the **segment** file names the run has opened (informational — resume
  globs the directory, so a segment orphaned by a crash between file
  creation and manifest save is still recovered);
* a coarse **status** (``running`` / ``complete``).

Every update is atomic: the new manifest is written to a temp file,
fsynced, then ``os.replace``\\ d over the old one, so a reader never sees
a half-written manifest no matter where the process dies.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ResumeMismatchError
from repro.graph.adjacency import Graph

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1

# Fingerprint keys that must match exactly for a resume to be safe:
# they determine the block decomposition, hence the meaning of every
# recorded (level, block_id).  Keys outside this set (e.g. the combo
# name) are informational — every combo enumerates the same cliques.
STRICT_FINGERPRINT_KEYS: tuple[str, ...] = (
    "graph_sha256",
    "num_nodes",
    "num_edges",
    "m",
    "min_adjacency",
    "mode",
)


def graph_digest(graph: Graph) -> str:
    """Content hash of a graph: order-independent over nodes and edges."""
    digest = hashlib.sha256()
    for node in sorted((repr(node) for node in graph.nodes())):
        digest.update(node.encode())
        digest.update(b"\x00")
    edges = sorted(
        tuple(sorted((repr(u), repr(v)))) for u, v in graph.edges()
    )
    for u, v in edges:
        digest.update(u.encode())
        digest.update(b"\x01")
        digest.update(v.encode())
        digest.update(b"\x02")
    return digest.hexdigest()


def fingerprint_run(
    graph: Graph,
    m: int,
    min_adjacency: int,
    mode: str,
    combo: str | None = None,
) -> dict[str, object]:
    """The config fingerprint stored in (and validated against) a manifest."""
    return {
        "graph_sha256": graph_digest(graph),
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "m": int(m),
        "min_adjacency": int(min_adjacency),
        "mode": mode,
        "combo": combo,
    }


@dataclass
class RunManifest:
    """In-memory form of ``manifest.json``."""

    fingerprint: dict[str, object]
    completed: dict[int, set[int]] = field(default_factory=dict)
    segments: list[str] = field(default_factory=list)
    status: str = "running"
    version: int = MANIFEST_VERSION

    def mark_completed(self, level: int, block_id: int) -> None:
        """Record one finished block."""
        self.completed.setdefault(int(level), set()).add(int(block_id))

    def is_completed(self, level: int, block_id: int) -> bool:
        return block_id in self.completed.get(level, ())

    def num_completed(self) -> int:
        return sum(len(ids) for ids in self.completed.values())

    def to_json(self) -> dict[str, object]:
        return {
            "version": self.version,
            "status": self.status,
            "fingerprint": self.fingerprint,
            "completed": {
                str(level): sorted(ids)
                for level, ids in sorted(self.completed.items())
            },
            "segments": list(self.segments),
        }

    @classmethod
    def from_json(cls, payload: dict[str, object]) -> "RunManifest":
        try:
            return cls(
                fingerprint=dict(payload["fingerprint"]),  # type: ignore[arg-type]
                completed={
                    int(level): set(ids)
                    for level, ids in payload.get("completed", {}).items()  # type: ignore[union-attr]
                },
                segments=list(payload.get("segments", [])),  # type: ignore[arg-type]
                status=str(payload.get("status", "running")),
                version=int(payload.get("version", MANIFEST_VERSION)),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ResumeMismatchError(
                f"manifest payload is malformed: {type(exc).__name__}: {exc}"
            ) from exc

    def save(self, directory: str | Path) -> None:
        """Atomically (re)write ``manifest.json`` in ``directory``."""
        directory = Path(directory)
        target = directory / MANIFEST_NAME
        fd, tmp_name = tempfile.mkstemp(
            prefix=MANIFEST_NAME + ".", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(self.to_json(), fh, indent=2, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def validate_fingerprint(self, expected: dict[str, object]) -> None:
        """Refuse a resume whose config would change the decomposition.

        Raises
        ------
        ResumeMismatchError
            Naming every strict fingerprint key that differs.
        """
        mismatched = [
            key
            for key in STRICT_FINGERPRINT_KEYS
            if self.fingerprint.get(key) != expected.get(key)
        ]
        if mismatched:
            detail = ", ".join(
                f"{key}: manifest={self.fingerprint.get(key)!r} "
                f"run={expected.get(key)!r}"
                for key in mismatched
            )
            raise ResumeMismatchError(
                f"resume fingerprint mismatch ({detail}); the spill "
                "directory belongs to a different graph or configuration"
            )


def manifest_path(directory: str | Path) -> Path:
    return Path(directory) / MANIFEST_NAME


def load_manifest(directory: str | Path) -> RunManifest:
    """Load ``manifest.json`` from a spill directory.

    Raises
    ------
    ResumeMismatchError
        When the file is missing or not valid manifest JSON.
    """
    path = manifest_path(directory)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError as exc:
        raise ResumeMismatchError(
            f"no manifest at {path}: nothing to resume"
        ) from exc
    except (OSError, json.JSONDecodeError) as exc:
        raise ResumeMismatchError(
            f"manifest at {path} is unreadable: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise ResumeMismatchError(f"manifest at {path} is not a JSON object")
    return RunManifest.from_json(payload)

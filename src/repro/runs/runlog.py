"""The run log: one object coordinating spill, skip, and replay.

The driver owns a :class:`RunLog` when ``find_max_cliques`` is called
with ``spill_dir=...`` and hands it to whichever execution path runs the
blocks.  The contract every path follows:

* before analysing block ``b`` of level ``l``, ask
  :meth:`RunLog.is_completed`; if true, take the stored report from
  :meth:`RunLog.replay_report` instead of analysing;
* after a block (or a split block's merged fragments — exactly once per
  block either way) finishes, call :meth:`RunLog.record`, which appends
  the report to the segment file (flush + fsync) and *then* marks the
  block completed in the atomically-rewritten manifest.

That ordering is the whole durability argument: a block is marked
completed only after its cliques are on disk, so every crash leaves the
directory in one of three states — record absent (block re-analysed on
resume), record torn at the tail (truncated, block re-analysed), or
record whole (block skipped and replayed).  Resume derives the
completed set from the *segments*, not the manifest, so even a manifest
lagging one update behind its segment can never cause a lost or
duplicated block.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.core.block_analysis import BlockReport
from repro.errors import CorruptSegmentError, ResumeMismatchError
from repro.mce.instrumentation import SegmentFlush
from repro.runs.manifest import (
    RunManifest,
    load_manifest,
    manifest_path,
)
from repro.runs.segments import (
    SegmentWriter,
    decode_block_record,
    encode_block_record,
    maybe_inject_spill_fault,
    recover_segment,
)

SEGMENT_SUFFIX = ".seg"


class RunLog:
    """Durable state of one spill-to-disk enumeration.

    Parameters
    ----------
    spill_dir:
        Directory holding the manifest and segment files; created on a
        fresh run.
    fingerprint:
        The run's config fingerprint
        (:func:`repro.runs.manifest.fingerprint_run`).  A fresh run
        stores it; a resume validates the manifest against it.
    resume:
        ``False`` (fresh) requires the directory to contain no manifest;
        ``True`` requires one, validates it, and recovers every segment
        in the directory — truncating a torn final record — before any
        block is dispatched.

    Raises
    ------
    ResumeMismatchError
        Fresh run into a directory that already holds a manifest, resume
        without one, or a fingerprint mismatch.
    CorruptSegmentError
        Mid-file corruption in a recovered segment.
    """

    def __init__(
        self,
        spill_dir: str | Path,
        fingerprint: dict[str, object],
        resume: bool = False,
    ) -> None:
        self.directory = Path(spill_dir)
        self.resumed = resume
        self._recovered: dict[tuple[int, int], BlockReport] = {}
        self.flushes: list[SegmentFlush] = []
        self._closed = False

        if resume:
            self.manifest = load_manifest(self.directory)
            self.manifest.validate_fingerprint(fingerprint)
            self._recover_segments()
            # The segments are the source of truth; rebuild the
            # completed map from what was actually recovered so a
            # truncated record can never leave a phantom "completed"
            # entry behind.
            self.manifest.completed = {}
            for level, block_id in self._recovered:
                self.manifest.mark_completed(level, block_id)
            self.manifest.status = "running"
        else:
            self.directory.mkdir(parents=True, exist_ok=True)
            if manifest_path(self.directory).exists():
                raise ResumeMismatchError(
                    f"{self.directory} already contains a run manifest; "
                    "pass resume=True to continue it or choose an empty "
                    "spill directory"
                )
            self.manifest = RunManifest(fingerprint=dict(fingerprint))

        self._segment = self._open_segment()
        self.manifest.save(self.directory)

    # -- resume side -------------------------------------------------------
    def _recover_segments(self) -> None:
        """Replay every segment in the directory, truncating torn tails."""
        for path in sorted(self.directory.glob(f"*{SEGMENT_SUFFIX}")):
            payloads, valid_bytes = recover_segment(path)
            if valid_bytes < path.stat().st_size:
                with open(path, "r+b") as fh:
                    fh.truncate(valid_bytes)
            for payload in payloads:
                level, block_id, report = decode_block_record(payload)
                if (level, block_id) in self._recovered:
                    raise CorruptSegmentError(
                        f"block {level}.{block_id} recorded twice across "
                        f"segments in {self.directory}",
                        path=str(path),
                    )
                report.extra["replayed"] = 1.0
                self._recovered[(level, block_id)] = report

    def _open_segment(self) -> SegmentWriter:
        """Open a fresh segment file with the first unused index."""
        index = 0
        while True:
            candidate = self.directory / f"segment-{index:04d}{SEGMENT_SUFFIX}"
            if not candidate.exists():
                break
            index += 1
        self.manifest.segments.append(candidate.name)
        return SegmentWriter(candidate)

    # -- query side --------------------------------------------------------
    @property
    def segment_path(self) -> str:
        """Path of the segment this run is appending to (for errors)."""
        return str(self._segment.path)

    def is_completed(self, level: int, block_id: int) -> bool:
        """True when the block's report was recovered from a prior run."""
        return (level, block_id) in self._recovered

    def replay_report(self, level: int, block_id: int) -> BlockReport:
        """The stored report of a completed block (byte-identical cliques)."""
        return self._recovered[(level, block_id)]

    def completed_blocks(self, level: int) -> set[int]:
        """Ids of the given level's blocks recovered from prior segments."""
        return {
            block_id
            for (record_level, block_id) in self._recovered
            if record_level == level
        }

    @property
    def num_recovered(self) -> int:
        return len(self._recovered)

    # -- record side -------------------------------------------------------
    def record(self, level: int, block_id: int, report: BlockReport) -> SegmentFlush:
        """Durably persist one finished block, then mark it completed.

        Segment append (flush + fsync) strictly precedes the manifest
        update; the fault hooks bracket both so the crash tests can kill
        the parent on either side of the durability boundary.
        """
        start = time.perf_counter()
        maybe_inject_spill_fault("pre", level, block_id)
        payload = encode_block_record(level, block_id, report)
        nbytes = self._segment.append(payload, fault_key=(level, block_id))
        self.manifest.mark_completed(level, block_id)
        self.manifest.save(self.directory)
        maybe_inject_spill_fault("post", level, block_id)
        flush = SegmentFlush(
            level=level,
            block_id=block_id,
            segment_bytes=nbytes,
            seconds=time.perf_counter() - start,
        )
        self.flushes.append(flush)
        return flush

    # -- lifecycle ---------------------------------------------------------
    def finalize(self) -> None:
        """Mark the run complete (called only after a clean finish)."""
        self.manifest.status = "complete"
        self.manifest.save(self.directory)
        self.close()

    def close(self) -> None:
        """Close the segment file; the manifest keeps its last status."""
        if self._closed:
            return
        self._closed = True
        self._segment.close()

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

"""Append-only spill segments: CRC-checked, length-prefixed records.

A segment file is the durable unit workers' results are spilled into as
blocks finish.  The format is deliberately dumb so a half-written file
is always diagnosable:

* the file starts with an 8-byte magic (``SEGMENT_MAGIC``) naming the
  format version;
* each record is ``<u32 length> <u32 crc32-of-payload> <payload>``
  (little-endian header), appended with ``flush`` + ``fsync`` so a
  record either survives a crash whole or is a recognisable torn tail.

Two readers with different trust models:

* :func:`read_segment` is *strict* — any invalid byte, including a torn
  tail, raises :class:`~repro.errors.CorruptSegmentError`.  Integrity
  tests use it.
* :func:`recover_segment` is what resume uses — it accepts a torn
  *final* record (the signature of a crash mid-append) and reports how
  many bytes are valid so the caller can truncate, but still raises on
  corruption *before* the tail (a CRC mismatch followed by more intact
  records can only be bit rot, never a torn write), because replaying a
  questionable record could return wrong cliques.

The payload is opaque bytes at this layer; :func:`encode_block_record`
/ :func:`decode_block_record` define the payload shapes the run log
uses.  Since the packed result plane there are two:

* **packed block records** (written for reports whose ``cliques`` is a
  :class:`~repro.core.cliquestore.CliqueStore`): a ``RPCK`` magic, a
  ``u16`` codec version, a fixed-size header, then the raw
  offsets/vertices/levels buffers followed by the (small) pickled label
  table and report metadata.  Decoding slices the arrays straight out
  of the payload with ``np.frombuffer`` — a resume replay never
  re-materializes a frozenset.  Unknown codec versions are refused with
  :class:`~repro.errors.CorruptSegmentError` (same refusal discipline
  as the tuned-tree envelope's ``FormatError``).
* **legacy pickled records** — a pickled ``(level, block_id,
  BlockReport)`` triple.  Still written for frozenset-plane reports and
  still readable, so spill directories from earlier versions resume
  unchanged.

For the fault-injection tests the writer honours the same
``REPRO_FAULT_INJECT`` environment hook the executors use (see
:mod:`repro.distributed.executor`), extended with parent-side spill
targets: ``kill:spill-pre:<level>.<block>`` fires before a record is
written, ``kill:spill-mid:<level>.<block>`` after only half the payload
is on disk (a genuine torn record), ``kill:spill-post:<level>.<block>``
after the manifest update.  Unlike the worker-side targets these fire
in the parent process — that is the point: they simulate the *parent*
dying around the flush boundary.
"""

from __future__ import annotations

import os
import pickle
import signal
import struct
import zlib
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.core.block_analysis import BlockReport
from repro.core.cliquestore import CliqueStore
from repro.errors import CorruptSegmentError

SEGMENT_MAGIC = b"RPRSEG01"
_HEADER = struct.Struct("<II")

# Packed block-record codec (the zero-copy result plane on disk).
PACKED_RECORD_MAGIC = b"RPCK"
PACKED_RECORD_VERSION = 1
_PACKED_VERSION_STRUCT = struct.Struct("<H")
# level, block_id, num_cliques, num_vertices, has_levels,
# labels_bytes, meta_bytes
_PACKED_HEADER = struct.Struct("<qqQQBQQ")

# Shared with repro.distributed.executor (kept in sync by an import
# there); defined here so the runs package never imports the executor.
FAULT_INJECT_ENV = "REPRO_FAULT_INJECT"


def spill_fault_requested(phase: str, level: int, block_id: int) -> str | None:
    """Return the fault kind if the env hook targets this spill point.

    ``phase`` is ``"pre"``, ``"mid"`` or ``"post"``; the matching spec is
    ``<kind>:spill-<phase>:<level>.<block_id>`` with ``kind`` one of
    ``kill`` / ``raise``.  Returns ``None`` when the hook is unset or
    aimed elsewhere.
    """
    spec = os.environ.get(FAULT_INJECT_ENV)
    if not spec:
        return None
    kind, _, target = spec.partition(":")
    if target != f"spill-{phase}:{level}.{block_id}":
        return None
    return kind


def maybe_inject_spill_fault(phase: str, level: int, block_id: int) -> None:
    """Test hook: kill or raise in the *parent* at a spill fault point."""
    kind = spill_fault_requested(phase, level, block_id)
    if kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if kind == "raise":
        raise RuntimeError(
            f"injected failure at spill-{phase} of block {level}.{block_id}"
        )


def encode_record(payload: bytes) -> bytes:
    """The on-disk bytes of one record: header + payload."""
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_record(data: bytes, offset: int, path: str | None = None) -> tuple[bytes, int]:
    """Decode the record starting at ``offset``; return (payload, next offset).

    Raises
    ------
    CorruptSegmentError
        When the header is cut short, the payload extends past the
        buffer, or the CRC does not match.
    """
    if offset + _HEADER.size > len(data):
        raise CorruptSegmentError(
            f"record header truncated at byte {offset}", path=path, offset=offset
        )
    length, crc = _HEADER.unpack_from(data, offset)
    start = offset + _HEADER.size
    end = start + length
    if end > len(data):
        raise CorruptSegmentError(
            f"record payload truncated at byte {offset} "
            f"(claims {length} bytes, {len(data) - start} remain)",
            path=path,
            offset=offset,
        )
    payload = data[start:end]
    if zlib.crc32(payload) != crc:
        raise CorruptSegmentError(
            f"record CRC mismatch at byte {offset}", path=path, offset=offset
        )
    return payload, end


def encode_block_record(level: int, block_id: int, report: BlockReport) -> bytes:
    """Serialize one finished block's report as a record payload.

    Packed-plane reports take the ``RPCK`` codec — raw array buffers,
    no per-clique pickling; legacy frozenset reports keep the pickled
    triple so old and new spill directories interoperate both ways.
    """
    if isinstance(report.cliques, CliqueStore):
        return _encode_packed_record(level, block_id, report)
    return pickle.dumps(
        (int(level), int(block_id), report), protocol=pickle.HIGHEST_PROTOCOL
    )


def _encode_packed_record(
    level: int, block_id: int, report: BlockReport
) -> bytes:
    """The ``RPCK`` v1 wire form of a packed block record."""
    store = report.cliques
    offsets = np.ascontiguousarray(store.offsets, dtype=np.uint64)
    vertices = np.ascontiguousarray(store.vertices, dtype=np.uint32)
    has_levels = store.levels is not None
    levels_bytes = (
        np.ascontiguousarray(store.levels, dtype=np.int32).tobytes()
        if has_levels
        else b""
    )
    labels_bytes = pickle.dumps(
        list(store.labels) if store.labels is not None else None,
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    meta_bytes = pickle.dumps(
        {
            "combo": report.combo,
            "features": report.features,
            "seconds": report.seconds,
            "kernel_nodes": report.kernel_nodes,
            "extra": report.extra,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    header = _PACKED_HEADER.pack(
        int(level),
        int(block_id),
        store.num_cliques,
        len(vertices),
        1 if has_levels else 0,
        len(labels_bytes),
        len(meta_bytes),
    )
    return b"".join(
        (
            PACKED_RECORD_MAGIC,
            _PACKED_VERSION_STRUCT.pack(PACKED_RECORD_VERSION),
            header,
            offsets.tobytes(),
            vertices.tobytes(),
            levels_bytes,
            labels_bytes,
            meta_bytes,
        )
    )


def _decode_packed_record(payload: bytes) -> tuple[int, int, BlockReport]:
    """Inverse of :func:`_encode_packed_record`; rigorously validated.

    Every length is checked against the buffer before slicing and the
    payload must be consumed exactly, so a foreign blob that happens to
    start with the magic is refused rather than misread.  Unknown codec
    versions are refused up front — forward compatibility by refusal,
    the same discipline as the tuned-tree envelope.
    """
    cursor = len(PACKED_RECORD_MAGIC)
    if len(payload) < cursor + _PACKED_VERSION_STRUCT.size + _PACKED_HEADER.size:
        raise CorruptSegmentError("packed block record truncated")
    (version,) = _PACKED_VERSION_STRUCT.unpack_from(payload, cursor)
    if version != PACKED_RECORD_VERSION:
        raise CorruptSegmentError(
            f"unknown packed block record version {version} "
            f"(this build reads version {PACKED_RECORD_VERSION})"
        )
    cursor += _PACKED_VERSION_STRUCT.size
    (
        level,
        block_id,
        num_cliques,
        num_vertices,
        has_levels,
        labels_len,
        meta_len,
    ) = _PACKED_HEADER.unpack_from(payload, cursor)
    cursor += _PACKED_HEADER.size
    offsets_len = (num_cliques + 1) * 8
    vertices_len = num_vertices * 4
    levels_len = num_cliques * 4 if has_levels else 0
    expected = cursor + offsets_len + vertices_len + levels_len + labels_len + meta_len
    if has_levels not in (0, 1) or expected != len(payload):
        raise CorruptSegmentError(
            f"packed block record length mismatch "
            f"(expects {expected} bytes, payload has {len(payload)})"
        )
    offsets = np.frombuffer(payload, dtype=np.uint64, count=num_cliques + 1, offset=cursor)
    cursor += offsets_len
    vertices = np.frombuffer(payload, dtype=np.uint32, count=num_vertices, offset=cursor)
    cursor += vertices_len
    levels = None
    if has_levels:
        levels = np.frombuffer(payload, dtype=np.int32, count=num_cliques, offset=cursor)
        cursor += levels_len
    try:
        labels = pickle.loads(payload[cursor : cursor + labels_len])
        meta = pickle.loads(payload[cursor + labels_len :])
    except Exception as exc:
        raise CorruptSegmentError(
            f"packed block record tail is not decodable: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    if not isinstance(meta, dict):
        raise CorruptSegmentError("packed block record meta is not a dict")
    try:
        store = CliqueStore(offsets, vertices, levels, labels)
        report = BlockReport(cliques=store, **meta)
    except (TypeError, ValueError) as exc:
        raise CorruptSegmentError(
            f"packed block record is inconsistent: {exc}"
        ) from exc
    return int(level), int(block_id), report


def decode_block_record(payload: bytes) -> tuple[int, int, BlockReport]:
    """Inverse of :func:`encode_block_record` (both codecs).

    Dispatches on the ``RPCK`` magic; anything else is tried as a
    legacy pickled triple, which keeps pre-packed spill directories
    replayable.

    Raises
    ------
    CorruptSegmentError
        When the payload is neither a valid packed record (including
        the unknown-version refusal) nor the expected pickled triple.
        The CRC makes this unreachable for disk errors; it guards
        against a foreign file that happens to carry a valid CRC.
    """
    if payload[: len(PACKED_RECORD_MAGIC)] == PACKED_RECORD_MAGIC:
        return _decode_packed_record(payload)
    try:
        level, block_id, report = pickle.loads(payload)
    except Exception as exc:
        raise CorruptSegmentError(
            f"record payload is not a block record: {type(exc).__name__}: {exc}"
        ) from exc
    if not isinstance(level, int) or not isinstance(block_id, int) or not isinstance(
        report, BlockReport
    ):
        raise CorruptSegmentError("record payload is not a block record")
    return level, block_id, report


class SegmentWriter:
    """Append records to one segment file with per-record durability.

    Opens (or creates, writing the magic) the file once; every
    :meth:`append` flushes and ``fsync``\\ s, so each record is either
    fully on disk or a recognisable torn tail.  ``fault_key`` carries
    the ``(level, block_id)`` identity of the record for the
    fault-injection hook — a targeted ``kill:spill-mid`` kills the
    process after deliberately writing only half the payload.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        exists = self.path.exists() and self.path.stat().st_size > 0
        self._fh = open(self.path, "ab")
        if not exists:
            self._fh.write(SEGMENT_MAGIC)
            self._sync()

    def append(
        self, payload: bytes, fault_key: tuple[int, int] | None = None
    ) -> int:
        """Durably append one record; return the bytes written."""
        record = encode_record(payload)
        if fault_key is not None and (
            spill_fault_requested("mid", *fault_key) == "kill"
        ):
            # Simulate the parent dying mid-write: half the record
            # reaches the disk, then the process is gone.
            self._fh.write(record[: len(record) // 2])
            self._sync()
            os.kill(os.getpid(), signal.SIGKILL)
        self._fh.write(record)
        self._sync()
        return len(record)

    def _sync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "SegmentWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _check_magic(data: bytes, path: str) -> None:
    if data[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
        raise CorruptSegmentError(
            f"{path} is not a spill segment (bad magic)", path=path, offset=0
        )


def read_segment(path: str | Path) -> Iterator[bytes]:
    """Yield every record payload of a segment, strictly.

    Raises
    ------
    CorruptSegmentError
        On a bad magic, a torn tail, or any CRC/length inconsistency —
        this reader trusts nothing and is what the integrity tests use.
    """
    path = str(path)
    data = Path(path).read_bytes()
    if len(data) < len(SEGMENT_MAGIC):
        raise CorruptSegmentError(
            f"{path} is shorter than the segment magic", path=path, offset=0
        )
    _check_magic(data, path)
    offset = len(SEGMENT_MAGIC)
    while offset < len(data):
        payload, offset = decode_record(data, offset, path=path)
        yield payload


def recover_segment(path: str | Path) -> tuple[list[bytes], int]:
    """Read a segment for resume; tolerate a torn *final* record.

    Returns ``(payloads, valid_bytes)`` where ``valid_bytes`` is the
    length of the intact prefix — the caller truncates the file there
    before appending new records.  A record that is cut short by the end
    of the file, or whose CRC fails *with nothing after it*, is the torn
    tail a crash mid-append leaves and is dropped.  An invalid record
    with more data beyond its claimed extent cannot be a torn write —
    that is corruption, and the segment is refused.

    Raises
    ------
    CorruptSegmentError
        On a bad magic or mid-file corruption.
    """
    path = str(path)
    data = Path(path).read_bytes()
    if len(data) < len(SEGMENT_MAGIC):
        # An empty or magic-less file: a crash between creation and the
        # first sync.  Nothing to replay; truncate to zero and rewrite.
        return [], 0
    _check_magic(data, path)
    payloads: list[bytes] = []
    offset = len(SEGMENT_MAGIC)
    while offset < len(data):
        try:
            payload, next_offset = decode_record(data, offset, path=path)
        except CorruptSegmentError:
            if _extends_to_eof(data, offset):
                return payloads, offset
            raise
        payloads.append(payload)
        offset = next_offset
    return payloads, offset


def _extends_to_eof(data: bytes, offset: int) -> bool:
    """True when the invalid record at ``offset`` could be a torn tail.

    A torn tail is an incomplete header, a payload cut short by EOF, or
    a CRC-failing record that is the *last* thing in the file.  If valid
    bytes exist beyond the record's claimed extent, a torn write cannot
    explain them.
    """
    if offset + _HEADER.size > len(data):
        return True
    length, _ = _HEADER.unpack_from(data, offset)
    return offset + _HEADER.size + length >= len(data)

"""Shared fixtures: the paper's Figure 1 graph and a mixed corpus."""

from __future__ import annotations

import pytest

from repro.graph.adjacency import Graph
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    social_network,
    star_graph,
    stochastic_block_model,
    watts_strogatz,
)

# Edges of the paper's running example (Figure 1, reconstructed from the
# text: with m = 5 the hubs are D (degree 7), S (degree 5) and E (degree
# 5); G_h is the triangle D-S-E; C_f contains {A,J,H} and {H,F,D}).
FIGURE1_EDGES = [
    ("A", "J"),
    ("A", "H"),
    ("J", "H"),
    ("H", "F"),
    ("H", "D"),
    ("F", "D"),
    ("D", "S"),
    ("D", "E"),
    ("S", "E"),
    ("D", "P"),
    ("D", "R"),
    ("D", "Z"),
    ("S", "L"),
    ("S", "U"),
    ("S", "W"),
    ("E", "G"),
    ("E", "X"),
    ("E", "Y"),
]

# Every maximal clique of the Figure 1 graph.
FIGURE1_CLIQUES = {
    frozenset({"A", "J", "H"}),
    frozenset({"H", "F", "D"}),
    frozenset({"D", "S", "E"}),
    frozenset({"D", "P"}),
    frozenset({"D", "R"}),
    frozenset({"D", "Z"}),
    frozenset({"S", "L"}),
    frozenset({"S", "U"}),
    frozenset({"S", "W"}),
    frozenset({"E", "G"}),
    frozenset({"E", "X"}),
    frozenset({"E", "Y"}),
}


@pytest.fixture
def figure1() -> Graph:
    """The paper's Figure 1 network."""
    return Graph(edges=FIGURE1_EDGES)


@pytest.fixture
def triangle() -> Graph:
    """K3 on nodes 0, 1, 2."""
    return complete_graph(3)


@pytest.fixture
def path4() -> Graph:
    """The path 0-1-2-3."""
    return Graph(edges=[(0, 1), (1, 2), (2, 3)])


def nx_cliques(graph: Graph) -> set[frozenset]:
    """Ground-truth maximal cliques via networkx (test oracle)."""
    import networkx as nx

    mirror = nx.Graph()
    mirror.add_nodes_from(graph.nodes())
    mirror.add_edges_from(graph.edges())
    return {frozenset(clique) for clique in nx.find_cliques(mirror)}


def small_corpus() -> list[tuple[str, Graph]]:
    """A deterministic mix of graph shapes for cross-validation tests."""
    return [
        ("empty", Graph()),
        ("single", Graph(nodes=[0])),
        ("two-isolated", Graph(nodes=[0, 1])),
        ("one-edge", Graph(edges=[(0, 1)])),
        ("triangle", complete_graph(3)),
        ("k5", complete_graph(5)),
        ("k7", complete_graph(7)),
        ("c5", cycle_graph(5)),
        ("c8", cycle_graph(8)),
        ("star6", star_graph(6)),
        ("path", Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 4)])),
        ("two-triangles", Graph(edges=[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])),
        ("er-sparse", erdos_renyi(25, 0.1, seed=1)),
        ("er-medium", erdos_renyi(25, 0.3, seed=2)),
        ("er-dense", erdos_renyi(18, 0.6, seed=3)),
        ("ba", barabasi_albert(30, 3, seed=4)),
        ("ws", watts_strogatz(24, 4, 0.2, seed=5)),
        ("social", social_network(60, attachment=3, planted_cliques=(7,), seed=6)),
        ("sbm", stochastic_block_model([8, 8, 8], 0.7, 0.05, seed=7)),
    ]


CORPUS = small_corpus()
CORPUS_IDS = [name for name, _ in CORPUS]
CORPUS_GRAPHS = [graph for _, graph in CORPUS]

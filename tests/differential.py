"""Differential-testing harness for the block executors.

Every executor must produce the *same cliques* for the same blocks, for
every (algorithm × backend) combination the decision tree can choose —
the executors differ only in where the work runs and how it is shipped.
This module provides the canonical form used to compare outputs and the
helpers that run one configuration end to end; the actual matrix lives
in ``test_differential_executors.py``.
"""

from __future__ import annotations

import shutil
import tempfile
from typing import Callable, Iterable

from repro.core.block_analysis import BlockReport
from repro.core.blocks import Block, build_blocks
from repro.core.driver import find_max_cliques
from repro.core.feasibility import cut
from repro.distributed.executor import (
    ProcessExecutor,
    SerialExecutor,
    SharedMemoryExecutor,
)
from repro.graph.adjacency import Graph, Node
from repro.mce.registry import Combo

# Executor factories under differential test.  Two workers keep the
# process-based executors honest (real cross-process traffic) without
# oversubscribing CI machines.  ``shared-split`` forces anchor-level
# splitting on every splittable block (threshold 0, small chunks) so the
# subtask/steal/merge machinery is exercised even on the small test
# graphs whose blocks would never cross the adaptive threshold.
# ``serial-batch``/``shared-batch`` force multi-block bucket dispatch
# with an explicit cutoff large enough that every test-graph block
# batches, exercising the fused-kernel packing/demux path.
EXECUTOR_FACTORIES: dict[str, Callable[[], object]] = {
    "serial": SerialExecutor,
    "serial-batch": lambda: SerialExecutor(batch_blocks=True, batch_cutoff=64),
    "process": lambda: ProcessExecutor(max_workers=2),
    "shared": lambda: SharedMemoryExecutor(max_workers=2),
    "shared-split": lambda: SharedMemoryExecutor(
        max_workers=2, split=True, split_threshold=0.0, split_subtasks=3
    ),
    "shared-batch": lambda: SharedMemoryExecutor(
        max_workers=2, batch_blocks=True, batch_cutoff=64
    ),
}

# Full-driver configurations: every executor in barrier mode, plus the
# streaming decompose→dispatch pipeline (a driver mode riding on the
# shared-memory executor, not a separate executor class), with and
# without forced anchor-level splitting.  The ``-spill`` variants run
# the same configuration as a durable run (spill_dir into a throwaway
# directory), proving the record/replay plumbing changes nothing about
# the cliques produced.
DRIVER_MODES: tuple[str, ...] = (
    *sorted(EXECUTOR_FACTORIES),
    "shared-pipeline",
    "shared-pipeline-split",
    "shared-pipeline-batch",
    "shared-spill",
    "shared-pipeline-split-spill",
)

Canonical = tuple[tuple[str, ...], ...]


def canonical_cliques(cliques: Iterable[frozenset[Node]]) -> Canonical:
    """Order-independent canonical form of a clique collection.

    Each clique becomes a sorted tuple of ``repr`` strings (labels may be
    of mixed types), and the cliques themselves are sorted — two clique
    multisets are equal iff their canonical forms are equal.
    """
    return tuple(sorted(tuple(sorted(map(repr, clique))) for clique in cliques))


def canonical_report_cliques(reports: Iterable[BlockReport]) -> Canonical:
    """Canonical form of all cliques across a batch of block reports."""
    return canonical_cliques(
        clique for report in reports for clique in report.cliques
    )


def blocks_of(graph: Graph, m: int) -> list[Block]:
    """First-level blocks of ``graph`` at block size ``m``."""
    feasible, _ = cut(graph, m)
    return build_blocks(graph, feasible, m)


def run_blocks(
    executor_name: str,
    blocks: list[Block],
    graph: Graph,
    combo: Combo | None = None,
) -> Canonical:
    """Analyse ``blocks`` on the named executor; canonicalized output."""
    executor = EXECUTOR_FACTORIES[executor_name]()
    reports = executor.map_blocks(blocks, combo=combo, graph=graph)
    return canonical_report_cliques(reports)


def run_driver(
    mode: str, graph: Graph, m: int, combo: Combo | None = None
) -> Canonical:
    """Full two-level enumeration through the named driver mode."""
    result = _driver_result(mode, graph, m, combo=combo)
    return canonical_cliques(result.cliques)


def run_driver_levels(
    mode: str, graph: Graph, m: int, combo: Combo | None = None
) -> dict[int, Canonical]:
    """Per-recursion-level canonical clique sets of one driver run.

    The clique→level provenance is invariant to the kernel partition (a
    clique belongs to the first level where all its members are still
    present and one is feasible), so these sets must agree between the
    dict-path barrier driver and the CSR-native pipeline even though
    their block shapes differ.
    """
    result = _driver_result(mode, graph, m, combo=combo)
    by_level: dict[int, list] = {}
    for clique in result.cliques:
        by_level.setdefault(result.provenance[clique], []).append(clique)
    return {
        level: canonical_cliques(cliques) for level, cliques in by_level.items()
    }


def run_driver_floor(
    mode: str,
    graph: Graph,
    m: int,
    min_clique_size: int,
    combo: Combo | None = None,
) -> Canonical:
    """Floored enumeration through the named driver mode.

    The invariant under test: a floored run must equal the unfloored run
    of the same mode filtered to ``len(c) >= min_clique_size`` — block
    and anchor skipping may only remove work, never answers.
    """
    result = _driver_result(
        mode, graph, m, combo=combo, min_clique_size=min_clique_size
    )
    return canonical_cliques(result.cliques)


def _driver_result(
    mode: str,
    graph: Graph,
    m: int,
    combo: Combo | None = None,
    min_clique_size: int = 0,
):
    spill = mode.endswith("-spill")
    if spill:
        mode = mode[: -len("-spill")]
    # ``shared-prune`` is the shared-memory executor with a pruning floor
    # baked in; the floor argument still applies on top (max wins) so the
    # mode is usable from run_driver_floor as well.
    if mode == "shared-prune":
        mode = "shared"
        min_clique_size = max(min_clique_size, 3)
    pipeline = mode.startswith("shared-pipeline")
    if pipeline:
        if mode.endswith("-split"):
            executor_name = "shared-split"
        elif mode.endswith("-batch"):
            executor_name = "shared-batch"
        else:
            executor_name = "shared"
    else:
        executor_name = mode
    executor = (
        None if executor_name == "serial" else EXECUTOR_FACTORIES[executor_name]()
    )
    spill_dir = tempfile.mkdtemp(prefix="repro-spill-") if spill else None
    try:
        return find_max_cliques(
            graph,
            m,
            combo=combo,
            executor=executor,
            pipeline=pipeline,
            spill_dir=spill_dir,
            min_clique_size=min_clique_size,
        )
    finally:
        if spill_dir is not None:
            shutil.rmtree(spill_dir, ignore_errors=True)

"""Reusable fault-injection harness for crash-resume testing.

The crash tests all follow one shape:

1. run a *durable* enumeration (``spill_dir=...``) in a forked child
   process with ``REPRO_FAULT_INJECT`` aimed at a parameterized kill
   point — a worker SIGKILLed mid-block, or the parent SIGKILLed
   around the spill boundary (before the flush, halfway through the
   segment write, or after the manifest update);
2. observe the child die (the whole point);
3. resume the run in-process with ``resume=True`` and assert the final
   cliques are identical to an uninterrupted golden run — and that no
   block was both replayed and re-analysed.

This module provides the kill-point registry, the child runner and the
resume/compare helpers; the actual matrix lives in
``test_runs_crash_matrix.py``.  The child is forked (not spawned) so it
inherits the graph without re-importing the test session; it sets the
fault hook in its own environment only, so the pytest process is never
at risk of injecting faults into itself.

When ``REPRO_FAULT_ARTIFACT_DIR`` is set (the CI smoke job sets it), a
failed comparison copies the run manifest and a directory listing there
before re-raising, so the uploaded artifact shows what the resumed run
thought was completed.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import signal
import time
from dataclasses import dataclass
from multiprocessing import resource_tracker
from pathlib import Path

from differential import Canonical, canonical_cliques
from repro.core.driver import find_max_cliques
from repro.core.result import CliqueResult
from repro.distributed.executor import SharedMemoryExecutor
from repro.errors import ReproError
from repro.graph.adjacency import Graph
from repro.graph.csr import SHARED_SEGMENT_PREFIX
from repro.graph.generators import erdos_renyi
from repro.runs.segments import FAULT_INJECT_ENV

ARTIFACT_ENV = "REPRO_FAULT_ARTIFACT_DIR"

# The durable driver configurations under crash test.  Retry is always
# disabled in the crash child so a killed worker fails the whole run
# (with retry on, the in-parent retry would absorb the fault and the
# run would finish — good for users, useless for a crash test).
CRASH_MODES: tuple[str, ...] = (
    "serial",
    "shared",
    "shared-pipeline",
    "shared-pipeline-split",
)


@dataclass(frozen=True)
class KillPoint:
    """One parameterized place to kill a durable run.

    ``spec`` is the ``REPRO_FAULT_INJECT`` value; ``parent`` says which
    process dies (the enumeration parent at a spill boundary, or a pool
    worker mid-block).  Worker points only apply to modes that have
    workers.
    """

    name: str
    spec: str
    parent: bool

    def applies_to(self, mode: str) -> bool:
        return self.parent or mode != "serial"


# Level-0 block 5 exists in every crash graph below (they all cut 20+
# first-level blocks); the deep point targets level 1 to prove the
# (level, block_id) keying — killing at 1.3 means every level-0 block
# is already durable.
KILL_POINTS: tuple[KillPoint, ...] = (
    KillPoint("pre-flush", "kill:spill-pre:0.5", parent=True),
    KillPoint("mid-segment-write", "kill:spill-mid:0.5", parent=True),
    KillPoint("post-manifest-update", "kill:spill-post:0.5", parent=True),
    KillPoint("deep-level-pre-flush", "kill:spill-pre:1.3", parent=True),
    KillPoint("worker-killed", "kill:5", parent=False),
)

# The fast subset exercised on every CI run (and by the non-slow test):
# one torn-segment parent death and one worker death.
SMOKE_KILL_POINTS: tuple[KillPoint, ...] = (
    KILL_POINTS[1],
    KILL_POINTS[4],
)


def crash_graph() -> Graph:
    """The deterministic multi-level graph the crash matrix runs on."""
    # 3 recursion levels, 30/26/1 blocks — enough blocks before and
    # after every kill point, small enough to enumerate in milliseconds.
    return erdos_renyi(60, 0.2, seed=3)


CRASH_M = 12


def golden_cliques(graph: Graph, m: int = CRASH_M) -> Canonical:
    """Canonical cliques of an uninterrupted in-memory serial run."""
    return canonical_cliques(find_max_cliques(graph, m).cliques)


def build_executor(
    mode: str, retry_failed: bool = True
) -> SharedMemoryExecutor | None:
    """The executor a crash mode runs on (None = the serial in-process path)."""
    if mode == "serial":
        return None
    kwargs = dict(max_workers=2, retry_failed=retry_failed)
    if mode.endswith("-split"):
        kwargs.update(split=True, split_threshold=0.0, split_subtasks=3)
    return SharedMemoryExecutor(**kwargs)


def run_durable(
    mode: str,
    graph: Graph,
    m: int,
    spill_dir: str | Path,
    resume: bool = False,
    retry_failed: bool = True,
    executor: SharedMemoryExecutor | None = None,
) -> CliqueResult:
    """One durable enumeration in the named mode, in this process."""
    if executor is None:
        executor = build_executor(mode, retry_failed=retry_failed)
    return find_max_cliques(
        graph,
        m,
        executor=executor,
        pipeline="pipeline" in mode,
        spill_dir=spill_dir,
        resume=resume,
    )


def _crash_child(
    mode: str, graph: Graph, m: int, spill_dir: str, spec: str, resume: bool
) -> None:  # pragma: no cover - runs (and dies) in a forked child
    # Lead a fresh process group so the harness can sweep the pool
    # workers this child forks: after the injected SIGKILL they would
    # otherwise linger as orphans (and hold the child's sentinel pipe
    # open, which would make Process.join block forever).
    try:
        os.setpgrp()
    except OSError:
        pass
    os.environ[FAULT_INJECT_ENV] = spec
    try:
        run_durable(mode, graph, m, spill_dir, resume=resume, retry_failed=False)
    except ReproError:
        # A killed worker without retry surfaces as ExecutorError in the
        # parent: the run "crashed" by failing rather than by dying.
        os._exit(3)
    except BaseException:
        os._exit(4)
    os._exit(0)


def run_crashing(
    mode: str,
    kill: KillPoint,
    graph: Graph,
    m: int,
    spill_dir: str | Path,
    resume: bool = False,
) -> int:
    """Run a durable enumeration to its injected death; return exitcode.

    Exit conventions: negative = died by signal (parent kill points
    SIGKILL themselves, so ``-9``), ``3`` = the run failed with a
    :class:`~repro.errors.ReproError` (a killed worker with retry
    disabled), ``0`` = the fault never fired (the caller should treat
    that as a broken test).
    """
    segments_before = _shared_segments()
    # Make sure the resource tracker the child will inherit is *ours*:
    # its shm registrations then land in this process's tracker, which
    # lets the cleanup below unregister them instead of leaving stale
    # "leaked object" warnings for the interpreter-shutdown sweep.
    resource_tracker.ensure_running()
    ctx = multiprocessing.get_context("fork")
    child = ctx.Process(
        target=_crash_child,
        args=(mode, graph, m, str(spill_dir), kill.spec, resume),
    )
    child.start()
    # Poll with waitpid (is_alive) instead of join: the child's pool
    # workers inherit its sentinel pipe, so after the injected SIGKILL
    # the sentinel stays open in the orphans and join would block until
    # they die.  waitpid sees the zombie immediately.
    deadline = time.monotonic() + 120
    while child.is_alive() and time.monotonic() < deadline:
        time.sleep(0.02)
    hung = child.is_alive()
    if hung:  # pragma: no cover - hung child
        child.kill()
    _sweep_orphans(child.pid)
    child.join()
    # A SIGKILLed run cannot unlink its published CSR segments, so reap
    # anything the dead run left in /dev/shm ourselves — the other
    # suites assert no segments leak, and they mean it.
    for name in _shared_segments() - segments_before:
        try:
            os.unlink(f"/dev/shm/{name}")
        except OSError:  # pragma: no cover - raced with the tracker
            pass
        try:
            resource_tracker.unregister(f"/{name}", "shared_memory")
        except Exception:  # pragma: no cover - tracker already gone
            pass
    if hung:  # pragma: no cover - hung child
        raise AssertionError(f"crash child hung ({mode}, {kill.name})")
    return child.exitcode


def _shared_segments() -> set[str]:
    """Names of our shared-memory segments currently registered in /dev/shm."""
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():  # pragma: no cover - non-POSIX platform
        return set()
    return {
        entry.name
        for entry in shm_dir.iterdir()
        if entry.name.startswith(SHARED_SEGMENT_PREFIX)
    }


def _sweep_orphans(pgid: int) -> None:
    """SIGKILL the crash child's process group (orphaned pool workers).

    The child made itself a group leader, so its pid doubles as the
    group id; the injected SIGKILL only takes out the child itself, and
    its pool workers would otherwise linger for the rest of the test
    session.
    """
    try:
        os.killpg(pgid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        pass


def preserve_artifacts(spill_dir: str | Path, label: str) -> None:
    """Copy the run manifest (and a listing) to the CI artifact dir."""
    target = os.environ.get(ARTIFACT_ENV)
    if not target:
        return
    spill_dir = Path(spill_dir)
    out = Path(target) / label
    out.mkdir(parents=True, exist_ok=True)
    manifest = spill_dir / "manifest.json"
    if manifest.exists():
        shutil.copy(manifest, out / "manifest.json")
    listing = "\n".join(
        f"{entry.name}\t{entry.stat().st_size}"
        for entry in sorted(spill_dir.iterdir())
    )
    (out / "spill-listing.txt").write_text(listing + "\n")


def assert_crash_resume_identical(
    mode: str,
    kill: KillPoint,
    spill_dir: str | Path,
    graph: Graph | None = None,
    m: int = CRASH_M,
) -> CliqueResult:
    """The harness entry: crash once, resume, compare against golden.

    Asserts the injected fault actually fired, that the resumed cliques
    are identical to an uninterrupted run, that the resume replayed at
    least one durable block, and that no block was both replayed and
    re-analysed.  Returns the resumed result for extra assertions.
    """
    graph = graph if graph is not None else crash_graph()
    golden = golden_cliques(graph, m)
    exitcode = run_crashing(mode, kill, graph, m, spill_dir)
    assert exitcode != 0, (
        f"fault {kill.spec} never fired in mode {mode}: the kill point "
        "does not exist in this decomposition"
    )
    if kill.parent:
        assert exitcode == -9, f"parent kill exited {exitcode}, expected SIGKILL"
    else:
        assert exitcode == 3, f"worker kill exited {exitcode}, expected error exit"
    try:
        result = run_durable(mode, graph, m, spill_dir, resume=True)
        assert canonical_cliques(result.cliques) == golden, (
            f"resumed cliques differ from golden ({mode}, {kill.name})"
        )
        info = result.run_info
        assert info is not None and info["resumed"]
        if kill.parent and "pipeline" not in mode:
            # In barrier modes block 0.5 has a deterministic LPT rank,
            # so a parent killed at its spill boundary has by
            # construction spilled earlier blocks first.  The streaming
            # pipeline's bounded-lookahead dispatch can legitimately
            # finish block 5 first, and a killed *worker* may break the
            # pool before any block completes — zero durable progress
            # is possible in both, so only the barrier modes assert it.
            assert info["blocks_replayed"] > 0, (
                "nothing was replayed: the crashed run made no progress durable"
            )
        assert info["blocks_recorded"] > 0, (
            "nothing was re-analysed: the fault fired after the run finished"
        )
    except AssertionError:
        preserve_artifacts(spill_dir, f"{mode}-{kill.name}")
        raise
    return result


def assert_full_replay(
    mode: str,
    spill_dir: str | Path,
    graph: Graph | None = None,
    m: int = CRASH_M,
) -> CliqueResult:
    """Resume a *finished* run and assert zero blocks are re-analysed.

    This is the instrumentation-trace form of the acceptance criterion:
    every block of the resumed run must come back as a ``replayed=True``
    :class:`~repro.mce.instrumentation.BlockTiming`, and the run log
    must record nothing new.
    """
    graph = graph if graph is not None else crash_graph()
    executor = build_executor(mode)
    result = run_durable(
        mode, graph, m, spill_dir, resume=True, executor=executor
    )
    info = result.run_info
    assert info is not None and info["resumed"]
    assert info["blocks_recorded"] == 0, (
        f"resume re-analysed {info['blocks_recorded']} completed blocks"
    )
    assert info["blocks_replayed"] > 0
    if executor is not None and executor.last_trace is not None:
        trace = executor.last_trace
        assert trace.analyzed_blocks == [], (
            f"trace shows re-analysed blocks: {trace.analyzed_blocks}"
        )
        assert all(timing.replayed for timing in trace.timings)
        assert trace.flushes == []
    return result

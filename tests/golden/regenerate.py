"""Regenerate the golden regression fixtures.

Run from the repository root after a *deliberate* recalibration (a
generator change, a new dataset spec, a semantic change to the
decomposition)::

    PYTHONPATH=src python tests/golden/regenerate.py

Every quantity written here is deterministic for a given seed, so the
fixtures are stable across runs and platforms; ``test_golden_regression``
fails loudly whenever a code change moves any of them.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.core.driver import find_max_cliques
from repro.graph.datasets import DATASET_NAMES, load_dataset

GOLDEN_DIR = Path(__file__).parent


def golden_record(name: str) -> dict:
    """Compute the frozen statistics for one dataset stand-in."""
    graph = load_dataset(name)
    m = max(2, graph.max_degree() // 2)
    result = find_max_cliques(graph, m, collect_reports=True)
    reports = [report for level in result.block_reports for report in level]
    block_sizes = sorted(
        (report.features.num_nodes for report in reports), reverse=True
    )
    size_histogram = Counter(len(clique) for clique in result.cliques)
    return {
        "dataset": name,
        "m": m,
        "graph": {
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "max_degree": graph.max_degree(),
        },
        "cliques": {
            "count": result.num_cliques,
            "max_size": result.max_clique_size(),
            "size_histogram": {
                str(size): count for size, count in sorted(size_histogram.items())
            },
        },
        "recursion": {
            "levels": len(result.levels),
            "fallback_used": result.fallback_used,
            "blocks_per_level": [stats.num_blocks for stats in result.levels],
            "feasible_per_level": [stats.num_feasible for stats in result.levels],
            "hubs_per_level": [stats.num_hubs for stats in result.levels],
            "cliques_per_level": [stats.cliques_found for stats in result.levels],
        },
        "blocks": {
            "count": len(reports),
            "max_size": block_sizes[0] if block_sizes else 0,
            "total_nodes": sum(block_sizes),
            "total_kernel_nodes": sum(report.kernel_nodes for report in reports),
        },
    }


def main() -> None:
    for name in DATASET_NAMES:
        record = golden_record(name)
        path = GOLDEN_DIR / f"{name.replace('+', 'plus')}.json"
        path.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {path} ({record['cliques']['count']} cliques)")


if __name__ == "__main__":
    main()

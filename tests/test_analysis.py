"""Unit tests for the measurement and reporting helpers."""

from __future__ import annotations

import math

import pytest

from repro.analysis.cliques import (
    largest_cliques_split,
    overlap_stats,
    provenance_split,
    size_histogram,
)
from repro.analysis.degrees import degree_profile, hub_shares
from repro.analysis.report import format_csv, format_series, format_table
from repro.core.driver import find_max_cliques
from repro.graph.adjacency import Graph
from repro.graph.generators import social_network, star_graph


@pytest.fixture(scope="module")
def result():
    g = social_network(150, attachment=4, planted_cliques=(10, 8), seed=7)
    return find_max_cliques(g, 20)


class TestProvenanceSplit:
    def test_counts_add_up(self, result):
        split = provenance_split(result)
        assert split.total == result.num_cliques
        assert split.feasible_count == len(result.feasible_cliques())
        assert split.hub_count == len(result.hub_cliques())

    def test_fraction_bounds(self, result):
        split = provenance_split(result)
        assert 0.0 <= split.hub_fraction <= 1.0

    def test_empty_result(self):
        empty = find_max_cliques(Graph(), 5)
        split = provenance_split(empty)
        assert split.total == 0
        assert split.hub_fraction == 0.0
        assert split.feasible_avg_size == 0.0


class TestSizeHistogram:
    def test_histogram(self):
        cliques = [frozenset({1, 2}), frozenset({3, 4}), frozenset({5, 6, 7})]
        assert size_histogram(cliques) == {2: 2, 3: 1}

    def test_empty(self):
        assert size_histogram([]) == {}


class TestLargestSplit:
    def test_shares_sum_to_one(self, result):
        feasible, hub = largest_cliques_split(result, k=50)
        assert feasible + hub == pytest.approx(1.0)

    def test_empty(self):
        empty = find_max_cliques(Graph(), 5)
        assert largest_cliques_split(empty, 10) == (0.0, 0.0)


class TestOverlap:
    def test_counts(self):
        a = {frozenset({1}), frozenset({2})}
        b = {frozenset({2}), frozenset({3})}
        assert overlap_stats(a, b) == {"common": 1, "missed": 1, "extra": 1}


class TestDegreeProfile:
    def test_star(self):
        profile = degree_profile("star", star_graph(30), truncate_at=5)
        assert profile.max_degree == 30
        assert profile.truncated_histogram[1] == 30
        assert profile.low_degree_fraction == pytest.approx(30 / 31)

    def test_invalid_truncation(self):
        with pytest.raises(ValueError):
            degree_profile("x", Graph(), truncate_at=-1)

    def test_empty_graph(self):
        profile = degree_profile("empty", Graph())
        assert profile.num_nodes == 0
        assert math.isnan(profile.power_law_alpha)


class TestHubShares:
    def test_monotone_in_m(self):
        g = social_network(200, attachment=3, seed=8)
        rows = hub_shares(g, [5, 10, 20, 40])
        shares = [share for _, share in rows]
        assert shares == sorted(shares, reverse=True)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            hub_shares(Graph(nodes=[1]), [0])


class TestFormatting:
    def test_table_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1], ["long-name", 2.5]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-name" in text
        assert "2.5" in text

    def test_table_bad_row(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_table_bool_and_float_rendering(self):
        text = format_table(["x"], [[True], [0.123456]])
        assert "yes" in text
        assert "0.1235" in text

    def test_csv(self):
        text = format_csv(["a", "b"], [[1, 2], [3, 4]])
        assert text.splitlines() == ["a,b", "1,2", "3,4"]

    def test_series(self):
        text = format_series("s", [(0.9, 10), (0.5, 20)])
        assert "0.9 -> 10" in text

"""Unit tests for ASCII charts and repeated-measurement timing."""

from __future__ import annotations

import time

import pytest

from repro.analysis.charts import bar_chart, grouped_bar_chart, log_bar_chart
from repro.analysis.timing import measure


class TestBarChart:
    def test_scaling_to_max(self):
        text = bar_chart(["a", "b"], [10.0, 5.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_title_and_unit(self):
        text = bar_chart(["x"], [1.0], title="T", unit="s")
        assert text.startswith("T")
        assert "1s" in text

    def test_empty(self):
        assert "(no data)" in bar_chart([], [])

    def test_zero_values(self):
        text = bar_chart(["a"], [0.0])
        assert "█" not in text

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])

    def test_half_block_rendering(self):
        text = bar_chart(["a", "b"], [20.0, 1.0], width=10)
        # 1/20 * 10 = 0.5 -> a half block for the small bar.
        assert "▌" in text.splitlines()[1]


class TestGroupedBarChart:
    def test_groups_and_series(self):
        text = grouped_bar_chart(
            ["0.9", "0.1"],
            {"feasible": [10.0, 5.0], "hub": [0.0, 8.0]},
        )
        assert "0.9:" in text
        assert "feasible" in text
        assert "hub" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["a"], {"s": [1.0, 2.0]})

    def test_empty_series(self):
        assert grouped_bar_chart([], {}) == ""


class TestLogBarChart:
    def test_orders_of_magnitude(self):
        text = log_bar_chart(["small", "large"], [10.0, 10000.0], width=40)
        lines = text.splitlines()
        small_bar = lines[0].count("█")
        large_bar = lines[1].count("█")
        assert large_bar == 40
        assert small_bar == 10  # log10(10)/log10(10000) = 1/4 of width

    def test_zero_value_empty_bar(self):
        text = log_bar_chart(["z"], [0.0])
        assert "█" not in text

    def test_validation(self):
        with pytest.raises(ValueError):
            log_bar_chart(["a"], [])


class TestMeasure:
    def test_result_returned(self):
        result, sample = measure(lambda: 42, repeats=3)
        assert result == 42
        assert sample.runs == 3

    def test_statistics_consistent(self):
        _, sample = measure(lambda: time.sleep(0.001), repeats=3)
        assert sample.best_seconds <= sample.mean_seconds <= sample.worst_seconds
        assert sample.best_seconds > 0.0
        assert sample.relative_spread >= 0.0

    def test_single_repeat_no_stdev(self):
        _, sample = measure(lambda: None, repeats=1)
        assert sample.stdev_seconds == 0.0

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeats=0)

    def test_action_runs_each_repeat(self):
        calls = []
        measure(lambda: calls.append(1), repeats=4)
        assert len(calls) == 4


class TestLogBarSubUnitValues:
    def test_values_below_one_render_empty(self):
        text = log_bar_chart(["tiny", "big"], [0.5, 1000.0], width=30)
        lines = text.splitlines()
        assert "█" not in lines[0]
        assert lines[1].count("█") == 30

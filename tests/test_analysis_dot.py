"""Unit tests for DOT export."""

from __future__ import annotations

from repro.analysis.dot import block_to_dot, decomposition_to_dot, graph_to_dot
from repro.core.blocks import build_blocks
from repro.core.feasibility import cut
from repro.graph.adjacency import Graph
from repro.graph.generators import erdos_renyi


class TestGraphToDot:
    def test_nodes_and_edges_present(self):
        g = Graph(edges=[("a", "b"), ("b", "c")])
        dot = graph_to_dot(g)
        assert dot.startswith('graph "network" {')
        assert '"a" -- "b";' in dot or '"b" -- "a";' in dot
        assert dot.rstrip().endswith("}")

    def test_hubs_highlighted(self):
        g = Graph(edges=[("hub", "x"), ("hub", "y")])
        dot = graph_to_dot(g, hubs={"hub"})
        assert '"hub" [fillcolor=salmon];' in dot
        assert '"x" [fillcolor=white];' in dot

    def test_quoting(self):
        g = Graph(nodes=['we"ird'])
        dot = graph_to_dot(g)
        assert '\\"' in dot

    def test_empty_graph(self):
        dot = graph_to_dot(Graph())
        assert "graph" in dot


class TestBlockToDot:
    def _block(self):
        g = erdos_renyi(20, 0.25, seed=4)
        feasible, _ = cut(g, 8)
        return build_blocks(g, feasible, 8)

    def test_roles_coloured(self):
        blocks = self._block()
        block = next(b for b in blocks if b.border or b.visited)
        dot = block_to_dot(block)
        assert "fillcolor=white" in dot  # kernel
        assert "palegreen" in dot or "lightblue" in dot

    def test_visited_double_circled(self):
        blocks = self._block()
        with_visited = [b for b in blocks if b.visited]
        if not with_visited:
            return
        dot = block_to_dot(with_visited[0])
        assert "doublecircle" in dot


class TestDecompositionToDot:
    def test_one_cluster_per_block(self):
        g = erdos_renyi(20, 0.25, seed=4)
        feasible, _ = cut(g, 8)
        blocks = build_blocks(g, feasible, 8)
        dot = decomposition_to_dot(blocks)
        assert dot.count("subgraph cluster_") == len(blocks)
        assert '"B1"' in dot.replace("label=", "") or "B1" in dot

    def test_empty(self):
        dot = decomposition_to_dot([])
        assert "decomposition" in dot

"""Unit tests for modularity and overlapping-cover quality."""

from __future__ import annotations

import pytest

from repro.analysis.modularity import modularity, overlapping_quality
from repro.baselines.networkx_mce import to_networkx
from repro.graph.adjacency import Graph
from repro.graph.generators import (
    complete_graph,
    disjoint_union,
    erdos_renyi,
    stochastic_block_model,
)


class TestModularity:
    def test_matches_networkx(self):
        import networkx as nx

        g = stochastic_block_model([10, 10], 0.6, 0.05, seed=3)
        communities = [
            frozenset((0, i) for i in range(10)),
            frozenset((1, i) for i in range(10)),
        ]
        ours = modularity(g, communities)
        theirs = nx.community.modularity(
            to_networkx(g), [set(c) for c in communities]
        )
        assert ours == pytest.approx(theirs)

    def test_single_community_zero(self):
        g = complete_graph(5)
        assert modularity(g, [frozenset(range(5))]) == pytest.approx(0.0)

    def test_separated_cliques_high(self):
        union = disjoint_union([complete_graph(4), complete_graph(4)])
        communities = [
            frozenset((0, i) for i in range(4)),
            frozenset((1, i) for i in range(4)),
        ]
        assert modularity(union, communities) == pytest.approx(0.5)

    def test_overlap_rejected(self):
        g = complete_graph(4)
        with pytest.raises(ValueError, match="overlap"):
            modularity(g, [frozenset({0, 1, 2}), frozenset({2, 3})])

    def test_incomplete_cover_rejected(self):
        g = complete_graph(4)
        with pytest.raises(ValueError, match="cover"):
            modularity(g, [frozenset({0, 1})])

    def test_edgeless_rejected(self):
        with pytest.raises(ValueError, match="edgeless"):
            modularity(Graph(nodes=[1]), [frozenset({1})])


class TestOverlappingQuality:
    def test_perfect_cover(self):
        union = disjoint_union([complete_graph(4), complete_graph(4)])
        communities = [
            frozenset((0, i) for i in range(4)),
            frozenset((1, i) for i in range(4)),
        ]
        quality = overlapping_quality(union, communities)
        assert quality.coverage == 1.0
        assert quality.intra_edge_fraction == 1.0
        assert quality.mean_conductance == 0.0

    def test_partial_cover(self):
        g = complete_graph(6)
        quality = overlapping_quality(g, [frozenset({0, 1, 2})])
        assert quality.coverage == pytest.approx(0.5)
        assert 0.0 < quality.intra_edge_fraction < 1.0
        assert quality.mean_conductance > 0.0

    def test_empty_cover(self):
        quality = overlapping_quality(complete_graph(3), [])
        assert quality == overlapping_quality(Graph(), [frozenset({1})])

    def test_overlapping_communities_allowed(self):
        g = erdos_renyi(20, 0.3, seed=4)
        communities = [
            frozenset(list(g.nodes())[:12]),
            frozenset(list(g.nodes())[8:]),
        ]
        quality = overlapping_quality(g, communities)
        assert quality.coverage == 1.0

    def test_percolation_communities_score_well_on_sbm(self):
        from repro.mce.tomita import tomita
        from repro.relaxed.percolation import k_clique_communities

        g = stochastic_block_model([12, 12], 0.8, 0.02, seed=6)
        communities = k_clique_communities(list(tomita(g)), 4)
        quality = overlapping_quality(g, communities)
        assert quality.coverage > 0.9
        assert quality.intra_edge_fraction > 0.8

"""Unit tests for triangle statistics, cross-checked with networkx."""

from __future__ import annotations

import pytest

from repro.analysis.triangles import (
    average_clustering,
    transitivity,
    triangle_counts,
    triangle_total,
)
from repro.baselines.networkx_mce import to_networkx
from repro.graph.adjacency import Graph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    social_network,
)


class TestTriangleCounts:
    def test_triangle(self):
        g = complete_graph(3)
        assert triangle_counts(g) == {0: 1, 1: 1, 2: 1}

    def test_complete_graph(self):
        g = complete_graph(5)
        # Each node is in C(4, 2) = 6 triangles.
        assert set(triangle_counts(g).values()) == {6}
        assert triangle_total(g) == 10

    def test_triangle_free(self):
        g = cycle_graph(6)
        assert triangle_total(g) == 0

    def test_empty(self):
        assert triangle_counts(Graph()) == {}
        assert triangle_total(Graph()) == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx(self, seed):
        import networkx as nx

        g = erdos_renyi(40, 0.2, seed=seed)
        assert triangle_counts(g) == nx.triangles(to_networkx(g))


class TestTransitivity:
    def test_complete(self):
        assert transitivity(complete_graph(6)) == pytest.approx(1.0)

    def test_triangle_free(self):
        assert transitivity(cycle_graph(8)) == 0.0

    def test_no_triads(self):
        assert transitivity(Graph(edges=[(0, 1)])) == 0.0

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_networkx(self, seed):
        import networkx as nx

        g = erdos_renyi(30, 0.25, seed=seed)
        assert transitivity(g) == pytest.approx(nx.transitivity(to_networkx(g)))


class TestAverageClustering:
    def test_empty(self):
        assert average_clustering(Graph()) == 0.0

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_networkx(self, seed):
        import networkx as nx

        g = erdos_renyi(30, 0.25, seed=seed)
        assert average_clustering(g) == pytest.approx(
            nx.average_clustering(to_networkx(g))
        )

    def test_triadic_closure_raises_clustering(self):
        flat = social_network(200, attachment=3, closure_probability=0.0, seed=5)
        closed = social_network(200, attachment=3, closure_probability=0.8, seed=5)
        assert average_clustering(closed) > average_clustering(flat)

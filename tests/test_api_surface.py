"""Sanity checks on the public API surface.

Guards against export rot: every name in every subpackage's ``__all__``
must resolve, every public module must carry a docstring, and the
package docstring's quickstart must actually run.
"""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro",
    "repro.graph",
    "repro.mce",
    "repro.decision",
    "repro.core",
    "repro.distributed",
    "repro.runs",
    "repro.baselines",
    "repro.relaxed",
    "repro.incremental",
    "repro.analysis",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), name
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would execute the CLI
        yield info.name


@pytest.mark.parametrize("name", sorted(_walk_modules()))
def test_every_module_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


def test_no_export_duplicates():
    for name in SUBPACKAGES:
        module = importlib.import_module(name)
        exported = module.__all__
        assert len(exported) == len(set(exported)), name


def test_quickstart_from_package_docstring():
    # The snippet advertised in repro.__doc__, executed literally.
    from repro import find_max_cliques
    from repro.graph import social_network

    graph = social_network(500, attachment=3, seed=7)
    result = find_max_cliques(graph, m=32)
    assert result.num_cliques > 0
    assert result.max_clique_size() >= 3


def test_version_is_exposed():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2
